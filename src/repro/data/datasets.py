"""The four evaluation suites, rebuilt synthetically.

The paper's suites and our stand-ins (DESIGN.md §2 documents the
substitution argument in full):

========== ============================== =================================
Suite      Paper source                   Our generator
========== ============================== =================================
Texture    USC-SIPI texture DB (<= 1 MB)  high-frequency fractal noise,
                                          binarized at 0.5 (fine granular
                                          components, high merge rate)
Aerial     USC-SIPI aerial DB (<= 1 MB)   low-frequency fractal noise +
                                          blob smoothing (large regions,
                                          field/road-like structure)
Misc       USC-SIPI misc DB (<= 1 MB)     mixed bag: blobs, stripes,
                                          spiral, noise at several sizes
NLCD       US National Land Cover DB 2006 multi-class land-cover raster
           rasters 12 - 465.20 MB         (per-class value-noise argmax),
                                          one class binarized; sizes follow
                                          the Table III ladder x scale
========== ============================== =================================

Every suite function returns a list of :class:`DatasetImage` — the binary
array plus its provenance (name, nominal paper-scale size) so benchmark
reports can print the same rows the paper's tables do.

A ``scale`` parameter shrinks the linear dimensions so the whole ladder
stays tractable in CPython; sizes in reports are labelled with both the
synthetic (actual) and paper-equivalent (nominal) megabytes.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..types import PIXEL_DTYPE
from .binarize import im2bw
from .synthetic import blobs, diagonal_stripes, maze, random_noise, spiral
from .valuenoise import fractal_noise

__all__ = [
    "DatasetImage",
    "texture_suite",
    "aerial_suite",
    "misc_suite",
    "nlcd_suite",
    "suite_by_name",
    "NLCD_PAPER_SIZES_MB",
    "SUITE_NAMES",
]

#: Table III of the paper: the six NLCD image sizes in megabytes.
NLCD_PAPER_SIZES_MB = (12.0, 33.0, 37.31, 116.30, 132.03, 465.20)

SUITE_NAMES = ("texture", "aerial", "misc", "nlcd")


@dataclasses.dataclass(frozen=True)
class DatasetImage:
    """One evaluation image with its provenance.

    Attributes
    ----------
    name:
        Stable identifier (used in benchmark report rows).
    suite:
        One of :data:`SUITE_NAMES`.
    image:
        Canonical binary ``uint8`` array.
    nominal_mb:
        The size (MB, 1 byte/pixel) this image *stands in for* at paper
        scale; equals :attr:`actual_mb` when ``scale == 1``.
    """

    name: str
    suite: str
    image: np.ndarray
    nominal_mb: float

    @property
    def shape(self) -> tuple[int, int]:
        return self.image.shape  # type: ignore[return-value]

    @property
    def actual_mb(self) -> float:
        """Actual in-memory size at 1 byte per pixel, in MB."""
        return self.image.size / 1e6

    @property
    def foreground_density(self) -> float:
        return float(self.image.mean()) if self.image.size else 0.0


def _side_for_mb(mb: float, scale: float) -> int:
    """Side length of a square image of *mb* megabytes (1 B/px), scaled.

    ``scale`` multiplies the *linear* dimension, so memory scales with
    ``scale ** 2``. Result is clamped to >= 16 px and rounded to even so
    the two-row scans never hit the odd-tail path on dataset images by
    accident (that path gets dedicated tests instead).
    """
    side = int(round(math.sqrt(mb * 1e6) * scale))
    side = max(16, side)
    return side + (side % 2)


def texture_suite(
    scale: float = 0.05, n_images: int = 6, seed: int = 2014
) -> list[DatasetImage]:
    """Texture-like images: high-frequency fields, fine granularity.

    Paper-scale images are ~0.06-1 MB; with the default ``scale=0.05``
    each stand-in is a few thousand pixels, sized for interpreter-engine
    runs.
    """
    out = []
    sizes_mb = np.geomspace(0.065, 1.0, n_images)
    for i, mb in enumerate(sizes_mb.tolist()):
        side = _side_for_mb(mb, scale * 4)  # texture DB images are small;
        # boost linear scale so the smallest stays meaningfully non-trivial
        field = fractal_noise(
            (side, side),
            base_cell=max(2, side // 48),
            octaves=3,
            persistence=0.65,
            seed=seed + i,
        )
        out.append(
            DatasetImage(
                name=f"texture_{i + 1}",
                suite="texture",
                image=im2bw(field, 0.5),
                nominal_mb=mb,
            )
        )
    return out


def aerial_suite(
    scale: float = 0.05, n_images: int = 6, seed: int = 4102
) -> list[DatasetImage]:
    """Aerial-photograph-like images: large coherent regions."""
    out = []
    sizes_mb = np.geomspace(0.26, 1.0, n_images)
    for i, mb in enumerate(sizes_mb.tolist()):
        side = _side_for_mb(mb, scale * 4)
        field = fractal_noise(
            (side, side),
            base_cell=max(4, side // 8),
            octaves=4,
            persistence=0.45,
            seed=seed + i,
        )
        out.append(
            DatasetImage(
                name=f"aerial_{i + 1}",
                suite="aerial",
                image=im2bw(field, 0.5),
                nominal_mb=mb,
            )
        )
    return out


def misc_suite(scale: float = 0.05, seed: int = 365) -> list[DatasetImage]:
    """Miscellaneous suite: deliberately heterogeneous structures."""
    side = _side_for_mb(0.26, scale * 4)
    small = (side, side)
    big = (side * 2, side * 2)
    images = [
        ("misc_blobs", blobs(big, density=0.48, seed=seed), 1.0),
        ("misc_noise", random_noise(small, density=0.5, seed=seed + 1), 0.26),
        ("misc_stripes", diagonal_stripes(small, period=6, width=2), 0.26),
        ("misc_spiral", spiral(small, gap=3), 0.26),
        ("misc_maze", maze(big, wall_density=0.5, seed=seed + 2), 1.0),
        ("misc_sparse", random_noise(small, density=0.05, seed=seed + 3), 0.26),
    ]
    return [
        DatasetImage(name=n, suite="misc", image=img, nominal_mb=mb)
        for n, img, mb in images
    ]


def _landcover_raster(
    shape: tuple[int, int], n_classes: int, seed: int
) -> np.ndarray:
    """Multi-class land-cover raster: per-class low-frequency suitability
    fields, each pixel assigned the argmax class — produces contiguous
    irregular regions like NLCD's 30 m land-cover products."""
    rows, cols = shape
    best = np.full((rows, cols), -np.inf)
    cls = np.zeros((rows, cols), dtype=np.int16)
    for k in range(n_classes):
        field = fractal_noise(
            shape,
            base_cell=max(4, min(rows, cols) // 6),
            octaves=3,
            persistence=0.5,
            seed=seed * 31 + k,
        )
        take = field > best
        best[take] = field[take]
        cls[take] = k
    return cls


def nlcd_suite(
    scale: float = 0.01,
    sizes_mb: tuple[float, ...] = NLCD_PAPER_SIZES_MB,
    n_classes: int = 8,
    target_class: int = 0,
    seed: int = 2006,
) -> list[DatasetImage]:
    """The NLCD ladder of Table III: ``image 1`` ... ``image 6``.

    Each image is the binary mask of one land-cover class of a synthetic
    multi-class raster. ``scale`` applies to the linear dimension
    (``scale=0.01`` turns the 465.2 MB flagship into a ~46 KB stand-in;
    raise it on faster machines).
    """
    out = []
    for i, mb in enumerate(sizes_mb):
        side = _side_for_mb(mb, scale)
        raster = _landcover_raster((side, side), n_classes, seed + i)
        binary = (raster == target_class).astype(PIXEL_DTYPE)
        out.append(
            DatasetImage(
                name=f"image_{i + 1}",
                suite="nlcd",
                image=binary,
                nominal_mb=mb,
            )
        )
    return out


def suite_by_name(name: str, scale: float | None = None) -> list[DatasetImage]:
    """Build a suite by its paper name (case-insensitive).

    ``scale=None`` uses each suite's default scale.
    """
    key = name.lower()
    if key == "texture":
        return texture_suite(**({"scale": scale} if scale is not None else {}))
    if key == "aerial":
        return aerial_suite(**({"scale": scale} if scale is not None else {}))
    if key in ("misc", "miscellaneous"):
        return misc_suite(**({"scale": scale} if scale is not None else {}))
    if key == "nlcd":
        return nlcd_suite(**({"scale": scale} if scale is not None else {}))
    raise KeyError(
        f"unknown suite {name!r}; expected one of {SUITE_NAMES}"
    )
