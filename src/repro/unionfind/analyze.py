"""Structural quality metrics for union-find forests.

Reference [40]'s variant comparison ultimately measures one thing: how
short the find paths stay under each union/compression policy. This
module extracts those structural facts from any parent array so the
ablation benchmarks can report *why* a variant is fast, not just that
it is:

* :func:`tree_depths` — per-element distance to its root;
* :func:`forest_stats` — depth distribution summary + pointer totals.

Everything is vectorised (pointer doubling), so forests with millions of
elements analyse in milliseconds.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

__all__ = ["tree_depths", "ForestStats", "forest_stats"]


def tree_depths(p: Sequence[int]) -> np.ndarray:
    """Distance (pointer hops) from every element to its root.

    Pointer doubling with exact hop accounting: maintain for every
    element an ancestor pointer ``ptr`` and the exact hop count
    ``dist`` from the element to that ancestor. Squaring the pointer
    (``ptr <- ptr[ptr]``) adds the ancestor's own ``dist`` — which is 0
    once the ancestor is a root, so the recurrence converges to exact
    root distances in O(log depth) vector rounds.

    *p* must encode a forest (see
    :func:`repro.unionfind.base.is_valid_parent_array`); a cycle would
    loop forever, so a bounded number of rounds guards against it.
    """
    orig = np.asarray(p, dtype=np.int64)
    ptr = orig
    n = len(ptr)
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    dist = (ptr != np.arange(n)).astype(np.int64)
    for _ in range(max(1, n.bit_length() + 2)):
        nxt = ptr[ptr]
        if np.array_equal(nxt, ptr):
            # stable — but a 2-cycle also stabilises (at the identity);
            # a genuine forest stabilises on fixpoints of the original.
            if not (orig[ptr] == ptr).all():
                break
            return dist
        dist = dist + dist[ptr]
        ptr = nxt
    raise ValueError("parent array contains a cycle (not a forest)")


@dataclasses.dataclass(frozen=True)
class ForestStats:
    """Depth-distribution summary of one parent array."""

    n: int
    n_roots: int
    max_depth: int
    mean_depth: float
    total_path_length: int

    def describe(self) -> str:
        return (
            f"{self.n} elements, {self.n_roots} roots, depth "
            f"max {self.max_depth} / mean {self.mean_depth:.3f}, "
            f"total path length {self.total_path_length}"
        )


def forest_stats(p: Sequence[int]) -> ForestStats:
    """Summarise the find-path structure of *p*."""
    depths = tree_depths(p)
    n = len(depths)
    arr = np.asarray(p)
    n_roots = int((arr == np.arange(n)).sum()) if n else 0
    return ForestStats(
        n=n,
        n_roots=n_roots,
        max_depth=int(depths.max()) if n else 0,
        mean_depth=float(depths.mean()) if n else 0.0,
        total_path_length=int(depths.sum()),
    )
