"""Sharded-runtime smoke: out-of-core labeling must survive a rank kill.

``make shard-smoke`` / ``python benchmarks/bench_shard_smoke.py``

Builds a ~64 MB on-disk raster (8192x8192 uint8, written block-wise so
the image never sits in RAM at once), labels it with the elastic
sharded runtime (:func:`repro.parallel.shard_label`, 4 shards) straight
into an on-disk label array, then repeats the run with one injected
``kill_rank`` fault mid-scan against a checkpoint directory. The gates:

* **byte-identity** — the clean runs *and* the faulted run must match
  the serial ``tiled_label`` oracle file byte-for-byte (fatal even
  under ``--record-only``);
* **recovery overhead** — the faulted run's wall time over the clean
  median must stay under ``--max-overhead`` (default 3x): a kill costs
  a respawn plus the re-scan of the chunks since the victim's last
  snapshot, never a from-scratch rerun;
* **hygiene** — ``/dev/shm`` and the checkpoint directory must be
  exactly as clean after the bench as before it.

The record merges into ``--out`` as a ``"shard"`` section (sharing one
artifact with the paremsp/service smokes); with ``--history`` a
:mod:`repro.perfdb` record (benchmark ``shard_smoke``) lands in the
history directory for the ``repro-obs compare`` regression gate
against the committed ``baseline_shard.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import tempfile
import time

import numpy as np
from numpy.lib.format import open_memmap

from repro.faults import FaultPlan, FaultSpec, ResilienceConfig
from repro.parallel import shard_label, tiled_label

__all__ = ["run", "main"]

TILE = (256, 256)

#: bounded respawns, no backoff padding, a watchdog sized for the
#: full-raster scan on a busy CI box.
RESILIENCE = ResilienceConfig(
    max_retries=2, backoff_base=0.0, phase_timeout=600.0
)


def _shm_segments() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _write_raster(
    path: pathlib.Path, side: int, density: float, seed: int,
    block: int = 512,
) -> None:
    """Fill an on-disk uint8 raster block-wise (out-of-core build)."""
    rng = np.random.default_rng(seed)
    mm = open_memmap(path, mode="w+", dtype=np.uint8, shape=(side, side))
    for r0 in range(0, side, block):
        r1 = min(side, r0 + block)
        mm[r0:r1] = rng.random((r1 - r0, side)) < density
    mm.flush()
    del mm


def _files_identical(a: pathlib.Path, b: pathlib.Path) -> bool:
    if os.path.getsize(a) != os.path.getsize(b):
        return False
    chunk = 1 << 22
    with open(a, "rb") as fa, open(b, "rb") as fb:
        while True:
            ba = fa.read(chunk)
            if ba != fb.read(chunk):
                return False
            if not ba:
                return True


def run(
    side: int = 8192,
    density: float = 0.45,
    n_shards: int = 4,
    repeats: int = 2,
    seed: int = 0,
    checkpoint_every: int = 4,
    workdir: str | os.PathLike | None = None,
) -> dict:
    """Time clean vs one-kill sharded runs of a *side* x *side* raster.

    Returns the record dict; raises ``SystemExit`` on a correctness or
    hygiene failure (those are fatal regardless of the timing gate).
    """
    tmp_ctx = None
    if workdir is None:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="repro-shard-smoke-")
        root = pathlib.Path(tmp_ctx.name)
    else:
        root = pathlib.Path(workdir)
        root.mkdir(parents=True, exist_ok=True)
    shm_before = _shm_segments()
    try:
        img_path = root / "img.npy"
        _write_raster(img_path, side, density, seed)
        image = np.load(img_path, mmap_mode="r")

        oracle = tiled_label(image, tile_shape=TILE, out=root / "oracle.npy")
        n_oracle = oracle.n_components
        del oracle

        clean_reps: list[float] = []
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = shard_label(
                image, n_shards=n_shards, tile_shape=TILE,
                out=root / "clean.npy",
            )
            clean_reps.append(time.perf_counter() - t0)
            del res
            if not _files_identical(root / "clean.npy", root / "oracle.npy"):
                raise SystemExit(
                    "FAIL: clean sharded labels diverged from tiled_label"
                )

        # the faulted pass: rank 0 is killed after its first snapshot
        # batch, so recovery must resume the shard from its checkpoint
        plan = FaultPlan(
            [FaultSpec("kill_rank", phase="scan", rank=0, after_chunks=1)]
        )
        ck = root / "ck"
        t0 = time.perf_counter()
        faulted = shard_label(
            image, n_shards=n_shards, tile_shape=TILE,
            checkpoint_dir=ck, checkpoint_every=checkpoint_every,
            resilience=RESILIENCE, fault_plan=plan,
            out=root / "fault.npy",
        )
        fault_wall = time.perf_counter() - t0
        if not _files_identical(root / "fault.npy", root / "oracle.npy"):
            raise SystemExit(
                "FAIL: post-kill sharded labels diverged from tiled_label"
            )
        if plan.injected != 1:
            raise SystemExit("FAIL: the kill_rank fault never fired")
        if faulted.meta["rank_deaths"] < 1:
            raise SystemExit("FAIL: no rank death recorded for the kill")
        meta = dict(faulted.meta)
        n_faulted = faulted.n_components
        del faulted
        if n_faulted != n_oracle:
            raise SystemExit("FAIL: component count diverged after the kill")
        if (ck / "scratch").exists():
            raise SystemExit(
                "FAIL: recovery left scratch state under the checkpoint dir"
            )
    finally:
        if tmp_ctx is not None:
            tmp_ctx.cleanup()

    leaked = _shm_segments() - shm_before
    if leaked:
        raise SystemExit(
            f"FAIL: sharded run leaked shm segments: {sorted(leaked)}"
        )

    clean_wall = _median(clean_reps)
    mpix = side * side / 1e6
    return {
        "benchmark": "shard_smoke",
        "schema_version": 1,
        "raster": {
            "side": side,
            "bytes": side * side,
            "density": density,
            "seed": seed,
        },
        "n_shards": n_shards,
        "tile_shape": list(TILE),
        "checkpoint_every": checkpoint_every,
        "repeats": repeats,
        "n_components": n_oracle,
        "clean_wall_reps": clean_reps,
        "clean_wall_seconds": clean_wall,
        "clean_throughput_mpix_s": mpix / clean_wall,
        "fault_wall_seconds": fault_wall,
        "recovery_overhead": fault_wall / clean_wall,
        "rank_deaths": meta["rank_deaths"],
        "respawns": meta["respawns"],
        "reassigned": meta["reassigned"],
        "rescan_chunks": meta["rescan_chunks"],
        "shards_resumed": list(meta["shards_resumed"]),
        "byte_identical": True,        # identity checks are fatal otherwise
        "shm_clean": True,             # leak check is fatal otherwise
        "checkpoint_dir_clean": True,  # scratch check is fatal otherwise
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--side", type=int, default=8192,
        help="raster side length (default 8192 = a 64 MB uint8 memmap)",
    )
    ap.add_argument("--density", type=float, default=0.45)
    ap.add_argument("--shards", type=int, default=4)
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--checkpoint-every", type=int, default=4)
    ap.add_argument(
        "--max-overhead", type=float, default=3.0,
        help="fail when the killed run costs more than this factor of "
        "the clean median wall time",
    )
    ap.add_argument("--out", default="BENCH_paremsp.json")
    ap.add_argument(
        "--record-only", action="store_true",
        help="write the record but never fail the timing gate (CI smoke "
        "mode); correctness and hygiene checks stay fatal",
    )
    ap.add_argument(
        "--history", metavar="DIR", default=None,
        help="append a repro.perfdb record (median + bootstrap CI + "
        "environment fingerprint) under DIR for 'repro-obs compare'",
    )
    args = ap.parse_args(argv)

    record = run(
        side=args.side,
        density=args.density,
        n_shards=args.shards,
        repeats=args.repeats,
        seed=args.seed,
        checkpoint_every=args.checkpoint_every,
    )

    out = pathlib.Path(args.out)
    merged: dict = {}
    if out.exists():
        try:
            merged = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged["shard"] = record
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")

    print(
        f"shard {args.side}x{args.side} raster ({args.shards} shards): "
        f"clean {record['clean_wall_seconds']:.2f}s "
        f"({record['clean_throughput_mpix_s']:.1f} Mpix/s), one kill "
        f"{record['fault_wall_seconds']:.2f}s "
        f"({record['recovery_overhead']:.2f}x, "
        f"{record['rescan_chunks']} chunks rescanned) -> {out}"
    )

    if args.history:
        from repro.perfdb import (
            append_record,
            build_record,
            environment_fingerprint,
        )

        history_record = build_record(
            "shard_smoke",
            record["clean_wall_reps"],
            meta={
                "raster": record["raster"],
                "n_shards": record["n_shards"],
                "recovery_overhead": record["recovery_overhead"],
                "fault_wall_seconds": record["fault_wall_seconds"],
                "rescan_chunks": record["rescan_chunks"],
            },
            env=environment_fingerprint(n_threads=args.shards),
        )
        path = append_record(history_record, args.history)
        print(f"history record -> {path}")

    if record["recovery_overhead"] > args.max_overhead:
        print(
            f"FAIL: recovery overhead {record['recovery_overhead']:.2f}x "
            f"above the {args.max_overhead:.1f}x ceiling"
        )
        if args.record_only:
            print("(record-only mode: timing gate not fatal)")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
