"""Runtime metric aggregation: rolling windows + Prometheus exposition.

The :class:`~repro.obs.metrics.MetricsRegistry` records a run's final
counters and gauges; a *live* service needs the complementary shape —
metrics that can be scraped mid-run and that forget old traffic. A
:class:`RuntimeAggregator` holds three instrument kinds, all
thread-safe and created on first touch:

* **counters** — monotonic totals, optionally labelled
  (``inc("slo.breaches", labels={"slo": "latency_p99"})``);
* **gauges** — last-written values (queue depth, in-flight requests);
* **windows** — rolling time-window samples
  (``observe("service.latency_ms", 3.2)``) from which quantiles,
  counts and sums are computed over the last ``window_seconds`` only,
  so a scrape reflects *current* behaviour, not the whole run.

:meth:`RuntimeAggregator.render_prometheus` serialises everything in
the Prometheus text exposition format (version 0.0.4): dotted names
become underscore names, counters gain the ``_total`` suffix, windows
render as summaries with ``quantile`` labels plus ``_count``/``_sum``.
:func:`parse_prometheus_text` reads that format back (used by
``repro-obs top`` and the metrics smoke gate).
"""

from __future__ import annotations

import collections
import threading
import time
from typing import Iterable, Mapping

__all__ = [
    "RollingWindow",
    "RuntimeAggregator",
    "prom_name",
    "parse_prometheus_text",
    "get_runtime_aggregator",
    "set_runtime_aggregator",
    "use_runtime_aggregator",
]

#: quantiles every window exposes in /metrics (the SLO trio).
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

_LabelKey = tuple  # sorted ((k, v), ...) pairs


def _label_key(labels: Mapping | None) -> _LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: _LabelKey, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in key]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prom_name(name: str) -> str:
    """Sanitise a dotted instrument name for Prometheus exposition.

    >>> prom_name("service.latency_ms")
    'service_latency_ms'
    """
    out = "".join(
        ch if (ch.isalnum() or ch == "_") else "_" for ch in name
    )
    if not out or out[0].isdigit():
        out = "_" + out
    return out


class RollingWindow:
    """Time-bounded sample buffer with quantile readout.

    Samples older than ``window_seconds`` are evicted lazily on the
    next observe/read, so an idle window decays to empty — a scrape
    after a traffic burst reports the burst only while it is recent.

    >>> w = RollingWindow(window_seconds=60.0)
    >>> for v in (1.0, 2.0, 3.0, 4.0):
    ...     w.observe(v)
    >>> w.quantile(0.5)
    3.0
    >>> w.count
    4
    """

    __slots__ = ("window_seconds", "max_samples", "_samples", "_lock")

    def __init__(
        self, window_seconds: float = 60.0, max_samples: int = 4096
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(
                f"window_seconds must be > 0, got {window_seconds}"
            )
        self.window_seconds = float(window_seconds)
        self.max_samples = int(max_samples)
        self._samples: collections.deque = collections.deque(
            maxlen=self.max_samples
        )
        self._lock = threading.Lock()

    def _evict(self, now: float) -> None:
        horizon = now - self.window_seconds
        samples = self._samples
        while samples and samples[0][0] < horizon:
            samples.popleft()

    def observe(self, value: float, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._evict(now)
            self._samples.append((now, float(value)))

    def values(self, now: float | None = None) -> list[float]:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._evict(now)
            return [v for _, v in self._samples]

    @property
    def count(self) -> int:
        return len(self.values())

    def quantile(self, q: float, now: float | None = None) -> float:
        """Nearest-rank quantile of the live samples (0.0 if empty)."""
        values = sorted(self.values(now))
        if not values:
            return 0.0
        rank = min(
            len(values) - 1, max(0, int(round(q * (len(values) - 1))))
        )
        return values[rank]


class RuntimeAggregator:
    """Thread-safe live-metric store behind ``/metrics``.

    >>> agg = RuntimeAggregator()
    >>> agg.inc("service.requests")
    >>> agg.set_gauge("service.queue_depth", 3)
    >>> agg.observe("service.latency_ms", 1.5)
    >>> "service_requests_total 1" in agg.render_prometheus()
    True
    """

    def __init__(
        self,
        window_seconds: float = 60.0,
        quantiles: Iterable[float] = DEFAULT_QUANTILES,
    ) -> None:
        self.window_seconds = float(window_seconds)
        self.quantiles = tuple(quantiles)
        self._lock = threading.Lock()
        self._counters: dict[str, dict[_LabelKey, float]] = {}
        self._gauges: dict[str, dict[_LabelKey, float]] = {}
        self._windows: dict[str, RollingWindow] = {}

    # -- write side ------------------------------------------------------

    def inc(
        self, name: str, n: float = 1, labels: Mapping | None = None
    ) -> None:
        if n < 0:
            raise ValueError(f"counter {name!r} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + n

    def set_gauge(
        self, name: str, value: float, labels: Mapping | None = None
    ) -> None:
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(self, name: str, value: float) -> None:
        self.window(name).observe(value)

    def window(self, name: str) -> RollingWindow:
        with self._lock:
            win = self._windows.get(name)
            if win is None:
                win = self._windows[name] = RollingWindow(
                    self.window_seconds
                )
        return win

    # -- read side -------------------------------------------------------

    def counter_value(
        self, name: str, labels: Mapping | None = None
    ) -> float:
        """One labelled series' total, or the sum over all series."""
        with self._lock:
            series = self._counters.get(name, {})
            if labels is None:
                return sum(series.values())
            return series.get(_label_key(labels), 0)

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        with self._lock:
            series = self._gauges.get(name, {})
            return series.get((), default) if series else default

    def has_gauge(self, name: str) -> bool:
        with self._lock:
            return name in self._gauges

    def quantile(self, name: str, q: float) -> float:
        with self._lock:
            win = self._windows.get(name)
        return win.quantile(q) if win is not None else 0.0

    def snapshot(self) -> dict:
        """Plain-data view (the ``repro-obs top`` / healthz payload)."""
        with self._lock:
            counters = {
                name: {
                    _label_text(key) or "": value
                    for key, value in series.items()
                }
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: {
                    _label_text(key) or "": value
                    for key, value in series.items()
                }
                for name, series in sorted(self._gauges.items())
            }
            windows = dict(self._windows)
        window_stats = {}
        for name, win in sorted(windows.items()):
            values = win.values()
            window_stats[name] = {
                "count": len(values),
                "sum": sum(values),
                "quantiles": {
                    str(q): win.quantile(q) for q in self.quantiles
                },
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "windows": window_stats,
        }

    def render_prometheus(self) -> str:
        """Serialise everything as Prometheus text format 0.0.4."""
        with self._lock:
            counters = {
                name: dict(series)
                for name, series in sorted(self._counters.items())
            }
            gauges = {
                name: dict(series)
                for name, series in sorted(self._gauges.items())
            }
            windows = dict(sorted(self._windows.items()))
        lines: list[str] = []
        for name, series in counters.items():
            metric = prom_name(name) + "_total"
            lines.append(f"# HELP {metric} Counter {name}")
            lines.append(f"# TYPE {metric} counter")
            for key, value in sorted(series.items()):
                lines.append(f"{metric}{_label_text(key)} {value:g}")
        for name, series in gauges.items():
            metric = prom_name(name)
            lines.append(f"# HELP {metric} Gauge {name}")
            lines.append(f"# TYPE {metric} gauge")
            for key, value in sorted(series.items()):
                lines.append(f"{metric}{_label_text(key)} {value:g}")
        for name, win in windows.items():
            metric = prom_name(name)
            values = win.values()
            lines.append(
                f"# HELP {metric} Rolling {win.window_seconds:g}s "
                f"window of {name}"
            )
            lines.append(f"# TYPE {metric} summary")
            for q in self.quantiles:
                lines.append(
                    f'{metric}{{quantile="{q:g}"}} {win.quantile(q):g}'
                )
            lines.append(f"{metric}_sum {sum(values):g}")
            lines.append(f"{metric}_count {len(values)}")
        return "\n".join(lines) + "\n"


def parse_prometheus_text(text: str) -> dict[str, dict[str, float]]:
    """Parse exposition text into ``{metric: {labels_text: value}}``.

    The inverse of :meth:`RuntimeAggregator.render_prometheus`, close
    enough for the smoke gate and ``repro-obs top``: comment/blank
    lines are skipped, each sample line is ``name{labels} value`` or
    ``name value``. Malformed sample lines raise :class:`ValueError`
    (the smoke gate *wants* format drift to be loud).
    """
    out: dict[str, dict[str, float]] = {}
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            raise ValueError(f"line {lineno}: no value in {raw!r}")
        try:
            value = float(value_part)
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value in {raw!r}"
            ) from None
        labels = ""
        metric = name_part.strip()
        if "{" in metric:
            metric, _, rest = metric.partition("{")
            if not rest.endswith("}"):
                raise ValueError(
                    f"line {lineno}: unterminated labels in {raw!r}"
                )
            labels = "{" + rest
        if not metric or not (
            metric[0].isalpha() or metric[0] == "_"
        ) or not all(ch.isalnum() or ch in "_:" for ch in metric):
            raise ValueError(
                f"line {lineno}: bad metric name {metric!r}"
            )
        out.setdefault(metric, {})[labels] = value
    return out


# -- the ambient aggregator ------------------------------------------------
#
# The service publishes its aggregator through `LabelService.runtime`;
# batch-style runtimes (the sharded pool, the net transport) have no
# service object to hang one on, so they publish through this ambient
# hook instead — same pattern as `repro.obs.get_recorder`. `None` (the
# default) costs one module-global read per *recovery event*, never per
# pixel, so the disabled-overhead contract holds.

_ambient_aggregator: "RuntimeAggregator | None" = None


def get_runtime_aggregator() -> "RuntimeAggregator | None":
    """The ambient :class:`RuntimeAggregator`, or ``None`` when no
    ``/metrics`` endpoint wants live labelled counters."""
    return _ambient_aggregator


def set_runtime_aggregator(agg) -> "RuntimeAggregator | None":
    """Install *agg* as the ambient aggregator; returns the previous."""
    global _ambient_aggregator
    previous = _ambient_aggregator
    _ambient_aggregator = agg
    return previous


class use_runtime_aggregator:
    """Scoped :func:`set_runtime_aggregator` (restores the previous)."""

    def __init__(self, agg) -> None:
        self._agg = agg
        self._previous: "RuntimeAggregator | None" = None

    def __enter__(self):
        self._previous = set_runtime_aggregator(self._agg)
        return self._agg

    def __exit__(self, *exc) -> bool:
        set_runtime_aggregator(self._previous)
        return False
