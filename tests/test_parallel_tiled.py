"""Tile-decomposed labeling, including memmap input and corner seams."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.parallel.tiled import tiled_label
from repro.verify import flood_fill_label, labelings_equivalent


@pytest.mark.parametrize("tile", [(2, 2), (3, 5), (4, 4), (100, 100)])
def test_matches_oracle(tile, structural_image):
    expected, n = flood_fill_label(structural_image, 8)
    result = tiled_label(structural_image, tile_shape=tile)
    assert result.n_components == n
    assert labelings_equivalent(result.labels, expected)


@pytest.mark.parametrize("connectivity", [4, 8])
def test_connectivity(connectivity, rng):
    img = (rng.random((17, 23)) < 0.5).astype(np.uint8)
    expected, n = flood_fill_label(img, connectivity)
    result = tiled_label(img, tile_shape=(5, 7), connectivity=connectivity)
    assert result.n_components == n
    assert labelings_equivalent(result.labels, expected)


def test_corner_diagonal_across_four_tiles():
    """A component joined only through a tile-corner diagonal — the case
    row/column seams must cover together."""
    img = np.zeros((8, 8), dtype=np.uint8)
    img[3, 3] = 1  # bottom-right corner of tile (0, 0)
    img[4, 4] = 1  # top-left corner of tile (1, 1)
    result = tiled_label(img, tile_shape=(4, 4))
    assert result.n_components == 1
    result4 = tiled_label(img, tile_shape=(4, 4), connectivity=4)
    assert result4.n_components == 2


def test_anti_diagonal_corner():
    img = np.zeros((8, 8), dtype=np.uint8)
    img[3, 4] = 1  # bottom-left corner of tile (0, 1)
    img[4, 3] = 1  # top-right corner of tile (1, 0)
    assert tiled_label(img, tile_shape=(4, 4)).n_components == 1


def test_component_spanning_many_tiles():
    img = np.zeros((20, 20), dtype=np.uint8)
    img[10, :] = 1
    img[:, 10] = 1
    result = tiled_label(img, tile_shape=(3, 3))
    assert result.n_components == 1


def test_tile_larger_than_image(rng):
    img = (rng.random((9, 9)) < 0.5).astype(np.uint8)
    whole = tiled_label(img, tile_shape=(100, 100))
    _, n = flood_fill_label(img, 8)
    assert whole.n_components == n
    assert whole.meta["n_tiles"] == 1


def test_metadata():
    img = np.ones((10, 10), dtype=np.uint8)
    result = tiled_label(img, tile_shape=(4, 4))
    assert result.meta["n_tiles"] == 9
    assert result.meta["tile_shape"] == (4, 4)
    assert set(result.phase_seconds) == {"scan", "merge", "flatten", "label"}


def test_validation():
    with pytest.raises(ValueError):
        tiled_label(np.ones((4, 4), np.uint8), tile_shape=(0, 4))
    with pytest.raises(ValueError):
        tiled_label(np.ones((4, 4), np.uint8), workers=0)


def test_parallel_workers_identical(rng):
    """Fork-parallel tile labeling must be bit-identical to serial."""
    img = (rng.random((40, 36)) < 0.45).astype(np.uint8)
    serial = tiled_label(img, tile_shape=(16, 16), workers=1)
    parallel = tiled_label(img, tile_shape=(16, 16), workers=3)
    assert np.array_equal(serial.labels, parallel.labels)
    assert serial.n_components == parallel.n_components


def test_memmap_input(tmp_path, rng):
    """Memory-mapped input: the out-of-core path end to end."""
    img = (rng.random((64, 48)) < 0.4).astype(np.uint8)
    path = tmp_path / "image.dat"
    mm = np.memmap(path, dtype=np.uint8, mode="w+", shape=img.shape)
    mm[:] = img
    mm.flush()
    ro = np.memmap(path, dtype=np.uint8, mode="r", shape=img.shape)
    result = tiled_label(ro, tile_shape=(16, 16))
    expected, n = flood_fill_label(img, 8)
    assert result.n_components == n
    assert labelings_equivalent(result.labels, expected)


def test_empty_image():
    result = tiled_label(np.zeros((0, 0), dtype=np.uint8))
    assert result.n_components == 0


@given(
    img=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=20),
        elements=st.integers(0, 1),
    ),
    th=st.integers(1, 7),
    tw=st.integers(1, 7),
)
@settings(max_examples=30)
def test_property_tiled_matches_oracle(img, th, tw):
    expected, n = flood_fill_label(img, 8)
    result = tiled_label(img, tile_shape=(th, tw))
    assert result.n_components == n
    assert labelings_equivalent(result.labels, expected)
