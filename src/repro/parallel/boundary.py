"""Chunk-boundary merging (Algorithm 7, lines 10-21).

After the local scans, pixels on the first row of chunk ``k`` may belong
to the same component as pixels on the last row of chunk ``k-1`` but
carry provisional labels from different ranges. The boundary pass walks
each boundary row and unions labels across the seam, using the *label*
image (a pixel participates iff its provisional label is nonzero, which
for a binary image is equivalent to being foreground).

The neighbour logic mirrors the paper exactly: if ``b`` (directly above)
is labeled, a single union with ``b`` suffices — ``a`` and ``c`` are
horizontally adjacent to ``b`` in the predecessor chunk and therefore
already equivalent to it; otherwise ``a`` and ``c`` are each unioned
when present (they are two columns apart and may be different
components). For 4-connectivity only ``b`` exists.

The union callable is injected: the serial backend passes plain REMSP
``merge``, the threads backend a :class:`~repro.unionfind.parallel.
LockStripedMerger` bound method, the simulated machine a counting
wrapper — the traversal logic is identical for all, which is the point
of Algorithm 8's drop-in design.
"""

from __future__ import annotations

from typing import Callable, MutableSequence, Sequence

import numpy as np

from ..unionfind.remsp import merge as remsp_merge
from .partition import RowChunk

__all__ = [
    "merge_boundary_row",
    "boundary_rows",
    "boundary_edges",
    "merge_edges",
]


def boundary_rows(chunks: Sequence[RowChunk]) -> list[int]:
    """The image rows that start a chunk (other than the first) — exactly
    the seams the merge pass must stitch."""
    return [c.row_start for c in chunks[1:]]


def boundary_edges(
    labels: np.ndarray,
    seam_rows: Sequence[int],
    connectivity: int = 8,
) -> np.ndarray:
    """All cross-seam label pairs of a provisional label image, deduped.

    The NumPy form of the boundary pass: for each seam row the three
    neighbour cases of :func:`merge_boundary_row` become shifted boolean
    masks over whole rows — ``(e, b)`` wherever both are labeled, and
    ``(e, a)`` / ``(e, c)`` wherever ``b`` is background (the same
    short-circuit the per-pixel walk applies, so the edge multiset spans
    the identical equivalences). Duplicate pairs are collapsed with one
    ``np.unique`` over the stacked edge array.

    Returns an ``(n_edges, 2)`` array of label pairs; union order does not
    matter because Rem's structure keeps each set's minimum as its root
    regardless of merge order.
    """
    parts: list[np.ndarray] = []
    for row in seam_rows:
        cur = labels[row]
        up = labels[row - 1]
        fg = cur > 0
        both = fg & (up > 0)
        parts.append(np.stack([cur[both], up[both]], axis=1))
        if connectivity == 8:
            nb = fg & (up == 0)  # b background: a and c participate
            a_hit = nb[1:] & (up[:-1] > 0)
            parts.append(np.stack([cur[1:][a_hit], up[:-1][a_hit]], axis=1))
            c_hit = nb[:-1] & (up[1:] > 0)
            parts.append(np.stack([cur[:-1][c_hit], up[1:][c_hit]], axis=1))
    if not parts:
        return np.empty((0, 2), dtype=labels.dtype)
    edges = np.concatenate(parts)
    if len(edges):
        edges = np.unique(edges, axis=0)
    return edges


def merge_edges(p: MutableSequence[int], edges: np.ndarray) -> int:
    """Feed a boundary edge list to REMSP in one batch.

    Returns the number of union calls (``len(edges)``), the vectorised
    counterpart of :func:`merge_boundary_row`'s ops count.
    """
    for u, v in zip(edges[:, 0].tolist(), edges[:, 1].tolist()):
        remsp_merge(p, u, v)
    return len(edges)


def merge_boundary_row(
    label_rows: Sequence[Sequence[int]],
    row: int,
    cols: int,
    p: MutableSequence[int],
    union: Callable[[MutableSequence[int], int, int], int],
    connectivity: int = 8,
) -> int:
    """Union the labels of boundary row *row* with row ``row - 1``.

    Returns the number of union calls performed (used by the simulated
    machine's cost accounting).
    """
    cur = label_rows[row]
    up = label_rows[row - 1]
    ops = 0
    if connectivity == 8:
        for c in range(cols):
            e = cur[c]
            if e:
                if up[c]:
                    union(p, e, up[c])
                    ops += 1
                else:
                    if c > 0 and up[c - 1]:
                        union(p, e, up[c - 1])
                        ops += 1
                    if c + 1 < cols and up[c + 1]:
                        union(p, e, up[c + 1])
                        ops += 1
    else:
        for c in range(cols):
            e = cur[c]
            if e and up[c]:
                union(p, e, up[c])
                ops += 1
    return ops
