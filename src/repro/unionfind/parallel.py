"""Lock-based parallel Rem's union-find — MERGER, Algorithm 8 of the paper.

This is the Patwary-Refsnes-Manne (IPDPS 2012, ref. [38]) parallelisation
of Rem's algorithm that PAREMSP uses for merging chunk-boundary pixels.
The walk is identical to the sequential :func:`repro.unionfind.remsp.merge`
except at the moment a *root* is about to be overwritten: the thread takes
the root's lock, re-checks that the node is still a root (another thread
may have spliced it away between the test and the lock acquisition), and
only then writes the parent pointer. Non-root splicing writes remain
unguarded — [38] proves the algorithm tolerates them because a stale
splice still points into the same set, preserving correctness (the walk
may just take extra steps).

The paper's pseudocode uses one OpenMP lock per element
(``lock_array[rootx]``); allocating millions of ``threading.Lock`` objects
is wasteful in CPython, so :class:`LockStripedMerger` hashes elements onto
a configurable stripe array of locks — semantics are identical (a stripe
lock strictly covers the per-element lock) with bounded extra contention.

CPython memory-model note: the paper assumes OpenMP atomic word-sized
reads/writes. CPython's GIL makes individual list-item reads/writes atomic,
which is *stronger* than the assumption, so the algorithm's correctness
argument carries over unchanged to the ``threads`` backend. The
``processes`` backend gets the same guarantee from
``multiprocessing.sharedctypes`` word atomicity on all supported
platforms.
"""

from __future__ import annotations

import threading
from typing import MutableSequence

__all__ = ["merger", "LockStripedMerger", "DEFAULT_STRIPES"]

#: default number of lock stripes; enough that 24 threads rarely collide.
DEFAULT_STRIPES = 1024


class LockStripedMerger:
    """Shared state for concurrent :func:`merger` calls on one array.

    One instance guards one equivalence array. Create it once, then call
    :meth:`merge` freely from any number of threads.

    When *recorder* is an enabled :class:`repro.obs.TraceRecorder`,
    every merge routes through an accounting variant of the kernel that
    counts merges, lock acquisitions, and *contended* acquisitions
    (acquisitions that found the stripe already held) into the
    recorder's metrics — the observable of Algorithm 8's synchronisation
    cost. With the default null recorder the uninstrumented kernel runs
    unchanged.

    When *fault_plan* is an enabled :class:`repro.faults.FaultPlan`
    with an armed ``poison_lock`` spec, the next merge's lock
    acquisition raises :class:`~repro.errors.DeadlockError` instead of
    acquiring — the injection site for "a merge participant never
    finishes". Disabled plans cost one attribute test per merge.

    >>> p = list(range(8))
    >>> m = LockStripedMerger(p)
    >>> m.merge(3, 5)
    3
    >>> m.merge(5, 7)
    3
    """

    __slots__ = ("p", "_locks", "_mask", "_rec", "_plan")

    def __init__(
        self,
        p: MutableSequence[int],
        n_stripes: int = DEFAULT_STRIPES,
        recorder=None,
        fault_plan=None,
    ) -> None:
        if n_stripes < 1:
            raise ValueError(f"need at least one lock stripe, got {n_stripes}")
        # round stripes up to a power of two so the hash is a mask.
        n = 1
        while n < n_stripes:
            n <<= 1
        self.p = p
        self._locks = tuple(threading.Lock() for _ in range(n))
        self._mask = n - 1
        self._rec = recorder
        self._plan = fault_plan

    @property
    def n_stripes(self) -> int:
        """Actual stripe count (the requested count rounded up to a
        power of two)."""
        return len(self._locks)

    def merge(self, x: int, y: int) -> int:
        """Thread-safe union of the sets of *x* and *y* (Algorithm 8)."""
        plan = self._plan
        if plan is not None and plan.enabled:
            spec = plan.take("poison_lock", phase="merge")
            if spec is not None:
                from ..errors import DeadlockError
                from ..faults import record_injection

                if self._rec is not None:
                    record_injection(self._rec, spec)
                raise DeadlockError(
                    "injected poisoned lock acquisition in MERGER",
                    phase="merge",
                )
        rec = self._rec
        if rec is not None and rec.enabled:
            return _merger_counting(
                self.p, x, y, self._locks, self._mask, rec
            )
        return merger(self.p, x, y, self._locks, self._mask)


def merger(
    p: MutableSequence[int],
    x: int,
    y: int,
    locks: tuple[threading.Lock, ...],
    mask: int,
) -> int:
    """MERGER kernel — Algorithm 8 with stripe-hashed locks.

    *locks* must have a power-of-two length and ``mask == len(locks) - 1``.
    """
    rootx = x
    rooty = y
    while p[rootx] != p[rooty]:
        if p[rootx] > p[rooty]:
            if rootx == p[rootx]:
                # Candidate root: take its lock and re-check, another
                # thread may have spliced it away in between (lines 6-13).
                success = False
                lock = locks[rootx & mask]
                lock.acquire()
                try:
                    if rootx == p[rootx]:
                        p[rootx] = p[rooty]
                        success = True
                finally:
                    lock.release()
                if success:
                    break
                # Re-check failed: rootx is no longer a root. The paper
                # falls straight through to the splice; we first re-test
                # the loop ordering (one extra comparison) because the
                # concurrent update may have inverted p[rootx] vs
                # p[rooty], and splicing against the order could raise a
                # parent pointer.
                continue
            z = p[rootx]
            p[rootx] = p[rooty]
            rootx = z
        else:
            if rooty == p[rooty]:
                success = False
                lock = locks[rooty & mask]
                lock.acquire()
                try:
                    if rooty == p[rooty]:
                        p[rooty] = p[rootx]
                        success = True
                finally:
                    lock.release()
                if success:
                    break
                continue
            z = p[rooty]
            p[rooty] = p[rootx]
            rooty = z
    return p[rootx]


def _merger_counting(
    p: MutableSequence[int],
    x: int,
    y: int,
    locks: tuple[threading.Lock, ...],
    mask: int,
    rec,
) -> int:
    """Accounting variant of :func:`merger`: identical walk, plus
    per-call metric flushes (``merger.merges`` / ``merger.lock_acquires``
    / ``merger.lock_contended`` / ``merger.splices``).

    Contention is observed by first attempting a non-blocking acquire;
    a failed attempt followed by the blocking acquire is one *contended*
    acquisition — semantics are unchanged, the lock is held either way.
    """
    acquires = 0
    contended = 0
    splices = 0
    rootx = x
    rooty = y
    try:
        while p[rootx] != p[rooty]:
            if p[rootx] > p[rooty]:
                if rootx == p[rootx]:
                    lock = locks[rootx & mask]
                    acquires += 1
                    if not lock.acquire(blocking=False):
                        contended += 1
                        lock.acquire()
                    success = False
                    try:
                        if rootx == p[rootx]:
                            p[rootx] = p[rooty]
                            success = True
                    finally:
                        lock.release()
                    if success:
                        break
                    continue
                z = p[rootx]
                p[rootx] = p[rooty]
                splices += 1
                rootx = z
            else:
                if rooty == p[rooty]:
                    lock = locks[rooty & mask]
                    acquires += 1
                    if not lock.acquire(blocking=False):
                        contended += 1
                        lock.acquire()
                    success = False
                    try:
                        if rooty == p[rooty]:
                            p[rooty] = p[rootx]
                            success = True
                    finally:
                        lock.release()
                    if success:
                        break
                    continue
                z = p[rooty]
                p[rooty] = p[rootx]
                splices += 1
                rooty = z
        return p[rootx]
    finally:
        rec.count("merger.merges")
        if acquires:
            rec.count("merger.lock_acquires", acquires)
        if contended:
            rec.count("merger.lock_contended", contended)
        if splices:
            rec.count("merger.splices", splices)
