"""SPMD launcher: one thread per rank, exceptions propagated.

Failure handling is two-layered:

* a rank that raises is recorded on the :class:`~repro.mp.comm.Network`
  failure registry *immediately*, so peers blocked in a receive on it
  fail fast with :class:`~repro.errors.WorkerCrashError` instead of
  burning their full ``RECV_TIMEOUT``;
* if any rank is still running when the run *timeout* expires, the
  network is cancelled — every receive-blocked rank unwinds with
  :class:`~repro.errors.DeadlockError` within one poll interval — and
  after a short grace period the launcher raises :class:`SpmdError`
  with a typed :class:`~repro.errors.PhaseTimeoutError` entry for each
  rank that still did not finish. Only a rank spinning in pure compute
  (never touching the communicator) can survive the cancel; it stays a
  daemon thread and is reported as timed out rather than silently
  abandoned mid-``recv``.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable

from ..errors import PhaseTimeoutError
from .comm import Communicator, Network

__all__ = ["run_spmd", "SpmdError", "DEFAULT_SPMD_TIMEOUT", "resolve_spmd_timeout"]

#: extra time (seconds) granted after a cancel for blocked ranks to
#: unwind through their poll loop and report a typed error.
_CANCEL_GRACE = 2.0

#: the hung-rank unwind deadline when neither the ``timeout`` argument
#: nor the ``REPRO_SPMD_TIMEOUT`` environment variable is set.
DEFAULT_SPMD_TIMEOUT = 120.0

#: environment knob overriding the default run deadline (seconds).
_TIMEOUT_ENV = "REPRO_SPMD_TIMEOUT"


def resolve_spmd_timeout(timeout: float | None) -> float:
    """The effective SPMD run deadline: explicit argument beats the
    ``REPRO_SPMD_TIMEOUT`` environment variable beats the default.

    A malformed or non-positive value (argument or environment) raises
    ``ValueError`` immediately — a deadline that silently became 0 or
    ``-5`` would report every run as hung.
    """
    if timeout is None:
        raw = os.environ.get(_TIMEOUT_ENV)
        if raw is None or not raw.strip():
            return DEFAULT_SPMD_TIMEOUT
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{_TIMEOUT_ENV} must be a number of seconds, got {raw!r}"
            ) from None
    timeout = float(timeout)
    if timeout <= 0:
        raise ValueError(f"SPMD timeout must be > 0 seconds, got {timeout}")
    return timeout


class SpmdError(RuntimeError):
    """One or more ranks raised; carries every rank's failure."""

    def __init__(self, failures: dict[int, BaseException]) -> None:
        self.failures = failures
        detail = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}" for r, e in failures.items()
        )
        super().__init__(f"SPMD program failed on {len(failures)} rank(s): {detail}")


def run_spmd(
    program: Callable[..., Any],
    size: int,
    *args: Any,
    timeout: float | None = None,
    executor_kind: str | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run ``program(comm, *args, **kwargs)`` on *size* ranks.

    Returns the per-rank return values in rank order. If any rank raises,
    every failure is collected into one :class:`SpmdError`; surviving
    ranks blocked on the dead peer fail fast through the network's
    failure registry. Ranks that outlive the run deadline are cancelled
    and reported as :class:`~repro.errors.PhaseTimeoutError` failures
    naming the stuck ranks.

    The deadline is configurable: pass *timeout* in seconds, or set the
    ``REPRO_SPMD_TIMEOUT`` environment variable (the argument wins);
    with neither, :data:`DEFAULT_SPMD_TIMEOUT` applies. Malformed or
    non-positive values raise ``ValueError`` up front.

    ``executor_kind="threads"`` launches the ranks through the shared
    map-executor roster (:func:`repro.parallel.backends.executor.
    get_map_executor`) instead of hand-rolled daemon threads, so SPMD
    runs emit the same ``executor.map`` spans and counters as every
    other parallel path; a watchdog timer cancels the in-process
    network at *timeout* so blocked ranks still unwind. Only
    ``"threads"`` is valid: ``"serial"`` would deadlock the first
    rank-to-rank receive, and ``"processes"`` cannot share the
    in-process :class:`~repro.mp.comm.Network`. The default (``None``)
    keeps the legacy daemon-thread path, whose hung-rank reporting the
    resilience suite depends on.
    """
    if executor_kind not in (None, "threads"):
        raise ValueError(
            "executor_kind must be None or 'threads' for in-process "
            f"SPMD, got {executor_kind!r}"
        )
    timeout = resolve_spmd_timeout(timeout)
    network = Network(size)
    results: list[Any] = [None] * size
    errors: dict[int, BaseException] = {}

    def entry(rank: int) -> None:
        comm = Communicator(network, rank)
        try:
            results[rank] = program(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            # peers blocked in a recv on this rank fail fast instead of
            # waiting out their full RECV_TIMEOUT.
            network.mark_failed(rank, exc)

    if executor_kind == "threads":
        from ..parallel.backends.executor import get_map_executor

        watchdog = threading.Timer(
            timeout,
            lambda: network.cancel(
                f"SPMD run exceeded the {timeout:.1f}s deadline"
            ),
        )
        watchdog.daemon = True
        watchdog.start()
        try:
            with get_map_executor("threads", max_workers=size) as ex:
                ex.map(entry, range(size))
        finally:
            watchdog.cancel()
        if errors:
            raise SpmdError(dict(errors))
        return results

    threads = [
        threading.Thread(target=entry, args=(r,), daemon=True, name=f"rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    hung = [t for t in threads if t.is_alive()]
    if hung:
        network.cancel(
            f"{len(hung)} rank(s) exceeded the {timeout:.1f}s run deadline"
        )
        for t in hung:
            t.join(timeout=_CANCEL_GRACE)
        failures = dict(errors)
        stuck = tuple(
            sorted(
                int(t.name.split("-")[1])
                for t in hung
                if int(t.name.split("-")[1]) not in failures
            )
        )
        for rank in stuck:
            failures[rank] = PhaseTimeoutError(
                f"rank {rank} did not finish within the {timeout:.1f}s "
                f"run deadline (stuck ranks: {list(stuck)}; raise it via "
                "run_spmd(timeout=...) or the REPRO_SPMD_TIMEOUT "
                "environment variable)",
                phase="spmd",
                timeout=timeout,
                ranks=stuck,
            )
        raise SpmdError(failures)
    if errors:
        raise SpmdError(errors)
    return results
