"""Failure semantics of the message-passing substrate: dead peers fail
fast, hangs become typed errors, cancellation unwinds blocked ranks,
and the mp-layer fault site (``truncate_msg``) is exercised."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlockError, PhaseTimeoutError, WorkerCrashError
from repro.faults import FaultPlan, FaultSpec, use_fault_plan
from repro.mp import Communicator, SpmdError, run_spmd


def _rank_threads() -> list[threading.Thread]:
    return [
        t for t in threading.enumerate()
        if t.is_alive() and t.name.startswith("rank-")
    ]


class TestDeadPeerFailFast:
    def test_recv_from_dead_rank_raises_worker_crash(self):
        def program(comm):
            if comm.rank == 1:
                raise ValueError("injected rank death")
            return comm.recv(1, tag=0)

        t0 = time.monotonic()
        with pytest.raises(SpmdError) as ei:
            run_spmd(program, 2)
        elapsed = time.monotonic() - t0
        # fail-fast: far below the 60s RECV_TIMEOUT
        assert elapsed < 10.0
        failures = ei.value.failures
        assert isinstance(failures[1], ValueError)
        assert isinstance(failures[0], WorkerCrashError)
        assert failures[0].ranks == (1,)
        assert "rank 1" in str(failures[0])

    def test_collective_on_dead_rank_raises_worker_crash(self):
        def program(comm):
            if comm.rank == 2:
                raise RuntimeError("boom")
            return comm.gather(comm.rank, root=0)

        with pytest.raises(SpmdError) as ei:
            run_spmd(program, 3)
        assert isinstance(ei.value.failures[2], RuntimeError)
        assert any(
            isinstance(e, WorkerCrashError)
            for r, e in ei.value.failures.items()
            if r != 2
        )


class TestTypedDeadlock:
    def test_recv_timeout_is_typed_with_diagnostics(self, monkeypatch):
        monkeypatch.setattr(Communicator, "RECV_TIMEOUT", 0.5)

        def program(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=9)  # never sent
            return None

        with pytest.raises(SpmdError) as ei:
            run_spmd(program, 2)
        err = ei.value.failures[0]
        assert isinstance(err, DeadlockError)
        assert err.rank == 0
        assert err.source == 1
        assert err.tag == 9
        assert "mismatched send/recv" in str(err)


class TestCancellation:
    def test_run_timeout_unwinds_blocked_ranks(self):
        """A rank blocked in recv with a huge RECV_TIMEOUT is cancelled
        by the run deadline and reported as a typed failure — no daemon
        thread left dangling in the receive."""
        release = threading.Event()

        def program(comm):
            if comm.rank == 0:
                return comm.recv(1, tag=3)  # blocks until cancelled
            release.wait(30.0)
            return None

        t0 = time.monotonic()
        with pytest.raises(SpmdError) as ei:
            run_spmd(program, 2, timeout=0.5)
        elapsed = time.monotonic() - t0
        release.set()
        assert elapsed < 10.0
        failures = ei.value.failures
        # rank 0 unwound through the cancel path with a typed error
        assert isinstance(failures[0], DeadlockError)
        assert "cancelled" in str(failures[0])
        # rank 1 never touched the communicator; the launcher reports it
        assert isinstance(failures[1], PhaseTimeoutError)
        # the receive-blocked thread actually exited
        deadline = time.monotonic() + 5.0
        while _rank_threads() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not _rank_threads()

    def test_timeout_failures_never_empty(self):
        def program(comm):
            if comm.rank == 0:
                time.sleep(2.0)  # pure compute: survives the cancel
            return None

        with pytest.raises(SpmdError) as ei:
            run_spmd(program, 2, timeout=0.2)
        assert ei.value.failures
        assert isinstance(ei.value.failures[0], PhaseTimeoutError)
        assert ei.value.failures[0].phase == "spmd"


class TestTruncateMsgSite:
    def test_dropped_message_times_out_typed(self, monkeypatch):
        monkeypatch.setattr(Communicator, "RECV_TIMEOUT", 0.5)
        plan = FaultPlan([FaultSpec("truncate_msg", phase="comm", rank=0)])

        def program(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=5)  # dropped by the plan
                return None
            return comm.recv(0, tag=5)

        with use_fault_plan(plan):
            with pytest.raises(SpmdError) as ei:
                run_spmd(program, 2)
        assert plan.injected == 1
        err = ei.value.failures[1]
        assert isinstance(err, DeadlockError)
        assert err.source == 0

    def test_unmatched_rank_does_not_drop(self):
        plan = FaultPlan([FaultSpec("truncate_msg", phase="comm", rank=3)])

        def program(comm):
            if comm.rank == 0:
                comm.send("payload", dest=1, tag=5)
                return None
            return comm.recv(0, tag=5)

        with use_fault_plan(plan):
            assert run_spmd(program, 2)[1] == "payload"
        assert plan.injected == 0
