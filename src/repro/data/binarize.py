"""Grayscale conversion and thresholding matching MATLAB ``im2bw``.

The paper's preprocessing is: *"All of the images are converted to binary
images by MATLAB using im2bw(level) function with level value as 0.5.
[It] replaces all pixels ... with luminance greater than 0.5 with the
value 1 (white) and replaces all other pixels with the value 0 (black).
If the input image is not a grayscale image, im2bw converts the input
image to grayscale"* — this module reproduces exactly that:

* RGB → gray uses the ITU-R BT.601 weights MATLAB's ``rgb2gray`` uses
  (0.2989 R + 0.5870 G + 0.1140 B);
* thresholding is strict ``> level`` on the image's full scale (so
  ``level=0.5`` means ``> 127.5`` for ``uint8`` input, ``> 0.5`` for
  floats in [0, 1]).
"""

from __future__ import annotations

import numpy as np

from ..errors import ImageFormatError
from ..types import PIXEL_DTYPE

__all__ = ["rgb_to_gray", "im2bw", "full_scale_of"]

#: MATLAB rgb2gray / ITU-R BT.601 luma weights.
_LUMA = np.array([0.2989, 0.5870, 0.1140])


def full_scale_of(arr: np.ndarray) -> float:
    """The value that represents "white" for *arr*'s dtype.

    Integer dtypes use their maximum representable value; floats are
    assumed normalised to [0, 1], as MATLAB does for ``double`` images.
    """
    if np.issubdtype(arr.dtype, np.integer):
        return float(np.iinfo(arr.dtype).max)
    return 1.0


def rgb_to_gray(image: np.ndarray) -> np.ndarray:
    """Convert an ``(H, W, 3)`` RGB image to ``(H, W)`` grayscale (float64,
    same scale as the input)."""
    arr = np.asarray(image)
    if arr.ndim != 3 or arr.shape[-1] != 3:
        raise ImageFormatError(
            f"expected (H, W, 3) RGB image, got shape {arr.shape!r}"
        )
    return arr.astype(np.float64) @ _LUMA


def im2bw(image: np.ndarray, level: float = 0.5) -> np.ndarray:
    """Binarize *image* as MATLAB ``im2bw(image, level)`` does.

    Parameters
    ----------
    image:
        Grayscale ``(H, W)`` or RGB ``(H, W, 3)`` array, integer or float.
    level:
        Threshold as a fraction of full scale, in ``[0, 1]``.

    Returns
    -------
    numpy.ndarray
        ``uint8`` binary image: 1 where luminance strictly exceeds
        ``level * full_scale``, else 0.
    """
    if not 0.0 <= level <= 1.0:
        raise ImageFormatError(f"level must be in [0, 1], got {level!r}")
    arr = np.asarray(image)
    scale = full_scale_of(arr)
    if arr.ndim == 3:
        arr = rgb_to_gray(arr)
    elif arr.ndim != 2:
        raise ImageFormatError(
            f"expected 2-D gray or 3-D RGB image, got shape {arr.shape!r}"
        )
    return (arr > level * scale).astype(PIXEL_DTYPE)
