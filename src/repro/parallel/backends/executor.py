"""Shared map-executor abstraction: one pool policy for every caller.

Three call sites used to build their own throwaway pools with the
platform-default start method: ``tiled_label`` constructed a fresh
``ProcessPoolExecutor`` per call, ``TiledJob`` another per batch, and
each pickled every materialised tile array through the pool's queues.
This module centralises the policy so the tiled path, the checkpointed
jobs, and the labeling service (:mod:`repro.service`) share it:

* **pinned start method** — ``fork`` wherever the platform offers it
  (Linux; cheap, inherits the coordinator's address space so the
  payload below ships for free), with a documented ``spawn`` fallback
  elsewhere (macOS/Windows default; the payload is pickled **once per
  worker** through the pool initializer instead of once per item);
* **payload-once transport** — :func:`map_with_payload` installs a
  large read-only payload (the full image) where workers can see it
  and maps a function over *small* items (tile coordinates), so the
  per-item traffic is a few integers instead of a pickled tile array;
* **one roster** — :func:`get_map_executor` hands out the
  ``serial`` / ``threads`` / ``processes`` rungs the
  :class:`~repro.faults.DegradationPolicy` ladder names, so degraded
  callers switch executor kind without changing call shape.

The warm, long-lived variant (workers that attach once to a shared
arena and serve many requests over pipes) lives in
:mod:`repro.service.pool`; this module covers the batch-scoped pools.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Sequence

from ...errors import BackendError
from ...obs import get_recorder

__all__ = [
    "executor_context",
    "executor_context_name",
    "get_map_executor",
    "map_with_payload",
    "MAP_EXECUTOR_KINDS",
]

#: the executor roster (matches the DegradationPolicy ladder rungs).
MAP_EXECUTOR_KINDS = ("serial", "threads", "processes")


def executor_context_name() -> str:
    """The pinned start method: ``fork`` where available, else
    ``spawn``.

    ``fork`` is pinned explicitly rather than trusting the platform
    default: it is the method the shared-memory scan backend already
    assumes, it makes the payload-once transport free (children inherit
    the coordinator's pages copy-on-write), and the default has been
    drifting (Python 3.14 switched Linux to ``forkserver``). ``spawn``
    is the documented fallback for platforms without ``fork``
    (Windows); there the payload is shipped once per worker via the
    pool initializer.
    """
    return (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )


def executor_context():
    """The pinned :mod:`multiprocessing` context for every pool."""
    return multiprocessing.get_context(executor_context_name())


def _traced_map(kind: str, workers: int, n_items: int, run: Callable):
    """Run one map under the ambient recorder's executor instruments.

    Every map path — batch pools here, distributed rank launches in
    :func:`repro.mp.runner.run_spmd` — funnels through this, so one
    span/counter family (``executor.map``) covers them all. Zero cost
    when tracing is off: one recorder fetch and an ``enabled`` check.
    """
    rec = get_recorder()
    if not rec.enabled:
        return run()
    rec.count("executor.map.calls")
    rec.count(f"executor.map.kind.{kind}")
    rec.count("executor.map.items", n_items)
    with rec.span(
        "executor.map",
        attrs={"kind": kind, "workers": workers, "items": n_items},
    ):
        return run()


# -- payload-once transport ----------------------------------------------

#: the per-worker payload slot. Under ``fork`` the child inherits the
#: coordinator's binding copy-on-write; under ``spawn`` the pool
#: initializer assigns it once per worker. Batch-scoped pools only —
#: the slot is installed for the lifetime of one ``map_with_payload``
#: call and cleared afterwards.
_PAYLOAD = None


def _install_payload(payload) -> None:
    global _PAYLOAD
    _PAYLOAD = payload


def _call_with_payload(args: tuple) -> object:
    fn, item = args
    return fn(_PAYLOAD, item)


def map_with_payload(
    kind: str,
    fn: Callable,
    items: Sequence,
    payload,
    max_workers: int,
) -> list:
    """``[fn(payload, item) for item in items]`` on the *kind* executor.

    *payload* is the large shared operand (the full image); *items* are
    small descriptors (tile coordinates). On ``processes`` the payload
    crosses the process boundary once per worker at most — zero times
    under ``fork`` — never once per item; ``serial`` and ``threads``
    share the coordinator's object directly. Pool failures surface as
    :class:`~repro.errors.BackendError` so callers can degrade.
    """
    if kind not in MAP_EXECUTOR_KINDS:
        raise BackendError(
            f"unknown executor kind {kind!r}; "
            f"available: {list(MAP_EXECUTOR_KINDS)}"
        )
    if kind == "serial" or max_workers <= 1 or len(items) <= 1:
        return _traced_map(
            "serial", 1, len(items),
            lambda: [fn(payload, item) for item in items],
        )
    workers = min(max_workers, len(items))
    if kind == "threads":
        from concurrent.futures import ThreadPoolExecutor

        def run_threads() -> list:
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(
                    pool.map(fn, (payload,) * len(items), items)
                )

        return _traced_map("threads", workers, len(items), run_threads)
    from concurrent.futures import ProcessPoolExecutor

    def run_processes() -> list:
        _install_payload(payload)
        try:
            with ProcessPoolExecutor(
                max_workers=workers,
                mp_context=executor_context(),
                initializer=_install_payload,
                initargs=(payload,),
            ) as pool:
                return list(
                    pool.map(
                        _call_with_payload,
                        ((fn, item) for item in items),
                    )
                )
        except (OSError, RuntimeError) as exc:
            raise BackendError(
                f"process map executor failed: {exc}"
            ) from exc
        finally:
            _install_payload(None)

    return _traced_map("processes", workers, len(items), run_processes)


# -- plain map executors --------------------------------------------------


class _SerialMapExecutor:
    """In-process map; the terminal degradation rung."""

    kind = "serial"

    def __init__(self, max_workers: int = 1) -> None:
        self.max_workers = 1

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)
        return _traced_map(
            self.kind, self.max_workers, len(items),
            lambda: [fn(item) for item in items],
        )

    def close(self) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class _ThreadMapExecutor(_SerialMapExecutor):
    """Thread-pool map: concurrency without fork, GIL-bound compute."""

    kind = "threads"

    def __init__(self, max_workers: int) -> None:
        from concurrent.futures import ThreadPoolExecutor

        self.max_workers = max(1, max_workers)
        self._pool = ThreadPoolExecutor(max_workers=self.max_workers)

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)

        def run() -> list:
            try:
                return list(self._pool.map(fn, items))
            except (OSError, RuntimeError) as exc:
                raise BackendError(
                    f"thread map executor failed: {exc}"
                ) from exc

        return _traced_map(self.kind, self.max_workers, len(items), run)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class _ProcessMapExecutor(_SerialMapExecutor):
    """Process-pool map on the pinned context."""

    kind = "processes"

    def __init__(self, max_workers: int) -> None:
        from concurrent.futures import ProcessPoolExecutor

        self.max_workers = max(1, max_workers)
        self._pool = ProcessPoolExecutor(
            max_workers=self.max_workers, mp_context=executor_context()
        )

    def map(self, fn: Callable, items: Iterable) -> list:
        items = list(items)

        def run() -> list:
            try:
                return list(self._pool.map(fn, items))
            except (OSError, RuntimeError) as exc:
                raise BackendError(
                    f"process map executor failed: {exc}"
                ) from exc

        return _traced_map(self.kind, self.max_workers, len(items), run)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


_MAP_EXECUTORS = {
    "serial": _SerialMapExecutor,
    "threads": _ThreadMapExecutor,
    "processes": _ProcessMapExecutor,
}


def get_map_executor(kind: str, max_workers: int = 1):
    """Instantiate a map executor by degradation-rung name.

    Returned objects are context managers with ``map(fn, items)`` /
    ``close()``; ``map`` raises :class:`~repro.errors.BackendError` on
    pool failure so callers can walk the
    :class:`~repro.faults.DegradationPolicy` ladder.
    """
    try:
        cls = _MAP_EXECUTORS[kind.lower()]
    except KeyError:
        raise BackendError(
            f"unknown executor kind {kind!r}; "
            f"available: {list(_MAP_EXECUTORS)}"
        ) from None
    return cls(max_workers)
