"""SPMD launcher: one thread per rank, exceptions propagated."""

from __future__ import annotations

import threading
from typing import Any, Callable

from .comm import Communicator, Network

__all__ = ["run_spmd", "SpmdError"]


class SpmdError(RuntimeError):
    """One or more ranks raised; carries every rank's failure."""

    def __init__(self, failures: dict[int, BaseException]) -> None:
        self.failures = failures
        detail = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}" for r, e in failures.items()
        )
        super().__init__(f"SPMD program failed on {len(failures)} rank(s): {detail}")


def run_spmd(
    program: Callable[..., Any],
    size: int,
    *args: Any,
    timeout: float = 120.0,
    **kwargs: Any,
) -> list[Any]:
    """Run ``program(comm, *args, **kwargs)`` on *size* ranks.

    Returns the per-rank return values in rank order. If any rank raises,
    every failure is collected into one :class:`SpmdError` (surviving
    ranks may block on a peer that died — their ``recv`` timeout converts
    the hang into an error that is reported too).
    """
    network = Network(size)
    results: list[Any] = [None] * size
    errors: dict[int, BaseException] = {}

    def entry(rank: int) -> None:
        comm = Communicator(network, rank)
        try:
            results[rank] = program(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc

    threads = [
        threading.Thread(target=entry, args=(r,), daemon=True, name=f"rank-{r}")
        for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    hung = [t for t in threads if t.is_alive()]
    if hung:
        raise SpmdError(
            errors
            or {
                int(t.name.split("-")[1]): TimeoutError("rank did not finish")
                for t in hung
            }
        )
    if errors:
        raise SpmdError(errors)
    return results
