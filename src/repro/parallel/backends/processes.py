"""Process backend: true parallelism for the scan phase via ``fork``.

CPython's GIL makes the thread backend serialise; this backend forks one
worker per chunk for the scan phase — the phase that carries essentially
all the work (Figure 5a vs 5b of the paper: the merge step is
negligible). Workers return their chunk's provisional label rows plus
the touched slice of the equivalence array; the coordinator installs the
slices and performs the (tiny) boundary merge itself.

This departs from the paper's shared-address-space model for the merge
step only; the scan phase — where the paper's speedup lives — runs with
the same disjoint-range contract as the OpenMP original. DESIGN.md §2
records the substitution.

Workers see a *local* window of the equivalence array through
:class:`OffsetList`, which keeps label values global (scan-phase merges
never leave the chunk's range, so the window is total for them).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import MutableSequence, Sequence

from ...ccl.scan_aremsp import scan_tworow
from ...unionfind.remsp import merge as remsp_merge
from ..boundary import boundary_rows, merge_boundary_row
from ..partition import RowChunk

__all__ = ["ProcessBackend", "OffsetList"]


class OffsetList:
    """A zero-based list exposed at a shifted index range.

    ``OffsetList(n, off)[off + i]`` aliases slot ``i``; values are
    arbitrary (the union-find kernels store *global* label values in it).
    """

    __slots__ = ("data", "offset")

    def __init__(self, size: int, offset: int) -> None:
        self.data = [0] * size
        self.offset = offset

    def __getitem__(self, i: int) -> int:
        return self.data[i - self.offset]

    def __setitem__(self, i: int, v: int) -> None:
        self.data[i - self.offset] = v

    def __len__(self) -> int:
        return len(self.data)


def _scan_chunk(
    args: tuple[list[list[int]], int, int, int],
) -> tuple[list[list[int]], int, list[int]]:
    """Top-level worker (must be picklable): scan one chunk.

    Returns ``(label_rows, used_watermark, p_slice)`` where ``p_slice``
    covers ``[label_start, used_watermark)``.
    """
    img_chunk, label_start, cols, connectivity = args
    capacity = len(img_chunk) * cols + 1
    p = OffsetList(capacity, label_start)
    cell = [label_start]

    def alloc() -> int:
        c = cell[0]
        p[c] = c
        cell[0] = c + 1
        return c

    rows = scan_tworow(img_chunk, p, remsp_merge, alloc, connectivity)
    used = cell[0]
    return rows, used, p.data[: used - label_start]


class ProcessBackend:
    """Fork-per-chunk execution of the PAREMSP scan phase."""

    name = "processes"

    def scan(
        self,
        img_rows: Sequence[Sequence[int]],
        chunks: Sequence[RowChunk],
        p: MutableSequence[int],
        connectivity: int,
    ) -> tuple[list[list[int]], list[int], dict]:
        jobs = [
            (
                list(img_rows[c.row_start : c.row_stop]),
                c.label_start,
                len(img_rows[0]) if img_rows else 0,
                connectivity,
            )
            for c in chunks
        ]
        if len(chunks) <= 1:
            results = [_scan_chunk(j) for j in jobs]
        else:
            with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
                results = list(pool.map(_scan_chunk, jobs))
        label_rows: list[list[int]] = []
        used: list[int] = []
        for chunk, (rows, watermark, p_slice) in zip(chunks, results):
            label_rows.extend(rows)
            used.append(watermark)
            p[chunk.label_start : chunk.label_start + len(p_slice)] = p_slice
        return label_rows, used, {}

    def boundary(
        self,
        label_rows: Sequence[Sequence[int]],
        chunks: Sequence[RowChunk],
        cols: int,
        p: MutableSequence[int],
        connectivity: int,
    ) -> dict:
        ops = 0
        for row in boundary_rows(chunks):
            ops += merge_boundary_row(
                label_rows, row, cols, p, remsp_merge, connectivity
            )
        return {"boundary_unions": ops}
