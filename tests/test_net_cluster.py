"""The multi-host coordinator (:mod:`repro.parallel.net.cluster`).

The acceptance bar mirrors the sharded suite's: byte-identity with
serial :func:`~repro.parallel.tiled.tiled_label` across loopback
virtual hosts — through partitions that heal, hosts whose leases expire
mid-phase (their work migrating to survivors), and quorum loss that
walks the degradation ladder (multi-host → single-host sharded →
inline) with a reasoned ``meta["degraded_from"]``. No external hosts:
everything runs on loopback.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.errors import ClusterQuorumError
from repro.faults import FaultPlan, FaultSpec, ResilienceConfig
from repro.obs import TraceRecorder
from repro.obs.runtime import RuntimeAggregator, use_runtime_aggregator
from repro.parallel import net_shard_label, shard_label, tiled_label
from repro.parallel.net import NetConfig, VirtualHostPool
from repro.parallel.net.cluster import parse_hosts

TILE = (8, 8)

FAST = ResilienceConfig(max_retries=2, backoff_base=0.0, phase_timeout=60.0)

#: snappy transport for loopback: no backoff padding, short deadlines.
NET_FAST = NetConfig(
    connect_timeout=2.0, call_timeout=2.0, exec_timeout=30.0,
    max_retries=2, backoff_base=0.0,
)

#: transport aimed at dead addresses: fail fast, don't retry.
NET_DEAD = NetConfig(
    connect_timeout=0.2, call_timeout=0.3, max_retries=0, backoff_base=0.0,
)


def _image(rng, rows=40, cols=24, density=0.5):
    arr = (rng.random((rows, cols)) < density).astype(np.uint8)
    arr[0, :] = arr[-1, :] = arr[:, 0] = arr[:, -1] = 1
    return arr


def _no_leaked_hosts():
    return not [
        p for p in multiprocessing.active_children()
        if p.name.startswith("net-vhost")
    ]


# ---------------------------------------------------------------------------
# host parsing
# ---------------------------------------------------------------------------


def test_parse_hosts_string_and_sequence():
    assert parse_hosts("127.0.0.1:7071, 10.0.0.2:7072") == [
        ("127.0.0.1", 7071), ("10.0.0.2", 7072),
    ]
    assert parse_hosts(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]


@pytest.mark.parametrize("bad", ["", "nocolon", "host:", ":7071", "h:port"])
def test_parse_hosts_rejects_malformed(bad):
    with pytest.raises(ValueError):
        parse_hosts(bad)


# ---------------------------------------------------------------------------
# the clean path
# ---------------------------------------------------------------------------


def test_two_virtual_hosts_match_serial(rng):
    img = _image(rng)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=4, tile_shape=TILE,
        net_config=NET_FAST, resilience=FAST,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    assert result.algorithm == "net-sharded"
    assert result.meta["n_hosts"] == 2
    assert result.meta["net"]["net_tasks"] > 0
    assert "degraded_from" not in result.meta
    assert _no_leaked_hosts()


def test_virtual_hosts_on_memmap_with_out(rng, tmp_path):
    from numpy.lib.format import open_memmap

    src = tmp_path / "img.npy"
    mm = open_memmap(src, mode="w+", dtype=np.uint8, shape=(64, 48))
    mm[:] = _image(rng, 64, 48)
    mm.flush()
    img = np.load(src, mmap_mode="r")
    oracle = np.asarray(tiled_label(np.asarray(img), tile_shape=TILE).labels)
    out = tmp_path / "labels.npy"
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=3, tile_shape=TILE, out=out,
        net_config=NET_FAST, resilience=FAST,
    )
    assert out.exists()
    assert np.array_equal(np.asarray(result.labels), oracle)


def test_single_virtual_host_works(rng):
    img = _image(rng)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    result = net_shard_label(
        img, virtual_hosts=1, n_shards=3, tile_shape=TILE,
        net_config=NET_FAST, resilience=FAST,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)


def test_hosts_and_virtual_hosts_are_exclusive(rng):
    img = _image(rng)
    with pytest.raises(ValueError):
        net_shard_label(img, hosts="127.0.0.1:1", virtual_hosts=2)
    with pytest.raises(ValueError):
        net_shard_label(img)


def test_checkpoint_scratch_removed_on_success(rng, tmp_path):
    img = _image(rng)
    net_shard_label(
        img, virtual_hosts=2, n_shards=3, tile_shape=TILE,
        checkpoint_dir=tmp_path / "ck",
        net_config=NET_FAST, resilience=FAST,
    )
    assert not (tmp_path / "ck" / "scratch").exists()


# ---------------------------------------------------------------------------
# partitions: injected blackout, lease expiry, migration, heal
# ---------------------------------------------------------------------------


@pytest.mark.chaos
def test_partition_at_reduce_level_0_heals_byte_identical(rng):
    """The ISSUE's named case: a host partitioned as the reduce tree
    starts, the survivor finishing the level, output identical."""
    img = _image(rng, 96, 48)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    plan = FaultPlan([
        FaultSpec("partition", phase="reduce-0", rank=0, delay_seconds=0.8),
    ])
    rec = TraceRecorder()
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=4, tile_shape=TILE,
        fault_plan=plan, recorder=rec,
        net_config=NET_FAST, resilience=FAST,
        lease_duration=0.3, heartbeat_interval=0.1,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    assert plan.injected == 1
    assert result.meta["net"]["partitions"] == 1
    assert "degraded_from" not in result.meta
    counters = rec.report().metrics["counters"]
    assert counters.get("net.partitions", 0) == 1
    assert _no_leaked_hosts()


@pytest.mark.chaos
def test_partition_expires_lease_and_work_migrates(rng):
    """A long blackout mid-scan: the host's lease expires, its claimed
    shards migrate to the survivor, bytes still identical."""
    img = _image(rng, 2048, 1024)
    oracle = np.asarray(tiled_label(img, tile_shape=(64, 64)).labels)
    plan = FaultPlan([
        FaultSpec("partition", phase="scan", rank=0, delay_seconds=30.0),
    ])
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=8, tile_shape=(64, 64),
        fault_plan=plan,
        net_config=NetConfig(
            connect_timeout=2.0, call_timeout=2.0, exec_timeout=30.0,
            max_retries=1, backoff_base=0.0,
        ),
        resilience=FAST,
        lease_duration=0.25, heartbeat_interval=0.08,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    assert result.meta["net"]["lease_expired"] >= 1
    assert "degraded_from" not in result.meta
    assert _no_leaked_hosts()


@pytest.mark.chaos
def test_partition_heals_and_host_rejoins(rng):
    """A short blackout: the lease expires, then the partition heals
    while the run is still going — the host rejoins (bumped
    incarnation) and its stale re-sent work dedups on done markers."""
    img = _image(rng, 256, 96)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    # slow the survivor's work channel so the scan phase reliably
    # outlives both the lease and the blackout
    plan = FaultPlan([
        FaultSpec("partition", phase="scan", rank=0, delay_seconds=0.4),
        FaultSpec("slow_link", phase="net", rank=1,
                  delay_seconds=0.08, times=12),
    ])
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=8, tile_shape=TILE,
        fault_plan=plan,
        net_config=NET_FAST, resilience=FAST,
        lease_duration=0.15, heartbeat_interval=0.05,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    net = result.meta["net"]
    assert net["partitions"] == 1
    assert net["lease_expired"] >= 1
    assert net["rejoined"] >= 1
    assert "degraded_from" not in result.meta
    assert _no_leaked_hosts()


@pytest.mark.chaos
def test_client_fault_kinds_recover_byte_identical(rng):
    """drop_conn / corrupt_frame / dup_msg / slow_link on the work
    channel: all absorbed by retry + CRC + replay cache."""
    img = _image(rng, 96, 48)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    plan = FaultPlan([
        FaultSpec("drop_conn", phase="net", rank=0),
        FaultSpec("corrupt_frame", phase="net", rank=1),
        FaultSpec("dup_msg", phase="net", rank=0),
        FaultSpec("slow_link", phase="net", rank=1, delay_seconds=0.05),
    ])
    rec = TraceRecorder()
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=4, tile_shape=TILE,
        fault_plan=plan, recorder=rec,
        net_config=NET_FAST, resilience=FAST,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    assert plan.injected == 4
    counters = rec.report().metrics["counters"]
    assert counters.get("net.retries", 0) >= 1
    assert counters.get("net.frames_corrupt", 0) >= 1
    assert _no_leaked_hosts()


# ---------------------------------------------------------------------------
# the degradation ladder
# ---------------------------------------------------------------------------


@pytest.mark.chaos
def test_unreachable_hosts_at_start_degrade_with_reason(rng):
    """No host reachable: the run steps down to the single-host
    sharded pool and says why."""
    img = _image(rng)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    result = net_shard_label(
        img, hosts="127.0.0.1:9,127.0.0.1:10", n_shards=3,
        tile_shape=TILE, net_config=NET_DEAD, resilience=FAST,
        lease_duration=0.3,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    reason = result.meta["degraded_from"]
    assert reason["backend"] == "net-sharded"
    assert reason["error"] == "ClusterQuorumError"
    assert "unreachable" in reason["message"]


@pytest.mark.chaos
def test_midrun_quorum_loss_degrades_with_reason(rng):
    """Both hosts blacked out at scan start with quorum=2: no task can
    move, the leases run out, the cluster rung is abandoned and the
    local pool finishes everything — bytes identical."""
    img = _image(rng, 96, 48)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    plan = FaultPlan([
        FaultSpec("partition", phase="scan", rank=0, delay_seconds=30.0),
        FaultSpec("partition", phase="scan", rank=1, delay_seconds=30.0),
    ])
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=4, tile_shape=TILE,
        fault_plan=plan, quorum_hosts=2,
        net_config=NET_FAST, resilience=FAST,
        lease_duration=0.2, heartbeat_interval=0.05,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    reason = result.meta["degraded_from"]
    assert reason["backend"] == "net-sharded"
    assert reason["error"] == "ClusterQuorumError"
    # the scan phase records both rungs it crossed
    assert result.meta["phases"]["scan"]["net"]["degraded"] is not None
    assert _no_leaked_hosts()


def test_degrade_false_raises_typed_quorum_error(rng):
    img = _image(rng)
    with pytest.raises(ClusterQuorumError) as err:
        net_shard_label(
            img, hosts="127.0.0.1:9", n_shards=2, tile_shape=TILE,
            net_config=NET_DEAD, degrade=False, lease_duration=0.3,
        )
    assert err.value.quorum == 1
    assert err.value.unreachable == ("127.0.0.1:9",)


@pytest.mark.chaos
def test_partial_start_quorum_holds_with_one_dead_address(rng):
    """One real virtual host plus one dead address with the default
    quorum (majority of 2 = 1): no degradation, identical output."""
    img = _image(rng)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    with VirtualHostPool(1) as vpool:
        host, port = vpool.addrs[0]
        result = net_shard_label(
            img, hosts=f"{host}:{port},127.0.0.1:9",
            n_shards=3, tile_shape=TILE,
            net_config=NetConfig(
                connect_timeout=0.3, call_timeout=2.0, exec_timeout=30.0,
                max_retries=0, backoff_base=0.0,
            ),
            resilience=FAST, lease_duration=30.0,
        )
    assert np.array_equal(np.asarray(result.labels), oracle)
    assert "degraded_from" not in result.meta


# ---------------------------------------------------------------------------
# metrics plumbing
# ---------------------------------------------------------------------------


def test_net_counters_reach_the_metrics_endpoint(rng):
    """The net.* labelled counters land on the ambient aggregator, so
    a ``/metrics`` scrape sees them per host."""
    img = _image(rng, 96, 48)
    agg = RuntimeAggregator()
    plan = FaultPlan([
        FaultSpec("partition", phase="scan", rank=0, delay_seconds=0.5),
    ])
    with use_runtime_aggregator(agg):
        net_shard_label(
            img, virtual_hosts=2, n_shards=4, tile_shape=TILE,
            fault_plan=plan, net_config=NET_FAST, resilience=FAST,
            lease_duration=0.15, heartbeat_interval=0.05,
        )
    assert agg.counter_value("net.partitions") == 1
    text = agg.render_prometheus()
    assert "net_partitions_total" in text


def test_resume_crosses_runtimes(rng, tmp_path):
    """A net-mode scratch is the sharded scratch: shard_label can
    resume it (same fingerprint) after the cluster run is interrupted —
    here simulated by sharing the checkpoint dir across modes."""
    img = _image(rng)
    oracle = np.asarray(tiled_label(img, tile_shape=TILE).labels)
    result = net_shard_label(
        img, virtual_hosts=2, n_shards=3, tile_shape=TILE,
        checkpoint_dir=tmp_path / "ck",
        net_config=NET_FAST, resilience=FAST,
    )
    assert np.array_equal(np.asarray(result.labels), oracle)
    # the scratch is gone (success) — a fresh local run in the same
    # checkpoint dir must be clean, proving the fingerprints agree
    again = shard_label(
        img, n_shards=3, tile_shape=TILE,
        checkpoint_dir=tmp_path / "ck", resilience=FAST,
    )
    assert np.array_equal(np.asarray(again.labels), oracle)
