"""Labeling-as-a-service: admission control, micro-batching, drain.

The async front end over :class:`~repro.service.pool.WarmWorkerPool`.
Request lifecycle:

1. **admission** — :meth:`LabelService.submit` validates the image
   through the one shared gate (:func:`repro.types.ensure_input`, so a
   bad dtype is the same typed :class:`~repro.errors.InputError`
   everywhere), checks it fits a pool slot, then applies admission
   control: a full queue is an immediate typed
   :class:`~repro.errors.ServiceOverloadedError` (backpressure, not an
   unbounded queue) and a tenant over its in-flight quota an immediate
   :class:`~repro.errors.QuotaExceededError`;
2. **micro-batching** — a dispatcher thread drains the queue into
   batches of up to ``batch_size`` requests (a lone request ships as a
   1-image batch; it never waits for company longer than
   ``batch_window``) and dispatches each batch to one warm worker as a
   single pipe round-trip;
3. **completion** — each request's ``Future`` resolves to
   ``(labels, n_components)``, byte-identical to a direct
   :func:`repro.label` call;
4. **degradation** — if the pool exhausts its respawn budget, the
   dispatcher walks the :class:`~repro.faults.DegradationPolicy`
   ladder for that batch: ``threads`` / ``serial`` rungs run the same
   run-based kernel in-coordinator (through
   :func:`~repro.parallel.backends.executor.get_map_executor`), so
   requests still complete — slower, never wrong;
5. **drain** — :meth:`LabelService.drain` closes the front door
   (:class:`~repro.errors.ServiceClosedError` for new requests),
   finishes everything queued, then drains the pool; idempotent under
   double-signal, like every shutdown path in this repo.

Observability: ``service.queue_depth`` / ``service.inflight`` gauges
track occupancy, ``service.latency_p50_ms`` / ``p95`` / ``p99`` the
submit→complete latency distribution over a sliding window, and
``service.*`` counters the admission/batch/degrade traffic — the same
``repro.obs`` stream the perf gate reads, so SLOs regress loudly. The
gauges publish **incrementally** (on every completed batch, not just
at ``stats()``/drain), so a mid-run ``/metrics`` scrape sees live
values. Every service also carries an always-on
:class:`~repro.obs.runtime.RuntimeAggregator` (``service.runtime``)
feeding rolling-window latency quantiles, labelled rejection counters
and queue-depth gauges to the ``/metrics`` endpoint
(:func:`repro.obs.runtime.serve_service_metrics`) and the SLO
monitors; tracing adds a ``frontend`` lane span per request whose
``request_id`` attr stitches to the worker-lane spans shipped back
through the pool pipe (see docs/OBSERVABILITY.md and
docs/SERVICE.md).
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future
from typing import Sequence

import numpy as np

from ..ccl.run_based import run_based_vectorized
from ..errors import (
    InputError,
    QuotaExceededError,
    ReproError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadedError,
)
from ..faults import DegradationPolicy
from ..obs import get_recorder
from ..obs.runtime.aggregator import RuntimeAggregator
from ..obs.runtime.context import new_request_id
from ..parallel.backends.executor import get_map_executor
from ..types import ensure_input
from .pool import DEFAULT_SLOT_SHAPE, WarmWorkerPool

__all__ = ["ServiceConfig", "LabelService", "ServiceStats"]


@dataclasses.dataclass(frozen=True)
class ServiceConfig:
    """Knobs for one :class:`LabelService`.

    ``max_queue`` bounds admission (backpressure past it);
    ``tenant_quota`` bounds one tenant's in-flight requests (queued +
    executing); ``batch_size`` is the micro-batch ceiling and
    ``batch_window`` how long a lone request may wait for company
    (seconds — keep it well under a millisecond-scale SLO);
    ``latency_window`` sizes the sliding sample the percentile gauges
    are computed over.
    """

    workers: int = 2
    batch_size: int = 8
    batch_window: float = 0.002
    max_queue: int = 64
    tenant_quota: int = 32
    slot_shape: tuple[int, int] = DEFAULT_SLOT_SHAPE
    connectivity: int = 8
    latency_window: int = 512
    engine: str = "run-vectorized"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.batch_size < 1:
            raise ValueError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        if self.max_queue < 1:
            raise ValueError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if self.tenant_quota < 1:
            raise ValueError(
                f"tenant_quota must be >= 1, got {self.tenant_quota}"
            )
        if self.batch_window < 0:
            raise ValueError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.engine not in ("run-vectorized", "auto"):
            raise ValueError(
                f"engine must be 'run-vectorized' or 'auto', "
                f"got {self.engine!r}"
            )


@dataclasses.dataclass
class ServiceStats:
    """A point-in-time service health snapshot (see :meth:`stats`)."""

    queue_depth: int
    in_flight: int
    completed: int
    rejected_overload: int
    rejected_quota: int
    batches: int
    degraded_batches: int
    pool_respawns: int
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float


class _Request:
    __slots__ = (
        "image", "tenant", "future", "submitted", "connectivity",
        "request_id",
    )

    def __init__(self, image, tenant, connectivity) -> None:
        self.image = image
        self.tenant = tenant
        self.connectivity = connectivity
        self.future: Future = Future()
        self.submitted = time.perf_counter()
        self.request_id = new_request_id()


class LabelService:
    """A warm, bounded, batch-dispatching labeling service.

    >>> import numpy as np
    >>> with LabelService(ServiceConfig(workers=1)) as svc:
    ...     labels, n = svc.label(np.eye(16, dtype=np.uint8))
    >>> int(n)
    1
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        recorder=None,
        resilience=None,
        degradation: DegradationPolicy | None = None,
        fault_plan=None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self._rec = recorder if recorder is not None else get_recorder()
        self._degradation = degradation
        #: always-on live telemetry — cheap enough to keep even when
        #: span tracing is off; ``/metrics`` and the SLO monitors read
        #: it (:func:`repro.obs.runtime.serve_service_metrics`).
        self.runtime = RuntimeAggregator()
        self._forced_rung: str | None = None
        self._pool = WarmWorkerPool(
            workers=self.config.workers,
            batch_slots=self.config.batch_size,
            slot_shape=self.config.slot_shape,
            connectivity=self.config.connectivity,
            engine=self.config.engine,
            resilience=resilience,
            fault_plan=fault_plan,
            recorder=self._rec,
        )
        self._queue: list[_Request] = []
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._tenant_inflight: dict[str, int] = {}
        self._state = "running"
        self._closed_event = threading.Event()
        self._completed = 0
        self._rejected_overload = 0
        self._rejected_quota = 0
        self._batches = 0
        self._degraded_batches = 0
        self._latencies: list[float] = []
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                name=f"label-service-dispatch-{i}",
                daemon=True,
            )
            for i in range(self.config.workers)
        ]
        for t in self._dispatchers:
            t.start()

    # -- client API --------------------------------------------------------

    def submit(
        self,
        image: np.ndarray,
        tenant: str = "default",
        connectivity: int | None = None,
    ) -> Future:
        """Admit one request; returns a ``Future`` of
        ``(labels, n_components)``.

        Raises immediately (never queues the rejection):
        :class:`~repro.errors.InputError` for an unusable image,
        :class:`~repro.errors.ServiceOverloadedError` past
        ``max_queue``, :class:`~repro.errors.QuotaExceededError` past
        the tenant's quota,
        :class:`~repro.errors.ServiceClosedError` after drain began.
        """
        img = ensure_input(image)
        rows, cols = img.shape
        srows, scols = self.config.slot_shape
        if rows * cols > srows * scols:
            raise InputError(
                f"image {img.shape!r} exceeds the service slot shape "
                f"{self.config.slot_shape!r}; submit tiles or run "
                "tiled_label directly"
            )
        conn = (
            self.config.connectivity
            if connectivity is None
            else connectivity
        )
        req = _Request(img, str(tenant), conn)
        with self._lock:
            if self._state != "running":
                raise ServiceClosedError(
                    "service is draining; not accepting requests"
                )
            depth = len(self._queue)
            if depth >= self.config.max_queue:
                self._rejected_overload += 1
                self.runtime.inc(
                    "service.rejected", labels={"reason": "overload"}
                )
                if self._rec.enabled:
                    self._rec.count("service.rejected.overload")
                raise ServiceOverloadedError(
                    f"queue full ({depth}/{self.config.max_queue}); "
                    "retry with backoff",
                    queue_depth=depth,
                )
            inflight = self._tenant_inflight.get(req.tenant, 0)
            if inflight >= self.config.tenant_quota:
                self._rejected_quota += 1
                self.runtime.inc(
                    "service.rejected", labels={"reason": "quota"}
                )
                if self._rec.enabled:
                    self._rec.count("service.rejected.quota")
                raise QuotaExceededError(
                    f"tenant {req.tenant!r} has {inflight} requests in "
                    f"flight (quota {self.config.tenant_quota})",
                    tenant=req.tenant,
                    in_flight=inflight,
                )
            self._tenant_inflight[req.tenant] = inflight + 1
            self._queue.append(req)
            self.runtime.inc("service.requests")
            self.runtime.set_gauge(
                "service.queue_depth", float(len(self._queue))
            )
            if self._rec.enabled:
                self._rec.count("service.requests")
                self._rec.gauge(
                    "service.queue_depth", float(len(self._queue))
                )
            self._work_ready.notify()
        return req.future

    def label(
        self,
        image: np.ndarray,
        tenant: str = "default",
        connectivity: int | None = None,
        timeout: float | None = 60.0,
    ) -> tuple[np.ndarray, int]:
        """Synchronous convenience: submit and wait."""
        return self.submit(image, tenant, connectivity).result(timeout)

    @property
    def state(self) -> str:
        """``running`` → ``draining`` → ``closed`` (readiness probes
        key off this: anything but ``running`` answers 503)."""
        return self._state

    def publish_runtime(self) -> None:
        """Refresh pull-only runtime gauges (scrape-time collect hook).

        Counter-style and latency values publish incrementally from
        the hot path; this covers the handful of values that are only
        observable by asking (pool respawn count, live queue depth
        between batches) so a scrape never reads startup zeros.
        """
        with self._lock:
            depth = len(self._queue)
            inflight = sum(self._tenant_inflight.values())
        self.runtime.set_gauge("service.queue_depth", float(depth))
        self.runtime.set_gauge("service.inflight", float(inflight))
        self.runtime.set_gauge(
            "service.pool_respawns", float(self._pool.respawns)
        )
        self.runtime.set_gauge(
            "service.degraded",
            0.0 if self._forced_rung is None else 1.0,
        )

    def force_degraded(self, rung: str = "threads") -> None:
        """Pin batch execution to an in-coordinator ladder rung.

        The SLO hook (:func:`repro.obs.runtime.degradation_trigger`)
        calls this on breach: subsequent batches skip the warm pool
        and run on the named :class:`~repro.faults.DegradationPolicy`
        rung (``threads`` or ``serial``) until
        :meth:`clear_degraded` — slower, never wrong, and the pool
        stays warm for the recovery. Idempotent per rung.
        """
        if rung not in ("threads", "serial"):
            raise ValueError(
                f"rung must be 'threads' or 'serial', got {rung!r}"
            )
        with self._lock:
            previous, self._forced_rung = self._forced_rung, rung
        if previous != rung:
            self.runtime.inc(
                "service.degrade.forced", labels={"rung": rung}
            )
            if self._rec.enabled:
                self._rec.count("service.degrade.forced")

    def clear_degraded(self) -> None:
        """Lift a :meth:`force_degraded` override (operator action)."""
        with self._lock:
            self._forced_rung = None

    def stats(self) -> ServiceStats:
        """Snapshot health and publish the gauges the perf gate reads."""
        with self._lock:
            depth = len(self._queue)
            inflight = sum(self._tenant_inflight.values())
            lat = sorted(self._latencies)
            completed = self._completed
            snapshot = ServiceStats(
                queue_depth=depth,
                in_flight=inflight,
                completed=completed,
                rejected_overload=self._rejected_overload,
                rejected_quota=self._rejected_quota,
                batches=self._batches,
                degraded_batches=self._degraded_batches,
                pool_respawns=self._pool.respawns,
                latency_p50_ms=_percentile(lat, 0.50) * 1e3,
                latency_p95_ms=_percentile(lat, 0.95) * 1e3,
                latency_p99_ms=_percentile(lat, 0.99) * 1e3,
            )
        if self._rec.enabled:
            self._rec.gauge("service.queue_depth", float(depth))
            self._rec.gauge("service.inflight", float(inflight))
            self._rec.gauge(
                "service.latency_p50_ms", snapshot.latency_p50_ms
            )
            self._rec.gauge(
                "service.latency_p95_ms", snapshot.latency_p95_ms
            )
            self._rec.gauge(
                "service.latency_p99_ms", snapshot.latency_p99_ms
            )
        return snapshot

    def drain(self, timeout: float | None = 60.0) -> None:
        """Graceful shutdown: finish the queue, then drain the pool.

        Idempotent under double-signal — the first caller does the
        work, any later or concurrent caller waits for it to finish.
        """
        with self._lock:
            if self._state == "running":
                self._state = "draining"
                owner = True
            else:
                owner = False
            self._work_ready.notify_all()
        if not owner:
            if not self._closed_event.wait(
                timeout if timeout is not None else 300.0
            ):
                raise ServiceError("drain did not complete in time")
            return
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for t in self._dispatchers:
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            t.join(remaining)
        self._pool.drain(
            None if deadline is None
            else max(0.0, deadline - time.monotonic())
        )
        with self._lock:
            self._state = "closed"
            leftovers = list(self._queue)
            self._queue.clear()
        for req in leftovers:  # pragma: no cover - dispatcher drains first
            req.future.set_exception(
                ServiceClosedError("service drained before dispatch")
            )
        self._closed_event.set()
        if self._rec.enabled:
            self._rec.count("service.drained")

    close = drain

    def __enter__(self) -> "LabelService":
        return self

    def __exit__(self, *exc) -> bool:
        self.drain()
        return False

    # -- dispatcher --------------------------------------------------------

    def _take_batch(self) -> list[_Request] | None:
        """Pop the next micro-batch (same-connectivity prefix), or
        ``None`` when draining and empty."""
        with self._lock:
            while True:
                while not self._queue:
                    if self._state != "running":
                        return None
                    self._work_ready.wait(timeout=0.5)
                if (
                    len(self._queue) < self.config.batch_size
                    and self._state == "running"
                    and self.config.batch_window > 0
                ):
                    # brief company window: a lone request never waits
                    # longer than batch_window for batchmates. The wait
                    # drops the lock, so a sibling dispatcher may have
                    # taken the queue — re-check before popping.
                    self._work_ready.wait(
                        timeout=self.config.batch_window
                    )
                if self._queue:
                    break
            batch = [self._queue.pop(0)]
            while (
                self._queue
                and len(batch) < self.config.batch_size
                and self._queue[0].connectivity == batch[0].connectivity
            ):
                batch.append(self._queue.pop(0))
            if self._rec.enabled:
                self._rec.gauge(
                    "service.queue_depth", float(len(self._queue))
                )
        return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._take_batch()
            if batch is None:
                return
            self._run_batch(batch)

    def _run_batch(self, batch: list[_Request]) -> None:
        images = [req.image for req in batch]
        connectivity = batch[0].connectivity
        forced = self._forced_rung
        try:
            if forced is not None:
                labels, counts = self._run_inline(
                    images, connectivity, forced
                )
                degraded_to = forced
            else:
                labels, counts = self._pool.dispatch(
                    images,
                    connectivity,
                    request_ids=[req.request_id for req in batch],
                )
                degraded_to = None
        except ReproError as exc:
            labels, counts, degraded_to = self._degrade_batch(
                images, connectivity, exc, batch
            )
            if labels is None:
                return
        now = time.perf_counter()
        with self._lock:
            self._batches += 1
            if degraded_to is not None:
                self._degraded_batches += 1
            for req in batch:
                self._latencies.append(now - req.submitted)
                self._tenant_inflight[req.tenant] -= 1
                if self._tenant_inflight[req.tenant] <= 0:
                    del self._tenant_inflight[req.tenant]
                self._completed += 1
            excess = len(self._latencies) - self.config.latency_window
            if excess > 0:
                del self._latencies[:excess]
            lat = sorted(self._latencies)
        # incremental publication: gauges and rolling windows are
        # fresh after every batch, so a mid-run /metrics scrape (or
        # an SLO evaluation) sees live values, not drain-time flushes.
        self.runtime.inc("service.batches")
        if degraded_to is not None:
            self.runtime.inc(
                "service.degraded_batches", labels={"rung": degraded_to}
            )
        for req in batch:
            self.runtime.observe(
                "service.latency_ms", (now - req.submitted) * 1e3
            )
        self.runtime.set_gauge(
            "service.latency_p50_ms", _percentile(lat, 0.50) * 1e3
        )
        self.runtime.set_gauge(
            "service.latency_p95_ms", _percentile(lat, 0.95) * 1e3
        )
        self.runtime.set_gauge(
            "service.latency_p99_ms", _percentile(lat, 0.99) * 1e3
        )
        if self._rec.enabled:
            self._rec.count("service.batches")
            self._rec.count("service.batch_images", len(batch))
            self._rec.gauge(
                "service.latency_p50_ms", _percentile(lat, 0.50) * 1e3
            )
            self._rec.gauge(
                "service.latency_p95_ms", _percentile(lat, 0.95) * 1e3
            )
            self._rec.gauge(
                "service.latency_p99_ms", _percentile(lat, 0.99) * 1e3
            )
            for req in batch:
                attrs = {
                    "request_id": req.request_id,
                    "tenant": req.tenant,
                }
                if degraded_to is not None:
                    attrs["degraded_to"] = degraded_to
                self._rec.add_span(
                    "frontend",
                    "service.request",
                    req.submitted,
                    now,
                    attrs=attrs,
                )
        for req, lab, n in zip(batch, labels, counts):
            req.future.set_result((lab, n))

    def _run_inline(
        self,
        images: Sequence[np.ndarray],
        connectivity: int,
        rung: str,
    ) -> tuple[list[np.ndarray], list[int]]:
        """Label a batch in-coordinator on a degradation-ladder rung."""
        with get_map_executor(
            rung, max_workers=self.config.workers
        ) as ex:
            results = ex.map(
                _label_inline,
                [(img, connectivity) for img in images],
            )
        return [r[0] for r in results], [r[1] for r in results]

    def _degrade_batch(
        self,
        images: Sequence[np.ndarray],
        connectivity: int,
        exc: Exception,
        batch: list[_Request],
    ):
        """Walk the degradation ladder in-coordinator for one batch."""
        ladder = (
            self._degradation.ladder_from("processes")[1:]
            if self._degradation is not None
            else ()
        )
        for rung in ladder:
            self.runtime.inc(
                "service.degrade.fallback", labels={"rung": rung}
            )
            if self._rec.enabled:
                self._rec.count("service.degrade.fallback")
                self._rec.count(f"service.degrade.to.{rung}")
            try:
                labels, counts = self._run_inline(
                    images, connectivity, rung
                )
                return labels, counts, rung
            except ReproError:  # pragma: no cover - rung also broken
                continue
        self._fail_batch(batch, exc)
        return None, None, None

    def _fail_batch(self, batch: list[_Request], exc: Exception) -> None:
        with self._lock:
            for req in batch:
                self._tenant_inflight[req.tenant] -= 1
                if self._tenant_inflight[req.tenant] <= 0:
                    del self._tenant_inflight[req.tenant]
        self.runtime.inc("service.batch_failed")
        if self._rec.enabled:
            self._rec.count("service.batch_failed")
        for req in batch:
            req.future.set_exception(exc)


def _label_inline(args: tuple) -> tuple[np.ndarray, int]:
    """Degraded-rung labeler: same kernel the pool workers run."""
    img, connectivity = args
    local = run_based_vectorized(img, connectivity)
    return local.labels, int(local.n_components)


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample (0.0 if empty)."""
    if not sorted_values:
        return 0.0
    rank = min(
        len(sorted_values) - 1,
        max(0, int(round(q * (len(sorted_values) - 1)))),
    )
    return sorted_values[rank]
