"""Min/average/max aggregation — the statistic the paper's tables report.

Tables II and IV both present per-suite *minimum, average, maximum*
execution time over the suite's images; :class:`MinAvgMax` is that
triple plus formatting helpers so report rows read like the paper's.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

__all__ = ["MinAvgMax", "STAT_ROWS"]

#: row labels in paper order.
STAT_ROWS = ("Min", "Average", "Max")


@dataclasses.dataclass(frozen=True)
class MinAvgMax:
    """The paper's per-suite summary statistic."""

    min: float
    avg: float
    max: float
    n: int

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "MinAvgMax":
        vals = list(values)
        if not vals:
            raise ValueError("cannot summarise an empty value list")
        return cls(
            min=min(vals), avg=sum(vals) / len(vals), max=max(vals), n=len(vals)
        )

    def stat(self, name: str) -> float:
        """Fetch by paper row label ('Min' / 'Average' / 'Max')."""
        return {"Min": self.min, "Average": self.avg, "Max": self.max}[name]

    def as_ms_strings(self, digits: int = 2) -> tuple[str, str, str]:
        return tuple(  # type: ignore[return-value]
            f"{v * 1e3:.{digits}f}" for v in (self.min, self.avg, self.max)
        )


def speedups(base: Sequence[float], other: Sequence[float]) -> list[float]:
    """Element-wise ``base / other`` (e.g. T1 times vs Tn times)."""
    if len(base) != len(other):
        raise ValueError(
            f"length mismatch: {len(base)} vs {len(other)} measurements"
        )
    return [b / o if o > 0 else float("nan") for b, o in zip(base, other)]
