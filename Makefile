# Two test tiers (see ROADMAP.md):
#   tier 1: `make test`          — the full pytest suite, fast, no timing
#                                  assertions; must always pass.
#   tier 2: `make bench-paremsp` — full-scale perf gate for the
#                                  vectorised PAREMSP pipeline; fails if
#                                  the engines diverge or the vectorized
#                                  speedup drops below 5x on the
#                                  2048x2048 reference raster.
# Perf history on top of tier 2 (see docs/OBSERVABILITY.md):
#   `make bench-history` appends a repro.perfdb record (median +
#   bootstrap CI + environment fingerprint) under benchmarks/history/;
#   `make perf-gate` diffs the latest record against the committed
#   baseline and fails on regression; `make analyze-trace` prints the
#   speedup decomposition of the traces bench-trace wrote.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos bench-paremsp bench-trace bench bench-history \
	bench-density dispatch-table perf-gate analyze-trace service-smoke \
	service-metrics-smoke shard-smoke net-shard-smoke

test:
	$(PYTHON) -m pytest -x -q

# fault-injection suite (see docs/RESILIENCE.md): every (backend x
# fault) cell must recover byte-identically or raise a typed error,
# and a checkpointed job SIGKILLed mid-run must resume through the CLI
# to byte-identical labels — the hard timeout turns any hang into a
# failure rather than a wedged job.
chaos:
	timeout 600 $(PYTHON) -m pytest -m chaos -q

bench-paremsp:
	$(PYTHON) -m repro.bench.paremsp_smoke --size 2048 --repeats 5 \
		--out BENCH_paremsp.json

# per-phase/per-thread breakdowns on all three backends; writes
# trace_<backend>.jsonl next to the bench record.
bench-trace:
	$(PYTHON) -m repro.bench.paremsp_smoke --size 1024 --repeats 3 \
		--trace --out BENCH_paremsp.json

# append a perf-history record for `perf-gate`. Runs the gate
# configuration (size 512 — what benchmarks/history/baseline.json was
# recorded at); records only compare like-for-like.
bench-history:
	$(PYTHON) -m repro.bench.paremsp_smoke --size 512 --repeats 3 \
		--warmup 1 --record-only --out BENCH_ci.json \
		--history benchmarks/history

# engine x pattern x density sweep feeding the `auto` dispatch engine
# (see docs/ALGORITHMS.md): every cell is oracle-checked before its
# timing counts, the record lands in the perf history for `perf-gate`.
bench-density:
	$(PYTHON) benchmarks/bench_density_sweep.py --size 512 --repeats 3 \
		--warmup 1 --history benchmarks/history

# regenerate src/repro/ccl/dispatch_table.json (and the committed
# density baseline) from a fresh sweep on this machine.
dispatch-table:
	$(PYTHON) benchmarks/bench_density_sweep.py --size 512 --repeats 3 \
		--warmup 1 --history benchmarks/history --write-table \
		--out benchmarks/history/baseline_density.json

# regression gate: latest history record vs the committed baseline,
# per benchmark (the compare picks the newest record matching the
# baseline's own benchmark name, so the shared history directory is
# safe). The service gate covers queue-latency percentiles too; the
# density gate watches the auto-dispatch sweep cells.
perf-gate:
	$(PYTHON) -m repro.obs.cli compare benchmarks/history/baseline.json \
		--dir benchmarks/history
	$(PYTHON) -m repro.obs.cli compare \
		benchmarks/history/baseline_service.json \
		--dir benchmarks/history
	$(PYTHON) -m repro.obs.cli compare \
		benchmarks/history/baseline_density.json \
		--dir benchmarks/history
	$(PYTHON) -m repro.obs.cli compare \
		benchmarks/history/baseline_shard.json \
		--dir benchmarks/history
	$(PYTHON) -m repro.obs.cli compare \
		benchmarks/history/baseline_netshard.json \
		--dir benchmarks/history

# speedup decomposition (serial fraction, imbalance, contention) of the
# traces `make bench-trace` leaves behind.
analyze-trace:
	$(PYTHON) -m repro.obs.cli analyze trace_serial.jsonl \
		trace_threads.jsonl trace_processes.jsonl

# warm-pool service gate (see docs/SERVICE.md): boots the labeling
# service, replays a stream of small-image requests, and fails unless
# warm throughput beats per-call fork by 2x with byte-identical answers
# and a clean /dev/shm after the drain. Merges a "service" section into
# BENCH_paremsp.json and appends queue-latency percentiles to the perf
# history for `perf-gate`.
service-smoke:
	$(PYTHON) -m repro.bench.service_smoke --requests 64 --repeats 3 \
		--out BENCH_paremsp.json --history benchmarks/history

# runtime-telemetry gate (see docs/OBSERVABILITY.md "Runtime
# telemetry"): boots a traced service behind /metrics, scrapes it
# mid-run (required families, live latency quantiles, slo_* breaches),
# verifies one request id stitches frontend + >= 2 worker lanes
# through a chrome-export round trip, and enforces the sampling
# profiler's overhead budget (<2% detached, <5% attached).
service-metrics-smoke:
	$(PYTHON) -m repro.bench.metrics_smoke --out BENCH_paremsp.json

# elastic-shard gate (see docs/SHARDED.md): labels a ~64 MB on-disk
# raster with 4 supervised shard processes, kills one rank mid-scan,
# and fails unless recovery resumes from the shard's checkpoints to
# byte-identical labels within the overhead ceiling, with /dev/shm and
# the checkpoint directory left clean. Appends the recovery-overhead
# record to the perf history for `perf-gate`.
shard-smoke:
	$(PYTHON) benchmarks/bench_shard_smoke.py --repeats 2 \
		--out BENCH_paremsp.json --history benchmarks/history

# multi-host gate (see docs/SHARDED.md "Multi-host"): labels the same
# ~64 MB raster across 2 loopback virtual hosts x 4 shards over the
# real socket transport, blacks one host out as the reduce tree starts
# (level 0), and fails unless the run stays byte-identical within the
# overhead ceiling with no leaked sockets, worker processes, or
# scratch claims. Appends the recovery-overhead record to the perf
# history for `perf-gate`.
net-shard-smoke:
	$(PYTHON) benchmarks/bench_net_shard_smoke.py --repeats 2 \
		--out BENCH_paremsp.json --history benchmarks/history

bench: bench-paremsp service-smoke service-metrics-smoke shard-smoke \
	net-shard-smoke
