"""The granularity and ridge generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccl.run_based import run_based_vectorized
from repro.data import granularity, ridges


class TestGranularity:
    def test_block1_is_plain_noise(self):
        a = granularity((50, 50), 0.5, block=1, seed=9)
        assert a.dtype == np.uint8
        assert 0.35 < a.mean() < 0.65

    def test_blocks_are_uniform(self):
        img = granularity((32, 32), 0.5, block=4, seed=3)
        blocks = img.reshape(8, 4, 8, 4)
        # every 4x4 block is constant
        assert (blocks.min(axis=(1, 3)) == blocks.max(axis=(1, 3))).all()

    def test_density_preserved_across_block_sizes(self):
        for block in (1, 2, 8):
            img = granularity((200, 200), 0.3, block=block, seed=1)
            assert abs(img.mean() - 0.3) < 0.08, block

    def test_non_divisible_shape_cropped(self):
        img = granularity((10, 13), 0.5, block=4, seed=2)
        assert img.shape == (10, 13)

    def test_component_count_falls_with_granularity(self):
        counts = []
        for block in (1, 4, 16):
            img = granularity((128, 128), 0.4, block=block, seed=7)
            counts.append(run_based_vectorized(img).n_components)
        assert counts[0] > counts[1] > counts[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            granularity((8, 8), 0.5, block=0)
        with pytest.raises(ValueError):
            granularity((8, 8), 1.5)

    def test_deterministic(self):
        a = granularity((20, 20), 0.5, block=2, seed=4)
        b = granularity((20, 20), 0.5, block=2, seed=4)
        assert np.array_equal(a, b)


class TestRidges:
    def test_binary_output(self):
        img = ridges((64, 64), seed=1)
        assert img.dtype == np.uint8
        assert set(np.unique(img)) <= {0, 1}

    def test_roughly_half_coverage(self):
        img = ridges((128, 128), seed=2)
        assert 0.3 < img.mean() < 0.7

    def test_fewer_components_than_noise(self):
        """Ridges must be few and large relative to noise at the same
        density — the structural signature of the pattern."""
        from repro.data import random_noise

        img = ridges((96, 96), wavelength=8, seed=3)
        noise = random_noise((96, 96), float(img.mean()), seed=3)
        n_ridges = run_based_vectorized(img).n_components
        n_noise = run_based_vectorized(noise).n_components
        assert n_ridges * 3 < n_noise

    def test_components_are_elongated(self):
        """Ridge components fill a small fraction of their bounding box
        — the thin-and-winding signature an OCR blob would not have."""
        from repro.analysis import areas, bounding_boxes

        img = ridges((96, 96), wavelength=8, seed=4)
        labels = run_based_vectorized(img).labels
        a = areas(labels)
        boxes = bounding_boxes(labels)
        box_area = (boxes[:, 2] - boxes[:, 0] + 1) * (
            boxes[:, 3] - boxes[:, 1] + 1
        )
        big = a >= 50  # ignore fragments clipped by the border
        assert big.any()
        fill = a[big] / box_area[big]
        assert float(np.median(fill)) < 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ridges((8, 8), wavelength=0)

    def test_deterministic(self):
        assert np.array_equal(ridges((30, 30), seed=5), ridges((30, 30), seed=5))
