"""The verification layer itself: equivalence checks, canonicalisation,
and the flood-fill oracle's own behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.verify import (
    canonicalize_labeling,
    flood_fill_label,
    is_canonical_labeling,
    labelings_equivalent,
)


class TestLabelingsEquivalent:
    def test_identical(self):
        a = np.array([[0, 1], [2, 2]])
        assert labelings_equivalent(a, a)

    def test_relabeled(self):
        a = np.array([[0, 1], [2, 2]])
        b = np.array([[0, 7], [3, 3]])
        assert labelings_equivalent(a, b)

    def test_different_background(self):
        a = np.array([[0, 1]])
        b = np.array([[1, 1]])
        assert not labelings_equivalent(a, b)

    def test_split_component_rejected(self):
        a = np.array([[1, 1]])
        b = np.array([[1, 2]])
        assert not labelings_equivalent(a, b)

    def test_merged_component_rejected(self):
        a = np.array([[1, 2]])
        b = np.array([[1, 1]])
        assert not labelings_equivalent(a, b)

    def test_shape_mismatch(self):
        assert not labelings_equivalent(np.zeros((2, 2)), np.zeros((4,)))

    def test_empty(self):
        assert labelings_equivalent(np.zeros((0, 0)), np.zeros((0, 0)))

    def test_all_background(self):
        assert labelings_equivalent(np.zeros((3, 3)), np.zeros((3, 3)))

    def test_symmetry(self, rng):
        a = rng.integers(0, 4, size=(6, 6))
        b = rng.integers(0, 4, size=(6, 6))
        assert labelings_equivalent(a, b) == labelings_equivalent(b, a)


class TestCanonicalize:
    def test_renumbers_in_raster_order(self):
        labels = np.array([[5, 5, 0], [0, 3, 3]])
        out = canonicalize_labeling(labels)
        assert out.tolist() == [[1, 1, 0], [0, 2, 2]]

    def test_idempotent(self, rng):
        labels = rng.integers(0, 5, size=(8, 8))
        once = canonicalize_labeling(labels)
        twice = canonicalize_labeling(once)
        assert np.array_equal(once, twice)

    def test_preserves_partition(self, rng):
        labels = rng.integers(0, 6, size=(10, 10))
        out = canonicalize_labeling(labels)
        assert labelings_equivalent(labels, out)

    def test_is_canonical_checks(self):
        assert is_canonical_labeling(np.array([[1, 0], [0, 2]]))
        assert not is_canonical_labeling(np.array([[2, 0], [0, 1]]))
        assert not is_canonical_labeling(np.array([[1, 0], [0, 3]]))
        assert is_canonical_labeling(np.zeros((3, 3), dtype=int))

    @given(
        labels=hnp.arrays(
            dtype=np.int32,
            shape=hnp.array_shapes(
                min_dims=2, max_dims=2, min_side=1, max_side=12
            ),
            elements=st.integers(0, 6),
        )
    )
    def test_property_canonical_and_equivalent(self, labels):
        out = canonicalize_labeling(labels)
        assert is_canonical_labeling(out)
        assert labelings_equivalent(labels, out)


class TestFloodFillOracle:
    def test_empty(self):
        labels, n = flood_fill_label(np.zeros((0, 0), dtype=np.uint8))
        assert n == 0
        assert labels.shape == (0, 0)

    def test_single_pixel(self):
        labels, n = flood_fill_label(np.ones((1, 1), dtype=np.uint8))
        assert n == 1
        assert labels[0, 0] == 1

    def test_diagonal_connectivity_difference(self):
        img = np.eye(3, dtype=np.uint8)
        assert flood_fill_label(img, 8)[1] == 1
        assert flood_fill_label(img, 4)[1] == 3

    def test_raster_first_appearance_order(self):
        img = np.array([[0, 1, 0, 1], [1, 0, 0, 1]], dtype=np.uint8)
        labels, n = flood_fill_label(img, 4)
        assert n == 3
        assert labels[0, 1] == 1  # first seen
        assert labels[0, 3] == 2
        assert labels[1, 0] == 3

    def test_labels_canonical(self, structural_image):
        labels, _ = flood_fill_label(structural_image, 8)
        assert is_canonical_labeling(labels)

    def test_component_count_formula_grid(self):
        """k isolated 1x1 pixels -> k components."""
        img = np.zeros((9, 9), dtype=np.uint8)
        img[::2, ::2] = 1
        assert flood_fill_label(img, 8)[1] == 25
