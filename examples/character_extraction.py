#!/usr/bin/env python
"""Character extraction — the paper's pattern-recognition motivation.

CCL's classic role (the paper's introduction: "character recognition,
fingerprint identification, ...") is segmenting glyphs from a scanned
page. This example synthesizes a noisy "document" of glyph-like marks
arranged in lines, then uses the library to recover, in reading order,
exactly the per-glyph regions an OCR stage would consume — including the
denoising and line-grouping steps real pipelines need.

Run:  python examples/character_extraction.py
"""

import numpy as np

import repro
from repro.analysis import component_stats, filter_components

#: tiny 3x5 glyph bitmaps — enough to synthesize a page.
GLYPHS = {
    "A": ["010", "101", "111", "101", "101"],
    "B": ["110", "101", "110", "101", "110"],
    "C": ["011", "100", "100", "100", "011"],
    "E": ["111", "100", "110", "100", "111"],
    "H": ["101", "101", "111", "101", "101"],
    "L": ["100", "100", "100", "100", "111"],
    "O": ["010", "101", "101", "101", "010"],
    "T": ["111", "010", "010", "010", "010"],
}


def render_page(
    text_lines: list[str], glyph_scale: int = 3, noise: float = 0.002,
    seed: int = 7,
) -> np.ndarray:
    """Rasterise *text_lines* into a binary page with salt noise."""
    gh, gw = 5 * glyph_scale, 3 * glyph_scale
    pad = glyph_scale * 2
    rows = len(text_lines) * (gh + pad) + pad
    cols = max(len(l) for l in text_lines) * (gw + pad) + pad
    page = np.zeros((rows, cols), dtype=np.uint8)
    for li, line in enumerate(text_lines):
        for ci, ch in enumerate(line):
            if ch == " " or ch not in GLYPHS:
                continue
            bitmap = np.array(
                [[int(b) for b in row] for row in GLYPHS[ch]], dtype=np.uint8
            )
            glyph = np.kron(bitmap, np.ones((glyph_scale, glyph_scale), np.uint8))
            r = pad + li * (gh + pad)
            c = pad + ci * (gw + pad)
            page[r : r + gh, c : c + gw] |= glyph
    rng = np.random.default_rng(seed)
    page |= (rng.random(page.shape) < noise).astype(np.uint8)
    return page


def main() -> None:
    text = ["HELLO", "CCL"]
    page = render_page(text)
    n_glyphs = sum(len(l.replace(" ", "")) for l in text)
    print(f"page: {page.shape}, {n_glyphs} glyphs + salt noise")

    # --- label everything ---------------------------------------------------
    labels, n_raw = repro.label(page, algorithm="aremsp")
    print(f"raw labeling: {n_raw} components (glyphs + noise specks)")

    # --- denoise: drop specks below a glyph-sized threshold -----------------
    stats = component_stats(labels)
    min_glyph_area = int(np.percentile(stats.areas, 75) * 0.3)
    glyphs = filter_components(labels, min_area=min_glyph_area)
    n_glyph_components = int(glyphs.max())
    print(f"after area filter (>= {min_glyph_area} px): "
          f"{n_glyph_components} glyph components")
    assert n_glyph_components == n_glyphs, "denoising should isolate glyphs"

    # --- reading order: group by line (centroid rows), sort by column -------
    gstats = component_stats(glyphs)
    cents = gstats.centroids
    line_height = np.ptp(cents[:, 0]) / max(1, len(text) - 1) if len(text) > 1 else 1
    line_of = np.round(
        (cents[:, 0] - cents[:, 0].min()) / max(line_height, 1)
    ).astype(int)
    order = np.lexsort((cents[:, 1], line_of))
    print("\nextracted glyph boxes in reading order:")
    for rank, i in enumerate(order):
        r0, c0, r1, c1 = gstats.bounding_boxes[i]
        print(
            f"  #{rank}: line {line_of[i]}, bbox rows {r0:3d}-{r1:3d} "
            f"cols {c0:3d}-{c1:3d}, area {gstats.areas[i]:3d} px"
        )

    # --- crop the first glyph as an OCR stage would --------------------------
    first = order[0]
    r0, c0, r1, c1 = gstats.bounding_boxes[first]
    crop = (glyphs[r0 : r1 + 1, c0 : c1 + 1] == first + 1).astype(np.uint8)
    print("\nfirst glyph crop ('H' of HELLO):")
    for row in crop[:: max(1, crop.shape[0] // 5)]:
        print("   " + "".join("#" if v else "." for v in row))


if __name__ == "__main__":
    main()
