"""Checkpoint/resume: crash consistency, corruption fallback, and the
byte-identity contract.

The acceptance bar from the resilience docs: a labeling job killed at
*any* point and resumed from its latest valid snapshot must produce
final labels byte-identical to an uninterrupted run, and a corrupt
checkpoint directory may cost progress but never correctness (fallback
to an older snapshot, or a typed error — never a wrong answer).
"""

from __future__ import annotations

import json
import pathlib
import pickle

import numpy as np
import pytest

from repro.checkpoint import (
    NULL_CHECKPOINT,
    JobRunner,
    SnapshotStore,
    StreamingJob,
    TiledJob,
)
from repro.errors import (
    CheckpointCorruptError,
    InjectedCrashError,
    ResumeMismatchError,
)
from repro.faults import DegradationPolicy, FaultPlan, FaultSpec
from repro.obs import TraceRecorder
from repro.parallel.tiled import tiled_label


def _image(rows=200, cols=180, seed=5, density=0.4):
    rng = np.random.default_rng(seed)
    return (rng.random((rows, cols)) < density).astype(np.uint8)


def _leftovers(directory: pathlib.Path) -> list[str]:
    if not directory.exists():
        return []
    return sorted(p.name for p in directory.iterdir())


# ---------------------------------------------------------------------------
# SnapshotStore semantics


class TestSnapshotStore:
    def test_save_latest_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path, fingerprint={"job": "t"})
        state = {"row": 7, "arr": np.arange(5)}
        store.save(state, seq=7)
        seq, loaded = store.latest()
        assert seq == 7
        assert loaded["row"] == 7
        np.testing.assert_array_equal(loaded["arr"], np.arange(5))

    def test_empty_store_latest_is_none(self, tmp_path):
        assert SnapshotStore(tmp_path).latest() is None

    def test_prunes_to_keep(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        for seq in (1, 2, 3, 4):
            store.save({"seq": seq}, seq=seq)
        assert store.sequences() == [3, 4]
        # pruned snapshots leave no payloads behind either
        names = _leftovers(tmp_path)
        assert all("0000000" + str(s) in n for s in (3, 4) for n in names
                   if n.startswith("snap-")) or len(names) == 4

    def test_resave_same_seq_replaces(self, tmp_path):
        store = SnapshotStore(tmp_path)
        store.save({"v": 1}, seq=3)
        store.save({"v": 2}, seq=3)
        assert store.latest() == (3, {"v": 2})

    def test_clear_leaves_empty_dir(self, tmp_path):
        store = SnapshotStore(tmp_path)
        for seq in (1, 2):
            store.save({"seq": seq}, seq=seq)
        store.clear()
        assert _leftovers(tmp_path) == []

    def test_keep_validates(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            SnapshotStore(tmp_path, keep=0)

    def test_null_checkpointer_disabled(self):
        assert NULL_CHECKPOINT.enabled is False


# ---------------------------------------------------------------------------
# corruption detection and fallback


class TestCorruption:
    def _two_snapshots(self, tmp_path):
        store = SnapshotStore(tmp_path, fingerprint={"job": "t"}, keep=3)
        store.save({"seq": 1, "good": True}, seq=1)
        store.save({"seq": 2, "good": True}, seq=2)
        return store

    def test_truncated_payload_falls_back(self, tmp_path):
        store = self._two_snapshots(tmp_path)
        payload = store._payload_path(2)
        payload.write_bytes(payload.read_bytes()[:10])
        rec = TraceRecorder()
        store._rec = rec
        seq, state = store.latest()
        assert (seq, state["seq"]) == (1, 1)
        counters = rec.report().metrics["counters"]
        assert counters["checkpoint.corrupt_detected"] == 1
        assert counters["checkpoint.fallbacks"] == 1

    def test_bitflip_payload_falls_back(self, tmp_path):
        store = self._two_snapshots(tmp_path)
        payload = store._payload_path(2)
        raw = bytearray(payload.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        payload.write_bytes(bytes(raw))  # same size: only the checksum trips
        seq, _ = store.latest()
        assert seq == 1

    def test_stale_manifest_missing_payload_falls_back(self, tmp_path):
        store = self._two_snapshots(tmp_path)
        store._payload_path(2).unlink()
        seq, _ = store.latest()
        assert seq == 1

    def test_unreadable_manifest_falls_back(self, tmp_path):
        store = self._two_snapshots(tmp_path)
        store._manifest_path(2).write_text("{not json")
        seq, _ = store.latest()
        assert seq == 1

    def test_all_corrupt_raises_typed_error(self, tmp_path):
        store = self._two_snapshots(tmp_path)
        for seq in (1, 2):
            store._payload_path(seq).write_bytes(b"x")
        with pytest.raises(CheckpointCorruptError) as err:
            store.latest()
        assert err.value.directory == str(tmp_path)
        assert sorted(s for s, _ in err.value.candidates) == [1, 2]

    def test_fingerprint_mismatch_raises(self, tmp_path):
        self._two_snapshots(tmp_path)
        other = SnapshotStore(tmp_path, fingerprint={"job": "other"})
        with pytest.raises(ResumeMismatchError) as err:
            other.latest()
        assert err.value.expected == {"job": "other"}
        assert err.value.found == {"job": "t"}

    def test_manifest_is_json_with_checksum(self, tmp_path):
        store = SnapshotStore(tmp_path, fingerprint={"job": "t"})
        manifest_path = store.save({"seq": 1}, seq=1)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["seq"] == 1
        assert len(manifest["sha256"]) == 64
        assert manifest["fingerprint"] == {"job": "t"}

    def test_pickle_tampering_same_length_detected(self, tmp_path):
        # adversarial-ish: replace the payload with a *valid* pickle of
        # the same length — the checksum must still reject it
        store = self._two_snapshots(tmp_path)
        payload = store._payload_path(2)
        n = len(payload.read_bytes())
        fake = pickle.dumps({"seq": 999})
        payload.write_bytes(fake.ljust(n, b"\x00")[:n])
        seq, state = store.latest()
        assert (seq, state["seq"]) == (1, 1)


# ---------------------------------------------------------------------------
# injected checkpoint faults


class TestCheckpointFaults:
    def test_torn_write_detected_on_resume(self, tmp_path):
        plan = FaultPlan([FaultSpec("torn_write", phase="checkpoint",
                                    attempt=1)])
        store = SnapshotStore(tmp_path, keep=3, fault_plan=plan)
        store.save({"seq": 1}, seq=1)
        store.save({"seq": 2}, seq=2)  # torn after commit
        seq, _ = store.latest()
        assert seq == 1

    def test_corrupt_snapshot_detected_on_resume(self, tmp_path):
        plan = FaultPlan([FaultSpec("corrupt_snapshot", phase="checkpoint",
                                    attempt=1)])
        store = SnapshotStore(tmp_path, keep=3, fault_plan=plan)
        store.save({"seq": 1}, seq=1)
        store.save({"seq": 2}, seq=2)  # bit-flipped after commit
        seq, _ = store.latest()
        assert seq == 1

    def test_crash_at_checkpoint_raises_after_commit(self, tmp_path):
        plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                    phase="checkpoint", attempt=0)])
        store = SnapshotStore(tmp_path, fault_plan=plan)
        with pytest.raises(InjectedCrashError) as err:
            store.save({"seq": 5}, seq=5)
        assert err.value.seq == 5
        # the crash fires *after* the commit: the snapshot is durable
        assert SnapshotStore(tmp_path).latest() == (5, {"seq": 5})


# ---------------------------------------------------------------------------
# streaming job crash/resume byte-identity


class TestStreamingJob:
    def test_fresh_run_matches_reference_and_leaves_no_scratch(
        self, tmp_path
    ):
        img = _image()
        ref = StreamingJob(img, tmp_path / "ref.npy").run()
        res = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=32,
        ).run()
        assert np.array_equal(np.asarray(res.labels), np.asarray(ref.labels))
        assert res.n_components == ref.n_components
        assert _leftovers(tmp_path / "ck") == []
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "ck", "out.npy", "ref.npy",
        ]

    def test_crash_then_resume_byte_identical(self, tmp_path):
        img = _image(rows=160)
        ref = StreamingJob(img, tmp_path / "ref.npy").run()
        plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                    phase="checkpoint", attempt=2)])
        job = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=32, fault_plan=plan,
        )
        with pytest.raises(InjectedCrashError):
            job.run()
        assert not (tmp_path / "out.npy").exists()  # never half-finalised
        res = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=32,
        ).run(resume=True)
        assert res.resumed_from == 96  # third save: rows 32, 64, 96
        assert (tmp_path / "out.npy").read_bytes() == (
            tmp_path / "ref.npy"
        ).read_bytes()
        assert res.components == ref.components
        assert _leftovers(tmp_path / "ck") == []

    def test_resume_after_torn_last_snapshot_falls_back(self, tmp_path):
        img = _image(rows=160)
        ref = StreamingJob(img, tmp_path / "ref.npy").run()
        plan = FaultPlan([
            FaultSpec("torn_write", phase="checkpoint", attempt=2),
            FaultSpec("crash_at_checkpoint", phase="checkpoint", attempt=2),
        ])
        job = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=32, keep=3, fault_plan=plan,
        )
        with pytest.raises(InjectedCrashError):
            job.run()
        res = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=32, keep=3,
        ).run(resume=True)
        assert res.resumed_from == 64  # seq 96 torn -> fallback to 64
        assert (tmp_path / "out.npy").read_bytes() == (
            tmp_path / "ref.npy"
        ).read_bytes()

    def test_resume_flag_without_snapshots_runs_fresh(self, tmp_path):
        img = _image(rows=64, cols=64)
        res = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=16,
        ).run(resume=True)
        assert res.resumed_from is None
        assert res.n_components > 0

    def test_fresh_run_clears_stale_snapshots(self, tmp_path):
        img = _image(rows=96, cols=64)
        plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                    phase="checkpoint", attempt=1)])
        with pytest.raises(InjectedCrashError):
            StreamingJob(
                img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
                every=16, fault_plan=plan,
            ).run()
        assert _leftovers(tmp_path / "ck") != []
        res = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=16,
        ).run()  # resume=False: stale snapshots must not survive
        assert res.resumed_from is None
        assert _leftovers(tmp_path / "ck") == []

    def test_resume_with_missing_work_file_is_typed(self, tmp_path):
        img = _image(rows=96, cols=64)
        plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                    phase="checkpoint", attempt=1)])
        with pytest.raises(InjectedCrashError):
            StreamingJob(
                img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
                every=16, fault_plan=plan,
            ).run()
        (tmp_path / "out.npy.partial").unlink()
        with pytest.raises(CheckpointCorruptError):
            StreamingJob(
                img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
                every=16,
            ).run(resume=True)

    def test_wrong_image_resume_is_mismatch(self, tmp_path):
        img = _image(rows=96, cols=64)
        plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                    phase="checkpoint", attempt=1)])
        with pytest.raises(InjectedCrashError):
            StreamingJob(
                img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
                every=16, fault_plan=plan,
            ).run()
        with pytest.raises(ResumeMismatchError):
            StreamingJob(
                _image(rows=128, cols=64), tmp_path / "out.npy",
                checkpoint_dir=tmp_path / "ck", every=16,
            ).run(resume=True)


# ---------------------------------------------------------------------------
# tiled job crash/resume byte-identity, per phase


class TestTiledJob:
    # 200x180 with 64x64 tiles: 12 tiles, 5 seams, 4 label blocks.
    # ``every`` and the crash attempt pick which phase dies.
    KW = {"tile_shape": (64, 64)}

    def _ref(self, img, tmp_path):
        return TiledJob(img, tmp_path / "ref.npy", **self.KW).run()

    def test_matches_tiled_label(self, tmp_path):
        img = _image()
        res = TiledJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=3, **self.KW,
        ).run()
        direct = tiled_label(img, tile_shape=(64, 64))
        assert np.array_equal(np.asarray(res.labels), direct.labels)
        assert res.n_components == direct.n_components
        assert _leftovers(tmp_path / "ck") == []
        assert not (tmp_path / "out.npy.prov").exists()
        assert not (tmp_path / "out.npy.partial").exists()

    # with every=3: 12 tiles save on attempts 0-2 (seqs 3/6/9), the 5
    # seams save once on attempt 3 (seq 12+3), the 4 label blocks save
    # once on attempt 4 (seq 12+5+3) — seqs stay monotone across phases
    @pytest.mark.parametrize(
        "attempt, expect_seq",
        [(1, 6), (3, 15), (4, 20)],
        ids=["tiles", "merge", "label"],
    )
    def test_crash_each_phase_resume_byte_identical(
        self, tmp_path, attempt, expect_seq
    ):
        img = _image()
        ref = self._ref(img, tmp_path)
        plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                    phase="checkpoint", attempt=attempt)])
        job = TiledJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=3, fault_plan=plan, **self.KW,
        )
        with pytest.raises(InjectedCrashError):
            job.run()
        res = TiledJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=3, **self.KW,
        ).run(resume=True)
        assert res.resumed_from == expect_seq
        assert (tmp_path / "out.npy").read_bytes() == (
            tmp_path / "ref.npy"
        ).read_bytes()
        assert res.n_components == ref.n_components
        assert _leftovers(tmp_path / "ck") == []
        assert not (tmp_path / "out.npy.prov").exists()

    def test_double_crash_double_resume(self, tmp_path):
        img = _image()
        self._ref(img, tmp_path)
        for attempt in (0, 1):
            plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                        phase="checkpoint",
                                        attempt=attempt)])
            with pytest.raises(InjectedCrashError):
                TiledJob(
                    img, tmp_path / "out.npy",
                    checkpoint_dir=tmp_path / "ck", every=3,
                    fault_plan=plan, **self.KW,
                ).run(resume=attempt > 0)
        res = TiledJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=3, **self.KW,
        ).run(resume=True)
        assert (tmp_path / "out.npy").read_bytes() == (
            tmp_path / "ref.npy"
        ).read_bytes()


# ---------------------------------------------------------------------------
# JobRunner: degradation + resume composition


class _FlakyPoolJob(TiledJob):
    """A tiled job whose 'processes' pool is broken, to force the ladder."""

    def _label_batch(self, batch_idx, origins):
        if self.pool == "processes":
            from repro.errors import BackendError

            raise BackendError("injected: processes pool is broken")
        return super()._label_batch(batch_idx, origins)


class TestJobRunner:
    def test_degrades_and_resumes(self, tmp_path):
        img = _image()
        ref = TiledJob(img, tmp_path / "ref.npy", tile_shape=(64, 64)).run()
        job = _FlakyPoolJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=3, tile_shape=(64, 64), workers=2, pool="processes",
        )
        from repro.faults import ResilienceConfig

        runner = JobRunner(
            job,
            degradation=DegradationPolicy(),
            resilience=ResilienceConfig(max_retries=1, backoff_base=0.0),
        )
        res = runner.run()
        assert res.meta["degraded_from"]["backend"] == "processes"
        assert res.meta["degraded_from"]["error"]
        assert job.backend_name in ("threads", "serial")
        assert (tmp_path / "out.npy").read_bytes() == (
            tmp_path / "ref.npy"
        ).read_bytes()

    def test_corrupt_directory_triggers_one_clean_restart(self, tmp_path):
        img = _image(rows=96, cols=64)
        plan = FaultPlan([FaultSpec("crash_at_checkpoint",
                                    phase="checkpoint", attempt=1)])
        with pytest.raises(InjectedCrashError):
            StreamingJob(
                img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
                every=16, fault_plan=plan,
            ).run()
        # rot every snapshot: resume must fall back to a clean restart
        for p in (tmp_path / "ck").glob("*.state.pkl"):
            p.write_bytes(b"rot")
        job = StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=16,
        )
        res = JobRunner(job).run(resume=True)
        assert res.resumed_from is None  # restarted from scratch
        ref = StreamingJob(img, tmp_path / "ref.npy").run()
        assert (tmp_path / "out.npy").read_bytes() == (
            tmp_path / "ref.npy"
        ).read_bytes()
        assert ref.n_components == res.n_components

    def test_checkpoint_counters_land_in_trace(self, tmp_path):
        img = _image(rows=96, cols=64)
        rec = TraceRecorder()
        StreamingJob(
            img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck",
            every=16, recorder=rec,
        ).run()
        counters = rec.report().metrics["counters"]
        assert counters["checkpoint.saves"] == 5  # rows 16..80
        assert counters["checkpoint.bytes"] > 0
        phases = {s.phase for s in rec.report().spans}
        assert "checkpoint.save" in phases
