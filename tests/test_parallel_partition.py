"""Row partitioning for PAREMSP."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.parallel.partition import RowChunk, partition_rows


def test_even_split():
    chunks = partition_rows(8, 10, 2)
    assert [(c.row_start, c.row_stop) for c in chunks] == [(0, 4), (4, 8)]
    assert [c.label_start for c in chunks] == [1, 41]


def test_remainder_pairs_dealt_evenly():
    chunks = partition_rows(10, 4, 3)  # 5 pairs over 3 chunks: 2,2,1
    assert [c.n_rows for c in chunks] == [4, 4, 2]


def test_odd_tail_row_goes_to_last_chunk():
    chunks = partition_rows(9, 4, 2)  # 4 pairs + 1 tail
    assert [c.n_rows for c in chunks] == [4, 5]
    assert chunks[-1].row_stop == 9


def test_more_threads_than_pairs():
    chunks = partition_rows(4, 4, 10)
    assert len(chunks) == 2
    assert all(c.n_rows == 2 for c in chunks)


def test_single_row_image():
    chunks = partition_rows(1, 7, 4)
    assert len(chunks) == 1
    assert chunks[0].row_start == 0
    assert chunks[0].row_stop == 1


def test_empty_image():
    assert partition_rows(0, 5, 2) == []
    assert partition_rows(5, 0, 2) == []


def test_one_thread_takes_everything():
    chunks = partition_rows(13, 3, 1)
    assert len(chunks) == 1
    assert chunks[0].row_stop == 13


def test_invalid_inputs():
    with pytest.raises(PartitionError):
        partition_rows(4, 4, 0)
    with pytest.raises(PartitionError):
        partition_rows(-1, 4, 2)


def test_chunk_dataclass_row_count():
    c = RowChunk(index=0, row_start=2, row_stop=8, label_start=9)
    assert c.n_rows == 6


@given(
    rows=st.integers(1, 200),
    cols=st.integers(1, 50),
    n_threads=st.integers(1, 32),
)
def test_property_partition_invariants(rows, cols, n_threads):
    chunks = partition_rows(rows, cols, n_threads)
    # full coverage, no overlap, in order
    assert chunks[0].row_start == 0
    assert chunks[-1].row_stop == rows
    for a, b in zip(chunks, chunks[1:]):
        assert a.row_stop == b.row_start
    # pair alignment for all but the last chunk
    for c in chunks[:-1]:
        assert c.n_rows % 2 == 0
        assert c.n_rows > 0
    # balanced to within one pair (+ the odd tail on the last chunk)
    sizes = [c.n_rows for c in chunks[:-1]]
    if sizes:
        assert max(sizes) - min(sizes) <= 2
    # disjoint, sufficient label ranges
    for c in chunks:
        assert c.label_start == c.row_start * cols + 1
    for a, b in zip(chunks, chunks[1:]):
        assert a.label_start + a.n_rows * cols <= b.label_start + cols
    assert len(chunks) <= n_threads
