"""The multi-host cluster coordinator: ``shard_label`` across hosts.

:func:`net_shard_label` runs the elastic sharded pipeline of
:mod:`repro.parallel.sharded` with the *ranks* replaced by **hosts** —
``repro-shard-worker`` daemons reached over the :mod:`.transport`
channels, or loopback "virtual hosts" forked by
:class:`VirtualHostPool` so CI can exercise every multi-host failure
mode on one machine. The division of labour:

* **bulk data stays on the shared filesystem** — the image memmap, the
  provisional-label memmap, forests, seam pairs, checkpoints and the
  durable done markers all live in the same scratch tree the
  single-host runtime uses; the sockets carry *control* only (task
  dispatch, replies, liveness), so the wire cost is independent of the
  raster size;
* **liveness is lease-based** (:class:`~.membership.LeaseTable` on the
  coordinator's monotonic clock): a host that stops answering pings
  loses its lease, its claimed tasks migrate to the survivors — the
  same claim-release path a dead local rank takes — and when the
  partition heals it rejoins with a bumped incarnation, its stale work
  deduplicated by the done markers;
* **degradation is a ladder**: unreachable-majority (quorum loss)
  steps down to the single-host elastic pool
  (:func:`~repro.parallel.sharded._run_phase`), which itself steps
  down to inline execution — each drop recorded as a reasoned
  ``meta["degraded_from"]``, never a silent behaviour change.

Byte-identity with serial ``tiled_label`` is inherited from the
sharded runtime: hosts execute exactly the tasks local ranks would,
against the same scratch tree, so the proof in
:mod:`repro.parallel.sharded`'s docstring applies unchanged.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import threading
import time

import numpy as np

from ...ccl.labeling import CCLResult, check_label_capacity
from ...errors import (
    ClusterQuorumError,
    NetError,
    PeerUnreachableError,
    PhaseTimeoutError,
)
from ...faults import (
    DEFAULT_RESILIENCE,
    NULL_PLAN,
    degradation_reason,
    record_injection,
)
from ...obs import NULL_RECORDER, PhaseTimer, get_recorder
from ...obs.runtime import get_runtime_aggregator
from ..backends.executor import executor_context
from ..sharded import (
    _compute_offsets,
    _ensure_shard_image,
    _finalize_output,
    _flatten_lut,
    _init_scratch,
    _open_prov,
    _phase_dir,
    _record_claims_released,
    _run_phase,
    _save_npy_atomic,
    _undone,
    build_reduce_schedule,
    plan_shards,
)
from ..supervisor import kill_workers
from .membership import LeaseTable
from .transport import NetConfig, PartitionLink, PeerClient
from .worker import serve

__all__ = ["parse_hosts", "VirtualHostPool", "NetPool", "net_shard_label"]

#: idle dispatcher / coordinator poll tick (seconds).
_NET_POLL = 0.02

#: default lease duration (seconds) — a partitioned host is declared
#: dead and its work migrated after this much ping silence.
DEFAULT_LEASE_DURATION = 2.0


def parse_hosts(spec) -> list[tuple[str, int]]:
    """Parse ``"host:port,host:port"`` (or an iterable of ``host:port``
    strings / ``(host, port)`` pairs) into address tuples.

    >>> parse_hosts("127.0.0.1:7071, 10.0.0.2:7071")
    [('127.0.0.1', 7071), ('10.0.0.2', 7071)]
    """
    if isinstance(spec, str):
        parts: list = [p.strip() for p in spec.split(",") if p.strip()]
    else:
        parts = list(spec)
    addrs: list[tuple[str, int]] = []
    for part in parts:
        if isinstance(part, (tuple, list)) and len(part) == 2:
            host, port = part
        else:
            host, _, port = str(part).strip().rpartition(":")
        if not host or not str(port).strip():
            raise ValueError(
                f"host entry {part!r} is not host:port (in {spec!r})"
            )
        try:
            addrs.append((str(host), int(port)))
        except ValueError:
            raise ValueError(
                f"host entry {part!r} has a non-numeric port"
            ) from None
    if not addrs:
        raise ValueError(f"no hosts in {spec!r}")
    return addrs


# ---------------------------------------------------------------------------
# loopback virtual hosts
# ---------------------------------------------------------------------------


def _virtual_host_main(port_file: str, parent_pid: int) -> None:
    server = serve(
        "127.0.0.1", 0, port_file=port_file, parent_pid=parent_pid
    )
    server.wait()


class VirtualHostPool:
    """N loopback worker hosts as forked local processes.

    The CI stand-in for real machines: each "host" is a
    :class:`~.worker.WorkerServer` in its own process on an ephemeral
    loopback port, sharing the coordinator's filesystem — so the full
    multi-host protocol (framing, leases, partitions, migration) runs
    unchanged, just with zero-latency links. Hosts watch the
    coordinator's pid and self-terminate if orphaned.
    """

    def __init__(self, n: int, spawn_timeout: float = 10.0) -> None:
        if n < 1:
            raise ValueError(f"need at least 1 virtual host, got {n}")
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-vhost-")
        ctx = executor_context()
        parent = os.getpid()
        self.procs = []
        port_files = []
        for i in range(n):
            pf = pathlib.Path(self._tmp.name) / f"host-{i}.port"
            proc = ctx.Process(
                target=_virtual_host_main,
                args=(str(pf), parent),
                name=f"net-vhost-{i}",
                daemon=True,
            )
            proc.start()
            self.procs.append(proc)
            port_files.append(pf)
        self.addrs: list[tuple[str, int]] = []
        deadline = time.monotonic() + spawn_timeout
        try:
            for pf in port_files:
                while not pf.exists():
                    if time.monotonic() > deadline:
                        raise PeerUnreachableError(
                            f"virtual host never published {pf.name} "
                            f"within {spawn_timeout:.1f}s",
                            peer=pf.name,
                            attempts=0,
                        )
                    time.sleep(0.01)
                host, _, port = pf.read_text().rpartition(":")
                self.addrs.append((host, int(port)))
        except Exception:
            self.close()
            raise

    def close(self) -> None:
        kill_workers(self.procs)
        self._tmp.cleanup()

    def __enter__(self) -> "VirtualHostPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# the task board (coordinator-side work queue over the done markers)
# ---------------------------------------------------------------------------


class _TaskBoard:
    """Thread-safe claim/done/release tracking for one phase.

    The in-memory twin of the scratch tree's done-marker directory:
    markers on disk are the *durable* record (they survive coordinator
    restarts and deduplicate migrated work), the board is the live
    dispatch state shared by the per-host dispatcher threads.
    """

    def __init__(self, pdir: pathlib.Path, tasks: list[str]) -> None:
        self._order = list(tasks)
        undone = set(_undone(pdir, tasks))
        self._pending = set(undone)
        self._claims: dict[str, int] = {}
        self._done = set(tasks) - undone
        self._failures: dict[str, int] = {}
        self._lock = threading.Lock()

    def claim(self, host: int) -> str | None:
        with self._lock:
            for task in self._order:
                if task in self._pending:
                    self._pending.discard(task)
                    self._claims[task] = host
                    return task
        return None

    def done(self, task: str) -> None:
        with self._lock:
            self._claims.pop(task, None)
            self._pending.discard(task)
            self._done.add(task)

    def release(self, task: str, host: int) -> None:
        with self._lock:
            if self._claims.get(task) == host and task not in self._done:
                del self._claims[task]
                self._pending.add(task)

    def release_host(self, host: int) -> int:
        """Migrate every task *host* holds back to pending."""
        with self._lock:
            mine = [t for t, h in self._claims.items() if h == host]
            for task in mine:
                del self._claims[task]
                self._pending.add(task)
            return len(mine)

    def fail(self, task: str) -> int:
        with self._lock:
            self._failures[task] = self._failures.get(task, 0) + 1
            return self._failures[task]

    def finished(self) -> bool:
        with self._lock:
            return not self._pending and not self._claims


# ---------------------------------------------------------------------------
# the host pool
# ---------------------------------------------------------------------------


class _Host:
    __slots__ = ("index", "addr", "name", "link", "ping", "work")

    def __init__(self, index: int, addr: tuple[str, int], run_id: str,
                 ping_config: NetConfig, work_config: NetConfig,
                 recorder, fault_plan) -> None:
        self.index = index
        self.addr = addr
        self.name = f"{addr[0]}:{addr[1]}"
        # one blackout switch covers both channels: a partition takes
        # out pings and work alike, exactly like a vanished route.
        self.link = PartitionLink()
        self.ping = PeerClient(
            addr, f"{run_id}:ping:{index}", ping_config,
            recorder=recorder, link=self.link,
        )
        self.work = PeerClient(
            addr, f"{run_id}:exec:{index}", work_config,
            recorder=recorder, fault_plan=fault_plan,
            fault_rank=index, link=self.link,
        )


def _net_count(recorder, name: str, n: int = 1, labels=None) -> None:
    """Count on the run recorder and, when a live ``/metrics`` endpoint
    is attached, on the ambient aggregator with host labels."""
    if recorder.enabled:
        recorder.count(name, n)
    agg = get_runtime_aggregator()
    if agg is not None:
        agg.inc(name, n, labels=labels)


class NetPool:
    """A set of worker hosts, their channels, leases and dispatchers.

    One pool spans the whole run; :meth:`run_phase` drives one shard
    phase across every host whose lease is alive, migrating work off
    hosts that go silent and welcoming back hosts that rejoin.
    """

    def __init__(
        self,
        addrs,
        *,
        config: NetConfig | None = None,
        recorder=None,
        fault_plan=None,
        lease_duration: float = DEFAULT_LEASE_DURATION,
        heartbeat_interval: float | None = None,
        quorum: int | None = None,
    ) -> None:
        addrs = [(h, int(p)) for h, p in addrs]
        if not addrs:
            raise ValueError("NetPool needs at least one host")
        self.config = config if config is not None else NetConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.fault_plan = fault_plan if fault_plan is not None else NULL_PLAN
        if lease_duration <= 0:
            raise ValueError(
                f"lease_duration must be > 0, got {lease_duration}"
            )
        self.lease_duration = float(lease_duration)
        self.heartbeat_interval = (
            float(heartbeat_interval)
            if heartbeat_interval is not None
            else max(0.05, self.lease_duration / 4.0)
        )
        self.quorum = (
            int(quorum) if quorum is not None
            else max(1, (len(addrs) + 1) // 2)
        )
        self.leases = LeaseTable(self.lease_duration)
        # liveness probes must resolve well inside one lease period, so
        # the ping channel gets its own sharp-deadline, no-retry config
        # (the call loop's retries would stretch one probe across the
        # whole lease and mask a dead host).
        ping_timeout = max(0.1, min(
            self.config.call_timeout, self.lease_duration / 2.0
        ))
        ping_config = NetConfig(
            connect_timeout=min(self.config.connect_timeout, ping_timeout),
            call_timeout=ping_timeout,
            exec_timeout=self.config.exec_timeout,
            max_retries=0,
        )
        run_id = f"{os.getpid():x}-{os.urandom(3).hex()}"
        self.hosts = [
            _Host(i, addr, run_id, ping_config, self.config,
                  self.recorder, self.fault_plan)
            for i, addr in enumerate(addrs)
        ]
        #: run-wide recovery tallies (mirrored into result meta).
        self.stats = {
            "net_tasks": 0,
            "tasks_deduped": 0,
            "task_errors": 0,
            "lease_expired": 0,
            "rejoined": 0,
            "partitions": 0,
        }
        self._stats_lock = threading.Lock()

    def _bump(self, key: str, n: int = 1) -> None:
        with self._stats_lock:
            self.stats[key] += n

    # -- membership -------------------------------------------------------

    def connect(self) -> tuple[tuple[str, ...], tuple[str, ...]]:
        """Probe every host once; returns (reachable, unreachable)."""
        dead: list[str] = []
        for host in self.hosts:
            self.leases.add(host.name)
            try:
                host.ping.call({"t": "ping"})
                self.leases.renew(host.name)
            except (NetError, OSError):
                self.leases.expire(host.name)
                dead.append(host.name)
        return self.leases.alive_members(), tuple(dead)

    def close(self) -> None:
        for host in self.hosts:
            host.ping.close()
            host.work.close()

    # -- one phase --------------------------------------------------------

    def run_phase(
        self,
        phase: str,
        tasks: list[str],
        payload: dict | None,
        ctx_wire: dict,
        *,
        phase_timeout: float,
        degrade: bool,
    ) -> dict:
        """Drive one phase's tasks across the alive hosts.

        Returns an agg dict shaped like the local ``_run_phase``'s; on
        quorum loss / watchdog expiry with *degrade* allowed the agg
        carries a reasoned ``degraded`` record and the caller finishes
        the remaining tasks down the ladder. Task completion truth is
        the done markers, so a later local continuation (or a healed
        host's stale reply) can never double-run work.
        """
        scratch = pathlib.Path(ctx_wire["scratch"])
        pdir = _phase_dir(scratch, phase)
        for sub in ("claim", "done", "hb"):
            (pdir / sub).mkdir(parents=True, exist_ok=True)

        agg: dict = {
            "tasks": len(tasks),
            "net_tasks": 0,
            "tasks_deduped": 0,
            "task_errors": 0,
            "lease_expired": 0,
            "rejoined": 0,
            "partitions": 0,
            "claims_released": 0,
            "degraded": None,
        }
        if not _undone(pdir, tasks):
            agg["skipped"] = True
            return agg

        # partition directives are arbitrated here, at the phase
        # boundary: the fault names the shard phase it blacks out and
        # `delay_seconds` is the outage duration before the link heals.
        if self.fault_plan.enabled:
            for host in self.hosts:
                spec = self.fault_plan.take(
                    "partition", phase, rank=host.index
                )
                if spec is not None:
                    record_injection(self.recorder, spec)
                    host.link.cut(spec.delay_seconds)
                    agg["partitions"] += 1
                    self._bump("partitions")
                    _net_count(
                        self.recorder, "net.partitions",
                        labels={"host": host.name},
                    )

        board = _TaskBoard(pdir, tasks)
        stop = threading.Event()
        threads: list[threading.Thread] = []
        dispatchers: dict[int, threading.Thread] = {}
        thread_lock = threading.Lock()
        poison: list[str] = []

        def dispatch(host: _Host) -> None:
            while not stop.is_set():
                if not self.leases.is_alive(host.name):
                    return
                task = board.claim(host.index)
                if task is None:
                    if board.finished():
                        return
                    time.sleep(_NET_POLL)
                    continue
                msg = {
                    "t": "exec",
                    "ctx": ctx_wire,
                    "phase": phase,
                    "task": task,
                    "node": (payload or {}).get(task),
                }
                try:
                    reply = host.work.call(
                        msg, timeout=self.config.exec_timeout
                    )
                except (NetError, OSError):
                    board.release(task, host.index)
                    time.sleep(_NET_POLL)
                    continue
                if reply.get("ok"):
                    if reply.get("cached"):
                        # the task was already done-marked (a migrated
                        # duplicate, or pre-partition work that landed):
                        # idempotency made the re-send a no-op.
                        with self._stats_lock:
                            agg["tasks_deduped"] += 1
                        self._bump("tasks_deduped")
                        _net_count(
                            self.recorder, "net.tasks_deduped",
                            labels={"host": host.name},
                        )
                    else:
                        with self._stats_lock:
                            agg["net_tasks"] += 1
                        self._bump("net_tasks")
                    board.done(task)
                else:
                    with self._stats_lock:
                        agg["task_errors"] += 1
                    self._bump("task_errors")
                    board.release(task, host.index)
                    if board.fail(task) > self.config.max_retries:
                        # every host rejects this task: a deterministic
                        # task error, not a transport problem. Hand it
                        # down the ladder where the real exception can
                        # surface in-process.
                        poison.append(
                            f"{task}: {reply.get('etype', 'Error')}: "
                            f"{reply.get('error', '?')}"
                        )
                        return
                    time.sleep(_NET_POLL)

        def start_dispatcher(host: _Host) -> None:
            with thread_lock:
                existing = dispatchers.get(host.index)
                if existing is not None and existing.is_alive():
                    return
                thread = threading.Thread(
                    target=dispatch, args=(host,),
                    name=f"net-dispatch-{phase}-{host.index}",
                    daemon=True,
                )
                dispatchers[host.index] = thread
                threads.append(thread)
                thread.start()

        def monitor() -> None:
            while not stop.is_set():
                for host in self.hosts:
                    try:
                        host.ping.call({"t": "ping"})
                    except (NetError, OSError):
                        continue
                    if self.leases.renew(host.name):
                        # expired -> renewed: the partition healed. New
                        # incarnation, fresh dispatcher; its first
                        # re-claims dedup against the done markers.
                        agg["rejoined"] += 1
                        self._bump("rejoined")
                        _net_count(
                            self.recorder, "net.rejoined",
                            labels={"host": host.name},
                        )
                        start_dispatcher(host)
                for name in self.leases.sweep():
                    host = next(
                        h for h in self.hosts if h.name == name
                    )
                    released = board.release_host(host.index)
                    agg["lease_expired"] += 1
                    agg["claims_released"] += released
                    self._bump("lease_expired")
                    _net_count(
                        self.recorder, "net.lease_expired",
                        labels={"host": host.name},
                    )
                    _record_claims_released(
                        self.recorder, f"host{host.index}", released
                    )
                stop.wait(self.heartbeat_interval)

        deadline = time.monotonic() + phase_timeout
        mon = threading.Thread(
            target=monitor, name=f"net-monitor-{phase}", daemon=True
        )
        threads.append(mon)
        mon.start()
        for host in self.hosts:
            if self.leases.is_alive(host.name):
                start_dispatcher(host)

        degrade_reason: dict | None = None
        try:
            while not board.finished():
                if poison:
                    err = NetError(
                        f"net phase {phase!r}: task failed on every "
                        f"host ({poison[0]})"
                    )
                    if not degrade:
                        raise err
                    degrade_reason = degradation_reason(
                        "net-sharded", err
                    )
                    break
                if time.monotonic() > deadline:
                    if self.recorder.enabled:
                        self.recorder.count("watchdog.timeout")
                    err = PhaseTimeoutError(
                        f"net phase {phase!r} watchdog expired after "
                        f"{phase_timeout:.1f}s with "
                        f"{len(_undone(pdir, tasks))} task(s) "
                        "unfinished",
                        phase=phase,
                        timeout=phase_timeout,
                    )
                    if not degrade:
                        raise err
                    degrade_reason = degradation_reason(
                        "net-sharded", err
                    )
                    break
                alive = self.leases.alive_members()
                if len(alive) < self.quorum:
                    unreachable = tuple(
                        h.name for h in self.hosts if h.name not in alive
                    )
                    err = ClusterQuorumError(
                        f"net phase {phase!r} lost quorum: "
                        f"{len(alive)} of {len(self.hosts)} host(s) "
                        f"reachable (need {self.quorum}); unreachable: "
                        f"{list(unreachable)}",
                        reachable=alive,
                        unreachable=unreachable,
                        quorum=self.quorum,
                    )
                    if not degrade:
                        raise err
                    degrade_reason = degradation_reason(
                        "net-sharded", err
                    )
                    break
                stop.wait(_NET_POLL)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=1.0)

        if degrade_reason is not None:
            agg["degraded"] = degrade_reason
            _net_count(self.recorder, "net.degraded")
        else:
            # every done marker this phase produced, whoever wrote it
            for task in tasks:
                try:
                    stats = json.loads(
                        (pdir / "done" / task).read_text()
                    )
                except (OSError, ValueError):
                    continue
                for key in ("tiles", "rescan_chunks", "seam_recovered"):
                    if stats.get(key):
                        agg[key] = agg.get(key, 0) + int(stats[key])
                if stats.get("resumed"):
                    agg.setdefault("resumed_tasks", []).append(task)
        return agg


# ---------------------------------------------------------------------------
# the multi-host label entry point
# ---------------------------------------------------------------------------


def _wire_image_path(image, scratch: pathlib.Path) -> str:
    """A filesystem path every host can ``np.load(mmap_mode='r')``.

    A ``.npy``-backed memmap is referenced in place; anything else is
    copied once into the scratch tree (which must be shared anyway).
    """
    filename = getattr(image, "filename", None)
    if filename:
        try:
            np.load(filename, mmap_mode="r")
            return str(filename)
        except (OSError, ValueError):
            pass  # raw (non-.npy) memmap: fall through to the copy
    path = scratch / "input.npy"
    if not path.exists():
        _save_npy_atomic(path, np.asarray(image))
    return str(path)


def net_shard_label(
    image,
    hosts=None,
    *,
    virtual_hosts: int | None = None,
    n_shards: int = 4,
    tile_shape: tuple[int, int] = (256, 256),
    connectivity: int = 8,
    checkpoint_dir: str | os.PathLike | None = None,
    checkpoint_every: int = 8,
    resume: bool = False,
    out: str | pathlib.Path | None = None,
    recorder=None,
    resilience=None,
    fault_plan=None,
    net_config: NetConfig | None = None,
    lease_duration: float = DEFAULT_LEASE_DURATION,
    heartbeat_interval: float | None = None,
    quorum_hosts: int | None = None,
    degrade: bool = True,
) -> CCLResult:
    """Label *image* with shard tasks spread across worker hosts.

    Output is byte-identical to
    ``tiled_label(image, tile_shape, connectivity)`` — under any number
    of hosts, partitions that heal, hosts that die, and every network
    fault of the chaos matrix; see docs/SHARDED.md ("Multi-host").

    Parameters
    ----------
    hosts:
        ``"host:port,host:port"`` (or a list) of running
        ``repro-shard-worker`` daemons sharing this coordinator's
        filesystem. Mutually exclusive with *virtual_hosts*.
    virtual_hosts:
        Spawn this many loopback worker processes instead — the CI
        harness for the full multi-host protocol on one machine.
    quorum_hosts:
        Minimum reachable hosts to keep the cluster rung running
        (default ``max(1, (n_hosts + 1) // 2)`` — an unreachable
        *majority* degrades). Below it the run steps down to the
        single-host elastic pool, then inline, each drop recorded as a
        reasoned ``meta["degraded_from"]`` — unless ``degrade=False``,
        in which case :class:`~repro.errors.ClusterQuorumError`
        propagates.
    lease_duration:
        Ping silence (seconds, coordinator's monotonic clock) after
        which a host is declared dead and its claimed tasks migrate.
    net_config:
        Transport knobs (:class:`~.transport.NetConfig`): timeouts
        (argument > ``REPRO_NET_*`` env > default), retry budget,
        backoff shape.

    Everything else (sharding, checkpoints, ``resume``, ``out``) means
    exactly what it means for :func:`repro.parallel.sharded.shard_label`.
    """
    rec = recorder if recorder is not None else get_recorder()
    resilience = resilience if resilience is not None else DEFAULT_RESILIENCE
    fault_plan = fault_plan if fault_plan is not None else NULL_PLAN
    if (hosts is None) == (virtual_hosts is None):
        raise ValueError(
            "exactly one of hosts= or virtual_hosts= must be given"
        )
    th, tw = tile_shape
    if th < 1 or tw < 1:
        raise ValueError(f"tile dimensions must be >= 1, got {tile_shape!r}")
    image = _ensure_shard_image(image)
    rows, cols = image.shape
    check_label_capacity((rows, cols))
    if rows == 0 or cols == 0:
        from ..tiled import tiled_label

        return tiled_label(
            image, tile_shape=tile_shape, connectivity=connectivity,
            recorder=rec, out=out,
        )

    plan = plan_shards(rows, cols, (th, tw), n_shards)
    S = plan.n_shards
    # the same fingerprint as the single-host runtime on purpose: a
    # net-mode scratch is resumable by shard_label and vice versa.
    fingerprint = {
        "kind": "sharded",
        "shape": [rows, cols],
        "dtype": str(np.asarray(image).dtype),
        "tile_shape": [th, tw],
        "connectivity": connectivity,
        "n_shards": S,
    }

    tmp_ctx = None
    if checkpoint_dir is not None:
        ck_root = pathlib.Path(checkpoint_dir)
        ck_root.mkdir(parents=True, exist_ok=True)
        scratch = ck_root / "scratch"
        if not resume and scratch.exists():
            shutil.rmtree(scratch)
    else:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="repro-netshard-")
        scratch = pathlib.Path(tmp_ctx.name) / "scratch"

    vpool: VirtualHostPool | None = None
    pool: NetPool | None = None
    mark = rec.mark()
    timer = PhaseTimer(rec)
    try:
        _init_scratch(scratch, fingerprint, rows, cols)
        image_path = _wire_image_path(image, scratch)

        ctx = {
            "scratch": str(scratch),
            "image": image,
            "plan": plan,
            "connectivity": connectivity,
            "checkpoint_every": checkpoint_every,
            "use_checkpoint": checkpoint_dir is not None,
            "fingerprint": fingerprint,
        }
        ctx_wire = {
            "scratch": str(scratch),
            "image_path": image_path,
            "rows": rows,
            "cols": cols,
            "tile_shape": [th, tw],
            "bands": [list(b) for b in plan.bands],
            "connectivity": connectivity,
            "checkpoint_every": checkpoint_every,
            "use_checkpoint": checkpoint_dir is not None,
            "fingerprint": fingerprint,
        }

        if virtual_hosts is not None:
            vpool = VirtualHostPool(int(virtual_hosts))
            addrs = vpool.addrs
        else:
            addrs = parse_hosts(hosts)
        quorum = (
            int(quorum_hosts) if quorum_hosts is not None
            else max(1, (len(addrs) + 1) // 2)
        )
        pool = NetPool(
            addrs,
            config=net_config,
            recorder=rec,
            fault_plan=fault_plan,
            lease_duration=lease_duration,
            heartbeat_interval=heartbeat_interval,
            quorum=quorum,
        )
        alive, unreachable = pool.connect()
        net_ok = len(alive) >= quorum
        degraded_from: dict | None = None
        if not net_ok:
            err = ClusterQuorumError(
                f"only {len(alive)} of {len(addrs)} host(s) reachable "
                f"at start (need {quorum}); unreachable: "
                f"{list(unreachable)}",
                reachable=alive,
                unreachable=unreachable,
                quorum=quorum,
            )
            if not degrade:
                raise err
            degraded_from = degradation_reason("net-sharded", err)
            _net_count(rec, "net.degraded")

        local_ranks = max(1, min(S, 8))
        phase_stats: dict[str, dict] = {}

        def run(phase: str, tasks: list[str], payload: dict | None) -> None:
            nonlocal net_ok, degraded_from
            net_stats = None
            if net_ok:
                net_stats = pool.run_phase(
                    phase, tasks, payload, ctx_wire,
                    phase_timeout=resilience.phase_timeout,
                    degrade=degrade,
                )
                if net_stats.get("degraded"):
                    # quorum loss (or a poisoned task) mid-run: step
                    # down the ladder for the rest of the job. The done
                    # markers make the scratch resume-correct, so the
                    # local pool only runs what the hosts did not.
                    net_ok = False
                    if degraded_from is None:
                        degraded_from = net_stats["degraded"]
            if not net_ok:
                local = _run_phase(
                    ctx, phase, tasks, payload,
                    n_ranks=local_ranks,
                    resilience=resilience,
                    fault_plan=fault_plan,
                    recorder=rec,
                    quorum=1,
                    heartbeat_timeout=None,
                    degrade=degrade,
                )
                if net_stats is not None:
                    local["net"] = net_stats
                phase_stats[phase] = local
            else:
                phase_stats[phase] = net_stats

        with timer.time("scan"):
            run("scan", [f"shard-{s:04d}" for s in range(S)], None)

        offsets, totals, total = _compute_offsets(scratch, S)

        with timer.time("seam"):
            if S > 1:
                run("seam", [f"seam-{s:04d}" for s in range(S - 1)], None)

        levels, top_ref = build_reduce_schedule(S)
        with timer.time("reduce"):
            for level, nodes in enumerate(levels):
                payload = {node["id"]: node for node in nodes}
                run(
                    f"reduce-{level}",
                    [node["id"] for node in nodes],
                    payload,
                )

        with timer.time("flatten"):
            lut, n_components = _flatten_lut(ctx, top_ref, total)

        with timer.time("label"):
            prov = _open_prov(ctx, "r")
            final = _finalize_output(lut, prov, plan, offsets, totals, out)
            del prov

        net_totals = dict(pool.stats)
        shutil.rmtree(scratch, ignore_errors=True)
    finally:
        if pool is not None:
            pool.close()
        if vpool is not None:
            vpool.close()
        if tmp_ctx is not None:
            tmp_ctx.cleanup()

    if rec.enabled:
        rec.gauge("net.n_hosts", len(addrs))
        rec.gauge("shard.n_shards", S)
    meta = {
        "n_shards": S,
        "n_hosts": len(addrs),
        "hosts": [f"{h}:{p}" for h, p in addrs],
        "virtual_hosts": virtual_hosts is not None,
        "quorum_hosts": quorum,
        "tile_shape": (th, tw),
        "n_tiles": plan.n_tiles,
        "reduce_levels": len(levels),
        "phases": phase_stats,
        "net": net_totals,
    }
    if degraded_from is not None:
        meta["degraded_from"] = degraded_from
    return CCLResult(
        labels=final,
        n_components=n_components,
        provisional_count=total,
        phase_seconds=timer.seconds,
        algorithm="net-sharded",
        meta=meta,
        timings=rec.report(since=mark) if rec.enabled else None,
    )
