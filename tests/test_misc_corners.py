"""Remaining coverage corners across the package."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.report import render_series, render_table
from repro.mp import SpmdError, run_spmd
from repro.parallel import paremsp
from repro.simmachine import CostModel


def test_paremsp_simulated_honours_custom_cost_model(rng):
    """The cost_model kwarg must reach the simulated backend."""
    img = (rng.random((24, 24)) < 0.5).astype(np.uint8)
    zero = CostModel(
        t_pixel=0, t_read=0, t_merge=0, t_step=0, t_lock=0,
        t_flatten=0, t_label=0, t_spawn=0, t_barrier=0,
    )
    result = paremsp(img, n_threads=4, backend="simulated", cost_model=zero)
    assert result.total_seconds == 0.0
    assert result.n_components > 0


def test_paremsp_cost_model_ignored_by_real_backends(rng):
    img = (rng.random((12, 12)) < 0.5).astype(np.uint8)
    result = paremsp(img, n_threads=2, backend="serial", cost_model=None)
    assert result.total_seconds > 0.0


def test_run_spmd_timeout_surfaces_hung_ranks():
    def program(comm):
        if comm.rank == 1:
            time.sleep(5.0)
        return comm.rank

    with pytest.raises(SpmdError) as info:
        run_spmd(program, 2, timeout=0.4)
    assert 1 in info.value.failures


def test_render_series_handles_missing_points():
    out = render_series({"a": {1: 1.0, 4: 3.0}, "b": {1: 1.0, 2: 1.5}})
    lines = out.splitlines()
    assert any("4" in l for l in lines)
    # missing b@4 renders as an empty cell, not a crash
    assert "3.00" in out and "1.50" in out


def test_render_table_ragged_rows_padded():
    out = render_table(["a", "b", "c"], [["x"], ["y", "1", "2"]])
    assert "x" in out and "2" in out


def test_render_gantt_degenerate():
    from repro.simmachine import simulate_paremsp
    from repro.simmachine.trace import render_gantt

    zero = CostModel(
        t_pixel=0, t_read=0, t_merge=0, t_step=0, t_lock=0,
        t_flatten=0, t_label=0, t_spawn=0, t_barrier=0,
    )
    sim = simulate_paremsp(
        np.ones((4, 4), dtype=np.uint8), 2, cost_model=zero
    )
    assert "zero-duration" in render_gantt(sim)


def test_simulate_empty_image_trace():
    from repro.simmachine import simulate_paremsp
    from repro.simmachine.trace import build_trace

    sim = simulate_paremsp(np.zeros((0, 0), dtype=np.uint8), 2)
    spans = build_trace(sim)
    # spawn + label lanes may exist; nothing crashes
    assert all(s.duration >= 0 for s in spans)


def test_connectivity_enum_round_trip():
    from repro.types import Connectivity

    assert int(Connectivity.EIGHT) == 8
    assert Connectivity(Connectivity.FOUR) is Connectivity.FOUR


def test_grayscale_runs_single_column(rng):
    from repro.ccl.grayscale import grayscale_label_runs
    from repro.verify.gray_oracle import gray_flood_fill_label

    img = rng.integers(0, 3, size=(9, 1))
    got = grayscale_label_runs(img, 8)
    _, n = gray_flood_fill_label(img, 8, 0)
    assert got.n_components == n


def test_distributed_label_rank_results_only_root_returns(rng):
    from repro.mp import run_spmd
    from repro.parallel.distributed import distributed_label_program

    img = (rng.random((10, 8)) < 0.5).astype(np.uint8)
    results = run_spmd(distributed_label_program, 3, img, 8)
    assert results[0] is not None
    assert results[1] is None and results[2] is None
