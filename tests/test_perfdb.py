"""The perf-history DB: records, append-only storage, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.perfdb import (
    RECORD_SCHEMA_VERSION,
    append_record,
    bootstrap_ci,
    build_record,
    compare_records,
    environment_fingerprint,
    latest_record,
    list_records,
    load_record,
)


def make_record(benchmark="bench", scale=1.0, created=1_000_000.0, **kw):
    reps = [0.100 * scale, 0.104 * scale, 0.102 * scale, 0.101 * scale]
    phases = {
        "scan": [0.070 * scale, 0.072 * scale, 0.071 * scale,
                 0.0705 * scale],
        "merge": [0.004, 0.0041, 0.004, 0.00405],
    }
    return build_record(
        benchmark, reps, phases=phases, warmup=1, created=created, **kw
    )


class TestEnvironmentFingerprint:
    def test_fields(self):
        env = environment_fingerprint(n_threads=4)
        assert set(env) == {
            "git_sha", "python", "numpy", "platform", "machine",
            "processor", "cpu_count", "n_threads",
        }
        assert env["n_threads"] == 4
        assert env["python"].count(".") == 2

    def test_git_sha_in_this_repo(self):
        sha = environment_fingerprint()["git_sha"]
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


class TestBootstrapCI:
    def test_brackets_the_median(self):
        values = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02, 0.98]
        lo, hi = bootstrap_ci(values)
        assert lo <= 1.02 <= hi
        assert lo < hi

    def test_deterministic(self):
        values = [1.0, 1.2, 0.8, 1.1]
        assert bootstrap_ci(values) == bootstrap_ci(values)

    def test_single_value_collapses(self):
        assert bootstrap_ci([2.5]) == (2.5, 2.5)

    def test_rejects_empty_and_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


class TestBuildRecord:
    def test_shape(self):
        record = make_record()
        assert record["schema_version"] == RECORD_SCHEMA_VERSION
        assert record["benchmark"] == "bench"
        assert record["total"]["median"] == pytest.approx(0.1015)
        assert len(record["total"]["reps"]) == 4
        lo, hi = record["total"]["ci95"]
        assert lo <= record["total"]["median"] <= hi
        assert set(record["phases"]) == {"scan", "merge"}
        assert record["created_utc"].endswith("Z")
        assert "git_sha" in record["env"]

    def test_rejects_mismatched_phase_lengths(self):
        with pytest.raises(ValueError, match="reps"):
            build_record("b", [0.1, 0.2], phases={"scan": [0.1]})

    def test_rejects_empty_reps(self):
        with pytest.raises(ValueError):
            build_record("b", [])


class TestStorage:
    def test_append_and_load(self, tmp_path):
        record = make_record()
        path = append_record(record, tmp_path)
        assert load_record(path)["total"] == record["total"]

    def test_append_only_never_overwrites(self, tmp_path):
        record = make_record()
        p1 = append_record(record, tmp_path)
        p2 = append_record(record, tmp_path)  # same name -> new file
        assert p1 != p2
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_list_sorted_by_created(self, tmp_path):
        newer = make_record(created=2_000_000.0)
        older = make_record(created=1_000_000.0)
        append_record(newer, tmp_path)
        append_record(older, tmp_path)
        records = list_records(tmp_path)
        assert [r["created"] for _, r in records] == [1_000_000.0, 2_000_000.0]

    def test_latest_and_benchmark_filter(self, tmp_path):
        append_record(make_record("a", created=1.0), tmp_path)
        append_record(make_record("b", created=2.0), tmp_path)
        assert latest_record(tmp_path)[1]["benchmark"] == "b"
        assert latest_record(tmp_path, benchmark="a")[1]["benchmark"] == "a"
        assert latest_record(tmp_path, benchmark="zzz") is None

    def test_list_skips_foreign_json(self, tmp_path):
        (tmp_path / "notes.json").write_text('{"hello": 1}')
        (tmp_path / "broken.json").write_text("{nope")
        append_record(make_record(), tmp_path)
        assert len(list_records(tmp_path)) == 1

    def test_missing_dir_lists_empty(self, tmp_path):
        assert list_records(tmp_path / "absent") == []

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"schema_version": 99}))
        with pytest.raises(ValueError, match="schema"):
            load_record(path)


class TestCompare:
    def test_no_movement_is_ok(self):
        cmp = compare_records(make_record(), make_record())
        assert cmp.ok
        assert not cmp.regressions
        assert "verdict: ok" in cmp.render()

    def test_total_regression_detected(self):
        cmp = compare_records(make_record(), make_record(scale=1.5))
        assert not cmp.ok
        names = [r.name for r in cmp.regressions]
        assert "total" in names

    def test_improvement_is_not_a_regression(self):
        cmp = compare_records(make_record(), make_record(scale=0.5))
        assert cmp.ok
        assert cmp.improvements

    def test_phase_threshold_independent_of_total(self):
        # scan x1.8: past the 0.5 phase threshold; merge untouched
        base = make_record()
        new = make_record()
        for key in ("reps", "ci95"):
            new["phases"]["scan"][key] = [
                v * 1.8 for v in new["phases"]["scan"][key]
            ]
        new["phases"]["scan"]["median"] *= 1.8
        cmp = compare_records(base, new)
        assert [r.name for r in cmp.regressions] == ["phase:scan"]

    def test_hard_regression_past_3x(self):
        cmp = compare_records(make_record(), make_record(scale=4.0))
        assert cmp.has_hard
        assert any(r.hard and r.name == "total" for r in cmp.regressions)

    def test_within_noise_does_not_count(self):
        # widen the baseline CI so the moved median stays inside it
        base = make_record()
        new = make_record(scale=1.4)
        base["total"]["ci95"] = [0.05, 0.30]
        new["total"]["ci95"] = [0.05, 0.30]
        for p in base["phases"].values():
            p["ci95"] = [0.0, 10.0]
        for p in new["phases"].values():
            p["ci95"] = [0.0, 10.0]
        cmp = compare_records(base, new)
        assert cmp.regressions  # still listed...
        assert all(r.within_noise for r in cmp.regressions)
        assert cmp.ok  # ...but not fatal

    def test_hard_overrules_noise(self):
        base = make_record()
        new = make_record(scale=5.0)
        base["total"]["ci95"] = [0.0, 10.0]
        new["total"]["ci95"] = [0.0, 10.0]
        for old_p, new_p in zip(base["phases"].values(),
                                new["phases"].values()):
            old_p["ci95"] = [0.0, 10.0]
            new_p["ci95"] = [0.0, 10.0]
        cmp = compare_records(base, new)
        assert not cmp.ok
        assert cmp.has_hard

    def test_rejects_different_benchmarks(self):
        with pytest.raises(ValueError, match="different benchmarks"):
            compare_records(make_record("a"), make_record("b"))

    def test_phases_in_only_one_record_ignored(self):
        base = make_record()
        new = make_record()
        del new["phases"]["merge"]
        new["phases"]["relabel"] = new["phases"]["scan"]
        cmp = compare_records(base, new)
        assert all("merge" not in r.name and "relabel" not in r.name
                   for r in cmp.regressions + cmp.improvements)

    def test_as_dict(self):
        cmp = compare_records(make_record(), make_record(scale=1.5))
        d = cmp.as_dict()
        assert d["ok"] is False
        assert d["regressions"][0]["name"] == "total"
        assert d["regressions"][0]["ratio"] == pytest.approx(1.5, rel=0.05)
