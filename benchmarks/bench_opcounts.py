"""Operation-count ablation bench: the machine-independent Table II.

Times the static analyzers themselves (they must be cheap enough to run
inside simulation sweeps) and prints/asserts the scan-strategy ablation.
"""

from __future__ import annotations

from repro.bench.experiments.opcounts import run_opcounts
from repro.ccl.opcount import decision_tree_opcounts, tworow_opcounts
from repro.data import blobs


def test_static_analyzer_decision_tree(benchmark):
    img = blobs((256, 256), density=0.48, seed=1)
    counts = benchmark(decision_tree_opcounts, img)
    assert counts.pixel_visits == img.size


def test_static_analyzer_tworow(benchmark):
    img = blobs((256, 256), density=0.48, seed=1)
    counts = benchmark(tworow_opcounts, img)
    assert counts.pixel_visits == img.size // 2


def test_opcounts_report(capsys):
    report = run_opcounts(scale=0.03)
    with capsys.disabled():
        print("\n" + report.render())
    for suite, rec in report.data.items():
        dt = rec["static"]["decision_tree"]
        tr = rec["static"]["tworow"]
        assert tr.neighbor_reads <= dt.neighbor_reads, suite
