"""The repro-label command-line tool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data import blobs, write_pnm
from repro.data.pnm import read_pnm
from repro.verify import flood_fill_label


@pytest.fixture
def pbm_image(tmp_path, rng):
    img = blobs((32, 32), density=0.45, seed=77)
    path = tmp_path / "input.pbm"
    write_pnm(path, img)
    return path, img


def test_parser_defaults():
    args = build_parser().parse_args(["in.pbm", "out.npy"])
    assert args.algorithm == "aremsp"
    assert args.connectivity == 8
    assert args.level == 0.5


def test_label_to_npy(pbm_image, tmp_path, capsys):
    path, img = pbm_image
    out = tmp_path / "labels.npy"
    rc = main([str(path), str(out)])
    assert rc == 0
    labels = np.load(out)
    _, n = flood_fill_label(img, 8)
    assert int(labels.max()) == n
    assert "components" in capsys.readouterr().out


def test_label_to_pgm_roundtrip(pbm_image, tmp_path):
    path, img = pbm_image
    out = tmp_path / "labels.pgm"
    assert main([str(path), str(out)]) == 0
    labels = read_pnm(out)
    _, n = flood_fill_label(img, 8)
    assert int(labels.max()) == n


def test_grayscale_input_binarized(tmp_path):
    gray = (np.random.default_rng(0).random((16, 16)) * 255).astype(np.uint8)
    path = tmp_path / "gray.pgm"
    write_pnm(path, gray)
    out = tmp_path / "labels.npy"
    assert main([str(path), str(out), "--level", "0.5"]) == 0
    labels = np.load(out)
    from repro.data import im2bw

    _, n = flood_fill_label(im2bw(gray, 0.5), 8)
    assert int(labels.max()) == n


def test_npy_input(tmp_path, rng):
    img = (rng.random((12, 12)) < 0.5).astype(np.uint8)
    path = tmp_path / "input.npy"
    np.save(path, img)
    out = tmp_path / "labels.npy"
    assert main([str(path), str(out)]) == 0
    _, n = flood_fill_label(img, 8)
    assert int(np.load(out).max()) == n


def test_min_area_filter(pbm_image, tmp_path):
    path, img = pbm_image
    out_all = tmp_path / "all.npy"
    out_big = tmp_path / "big.npy"
    main([str(path), str(out_all)])
    main([str(path), str(out_big), "--min-area", "20"])
    assert np.load(out_big).max() <= np.load(out_all).max()


def test_preprocessing_flags(tmp_path):
    ring = np.ones((6, 6), dtype=np.uint8)
    ring[2:4, 2:4] = 0
    path = tmp_path / "ring.pbm"
    write_pnm(path, ring)
    out = tmp_path / "labels.npy"
    main([str(path), str(out), "--fill-holes"])
    assert (np.load(out) > 0).all()
    main([str(path), str(out), "--clear-border"])
    assert np.load(out).max() == 0


def test_vectorized_engine_flag(pbm_image, tmp_path):
    path, img = pbm_image
    out = tmp_path / "labels.npy"
    assert main([str(path), str(out), "--engine", "vectorized"]) == 0
    _, n = flood_fill_label(img, 8)
    assert int(np.load(out).max()) == n


def test_stats_output(pbm_image, tmp_path, capsys):
    path, _ = pbm_image
    out = tmp_path / "labels.npy"
    main([str(path), str(out), "--stats"])
    text = capsys.readouterr().out
    assert "area" in text
    assert "centroid" in text


def test_ppm_output_is_colorized(pbm_image, tmp_path):
    from repro.analysis import colorize_labels
    from repro.verify import flood_fill_label

    path, img = pbm_image
    out = tmp_path / "labels.ppm"
    assert main([str(path), str(out)]) == 0
    rgb = read_pnm(out)
    assert rgb.ndim == 3 and rgb.shape[-1] == 3
    labels, _ = flood_fill_label(img, 8)
    assert np.array_equal(rgb, colorize_labels(labels))


def test_missing_input(tmp_path, capsys):
    rc = main([str(tmp_path / "nope.pbm"), str(tmp_path / "o.npy")])
    assert rc == 2
    assert "no such file" in capsys.readouterr().err


def test_many_components_use_16bit_pgm(tmp_path):
    # > 255 isolated pixels
    img = np.zeros((40, 40), dtype=np.uint8)
    img[::2, ::2] = 1
    path = tmp_path / "dots.pbm"
    write_pnm(path, img)
    out = tmp_path / "labels.pgm"
    assert main([str(path), str(out)]) == 0
    labels = read_pnm(out)
    assert labels.dtype == np.uint16
    assert int(labels.max()) == 400

def test_hosts_flags_require_shards(pbm_image, tmp_path, capsys):
    path, _ = pbm_image
    out = tmp_path / "labels.npy"
    rc = main([str(path), str(out), "--virtual-hosts", "2"])
    assert rc == 2
    assert "--hosts/--virtual-hosts require --shards" in capsys.readouterr().err
    rc = main([
        str(path), str(out), "--shards", "2",
        "--hosts", "127.0.0.1:1", "--virtual-hosts", "2",
    ])
    assert rc == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_virtual_hosts_label_matches_serial(pbm_image, tmp_path, capsys):
    path, img = pbm_image
    out = tmp_path / "labels.npy"
    rc = main([
        str(path), str(out), "--shards", "2",
        "--virtual-hosts", "2", "--tile-shape", "8x8",
    ])
    assert rc == 0
    _, n = flood_fill_label(img, 8)
    assert int(np.load(out).max()) == n
    assert "over 2 host(s)" in capsys.readouterr().out
