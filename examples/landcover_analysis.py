#!/usr/bin/env python
"""Land-cover patch analysis — the paper's NLCD scenario.

The paper's largest workloads are binarized US National Land Cover
Database rasters. This example runs that pipeline end to end on the
synthetic NLCD stand-in: pick a land-cover class, label its patches,
then answer the questions a GIS analyst actually asks — patch count,
size distribution, largest contiguous patch, and fragmentation after
filtering out slivers.

Run:  python examples/landcover_analysis.py
"""

import numpy as np

import repro
from repro.analysis import (
    areas,
    component_stats,
    filter_components,
    largest_component,
    size_histogram,
)
from repro.data.datasets import _landcover_raster


def main() -> None:
    # --- synthesize a multi-class land-cover raster -----------------------
    side = 512
    n_classes = 8
    raster = _landcover_raster((side, side), n_classes=n_classes, seed=2006)
    print(f"land-cover raster: {raster.shape}, {n_classes} classes")
    for k in range(n_classes):
        share = float((raster == k).mean())
        print(f"  class {k}: {share:6.1%} of area")

    # --- binarize one class and label its patches -------------------------
    target = 0  # e.g. "forest"
    mask = (raster == target).astype(np.uint8)
    labels, n_patches = repro.label(mask, engine="vectorized")
    print(f"\nclass {target}: {n_patches} patches "
          f"covering {mask.mean():.1%} of the raster")

    # --- patch statistics ---------------------------------------------------
    stats = component_stats(labels)
    a = stats.areas
    print(f"patch areas: min {a.min()}, median {int(np.median(a))}, "
          f"max {a.max()} px")
    counts, edges = size_histogram(labels, bins=8)
    print("size histogram (log-spaced bins):")
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(1 + 40 * c / max(1, counts.max())) if c else ""
        print(f"  {lo:9.0f}-{hi:9.0f} px: {c:5d} {bar}")

    # --- largest contiguous patch ------------------------------------------
    biggest = largest_component(labels)
    r0, c0, r1, c1 = stats.bounding_boxes[int(np.argmax(a))]
    print(f"\nlargest patch: {biggest.sum()} px, bbox rows {r0}-{r1}, "
          f"cols {c0}-{c1}")

    # --- drop sliver patches (a standard land-cover cleanup) ---------------
    min_patch = 32
    cleaned = filter_components(labels, min_area=min_patch)
    kept = int(cleaned.max())
    removed_px = int((labels > 0).sum() - (cleaned > 0).sum())
    print(f"\nafter removing patches < {min_patch} px: "
          f"{kept} patches remain ({n_patches - kept} slivers, "
          f"{removed_px} px dropped)")

    # --- per-class patch census --------------------------------------------
    print("\npatch census across all classes:")
    for k in range(n_classes):
        class_mask = (raster == k).astype(np.uint8)
        class_labels, n_k = repro.label(class_mask, engine="vectorized")
        mean_area = (
            float(areas(class_labels).mean()) if n_k else 0.0
        )
        print(f"  class {k}: {n_k:4d} patches, mean {mean_area:8.1f} px")


if __name__ == "__main__":
    main()
