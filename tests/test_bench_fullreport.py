"""The one-shot reproduction report and its headline-claim gate."""

from __future__ import annotations

import pytest

from repro.bench.fullreport import generate_full_report, headline_claims


@pytest.fixture(scope="module")
def report_and_data():
    return generate_full_report(scale=0.02)


def test_markdown_structure(report_and_data):
    markdown, reports = report_and_data
    assert markdown.startswith("# Reproduction report")
    assert "## Headline claims" in markdown
    for rep in reports.values():
        assert rep.title in markdown


def test_all_experiments_present(report_and_data):
    _, reports = report_and_data
    assert set(reports) == {
        "table2",
        "table3",
        "table4",
        "fig4",
        "fig5",
        "opcounts",
        "weak",
        "granularity",
    }


def test_headline_claims_all_reproduce(report_and_data):
    """The repository's core promise: every headline claim holds on a
    fresh run. Deterministic claims (fig4/fig5, simulated machine) must
    always hold; the Table II timing claims are CPython-noise-sensitive
    at tiny scales, so they are asserted leniently (no more than one
    may flip on a given run)."""
    _, reports = report_and_data
    claims = headline_claims(reports)
    assert len(claims) == 6
    deterministic = [c for c in claims if "speedup" in c[0] or "merge" in c[0]]
    for claim, holds, evidence in deterministic:
        assert holds, f"{claim}: {evidence}"
    timing = [c for c in claims if c not in deterministic]
    flipped = [c for c in timing if not c[1]]
    assert len(flipped) <= 1, flipped


def test_cli_report_to_file(tmp_path, capsys):
    from repro.bench.cli import main

    out = tmp_path / "REPORT.md"
    rc = main(["report", "--scale", "0.02", "--out", str(out)])
    assert rc == 0
    text = out.read_text()
    assert "Headline claims" in text
    assert "Table II" in text
