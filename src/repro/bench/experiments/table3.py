"""Table III — the NLCD image ladder.

The paper's Table III simply lists the six NLCD images and their sizes
(12 to 465.20 MB). Our reproduction reports, for each rung: the nominal
(paper) size it stands in for, the stand-in's shape and actual size, its
foreground density and component count — the quantities that make the
scaling experiments interpretable.
"""

from __future__ import annotations

from ...ccl.run_based import run_based_vectorized
from ..report import ExperimentReport
from ._suites import build_suites

__all__ = ["run_table3"]


def run_table3(scale: float | None = None) -> ExperimentReport:
    """Regenerate Table III (augmented with stand-in provenance)."""
    suites = build_suites(scale, suites=("nlcd",))
    rows: list[list[str]] = []
    data: dict = {"images": []}
    for si in suites["nlcd"]:
        info = si.info
        result = run_based_vectorized(info.image)
        rec = {
            "name": info.name,
            "nominal_mb": info.nominal_mb,
            "shape": info.shape,
            "actual_mb": info.actual_mb,
            "density": info.foreground_density,
            "components": result.n_components,
            "linear_scale": si.linear_scale,
        }
        data["images"].append(rec)
        rows.append(
            [
                info.name,
                f"{info.nominal_mb:.2f}",
                f"{info.shape[0]}x{info.shape[1]}",
                f"{info.actual_mb:.3f}",
                f"{info.foreground_density:.3f}",
                str(result.n_components),
                f"{si.linear_scale:.1f}",
            ]
        )
    return ExperimentReport(
        experiment="table3",
        title="Table III: NLCD images and their sizes [MB]",
        headers=[
            "Image name",
            "Paper size MB",
            "Stand-in shape",
            "Stand-in MB",
            "FG density",
            "Components",
            "Price factor",
        ],
        rows=rows,
        data=data,
        notes=[
            "'Price factor' is the linear_scale at which the simulated "
            "machine charges this stand-in (see repro.simmachine)"
        ],
    )
