"""Legacy-path shim.

This environment ships setuptools without the ``wheel`` package, so PEP
660 editable installs (``pip install -e .`` via the modern backend) fail
with ``invalid command 'bdist_wheel'``. Keeping this one-liner lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``python setup.py develop``) work everywhere; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
