"""Calibrated cost-model preset for the paper's test machine.

The experiments ran on one node of Hopper (NERSC), a Cray XE6: two
12-core AMD 'MagnyCours' Opterons at 2.1 GHz, 32 GB DDR3-1333, 64 KB L1 /
512 KB L2 per core, 6 MB L3 per 6-core die; gcc + OpenMP.

Calibration anchors (EXPERIMENTS.md reproduces the arithmetic):

* **Sequential throughput.** Table II: AREMSP averages 242.59 ms over the
  NLCD suite whose sizes average ~132 MB -> ~0.5-0.6 GB/s of scanned
  image, i.e. roughly 1.8-2 ns of scan work per pixel; we split that
  into ``t_pixel`` (loop + store) and ``t_read`` x the ~1.5 reads/pixel
  the two-row scan averages on those images.
* **Thread overhead.** Two anchors: Figure 4 reports a *maximum* small-
  suite speedup of 10 (largest ~1 MB images), which with the throughput
  above pins ``t_spawn`` near 4 us/thread (peak speedup of the
  ``spawn*T + W/T`` makespan is ``~sqrt(W/t_spawn)/2``); and Table IV's
  Miscellaneous suite, where average time *rises* from 1.05 ms (16
  threads) to 1.46 ms (24), confirms overhead of that order dominating
  sub-megabyte images at high thread counts.
* **Merge share.** Figure 5a vs 5b are visually indistinguishable, so
  the boundary phase must stay well under ~2% of total at 24 threads;
  with one boundary row per seam this follows structurally — lock cost
  is set to a measured-order 60 ns without affecting the shape.
* **Peak speedup.** With the above, the 465.2 MB image yields ~20x at 24
  threads (the paper: 20.1x) — the residual serial work (flatten +
  spawn) supplies the Amdahl bend without further tuning.
"""

from __future__ import annotations

from .costmodel import CostModel

__all__ = ["HOPPER"]

#: Cray XE6 'MagnyCours' node preset (see module docstring).
HOPPER = CostModel(
    t_pixel=2.2e-9,
    t_read=0.5e-9,
    t_merge=6e-9,
    t_step=2.5e-9,
    t_lock=60e-9,
    t_flatten=2.5e-9,
    t_label=0.9e-9,
    t_spawn=4e-6,
    t_barrier=0.4e-6,
    streaming_parallelism=None,
)
