"""Figure 4 — PAREMSP speedup on the small suites.

The paper plots speedup vs thread count {2, 6, 8, 16, 24} for the
Aerial, Miscellaneous and Texture suites (images <= 1 MB): curves rise
to roughly 4-10, and *decrease* for the smallest images at high thread
counts — per-thread work shrinks below the team-construction overhead.
The Aerial curve sits highest, Texture lowest, as in the paper's plot.

We reproduce the three per-suite curves (mean speedup across the suite's
images, simulated machine at paper-scale pricing) plus each suite's peak.
"""

from __future__ import annotations

from ...simmachine.costmodel import CostModel
from ...simmachine.machine import speedup_curve
from ..report import ExperimentReport, render_series
from ._suites import PAPER_THREADS, SMALL_SUITES, build_suites

__all__ = ["run_fig4"]


def run_fig4(
    scale: float | None = None,
    thread_counts: tuple[int, ...] = PAPER_THREADS,
    cost_model: CostModel | None = None,
    connectivity: int = 8,
) -> ExperimentReport:
    """Regenerate Figure 4.

    ``data["curves"]`` maps ``suite -> {n_threads: mean speedup}``;
    ``data["per_image"]`` keeps each image's own curve.
    """
    suites = build_suites(scale, suites=SMALL_SUITES)
    curves: dict[str, dict[int, float]] = {}
    per_image: dict = {}
    for suite_name in ("aerial", "misc", "texture"):  # paper legend order
        sums = {t: 0.0 for t in thread_counts}
        images = suites[suite_name]
        for si in images:
            curve = speedup_curve(
                si.info.image,
                thread_counts,
                cost_model=cost_model,
                phase="total",
                connectivity=connectivity,
                linear_scale=si.linear_scale,
            )
            per_image[(suite_name, si.info.name)] = curve
            for t, v in curve.items():
                sums[t] += v
        curves[suite_name] = {
            t: s / max(1, len(images)) for t, s in sums.items()
        }
    rows = [
        [str(t), *(f"{curves[s][t]:.2f}" for s in curves)]
        for t in thread_counts
    ]
    peaks = {s: max(c.values()) for s, c in curves.items()}
    return ExperimentReport(
        experiment="fig4",
        title=(
            "Figure 4: speedup for different numbers of threads — "
            "Aerial, Miscellaneous & Texture (simulated)"
        ),
        headers=["#Threads", *[s.capitalize() for s in curves]],
        rows=rows,
        data={"curves": curves, "per_image": per_image, "peaks": peaks},
        notes=[
            render_series(curves),
            f"peak speedups: "
            + ", ".join(f"{s}={v:.1f}" for s, v in peaks.items()),
        ],
    )
