"""Operation counters for the simulated machine.

An :class:`OpCounter` is threaded through the counting union-find
kernels (:func:`repro.unionfind.remsp.merge_counting`, ...) and combined
with the *static* scan counts of :mod:`repro.ccl.opcount` into one work
vector per simulated thread. The cost model dots that vector with its
per-operation costs to get the thread's phase time.
"""

from __future__ import annotations

import dataclasses

from ..ccl.opcount import ScanOpCounts

__all__ = ["OpCounter"]


@dataclasses.dataclass
class OpCounter:
    """Mutable per-thread operation tallies.

    Dynamic fields (``uf_merge``, ``uf_step``, ``lock_ops``) are bumped
    by the counting kernels; static fields mirror
    :class:`repro.ccl.opcount.ScanOpCounts` and are filled analytically.
    """

    pixel_visits: int = 0
    neighbor_reads: int = 0
    copies: int = 0
    new_labels: int = 0
    uf_merge: int = 0
    uf_step: int = 0
    lock_ops: int = 0

    def add_static(self, counts: ScanOpCounts) -> None:
        """Fold a static scan analysis into this counter."""
        self.pixel_visits += counts.pixel_visits
        self.neighbor_reads += counts.neighbor_reads
        self.copies += counts.copies
        self.new_labels += counts.new_labels
        # static 'merges' duplicate the dynamic uf_merge tally, which the
        # counting kernels record exactly — so they are intentionally not
        # folded in here.

    def merged_with(self, other: "OpCounter") -> "OpCounter":
        """A new counter holding the element-wise sum."""
        return OpCounter(
            pixel_visits=self.pixel_visits + other.pixel_visits,
            neighbor_reads=self.neighbor_reads + other.neighbor_reads,
            copies=self.copies + other.copies,
            new_labels=self.new_labels + other.new_labels,
            uf_merge=self.uf_merge + other.uf_merge,
            uf_step=self.uf_step + other.uf_step,
            lock_ops=self.lock_ops + other.lock_ops,
        )

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)
