"""Contour-tracing CCL — Chang, Chen, Lu (2004), the paper's ref. [4].

A fundamentally different family from the two-pass algorithms: a single
raster scan that, on first contact with a component, traces its entire
outer contour (Moore neighbourhood walk), labels the contour, and lets
the interior inherit labels from the left during the continuing scan;
inner contours (hole borders) are traced on first contact from above.
No union-find, no equivalence table, no second pass over provisional
labels — which is exactly why it makes a strong *independent* baseline
implementation for this library's test matrix (any systematic bug in
the scan/union-find stack cannot be replicated here).

Implementation notes:

* the image is framed with one background ring so the tracer can mark
  frame pixels without bounds checks (Chang et al. make the same
  assumption);
* traced background neighbours are marked ``-1`` in the label map so an
  inner contour is only traced once;
* labels are assigned in raster order of each component's topmost,
  leftmost pixel — i.e. the library-wide canonical order, so results
  are bit-identical to the flood-fill oracle;
* 8-connectivity only (contour tracing of 4-connected components needs
  a different tracer; the paper's setting is 8).
"""

from __future__ import annotations

import numpy as np

from ..obs import PhaseTimer, get_recorder
from ..types import LABEL_DTYPE, as_binary_image
from .labeling import CCLResult

__all__ = ["contour_trace"]

# clockwise Moore directions, starting East.
_DIRS = ((0, 1), (1, 1), (1, 0), (1, -1), (0, -1), (-1, -1), (-1, 0), (-1, 1))


def _tracer(
    img: list[list[int]],
    lab: list[list[int]],
    r: int,
    c: int,
    start_dir: int,
) -> tuple[int, int, int] | None:
    """First foreground neighbour of (r, c), searching clockwise from
    *start_dir*; background pixels examined on the way are marked.
    Returns ``(nr, nc, direction)`` or ``None`` for an isolated pixel."""
    for i in range(8):
        d = (start_dir + i) % 8
        dr, dc = _DIRS[d]
        nr, nc = r + dr, c + dc
        if img[nr][nc]:
            return nr, nc, d
        lab[nr][nc] = -1  # mark visited background
    return None


def _trace_contour(
    img: list[list[int]],
    lab: list[list[int]],
    r0: int,
    c0: int,
    label: int,
    external: bool,
) -> None:
    """Trace one full contour starting at (r0, c0), labeling its pixels."""
    start_dir = 7 if external else 3
    lab[r0][c0] = label
    first = _tracer(img, lab, r0, c0, start_dir)
    if first is None:
        return  # isolated pixel: contour is the single point
    sr, sc, d = first  # T, the second contour point, entered via d
    r, c = sr, sc
    while True:
        lab[r][c] = label
        # restart the clockwise search two steps back from the arrival
        # direction (the Moore-tracing rule)
        nxt = _tracer(img, lab, r, c, (d + 6) % 8)
        # a contour pixel always has a foreground neighbour (we arrived
        # from one), so nxt is never None here.
        nr, nc, d = nxt  # type: ignore[misc]
        # stop condition (Chang et al.): the walk is back at the start
        # pixel S and about to re-enter the second pixel T.
        if (r, c) == (r0, c0) and (nr, nc) == (sr, sc):
            return
        r, c = nr, nc


def contour_trace(image: np.ndarray, connectivity: int = 8) -> CCLResult:
    """Label *image* by contour tracing (single pass, no union-find).

    >>> import numpy as np
    >>> r = contour_trace(np.eye(3, dtype=np.uint8))
    >>> int(r.n_components)
    1
    """
    if connectivity != 8:
        from ..errors import ConnectivityError

        raise ConnectivityError(
            "contour tracing is defined for 8-connectivity only"
        )
    img_arr = as_binary_image(image)
    rows, cols = img_arr.shape
    rec = get_recorder()
    mark = rec.mark()
    timer = PhaseTimer(rec)
    with timer.time("scan"):
        # frame with one background ring
        img = [[0] * (cols + 2)]
        img += [[0, *row, 0] for row in img_arr.tolist()]
        img.append([0] * (cols + 2))
        lab = [[0] * (cols + 2) for _ in range(rows + 2)]
        count = 0
        for r in range(1, rows + 1):
            irow = img[r]
            lrow = lab[r]
            for c in range(1, cols + 1):
                if not irow[c]:
                    continue
                if lrow[c] == 0 and not img[r - 1][c]:
                    # step 1: unlabeled pixel with background above ->
                    # external contour of a new component
                    count += 1
                    _trace_contour(img, lab, r, c, count, external=True)
                if not img[r + 1][c] and lab[r + 1][c] == 0:
                    # step 2: background below, not yet marked -> internal
                    # contour (hole border)
                    label = lrow[c] if lrow[c] > 0 else lrow[c - 1]
                    _trace_contour(img, lab, r, c, label, external=False)
                if lrow[c] == 0:
                    # step 3: interior pixel inherits from the left
                    lrow[c] = lrow[c - 1]
    with timer.time("label"):
        labels = np.asarray(
            [row[1 : cols + 1] for row in lab[1 : rows + 1]], dtype=LABEL_DTYPE
        ).reshape(rows, cols)
        labels[labels < 0] = 0  # clear background marks
    timer.seconds.setdefault("flatten", 0.0)
    return CCLResult(
        labels=labels,
        n_components=count,
        provisional_count=count,
        phase_seconds=timer.seconds,
        algorithm="contour",
        timings=rec.report(since=mark) if rec.enabled else None,
    )
