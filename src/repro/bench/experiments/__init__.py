"""Experiment drivers, one per paper artefact (see DESIGN.md §4)."""

from .fig4 import run_fig4
from .fig5 import run_fig5
from .granularity_sweep import run_granularity
from .opcounts import run_opcounts
from .table2 import run_table2
from .table3 import run_table3
from .table4 import run_table4
from .weak_scaling import run_weak_scaling

__all__ = [
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig4",
    "run_fig5",
    "run_opcounts",
    "run_weak_scaling",
    "run_granularity",
    "ALL_EXPERIMENTS",
]

#: name -> driver, for the CLI (paper artefacts first, our ablations after).
ALL_EXPERIMENTS = {
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "opcounts": run_opcounts,
    "weak": run_weak_scaling,
    "granularity": run_granularity,
}
