"""PAREMSP — Algorithm 7 of the paper.

The orchestrator: partition -> per-chunk AREMSP scan -> boundary merge
(parallel Rem's) -> sparse FLATTEN -> final labeling. Backends plug into
the scan and boundary phases; partitioning, flatten and the labeling
gather are backend-independent.

Determinism contract (asserted by tests): provisional labels depend on
the backend's interleaving, but the *final* labeling is identical across
all backends and thread counts, and identical to sequential AREMSP —
FLATTEN canonicalises to raster first-appearance numbering.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from ..ccl.labeling import CCLResult, apply_table
from ..types import as_binary_image
from ..unionfind.flatten import flatten_ranges
from .backends import get_backend
from .partition import partition_rows

__all__ = ["ParallelResult", "paremsp"]


@dataclasses.dataclass
class ParallelResult(CCLResult):
    """A :class:`~repro.ccl.labeling.CCLResult` plus parallel-run facts.

    ``phase_seconds`` gains ``merge`` (the boundary pass); for the
    simulated backend all phase values are *model* seconds and
    ``meta["simulated"]`` is set.
    """

    n_threads: int = 1
    backend: str = "serial"
    n_chunks: int = 1


def paremsp(
    image: np.ndarray,
    n_threads: int = 4,
    backend: str = "serial",
    connectivity: int = 8,
    cost_model=None,
) -> ParallelResult:
    """Label *image* with PAREMSP.

    Parameters
    ----------
    image:
        Binary image.
    n_threads:
        Requested team size; the effective chunk count may be smaller for
        short images (see :func:`repro.parallel.partition.partition_rows`).
    backend:
        ``serial`` | ``threads`` | ``processes`` | ``simulated``.
    connectivity:
        8 (paper) or 4.
    cost_model:
        Only for ``backend="simulated"``: a
        :class:`repro.simmachine.costmodel.CostModel` (defaults to the
        Hopper preset).

    >>> import numpy as np
    >>> r = paremsp(np.ones((8, 8), dtype=np.uint8), n_threads=2)
    >>> int(r.n_components)
    1
    """
    if backend == "simulated":
        from ..simmachine.machine import simulate_paremsp

        sim = simulate_paremsp(
            image,
            n_threads=n_threads,
            cost_model=cost_model,
            connectivity=connectivity,
        )
        return sim.as_parallel_result()

    img = as_binary_image(image)
    rows, cols = img.shape
    img_rows = img.tolist()
    chunks = partition_rows(rows, cols, n_threads)
    exec_backend = get_backend(backend)

    p: list[int] = [0] * (rows * cols + 2)
    meta: dict = {}

    t0 = time.perf_counter()
    if chunks:
        label_rows, used, scan_meta = exec_backend.scan(
            img_rows, chunks, p, connectivity
        )
    else:
        label_rows, used, scan_meta = [], [], {}
    t1 = time.perf_counter()
    bound_meta = exec_backend.boundary(label_rows, chunks, cols, p, connectivity)
    t2 = time.perf_counter()
    ranges = [(c.label_start, u) for c, u in zip(chunks, used)]
    n_components = flatten_ranges(p, ranges)
    t3 = time.perf_counter()
    limit = max((u for u in used), default=1)
    labels = apply_table(label_rows, p, limit) if label_rows else np.zeros(
        (rows, cols), dtype=np.int32
    )
    t4 = time.perf_counter()

    meta.update(scan_meta)
    meta.update(bound_meta)
    meta["label_ranges"] = ranges
    return ParallelResult(
        labels=labels,
        n_components=n_components,
        provisional_count=sum(u - c.label_start for c, u in zip(chunks, used)),
        phase_seconds={
            "scan": t1 - t0,
            "merge": t2 - t1,
            "flatten": t3 - t2,
            "label": t4 - t3,
        },
        algorithm="paremsp",
        meta=meta,
        n_threads=n_threads,
        backend=backend,
        n_chunks=len(chunks),
    )
