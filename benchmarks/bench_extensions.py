"""Benches for the extension systems: grayscale, 3-D, streaming, tiled,
distributed, contour.

These are not paper artefacts; they keep the extension engines honest
(regressions in the composite-key matching or the streaming frontier
would show here first) and document their relative costs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccl.contour import contour_trace
from repro.ccl.grayscale import grayscale_label_runs
from repro.ccl.run_based import run_based_vectorized
from repro.ccl.streaming import stream_label
from repro.data import blobs
from repro.data.datasets import _landcover_raster
from repro.parallel.distributed import distributed_label
from repro.parallel.tiled import tiled_label
from repro.volume import volume_label


@pytest.fixture(scope="module")
def image():
    return blobs((192, 192), density=0.48, seed=11)


@pytest.fixture(scope="module")
def raster():
    return _landcover_raster((192, 192), n_classes=6, seed=11)


@pytest.fixture(scope="module")
def volume():
    rng = np.random.default_rng(11)
    return (rng.random((24, 64, 64)) < 0.35).astype(np.uint8)


def test_grayscale_runs_engine(benchmark, raster):
    result = benchmark(grayscale_label_runs, raster, 8)
    assert result.n_components > 0


def test_volume_26(benchmark, volume):
    result = benchmark(volume_label, volume, 26)
    assert result.n_components > 0


def test_volume_6(benchmark, volume):
    result = benchmark(volume_label, volume, 6)
    assert result.n_components > 0


def test_streaming(benchmark, image):
    def run():
        return list(stream_label(image, cols=image.shape[1]))

    comps = benchmark(run)
    assert len(comps) == run_based_vectorized(image).n_components


def test_tiled(benchmark, image):
    result = benchmark(tiled_label, image, (64, 64))
    assert result.n_components == run_based_vectorized(image).n_components


def test_contour(benchmark, image):
    result = benchmark.pedantic(
        contour_trace, args=(image,), rounds=3, iterations=1
    )
    assert result.n_components == run_based_vectorized(image).n_components


def test_distributed(benchmark, image):
    result = benchmark.pedantic(
        distributed_label, args=(image, 4), rounds=3, iterations=1
    )
    assert result.n_components == run_based_vectorized(image).n_components


def test_tiled_overhead_is_bounded(capsys, image):
    """Tiling cost over whole-image labeling must stay modest — the
    price of the out-of-core shape."""
    import time

    def clock(fn, *args):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            fn(*args)
            best = min(best, time.perf_counter() - t0)
        return best

    whole = clock(run_based_vectorized, image, 8)
    tiled = clock(tiled_label, image, (64, 64))
    with capsys.disabled():
        print(f"\ntiled {tiled * 1e3:.1f} ms vs whole {whole * 1e3:.1f} ms "
              f"({tiled / whole:.2f}x)")
    assert tiled < whole * 6
