"""``repro.parallel.net`` — the multi-host transport + membership layer.

Dependency-free (stdlib sockets) plumbing that lets the elastic
sharded runtime span machines:

* :mod:`~repro.parallel.net.framing` — the length-prefixed, CRC32'd,
  sequence-numbered wire protocol and the receiver-side
  :class:`~repro.parallel.net.framing.ReplayCache` that makes
  at-least-once delivery idempotent;
* :mod:`~repro.parallel.net.transport` — per-peer channels with
  bounded exponential backoff + jitter, ``REPRO_NET_*`` timeout
  precedence, and the client-side network fault-injection sites;
* :mod:`~repro.parallel.net.membership` — lease-based liveness on the
  observer's monotonic clock (clock-skew-safe), expiry → migration,
  rejoin → incarnation bump;
* :mod:`~repro.parallel.net.worker` — the stateless
  ``repro-shard-worker`` host daemon;
* :mod:`~repro.parallel.net.cluster` — the coordinator:
  :func:`~repro.parallel.net.cluster.net_shard_label`, real ``--hosts``
  or CI loopback
  :class:`~repro.parallel.net.cluster.VirtualHostPool` virtual hosts,
  and the net → single-host-sharded → inline degradation ladder.

See docs/SHARDED.md ("Multi-host").
"""

from .cluster import NetPool, VirtualHostPool, net_shard_label, parse_hosts
from .framing import ReplayCache, decode_header, encode_frame, read_frame
from .membership import Lease, LeaseTable
from .transport import (
    NetConfig,
    PartitionLink,
    PeerClient,
    backoff_delay,
    resolve_net_timeout,
)
from .worker import WorkerServer

__all__ = [
    "encode_frame",
    "decode_header",
    "read_frame",
    "ReplayCache",
    "resolve_net_timeout",
    "backoff_delay",
    "NetConfig",
    "PartitionLink",
    "PeerClient",
    "Lease",
    "LeaseTable",
    "WorkerServer",
    "parse_hosts",
    "VirtualHostPool",
    "NetPool",
    "net_shard_label",
]
