"""Parametric synthetic binary images.

These generators cover the structural extremes CCL algorithms care about:

* :func:`random_noise` — i.i.d. foreground with density *p*: maximal
  component count, merge-heavy at p near the percolation threshold;
* :func:`blobs` — cellular-automaton-smoothed noise: large organic
  components (the "natural scene" regime);
* :func:`checkerboard` — for 8-connectivity a single diagonal-connected
  foreground component; for 4-connectivity the worst-case component count;
* :func:`diagonal_stripes` — long skinny diagonal components: the
  classic stress test for provisional-label merging across rows;
* :func:`spiral` — one huge serpentine component: deep union-find trees
  for naive structures, long run-lengths;
* :func:`maze` — random wall pattern with corridors: many irregular,
  interlocking components;
* :func:`solid` / :func:`halves` / degenerate shapes — boundary cases
  for tests.

All generators are deterministic given ``seed`` and return canonical
``uint8`` binary arrays.
"""

from __future__ import annotations

import numpy as np

from ..types import PIXEL_DTYPE

__all__ = [
    "random_noise",
    "blobs",
    "checkerboard",
    "diagonal_stripes",
    "spiral",
    "maze",
    "solid",
    "halves",
    "granularity",
    "ridges",
    "hilbert_curve",
    "diagonal_chains",
]


def random_noise(
    shape: tuple[int, int], density: float = 0.5, seed: int | None = None
) -> np.ndarray:
    """I.i.d. Bernoulli(*density*) foreground."""
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density!r}")
    rng = np.random.default_rng(seed)
    rows, cols = shape
    return (rng.random((rows, cols)) < density).astype(PIXEL_DTYPE)


def blobs(
    shape: tuple[int, int],
    density: float = 0.5,
    smoothing_steps: int = 4,
    seed: int | None = None,
) -> np.ndarray:
    """Organic blob structures via majority-vote cellular-automaton
    smoothing of Bernoulli noise.

    Each step replaces every pixel with the majority of its 3x3
    neighbourhood (computed with a vectorised box filter); 3-5 steps turn
    white noise into cave-like connected regions similar to thresholded
    natural imagery.
    """
    img = random_noise(shape, density, seed).astype(np.int16)
    for _ in range(smoothing_steps):
        acc = img.copy()
        acc[1:, :] += img[:-1, :]
        acc[:-1, :] += img[1:, :]
        # column shifts of the vertical sum give the full 3x3 box in 4 adds
        box = acc.copy()
        box[:, 1:] += acc[:, :-1]
        box[:, :-1] += acc[:, 1:]
        img = (box >= 5).astype(np.int16)  # majority of 9 (missing border
        # neighbours count as background, biasing edges toward background,
        # which conveniently frames components away from the image edge)
    return img.astype(PIXEL_DTYPE)


def checkerboard(shape: tuple[int, int], cell: int = 1) -> np.ndarray:
    """Checkerboard with ``cell``-pixel squares.

    With ``cell=1`` and 8-connectivity all foreground squares touch
    diagonally — a single component with a merge at almost every pixel
    (the scan phases' worst case for equivalence traffic).
    """
    if cell < 1:
        raise ValueError(f"cell must be >= 1, got {cell}")
    rows, cols = shape
    r = np.arange(rows)[:, None] // cell
    c = np.arange(cols)[None, :] // cell
    return ((r + c) % 2).astype(PIXEL_DTYPE)


def diagonal_stripes(
    shape: tuple[int, int], period: int = 4, width: int = 1
) -> np.ndarray:
    """45-degree stripes of *width* px every *period* px.

    Diagonal components are the canonical two-pass stress case: each new
    row extends every stripe via the corner neighbours only.
    """
    if period < 2 or not 1 <= width < period:
        raise ValueError(
            f"need period >= 2 and 1 <= width < period, got {period}, {width}"
        )
    rows, cols = shape
    r = np.arange(rows)[:, None]
    c = np.arange(cols)[None, :]
    return (((r + c) % period) < width).astype(PIXEL_DTYPE)


def spiral(shape: tuple[int, int], gap: int = 2) -> np.ndarray:
    """A single rectangular spiral arm of 1-px width with *gap* px spacing.

    One serpentine component whose provisional labels chain across the
    whole image — deep trees for unbalanced union-find variants.
    """
    if gap < 2:
        raise ValueError(f"gap must be >= 2, got {gap}")
    rows, cols = shape
    img = np.zeros((rows, cols), dtype=PIXEL_DTYPE)
    step = gap + 1
    top, left = 0, 0
    bottom, right = rows - 1, cols - 1
    entry_col = 0  # the column where the arm enters this winding's top row
    while top <= bottom and left <= right:
        img[top, entry_col : right + 1] = 1  # top edge (entered from left)
        if top == bottom:
            break
        img[top : bottom + 1, right] = 1  # right edge, downward
        if left == right:
            break
        img[bottom, left : right + 1] = 1  # bottom edge, leftward
        # left edge rises only to the *next* winding's top row, leaving
        # the corridor that keeps the arm a single open curve.
        if bottom - 1 >= top + step:
            img[top + step : bottom, left] = 1
        entry_col = left
        top += step
        left += step
        bottom -= step
        right -= step
    return img


def maze(
    shape: tuple[int, int], wall_density: float = 0.45, seed: int | None = None
) -> np.ndarray:
    """Random "wall" pattern: horizontal/vertical 1-px wall segments over a
    sparse noise floor, giving interlocking corridor-like components."""
    rng = np.random.default_rng(seed)
    rows, cols = shape
    img = (rng.random((rows, cols)) < wall_density * 0.15).astype(PIXEL_DTYPE)
    n_segments = max(1, rows * cols // 64)
    seg_r = rng.integers(0, rows, size=n_segments)
    seg_c = rng.integers(0, cols, size=n_segments)
    seg_len = rng.integers(3, max(4, min(rows, cols) // 4), size=n_segments)
    horiz = rng.random(n_segments) < 0.5
    for r, c, ln, h in zip(
        seg_r.tolist(), seg_c.tolist(), seg_len.tolist(), horiz.tolist()
    ):
        if h:
            img[r, c : min(cols, c + ln)] = 1
        else:
            img[r : min(rows, r + ln), c] = 1
    return img


def granularity(
    shape: tuple[int, int],
    density: float = 0.5,
    block: int = 1,
    seed: int | None = None,
) -> np.ndarray:
    """The YACCLAB-style granularity benchmark pattern: i.i.d. foreground
    *blocks* of ``block x block`` pixels with probability *density*.

    Sweeping ``block`` from 1 (white noise, maximal per-pixel merge
    traffic) to 16 (large chunks, run-length friendly) while holding
    density fixed isolates how each algorithm's cost scales with
    component granularity — the classic synthetic CCL benchmark axis.
    """
    if block < 1:
        raise ValueError(f"block must be >= 1, got {block}")
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density!r}")
    rng = np.random.default_rng(seed)
    rows, cols = shape
    gr = (rows + block - 1) // block
    gc = (cols + block - 1) // block
    coarse = (rng.random((gr, gc)) < density).astype(PIXEL_DTYPE)
    return np.repeat(np.repeat(coarse, block, axis=0), block, axis=1)[
        :rows, :cols
    ]


def ridges(
    shape: tuple[int, int],
    wavelength: float = 8.0,
    warp: float = 6.0,
    seed: int | None = None,
) -> np.ndarray:
    """Fingerprint-like ridge pattern: a sine field with a smoothly
    varying orientation, thresholded at zero.

    Produces the long, thin, winding components fingerprint
    identification (the paper's first motivating application) feeds to
    CCL; ridge components stress run-matching (many short runs per
    component) without the randomness of noise patterns.
    """
    if wavelength <= 0:
        raise ValueError(f"wavelength must be > 0, got {wavelength}")
    rng = np.random.default_rng(seed)
    rows, cols = shape
    yy, xx = np.mgrid[0:rows, 0:cols].astype(np.float64)
    # smooth orientation field from two low-frequency waves
    phase_r = rng.uniform(0, 2 * np.pi, size=4)
    theta = 0.8 * np.sin(
        2 * np.pi * yy / max(rows, 1) + phase_r[0]
    ) + 0.8 * np.cos(2 * np.pi * xx / max(cols, 1) + phase_r[1])
    u = xx * np.cos(theta) + yy * np.sin(theta)
    wave = np.sin(2 * np.pi * u / wavelength + warp * np.sin(phase_r[2] + 2 * np.pi * yy / max(rows, 1)))
    return (wave > 0).astype(PIXEL_DTYPE)


def _hilbert_points(order: int) -> np.ndarray:
    """The ``4**order`` cells of the order-*order* Hilbert curve, in path
    order, as an ``(n, 2)`` array of ``(row, col)`` on a ``2**order``
    grid. Standard d → (x, y) bit transform, vectorised over d."""
    n = 1 << order
    d = np.arange(n * n, dtype=np.int64)
    x = np.zeros_like(d)
    y = np.zeros_like(d)
    t = d.copy()
    s = 1
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # rotate the quadrant
        flip = ry == 0
        swap_mask = flip & (rx == 1)
        x_f = np.where(swap_mask, s - 1 - x, x)
        y_f = np.where(swap_mask, s - 1 - y, y)
        x, y = np.where(flip, y_f, x_f), np.where(flip, x_f, y_f)
        x = x + s * rx
        y = y + s * ry
        t //= 4
        s *= 2
    return np.stack([y, x], axis=1)


def hilbert_curve(shape: tuple[int, int], order: int | None = None) -> np.ndarray:
    """A 1-px-wide serpentine path tracing a Hilbert curve.

    The known worst case for propagation-style engines: one component
    whose geodesic diameter is the pixel count, folded so that *every*
    step of the path is a direction change — labels must travel the
    whole path, one bend at a time. *order* defaults to the largest
    curve whose ``2**(order+1) - 1`` canvas fits *shape*; the canvas is
    placed at the top-left and padded with background.
    """
    rows, cols = shape
    if order is None:
        order = 1
        while (1 << (order + 2)) - 1 <= min(rows, cols):
            order += 1
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    img = np.zeros((rows, cols), dtype=PIXEL_DTYPE)
    if rows < 1 or cols < 1:
        return img
    pts = _hilbert_points(order) * 2  # spread so arms don't touch
    # draw vertices and the midpoint between consecutive path cells
    mids = (pts[:-1] + pts[1:]) // 2
    for arr in (pts, mids):
        rr, cc = arr[:, 0], arr[:, 1]
        keep = (rr < rows) & (cc < cols)
        img[rr[keep], cc[keep]] = 1
    return img


def diagonal_chains(
    shape: tuple[int, int], spacing: int = 3, zigzag: bool = True
) -> np.ndarray:
    """Single-pixel chains connected *only* diagonally.

    With ``zigzag=True`` each chain bounces between two adjacent
    columns, so every run has length 1 and every adjacency is diagonal —
    the worst case for run-based scanning (maximal run count) *and* for
    propagation engines (no run to shortcut along; labels cross one
    diagonal per sweep). ``zigzag=False`` gives straight 45° chains
    (equivalent to ``diagonal_stripes(width=1)``), the classic two-pass
    merge stressor. Under 4-connectivity every pixel is its own
    component — the other extreme of the same image.
    """
    if spacing < 2:
        raise ValueError(f"spacing must be >= 2, got {spacing}")
    rows, cols = shape
    r = np.arange(rows)[:, None]
    c = np.arange(cols)[None, :]
    if zigzag:
        # chain k occupies columns {k*spacing + (r % 2)}
        offset = c - (r % 2)
        img = (offset >= 0) & (offset % spacing == 0)
    else:
        img = (r + c) % spacing == 0
    return img.astype(PIXEL_DTYPE)


def solid(shape: tuple[int, int], value: int = 1) -> np.ndarray:
    """All-foreground (or all-background with ``value=0``) image."""
    if value not in (0, 1):
        raise ValueError(f"value must be 0 or 1, got {value!r}")
    return np.full(shape, value, dtype=PIXEL_DTYPE)


def halves(shape: tuple[int, int], orientation: str = "vertical") -> np.ndarray:
    """Foreground on one half of the image, split vertically/horizontally.

    Exercises chunk-boundary merging when the split aligns with a
    partition boundary.
    """
    rows, cols = shape
    img = np.zeros((rows, cols), dtype=PIXEL_DTYPE)
    if orientation == "vertical":
        img[:, : cols // 2] = 1
    elif orientation == "horizontal":
        img[: rows // 2, :] = 1
    else:
        raise ValueError(
            f"orientation must be 'vertical' or 'horizontal', got {orientation!r}"
        )
    return img
