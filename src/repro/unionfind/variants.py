"""The wider union-find design space of Patwary, Blair, Manne (ref. [40]).

The paper's central data-structure claim — "REM's implementation is best
among all the variations" — comes from [40], which benchmarks unions
crossed with compression techniques over graph edge streams. To make that
claim reproducible we implement the representative corners of that space:

* :class:`NaiveLink` — link root-under-root with no balancing, plain find;
* :class:`LinkBySize` — weighted union, full path compression;
* :class:`LinkByRankPH` — link-by-rank with *path halving*;
* :class:`LinkByRankPS` — link-by-rank with *path splitting*;
* :class:`QuickFind` — eager representative array (O(1) find, O(n) union),
  the classic strawman;
* :class:`RemPS` — Rem's walk with *path splitting* instead of splicing
  (shows splicing's edge is real but small).

Together with :class:`~repro.unionfind.remsp.RemSP` and
:class:`~repro.unionfind.lrpc.LinkByRankPC` these power
``benchmarks/bench_unionfind.py`` (the ablation row of the experiment
index in DESIGN.md).

All classes follow the "minimum index survives as representative" CCL
convention where cheap to do, but only :class:`RemSP`,
:class:`LinkByRankPC` and :class:`LinkBySize` guarantee the
``p[i] <= i`` invariant FLATTEN needs; the registry in
:mod:`repro.ccl.registry` only wires those into CCL drivers.
"""

from __future__ import annotations

from .base import DisjointSets

__all__ = [
    "NaiveLink",
    "LinkBySize",
    "LinkByRankPH",
    "LinkByRankPS",
    "QuickFind",
    "RemPS",
    "ALL_VARIANTS",
]


class NaiveLink(DisjointSets):
    """Unbalanced linking, no compression. O(n) worst-case find."""

    def find(self, x: int) -> int:
        p = self.p
        while p[x] != x:
            x = p[x]
        return x

    def union(self, x: int, y: int) -> int:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        lo, hi = (rx, ry) if rx < ry else (ry, rx)
        self.p[hi] = lo
        return lo


class LinkBySize(DisjointSets):
    """Weighted (by set size) union with full path compression.

    The representative returned is the set minimum (the structural root may
    differ transiently, but we re-link so the minimum stays the root, as
    CCL labeling requires).
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.size: list[int] = [1] * n

    def add(self) -> int:
        self.size.append(1)
        return super().add()

    def find(self, x: int) -> int:
        p = self.p
        root = x
        while p[root] != root:
            root = p[root]
        while p[x] != root:
            nxt = p[x]
            p[x] = root
            x = nxt
        return root

    def union(self, x: int, y: int) -> int:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        lo, hi = (rx, ry) if rx < ry else (ry, rx)
        self.p[hi] = lo
        self.size[lo] += self.size[hi]
        return lo


class _RankBase(DisjointSets):
    """Shared rank bookkeeping for the path-halving/splitting variants."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.rank: list[int] = [0] * n

    def add(self) -> int:
        self.rank.append(0)
        return super().add()

    def union(self, x: int, y: int) -> int:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return rx
        if self.rank[rx] < self.rank[ry]:
            rx, ry = ry, rx
        self.p[ry] = rx
        if self.rank[rx] == self.rank[ry]:
            self.rank[rx] += 1
        return rx


class LinkByRankPH(_RankBase):
    """Link-by-rank union with *path halving* find.

    Path halving makes every other node on the walk point to its
    grandparent — one pass, no second loop, same amortised bound as full
    compression.
    """

    def find(self, x: int) -> int:
        p = self.p
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return x


class LinkByRankPS(_RankBase):
    """Link-by-rank union with *path splitting* find.

    Path splitting makes *every* node on the walk point to its grandparent
    (the walk itself still advances one step at a time).
    """

    def find(self, x: int) -> int:
        p = self.p
        while p[x] != x:
            nxt = p[x]
            p[x] = p[nxt]  # split: point the node we leave at its
            x = nxt  # grandparent, then advance one step
        return x


class QuickFind(DisjointSets):
    """Eager representative array: find is one read, union rewrites the
    smaller... no — rewrites the *whole* losing set. The classic O(n)
    strawman; included to anchor the ablation's slow end."""

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self._members: list[list[int]] = [[i] for i in range(n)]

    def add(self) -> int:
        i = super().add()
        self._members.append([i])
        return i

    def find(self, x: int) -> int:
        return self.p[x]

    def union(self, x: int, y: int) -> int:
        rx, ry = self.p[x], self.p[y]
        if rx == ry:
            return rx
        lo, hi = (rx, ry) if rx < ry else (ry, rx)
        for m in self._members[hi]:
            self.p[m] = lo
        self._members[lo].extend(self._members[hi])
        self._members[hi] = []
        return lo


class RemPS(DisjointSets):
    """Rem's interleaved walk with *path splitting* instead of splicing.

    [40] evaluates both Rem-SP (splicing) and Rem-PS; keeping both lets the
    ablation benchmark show the compression technique in isolation from
    the walk.
    """

    def find(self, x: int) -> int:
        p = self.p
        while p[x] != x:
            x = p[x]
        return x

    def union(self, x: int, y: int) -> int:
        p = self.p
        rootx, rooty = x, y
        while p[rootx] != p[rooty]:
            if p[rootx] > p[rooty]:
                if rootx == p[rootx]:
                    p[rootx] = p[rooty]
                    return p[rootx]
                # path splitting: advance, pointing the node we leave at
                # the *other* side's parent's parent is not defined here;
                # classic Rem-PS points it at its own grandparent.
                z = p[rootx]
                p[rootx] = p[z]
                rootx = z
            else:
                if rooty == p[rooty]:
                    p[rooty] = p[rootx]
                    return p[rootx]
                z = p[rooty]
                p[rooty] = p[z]
                rooty = z
        return p[rootx]


#: name -> class, for the ablation benchmark and parameterised tests.
ALL_VARIANTS = {
    "rem-sp": None,  # filled below to avoid a circular import at top
    "rem-ps": RemPS,
    "lrpc": None,
    "link-size-pc": LinkBySize,
    "link-rank-ph": LinkByRankPH,
    "link-rank-ps": LinkByRankPS,
    "naive": NaiveLink,
    "quick-find": QuickFind,
}


def _register_core() -> None:
    from .lrpc import LinkByRankPC
    from .remsp import RemSP

    ALL_VARIANTS["rem-sp"] = RemSP
    ALL_VARIANTS["lrpc"] = LinkByRankPC


_register_core()
