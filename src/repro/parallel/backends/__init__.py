"""Execution backends for PAREMSP.

A backend supplies two operations over an already-partitioned image:

* ``scan(img_rows, chunks, p, connectivity)`` — run the AREMSP scan on
  every chunk, writing equivalences into the shared array ``p``; returns
  the assembled provisional label rows, the per-chunk used-label
  watermarks, and backend metadata;
* ``boundary(label_rows, chunks, cols, p, connectivity)`` — stitch the
  chunk seams (Algorithm 7's merge step); returns metadata including the
  union-call count.

Backends must preserve the algorithm's semantics exactly; they differ
only in *how* the independent units execute. See the package docstring
of :mod:`repro.parallel` for the roster.
"""

from __future__ import annotations

from ...errors import BackendError
from .processes import ProcessBackend
from .serial import SerialBackend
from .threads import ThreadBackend

__all__ = ["get_backend", "SerialBackend", "ThreadBackend", "ProcessBackend"]

_BACKENDS = {
    "serial": SerialBackend,
    "threads": ThreadBackend,
    "processes": ProcessBackend,
}


def get_backend(name: str):
    """Instantiate a backend by name (``serial``/``threads``/``processes``;
    ``simulated`` is routed in :func:`repro.parallel.paremsp.paremsp`)."""
    try:
        return _BACKENDS[name.lower()]()
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: "
            f"{sorted(_BACKENDS)} + ['simulated']"
        ) from None
