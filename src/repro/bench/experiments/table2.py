"""Table II — sequential execution times of the four algorithms.

Paper row format: for each suite (Aerial, Texture, Misc, NLCD) the
min/average/max execution time (msec) of CCLLRPC, CCLREMSP, ARUN and
AREMSP over the suite's images. The paper's finding: **AREMSP lowest
everywhere**, CCLREMSP < CCLLRPC, AREMSP < ARUN.

Our measured rows carry the same structure; EXPERIMENTS.md discusses
which orderings carry over to CPython (AREMSP/CCLREMSP win as in the
paper; the interpreter amplifies the equivalence-structure term, so the
ARUN-vs-CCLREMSP ordering flips — the op-count ablation
(:mod:`.opcounts`) isolates the scan-strategy effect the paper's C
numbers reflect).
"""

from __future__ import annotations

from ...ccl.registry import SEQUENTIAL_TABLE2, get_algorithm
from ..report import ExperimentReport
from ..stats import STAT_ROWS, MinAvgMax
from ..timing import measure
from ._suites import build_suites

__all__ = ["run_table2"]

#: paper-order suite rows of Table II.
TABLE2_SUITES = ("aerial", "texture", "misc", "nlcd")


def run_table2(
    scale: float | None = None,
    repeats: int = 1,
    algorithms: tuple[str, ...] = SEQUENTIAL_TABLE2,
    connectivity: int = 8,
) -> ExperimentReport:
    """Regenerate Table II.

    Returns an :class:`~repro.bench.report.ExperimentReport` whose
    ``data`` maps ``suite -> algorithm -> MinAvgMax`` (seconds) plus
    per-image times under ``per_image``.
    """
    suites = build_suites(scale, suites=TABLE2_SUITES)
    data: dict = {"per_image": {}, "summary": {}}
    rows: list[list[str]] = []
    for suite_name in TABLE2_SUITES:
        images = suites[suite_name]
        per_alg: dict[str, list[float]] = {a: [] for a in algorithms}
        for si in images:
            for alg in algorithms:
                fn = get_algorithm(alg)
                sample = measure(
                    fn, si.info.image, connectivity, repeats=repeats
                )
                per_alg[alg].append(sample.best)
                data["per_image"][(suite_name, si.info.name, alg)] = (
                    sample.best
                )
        summary = {a: MinAvgMax.from_values(v) for a, v in per_alg.items()}
        data["summary"][suite_name] = summary
        for stat in STAT_ROWS:
            rows.append(
                [
                    suite_name.capitalize() if stat == "Min" else "",
                    stat,
                    *(
                        f"{summary[a].stat(stat) * 1e3:.2f}"
                        for a in algorithms
                    ),
                ]
            )
    winners = _winner_check(data["summary"], algorithms)
    return ExperimentReport(
        experiment="table2",
        title=(
            "Table II: comparison of execution times [msec] for "
            "sequential algorithms"
        ),
        headers=["Image type", "", *[a.upper() for a in algorithms]],
        rows=rows,
        data=data,
        notes=[
            "stand-in suites; absolute msec are CPython, compare ratios",
            f"fastest on average per suite: {winners}",
        ],
    )


def _winner_check(summary: dict, algorithms: tuple[str, ...]) -> str:
    parts = []
    for suite_name, per_alg in summary.items():
        best = min(algorithms, key=lambda a: per_alg[a].avg)
        parts.append(f"{suite_name}={best}")
    return ", ".join(parts)
