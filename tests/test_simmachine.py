"""The simulated shared-memory machine: determinism, pricing laws,
speedup-shape guarantees."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data import blobs
from repro.errors import CostModelError
from repro.simmachine import (
    HOPPER,
    CostModel,
    OpCounter,
    SimResult,
    simulate_paremsp,
    speedup_curve,
)
from repro.verify import flood_fill_label, labelings_equivalent


@pytest.fixture(scope="module")
def image():
    return blobs((64, 64), density=0.5, seed=3)


def test_labels_are_exact(image):
    expected, n = flood_fill_label(image, 8)
    sim = simulate_paremsp(image, n_threads=4)
    assert sim.n_components == n
    assert labelings_equivalent(sim.labels, expected)


def test_fully_deterministic(image):
    a = simulate_paremsp(image, n_threads=6)
    b = simulate_paremsp(image, n_threads=6)
    assert a.phase_seconds == b.phase_seconds
    assert a.thread_scan_seconds == b.thread_scan_seconds
    assert np.array_equal(a.labels, b.labels)


def test_scan_makespan_decreases_with_threads(image):
    times = [
        simulate_paremsp(image, t).phase_seconds["scan"] for t in (1, 2, 4, 8)
    ]
    assert times == sorted(times, reverse=True)
    assert times[-1] < times[0] / 4  # near-linear on a balanced image


def test_spawn_cost_grows_linearly(image):
    t1 = simulate_paremsp(image, 1).phase_seconds["spawn"]
    t8 = simulate_paremsp(image, 8).phase_seconds["spawn"]
    t24 = simulate_paremsp(image, 24).phase_seconds["spawn"]
    assert t1 == 0.0
    assert t24 == pytest.approx(t8 * 23 / 7)


def test_flatten_is_serial(image):
    """FLATTEN cost must not shrink with the thread count."""
    f1 = simulate_paremsp(image, 1).phase_seconds["flatten"]
    f8 = simulate_paremsp(image, 8).phase_seconds["flatten"]
    assert f8 >= f1 * 0.9  # ranges differ slightly; no parallel speedup


def test_merge_phase_small_relative_to_scan(image):
    sim = simulate_paremsp(image, 8)
    assert sim.phase_seconds["merge"] < sim.phase_seconds["scan"]


def test_linear_scale_pricing_laws(image):
    base = simulate_paremsp(image, 4, linear_scale=1.0)
    scaled = simulate_paremsp(image, 4, linear_scale=10.0)
    assert scaled.phase_seconds["scan"] == pytest.approx(
        base.phase_seconds["scan"] * 100
    )
    assert scaled.phase_seconds["label"] == pytest.approx(
        base.phase_seconds["label"] * 100
    )
    assert scaled.phase_seconds["merge"] == pytest.approx(
        base.phase_seconds["merge"] * 10
    )
    assert scaled.phase_seconds["spawn"] == base.phase_seconds["spawn"]


def test_linear_scale_validation(image):
    with pytest.raises(ValueError):
        simulate_paremsp(image, 2, linear_scale=0.0)


def test_local_vs_total_seconds(image):
    sim = simulate_paremsp(image, 4)
    assert sim.local_seconds == pytest.approx(
        sim.phase_seconds["spawn"] + sim.phase_seconds["scan"]
    )
    assert sim.total_seconds >= sim.local_seconds


def test_counter_totals_independent_of_thread_count(image):
    """The same image produces the same total scan work regardless of the
    partition (merge walks may differ slightly; static counts may not)."""
    def totals(t):
        sim = simulate_paremsp(image, t)
        return (
            sum(c.neighbor_reads for c in sim.scan_counters),
            sum(c.new_labels for c in sim.scan_counters),
        )

    reads1, news1 = totals(1)
    reads4, news4 = totals(4)
    # chunked scans see fewer cross-chunk neighbours and allocate a few
    # extra labels at the seams, never fewer reads than 10% off.
    assert abs(reads4 - reads1) <= reads1 * 0.1
    assert news4 >= news1


def test_speedup_curve_shape_large_image(image):
    curve = speedup_curve(image, [1, 2, 4, 8, 16], linear_scale=120.0)
    assert curve[1] == pytest.approx(1.0)
    assert curve[2] > 1.7
    assert curve[16] > curve[4] > curve[2]
    assert curve[16] <= 16.0 + 1e-6


def test_speedup_curve_small_image_degrades():
    """Tiny nominal work: more threads must eventually hurt (Figure 4's
    falling tails)."""
    img = blobs((32, 32), density=0.5, seed=5)
    curve = speedup_curve(img, [2, 8, 24], linear_scale=1.0)
    assert curve[24] < curve[2]


def test_speedup_phase_validation(image):
    with pytest.raises(ValueError):
        speedup_curve(image, [2], phase="weird")


def test_as_parallel_result(image):
    sim = simulate_paremsp(image, 3)
    pr = sim.as_parallel_result()
    assert pr.backend == "simulated"
    assert pr.n_threads == 3
    assert pr.meta["simulated"] is True
    assert np.array_equal(pr.labels, sim.labels)


class TestCostModel:
    def test_negative_cost_rejected(self):
        with pytest.raises(CostModelError):
            CostModel(t_pixel=-1e-9)

    def test_streaming_parallelism_bounds(self):
        with pytest.raises(CostModelError):
            CostModel(streaming_parallelism=0.5)
        CostModel(streaming_parallelism=8.0)

    def test_streaming_cap_applies_to_label_phase(self):
        cm = dataclasses.replace(HOPPER, streaming_parallelism=4.0)
        uncapped = HOPPER.label_seconds(1_000_000, 16)
        capped = cm.label_seconds(1_000_000, 16)
        assert capped == pytest.approx(uncapped * 4)

    def test_scan_seconds_linear_in_ops(self):
        c1 = OpCounter(pixel_visits=100, neighbor_reads=50)
        c2 = OpCounter(pixel_visits=200, neighbor_reads=100)
        assert HOPPER.scan_seconds(c2) == pytest.approx(
            2 * HOPPER.scan_seconds(c1)
        )

    def test_spawn_zero_for_single_thread(self):
        assert HOPPER.spawn_seconds(1) == 0.0


class TestOpCounter:
    def test_merged_with(self):
        a = OpCounter(uf_merge=2, uf_step=5)
        b = OpCounter(uf_merge=1, lock_ops=3)
        c = a.merged_with(b)
        assert c.uf_merge == 3
        assert c.uf_step == 5
        assert c.lock_ops == 3

    def test_as_dict_roundtrip(self):
        d = OpCounter(pixel_visits=7).as_dict()
        assert d["pixel_visits"] == 7
        assert set(d) == {
            "pixel_visits",
            "neighbor_reads",
            "copies",
            "new_labels",
            "uf_merge",
            "uf_step",
            "lock_ops",
        }


def test_paper_headline_shape():
    """The flagship claim: the 465 MB NLCD image reaches ~20x at 24
    threads on the Hopper preset (paper: 20.1). Deterministic, so a
    tight band is safe."""
    from repro.data import nlcd_suite

    img = nlcd_suite(scale=0.01)[-1]
    scale = (img.nominal_mb * 1e6 / img.image.size) ** 0.5
    curve = speedup_curve(img.image, [24], linear_scale=scale)
    assert 17.0 <= curve[24] <= 23.0
