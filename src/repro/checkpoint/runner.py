"""``JobRunner`` — checkpointing composed with PR 4's recovery policy.

The degradation ladder and retry budgets of :mod:`repro.faults` were
built for *stateless* runs: a failed backend rung restarts the whole
labeling from zero. Checkpointed jobs change the economics — a retry or
a degraded rung can **resume from the latest snapshot**, so a pool that
dies at tile 9 000 of 10 000 costs 1 000 tiles, not 10 000. The runner
encodes exactly that composition:

* per-rung retries (``ResilienceConfig.max_retries``, with the same
  exponential backoff) — each retry resumes;
* on retry exhaustion, the next :class:`~repro.faults.DegradationPolicy`
  rung (``processes → threads → serial``) — the new rung *also*
  resumes, because completed tiles are backend-agnostic state;
* an unrecoverable checkpoint directory
  (:class:`~repro.errors.CheckpointCorruptError`) triggers at most one
  clean restart from scratch — progress is lost, correctness is not.

:class:`~repro.errors.InjectedCrashError` is deliberately **not**
handled: it models the process dying, and a dead process runs nothing.
The caller (or the next invocation of ``repro-label --resume``) is the
recovery path, exactly as with a real ``SIGKILL``.
"""

from __future__ import annotations

import time

from ..errors import BackendError, CheckpointCorruptError
from ..faults import DEFAULT_RESILIENCE, degradation_reason
from ..obs import get_recorder

__all__ = ["JobRunner"]


class JobRunner:
    """Run a checkpointed job under retry + degradation supervision.

    *job* is any object with ``run(resume=...)``, a ``backend_name``
    attribute and ``degrade_to(rung)`` (both job shapes in
    :mod:`repro.checkpoint.jobs` qualify). ``degradation=None`` (the
    default) pins the job to its own backend; pass a
    :class:`~repro.faults.DegradationPolicy` to enable the ladder.
    """

    def __init__(
        self,
        job,
        degradation=None,
        resilience=None,
        recorder=None,
    ) -> None:
        self.job = job
        self.degradation = degradation
        self.resilience = (
            resilience if resilience is not None else DEFAULT_RESILIENCE
        )
        self._rec = recorder if recorder is not None else get_recorder()

    def run(self, resume: bool = False):
        rec = self._rec
        if self.degradation is not None:
            ladder = self.degradation.ladder_from(self.job.backend_name)
        else:
            ladder = (self.job.backend_name,)
        restarted = False
        last: BackendError | None = None
        for step, rung in enumerate(ladder):
            if step:
                self.job.degrade_to(rung)
                if rec.enabled:
                    rec.count("degrade.attempts")
                    rec.count(f"degrade.to_{rung}")
            attempt = 0
            while True:
                try:
                    result = self.job.run(resume=resume or step > 0 or attempt > 0)
                except CheckpointCorruptError:
                    # the snapshots are beyond salvage: one clean restart
                    # (losing progress) is allowed; a second corruption
                    # means the directory itself is sick — propagate
                    if restarted:
                        raise
                    restarted = True
                    resume = False
                    if rec.enabled:
                        rec.count("checkpoint.restarts")
                    continue
                except BackendError as exc:
                    last = exc
                    if rec.enabled:
                        rec.count("retry.job_attempts")
                    if attempt >= self.resilience.max_retries:
                        break  # rung exhausted; fall down the ladder
                    attempt += 1
                    time.sleep(self.resilience.backoff(attempt))
                    continue
                if step and isinstance(result.meta, dict):
                    result.meta["degraded_from"] = degradation_reason(
                        ladder[0], last
                    )
                return result
        assert last is not None
        raise last
