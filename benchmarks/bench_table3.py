"""Table III bench: dataset-generation cost and ladder regeneration.

Table III itself is a size ladder, not a timing table; the benchmark
here times the NLCD generator (it must stay off every other bench's
critical path) and prints the augmented ladder.
"""

from __future__ import annotations

from repro.bench.experiments.table3 import run_table3
from repro.data.datasets import nlcd_suite


def test_nlcd_generation(benchmark):
    suite = benchmark.pedantic(
        nlcd_suite, kwargs={"scale": 0.008}, rounds=3, iterations=1
    )
    assert len(suite) == 6


def test_table3_report(capsys):
    report = run_table3(scale=0.03)
    with capsys.disabled():
        print("\n" + report.render())
    sizes = [i["actual_mb"] for i in report.data["images"]]
    assert sizes == sorted(sizes)
