"""Engine ablation: interpreter kernels vs the NumPy run-based engine.

Documents the cost of pseudocode fidelity in CPython and the headroom
the vectorised engine provides — the numbers behind the README's
engine-selection guidance.
"""

from __future__ import annotations

import pytest

from repro.ccl import aremsp, multipass, run_based, run_based_vectorized, suzuki
from repro.data import blobs

SIZES = {"small": 64, "medium": 128, "large": 256}


@pytest.fixture(scope="module", params=sorted(SIZES))
def image(request):
    side = SIZES[request.param]
    return blobs((side, side), density=0.48, seed=42)


def test_aremsp_python_engine(benchmark, image):
    result = benchmark(aremsp, image, 8)
    assert result.n_components > 0


def test_run_python_engine(benchmark, image):
    result = benchmark(run_based, image, 8)
    assert result.n_components > 0


def test_run_vectorized_engine(benchmark, image):
    result = benchmark(run_based_vectorized, image, 8)
    assert result.n_components > 0


def test_vectorized_wins_at_scale(capsys):
    """The vectorised engine must clearly beat every interpreter engine
    on a large image (the guide's vectorise-the-hot-loop rule)."""
    import time

    img = blobs((512, 512), density=0.48, seed=7)

    def clock(fn):
        t0 = time.perf_counter()
        fn(img, 8)
        return time.perf_counter() - t0

    t_vec = clock(run_based_vectorized)
    t_py = clock(aremsp)
    with capsys.disabled():
        print(
            f"\n512x512 blobs: vectorized {t_vec * 1e3:.1f} ms, "
            f"aremsp python {t_py * 1e3:.1f} ms ({t_py / t_vec:.1f}x)"
        )
    assert t_vec < t_py


@pytest.mark.parametrize("algorithm", [multipass, suzuki])
def test_multipass_family_small_only(benchmark, algorithm):
    """The repeated-pass baselines are O(passes * pixels); bench small."""
    img = blobs((48, 48), density=0.48, seed=9)
    result = benchmark.pedantic(
        algorithm, args=(img, 8), rounds=3, iterations=1
    )
    assert result.n_components > 0
