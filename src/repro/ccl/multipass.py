"""Repeated-pass ("multipass") CCL — the classic baseline family.

References [11], [12] of the paper: initialise every foreground pixel
with a unique label, then sweep the image in alternating forward and
backward raster order, replacing each label with the minimum over the
already-swept half of its neighbourhood (plus itself), until a full
forward+backward round changes nothing. Convergence is guaranteed
because labels only decrease; the number of rounds grows with component
"windiness" (a spiral of depth k needs ~k rounds), which is exactly why
two-pass algorithms replaced this family.

Engines:

* :func:`multipass` — faithful interpreter raster sweeps (in-sweep
  dependencies honoured: a pixel sees values its own sweep just wrote);
* :func:`propagation_vectorized` — the data-parallel variant (Jacobi
  iteration of the neighbourhood-min operator via array shifts). It
  needs more rounds (no in-sweep propagation) but each round is a few
  NumPy passes; included as the vectorised member of the family and as a
  third independent implementation for cross-checking.

Final labels are canonicalised to the FLATTEN contract so results are
bit-comparable with the two-pass algorithms.
"""

from __future__ import annotations

import numpy as np

from ..obs import PhaseTimer, get_recorder
from ..types import LABEL_DTYPE, as_binary_image
from ..verify.equivalence import canonicalize_labeling
from .labeling import CCLResult

__all__ = ["multipass", "propagation_vectorized"]


def multipass(image: np.ndarray, connectivity: int = 8) -> CCLResult:
    """Label *image* with alternating forward/backward raster sweeps."""
    img = as_binary_image(image)
    rows, cols = img.shape
    # unique initial labels, raster order
    lab = [
        [(r * cols + c + 1) if img_rc else 0 for c, img_rc in enumerate(row)]
        for r, row in enumerate(img.tolist())
    ]
    if connectivity == 8:
        fwd = ((-1, -1), (-1, 0), (-1, 1), (0, -1))
    else:
        fwd = ((-1, 0), (0, -1))
    bwd = tuple((-dr, -dc) for dr, dc in fwd)

    rec = get_recorder()
    mark = rec.mark()
    timer = PhaseTimer(rec)
    passes = 0
    changed = True
    with timer.time("scan"):
        while changed:
            changed = False
            # forward sweep
            for r in range(rows):
                row = lab[r]
                for c in range(cols):
                    v = row[c]
                    if v:
                        m = v
                        for dr, dc in fwd:
                            nr, nc = r + dr, c + dc
                            if 0 <= nr < rows and 0 <= nc < cols:
                                w = lab[nr][nc]
                                if w and w < m:
                                    m = w
                        if m != v:
                            row[c] = m
                            changed = True
            # backward sweep
            for r in range(rows - 1, -1, -1):
                row = lab[r]
                for c in range(cols - 1, -1, -1):
                    v = row[c]
                    if v:
                        m = v
                        for dr, dc in bwd:
                            nr, nc = r + dr, c + dc
                            if 0 <= nr < rows and 0 <= nc < cols:
                                w = lab[nr][nc]
                                if w and w < m:
                                    m = w
                        if m != v:
                            row[c] = m
                            changed = True
            passes += 1
    with timer.time("label"):
        labels = canonicalize_labeling(
            np.asarray(lab, dtype=LABEL_DTYPE).reshape(rows, cols)
        )
    timer.seconds.setdefault("flatten", 0.0)
    n = int(labels.max()) if labels.size else 0
    return CCLResult(
        labels=labels,
        n_components=n,
        provisional_count=int(img.sum()),
        phase_seconds=timer.seconds,
        algorithm="multipass",
        meta={"passes": passes},
        timings=rec.report(since=mark) if rec.enabled else None,
    )


def _neighbor_min(lab: np.ndarray, connectivity: int) -> np.ndarray:
    """Minimum positive label over each pixel's neighbourhood + itself
    (background stays 0). One round of Jacobi label propagation."""
    big = np.iinfo(lab.dtype).max
    work = np.where(lab > 0, lab, big)
    out = work.copy()
    # axis shifts; slices avoid allocating padded copies
    out[1:, :] = np.minimum(out[1:, :], work[:-1, :])
    out[:-1, :] = np.minimum(out[:-1, :], work[1:, :])
    out[:, 1:] = np.minimum(out[:, 1:], work[:, :-1])
    out[:, :-1] = np.minimum(out[:, :-1], work[:, 1:])
    if connectivity == 8:
        out[1:, 1:] = np.minimum(out[1:, 1:], work[:-1, :-1])
        out[1:, :-1] = np.minimum(out[1:, :-1], work[:-1, 1:])
        out[:-1, 1:] = np.minimum(out[:-1, 1:], work[1:, :-1])
        out[:-1, :-1] = np.minimum(out[:-1, :-1], work[1:, 1:])
    return np.where(lab > 0, out, 0).astype(lab.dtype)


def propagation_vectorized(
    image: np.ndarray, connectivity: int = 8
) -> CCLResult:
    """Label *image* by vectorised neighbourhood-min propagation."""
    img = as_binary_image(image)
    rows, cols = img.shape
    lab = (
        (np.arange(1, rows * cols + 1, dtype=LABEL_DTYPE).reshape(rows, cols))
        * img
    )
    rec = get_recorder()
    mark = rec.mark()
    timer = PhaseTimer(rec)
    passes = 0
    with timer.time("scan"):
        while True:
            nxt = _neighbor_min(lab, connectivity)
            passes += 1
            if np.array_equal(nxt, lab):
                break
            lab = nxt
    with timer.time("label"):
        labels = canonicalize_labeling(lab)
    timer.seconds.setdefault("flatten", 0.0)
    n = int(labels.max()) if labels.size else 0
    return CCLResult(
        labels=labels,
        n_components=n,
        provisional_count=int(img.sum()),
        phase_seconds=timer.seconds,
        algorithm="propagation-vectorized",
        meta={"passes": passes},
        timings=rec.report(since=mark) if rec.enabled else None,
    )
