"""Component containment hierarchy (nesting tree).

Which components live inside which holes? Document analysis ('the digit
inside the box'), land-cover topology ('islands in lakes on islands')
and defect inspection all need the *containment tree*, not just the flat
label set. CCL gives it almost for free via connectivity duality:

* foreground components are labeled at the requested connectivity;
* background regions at the dual (8 <-> 4) connectivity;
* a background region's topmost-leftmost pixel has a *foreground* pixel
  directly above it (two vertically adjacent background pixels would be
  one region), and that pixel's component is the region's enclosure;
* symmetrically, a component's topmost-leftmost pixel has a background
  pixel (or the image border) above it, identifying its surrounding
  region.

Walking those parent pointers yields exact nesting depths in one pass
over the region list.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..ccl.run_based import run_based_vectorized
from ..types import PIXEL_DTYPE, as_binary_image

__all__ = ["ComponentTree", "component_tree"]

#: parent sentinel: the unbounded outside of the image.
OUTSIDE = 0


@dataclasses.dataclass(frozen=True)
class ComponentTree:
    """Containment relationships of one binary image.

    Components and background regions are numbered as by the labelers
    (1-based). ``fg_parent_region[i-1]`` is the background region
    surrounding component ``i``; ``region_parent_component[j-1]`` is the
    component enclosing region ``j`` (``OUTSIDE``/0 for regions touching
    the border). ``fg_depth[i-1]`` counts how many components enclose
    component ``i`` (0 = top level).
    """

    fg_labels: np.ndarray
    bg_labels: np.ndarray
    fg_parent_region: np.ndarray
    region_parent_component: np.ndarray
    fg_depth: np.ndarray

    @property
    def n_components(self) -> int:
        return len(self.fg_parent_region)

    @property
    def n_regions(self) -> int:
        return len(self.region_parent_component)

    @property
    def max_depth(self) -> int:
        return int(self.fg_depth.max()) if self.fg_depth.size else 0

    def children_of(self, component: int) -> list[int]:
        """Components directly inside *component*'s holes."""
        regions = np.flatnonzero(self.region_parent_component == component) + 1
        out: list[int] = []
        for region in regions:
            out.extend(
                (np.flatnonzero(self.fg_parent_region == region) + 1).tolist()
            )
        return out

    def top_level(self) -> list[int]:
        """Components not enclosed by any other component."""
        return (np.flatnonzero(self.fg_depth == 0) + 1).tolist()


def _first_pixels(labels: np.ndarray, k: int) -> np.ndarray:
    """(row, col) of the raster-first pixel of each positive label."""
    flat = labels.ravel()
    order = np.argsort(flat, kind="stable")
    sorted_labels = flat[order]
    firsts = np.searchsorted(sorted_labels, np.arange(1, k + 1))
    idx = order[firsts]
    cols = labels.shape[1]
    return np.stack([idx // cols, idx % cols], axis=1)


def component_tree(
    image: np.ndarray, connectivity: int = 8
) -> ComponentTree:
    """Build the containment tree of *image*'s components.

    >>> import numpy as np
    >>> ring = np.ones((5, 5), dtype=np.uint8); ring[1:4, 1:4] = 0
    >>> ring[2, 2] = 1   # a dot inside the ring's hole
    >>> tree = component_tree(ring)
    >>> tree.fg_depth.tolist()   # ring at depth 0, dot at depth 1
    [0, 1]
    >>> tree.children_of(1)
    [2]
    """
    img = as_binary_image(image)
    if img.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return ComponentTree(
            fg_labels=np.zeros(img.shape, dtype=np.int32),
            bg_labels=np.zeros(img.shape, dtype=np.int32),
            fg_parent_region=z,
            region_parent_component=z,
            fg_depth=z,
        )
    dual = 4 if connectivity == 8 else 8
    fg = run_based_vectorized(img, connectivity)
    bg = run_based_vectorized((1 - img).astype(PIXEL_DTYPE), dual)
    k_fg = fg.n_components
    k_bg = bg.n_components

    # background regions touching the border belong to the outside
    border_regions = np.unique(
        np.concatenate(
            [bg.labels[0], bg.labels[-1], bg.labels[:, 0], bg.labels[:, -1]]
        )
    )
    border_set = set(int(x) for x in border_regions if x > 0)

    region_parent = np.zeros(k_bg, dtype=np.int64)
    if k_bg:
        firsts = _first_pixels(bg.labels, k_bg)
        for j in range(k_bg):
            if (j + 1) in border_set:
                region_parent[j] = OUTSIDE
                continue
            r, c = firsts[j]
            # r > 0 is guaranteed: a region whose first pixel sits on
            # row 0 touches the border and was handled above.
            region_parent[j] = fg.labels[r - 1, c]

    fg_parent = np.zeros(k_fg, dtype=np.int64)
    if k_fg:
        firsts = _first_pixels(fg.labels, k_fg)
        for i in range(k_fg):
            r, c = firsts[i]
            fg_parent[i] = bg.labels[r - 1, c] if r > 0 else OUTSIDE

    # depths by walking component -> region -> component chains
    depth = np.zeros(k_fg, dtype=np.int64)
    for i in range(k_fg):
        d = 0
        region = fg_parent[i]
        while region != OUTSIDE and region_parent[region - 1] != OUTSIDE:
            d += 1
            comp = region_parent[region - 1]
            region = fg_parent[comp - 1]
        depth[i] = d
    return ComponentTree(
        fg_labels=fg.labels,
        bg_labels=bg.labels,
        fg_parent_region=fg_parent,
        region_parent_component=region_parent,
        fg_depth=depth,
    )
