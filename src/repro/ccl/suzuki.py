"""Suzuki's table-accelerated multipass CCL (reference [10]).

Suzuki, Horiba, Sugie (2003) showed that augmenting the repeated-pass
algorithm with a one-dimensional *connection table* ``T`` bounds the
number of sweeps by a small constant (four for any image, in their
formulation) instead of growing with component geometry: whenever a sweep
discovers that two provisional labels meet, the table — not just the
pixel — records the smaller equivalent, so information propagates through
label space as well as pixel space.

Implementation notes (faithful to the mechanism, simplified bookkeeping):

* sweep 1 (forward) assigns provisional labels from the Fig 1a mask,
  writing equivalences into ``T`` via min-updates;
* subsequent sweeps alternate backward/forward over the *full*
  neighbourhood resolved through ``T``, min-updating pixel and table
  entries, until a sweep changes nothing;
* the table is then path-compressed (``T[i] <- T[T[i]]`` left-to-right —
  valid since ``T[i] <= i`` throughout) and final labels renumbered via
  the shared FLATTEN.

The pass-count claim is asserted in tests (``meta["passes"]`` stays small
on every generator, versus the spiral-depth growth of plain MULTIPASS —
that contrast is one of our ablation benches).
"""

from __future__ import annotations

import time

import numpy as np

from ..types import LABEL_DTYPE, as_binary_image
from ..unionfind.flatten import flatten
from .labeling import CCLResult, apply_table, prealloc_capacity

__all__ = ["suzuki"]


def suzuki(image: np.ndarray, connectivity: int = 8) -> CCLResult:
    """Label *image* with the Suzuki table-based multipass algorithm."""
    img = as_binary_image(image)
    rows, cols = img.shape
    img_l = img.tolist()
    lab = [[0] * cols for _ in range(rows)]
    T = [0] * prealloc_capacity(rows, cols)
    if connectivity == 8:
        fwd = ((-1, -1), (-1, 0), (-1, 1), (0, -1))
    else:
        fwd = ((-1, 0), (0, -1))
    bwd = tuple((-dr, -dc) for dr, dc in fwd)

    t0 = time.perf_counter()
    # --- sweep 1: provisional labels + initial table -------------------
    count = 1
    for r in range(rows):
        irow = img_l[r]
        lrow = lab[r]
        for c in range(cols):
            if irow[c]:
                m = 0
                for dr, dc in fwd:
                    nr, nc = r + dr, c + dc
                    if 0 <= nr < rows and 0 <= nc < cols:
                        w = lab[nr][nc]
                        if w:
                            tw = T[w]
                            if m == 0 or tw < m:
                                m = tw
                if m == 0:
                    T[count] = count
                    lrow[c] = count
                    count += 1
                else:
                    lrow[c] = m
                    for dr, dc in fwd:
                        nr, nc = r + dr, c + dc
                        if 0 <= nr < rows and 0 <= nc < cols:
                            w = lab[nr][nc]
                            if w and T[w] > m:
                                T[T[w]] = m
                                T[w] = m
    passes = 1
    # --- alternating table-propagation sweeps --------------------------
    changed = True
    while changed:
        changed = False
        for direction in (bwd, fwd):
            order_r = (
                range(rows - 1, -1, -1) if direction is bwd else range(rows)
            )
            for r in order_r:
                irow = img_l[r]
                lrow = lab[r]
                order_c = (
                    range(cols - 1, -1, -1)
                    if direction is bwd
                    else range(cols)
                )
                for c in order_c:
                    if irow[c]:
                        m = T[lrow[c]]
                        for dr, dc in direction:
                            nr, nc = r + dr, c + dc
                            if 0 <= nr < rows and 0 <= nc < cols:
                                w = lab[nr][nc]
                                if w:
                                    tw = T[w]
                                    if tw < m:
                                        m = tw
                        if T[lrow[c]] != m:
                            T[T[lrow[c]]] = m
                            T[lrow[c]] = m
                            changed = True
                        lrow[c] = m
            passes += 1
    t1 = time.perf_counter()
    # table entries satisfy T[i] <= i, so one left-to-right compression
    # round makes every entry point at its set minimum before FLATTEN.
    for i in range(1, count):
        T[i] = T[T[i]]
    n_components = flatten(T, count)
    t2 = time.perf_counter()
    labels = apply_table(lab, T, count)
    t3 = time.perf_counter()
    return CCLResult(
        labels=np.asarray(labels, dtype=LABEL_DTYPE).reshape(rows, cols),
        n_components=n_components,
        provisional_count=count - 1,
        phase_seconds={"scan": t1 - t0, "flatten": t2 - t1, "label": t3 - t2},
        algorithm="suzuki",
        meta={"passes": passes},
    )
