"""Graph substrate: spanning forests, component counts, edge generators."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.unionfind.graph import (
    connected_components,
    count_components,
    grid_edge_stream,
    random_edge_stream,
    ring_edge_stream,
    spanning_forest,
)
from repro.unionfind.variants import ALL_VARIANTS


def test_spanning_forest_tree_count():
    edges = [(0, 1), (1, 2), (2, 0), (3, 4)]
    tree, ds = spanning_forest(6, edges)
    # n - components = tree edges: 6 - 3 = 3
    assert len(tree) == 3
    assert ds.n_sets() == 3


def test_spanning_forest_keeps_stream_order():
    edges = [(0, 1), (2, 3), (1, 2), (0, 3)]
    tree, _ = spanning_forest(4, edges)
    assert tree == [(0, 1), (2, 3), (1, 2)]


def test_count_components_empty_graph():
    assert count_components(5, []) == 5
    assert count_components(0, []) == 0


def test_connected_components_consecutive_ids():
    ids = connected_components(6, [(0, 5), (1, 2)])
    assert ids.tolist() == [0, 1, 1, 2, 3, 0]


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_count_matches_networkx_random(seed):
    n, m = 60, 90
    edges = random_edge_stream(n, m, seed=seed)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    assert count_components(n, edges) == nx.number_connected_components(g)


@pytest.mark.parametrize("name", sorted(ALL_VARIANTS))
def test_all_variants_count_ring(name):
    n = 40
    edges = ring_edge_stream(n)
    assert count_components(n, edges, ds_class=ALL_VARIANTS[name]) == 1


def test_ring_edges_structure():
    assert ring_edge_stream(1) == []
    assert ring_edge_stream(3) == [(0, 1), (1, 2), (2, 0)]


def test_random_edge_stream_deterministic():
    a = random_edge_stream(30, 50, seed=5)
    b = random_edge_stream(30, 50, seed=5)
    assert a == b
    assert len(a) == 50
    assert all(u != v for u, v in a)
    assert all(0 <= u < 30 and 0 <= v < 30 for u, v in a)


def test_grid_edge_stream_4conn_count():
    rows, cols = 4, 5
    edges = grid_edge_stream(rows, cols, diagonal=False)
    # grid graph edges: rows*(cols-1) + (rows-1)*cols
    assert len(edges) == rows * (cols - 1) + (rows - 1) * cols
    assert count_components(rows * cols, edges) == 1


def test_grid_edge_stream_8conn_matches_ccl_merge_structure():
    """The 8-connected grid's component structure equals an all-foreground
    image's CCL result: one component."""
    rows, cols = 5, 6
    edges = grid_edge_stream(rows, cols, diagonal=True)
    assert count_components(rows * cols, edges) == 1
    # diagonal edge count: 2*(rows-1)*(cols-1)
    n_diag = sum(
        1 for (u, v) in edges if abs(u - v) not in (1, cols)
    )
    assert n_diag == 2 * (rows - 1) * (cols - 1)


def test_connected_components_matches_networkx_labels():
    n = 50
    edges = random_edge_stream(n, 40, seed=3)
    ids = connected_components(n, edges)
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    for comp in nx.connected_components(g):
        comp = sorted(comp)
        assert len({int(ids[v]) for v in comp}) == 1
    assert len(np.unique(ids)) == nx.number_connected_components(g)
