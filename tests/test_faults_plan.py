"""Fault-plan semantics: deterministic matching, consumable budgets,
the ambient hook, and the recovery-policy knobs."""

from __future__ import annotations

import pytest

from repro.faults import (
    DEFAULT_RESILIENCE,
    KINDS,
    NULL_PLAN,
    DegradationPolicy,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
    backoff_delays,
    get_fault_plan,
    record_injection,
    set_fault_plan,
    use_fault_plan,
)
from repro.faults.plan import WORKER_KINDS
from repro.obs import TraceRecorder


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode")

    def test_times_must_be_positive(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("kill_worker", times=0)

    def test_attempt_must_be_nonnegative(self):
        with pytest.raises(ValueError, match="attempt"):
            FaultSpec("kill_worker", attempt=-1)

    def test_frozen(self):
        spec = FaultSpec("kill_worker")
        with pytest.raises(Exception):
            spec.kind = "shm_fail"


class TestTake:
    def test_exact_site_match(self):
        plan = FaultPlan(
            [FaultSpec("kill_worker", phase="scan", rank=2, attempt=1)]
        )
        assert plan.take("kill_worker", phase="scan", rank=2, attempt=0) is None
        assert plan.take("kill_worker", phase="merge", rank=2, attempt=1) is None
        assert plan.take("kill_worker", phase="scan", rank=1, attempt=1) is None
        spec = plan.take("kill_worker", phase="scan", rank=2, attempt=1)
        assert spec is not None and spec.rank == 2

    def test_rank_none_is_wildcard(self):
        plan = FaultPlan([FaultSpec("delay_chunk", rank=None)])
        assert plan.take("delay_chunk", phase="scan", rank=7) is not None

    def test_budget_consumed(self):
        plan = FaultPlan([FaultSpec("poison_lock", phase="merge", times=2)])
        assert plan.take("poison_lock", phase="merge") is not None
        assert plan.take("poison_lock", phase="merge") is not None
        assert plan.take("poison_lock", phase="merge") is None
        assert plan.injected == 2
        assert plan.remaining() == 0

    def test_reset_rearms(self):
        plan = FaultPlan([FaultSpec("shm_fail", phase="alloc")])
        assert plan.take("shm_fail", phase="alloc") is not None
        plan.reset()
        assert plan.remaining() == 1
        assert plan.injected == 0
        assert plan.take("shm_fail", phase="alloc") is not None

    def test_determinism_same_queries_same_firings(self):
        def fire(plan):
            out = []
            for attempt in range(3):
                for rank in range(4):
                    spec = plan.take(
                        "kill_worker", phase="scan", rank=rank,
                        attempt=attempt,
                    )
                    out.append(spec is not None)
            return out

        specs = [
            FaultSpec("kill_worker", rank=1, attempt=0),
            FaultSpec("kill_worker", rank=3, attempt=2),
        ]
        assert fire(FaultPlan(specs)) == fire(FaultPlan(specs))


class TestDirectives:
    def test_only_worker_kinds_shipped(self):
        plan = FaultPlan(
            [
                FaultSpec("kill_worker", rank=0),
                FaultSpec("delay_chunk", rank=0),
                FaultSpec("poison_lock", phase="scan", rank=0),
            ]
        )
        shipped = plan.directives("scan", 0, 0)
        assert {s.kind for s in shipped} == set(WORKER_KINDS)
        # the non-worker kind stays armed for its in-process site
        assert plan.remaining() == 1

    def test_directives_consume_budget(self):
        plan = FaultPlan([FaultSpec("kill_worker", rank=1)])
        assert plan.directives("scan", 1, 0)
        assert plan.directives("scan", 1, 0) == ()


class TestSample:
    def test_replayable(self):
        a = FaultPlan.sample(7, n_ranks=3, n_faults=4)
        b = FaultPlan.sample(7, n_ranks=3, n_faults=4)
        assert a.specs == b.specs

    def test_seeds_differ(self):
        assert (
            FaultPlan.sample(1, n_faults=4).specs
            != FaultPlan.sample(2, n_faults=4).specs
        )

    def test_kinds_are_valid(self):
        plan = FaultPlan.sample(3, n_faults=8)
        assert all(s.kind in KINDS for s in plan.specs)


class TestAmbient:
    def test_default_is_disabled(self):
        assert get_fault_plan() is NULL_PLAN
        assert not NULL_PLAN.enabled

    def test_use_fault_plan_scopes(self):
        plan = FaultPlan([FaultSpec("kill_worker")])
        with use_fault_plan(plan) as active:
            assert active is plan
            assert get_fault_plan() is plan
        assert get_fault_plan() is NULL_PLAN

    def test_set_returns_previous(self):
        plan = FaultPlan([])
        previous = set_fault_plan(plan)
        try:
            assert previous is NULL_PLAN
        finally:
            set_fault_plan(previous)


class TestNullPlan:
    def test_all_sites_are_noops(self):
        assert NULL_PLAN.take("kill_worker", phase="scan") is None
        assert NULL_PLAN.directives("scan", 0, 0) == ()
        assert NULL_PLAN.remaining() == 0
        assert NULL_PLAN.reset() is None
        assert NULL_PLAN.injected == 0


def test_record_injection_counters():
    rec = TraceRecorder()
    record_injection(rec, FaultSpec("kill_worker"), n=2)
    counters = rec.report().metrics["counters"]
    assert counters["fault.injected"] == 2
    assert counters["fault.kill_worker"] == 2


class TestResilienceConfig:
    def test_backoff_schedule_is_exponential_and_capped(self):
        config = ResilienceConfig(
            max_retries=5, backoff_base=0.1, backoff_factor=2.0,
            backoff_max=0.5,
        )
        assert config.backoff(0) == 0.0
        assert config.backoff(1) == pytest.approx(0.1)
        assert config.backoff(2) == pytest.approx(0.2)
        assert config.backoff(3) == pytest.approx(0.4)
        assert config.backoff(4) == 0.5  # capped
        assert list(backoff_delays(config)) == [
            config.backoff(i) for i in range(1, 6)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(max_retries=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(backoff_factor=0.5)
        with pytest.raises(ValueError):
            ResilienceConfig(phase_timeout=0.0)

    def test_default_is_bounded(self):
        assert DEFAULT_RESILIENCE.max_retries >= 1
        assert DEFAULT_RESILIENCE.phase_timeout > 0


class TestDegradationPolicy:
    def test_ladder_from_top(self):
        policy = DegradationPolicy()
        assert policy.ladder_from("processes") == (
            "processes", "threads", "serial",
        )

    def test_ladder_from_middle(self):
        assert DegradationPolicy().ladder_from("threads") == (
            "threads", "serial",
        )

    def test_serial_is_terminal(self):
        assert DegradationPolicy().ladder_from("serial") == ("serial",)

    def test_unknown_backend_gets_no_fallback(self):
        assert DegradationPolicy().ladder_from("simulated") == ("simulated",)

    def test_disabled_policy(self):
        policy = DegradationPolicy(enabled=False)
        assert policy.ladder_from("processes") == ("processes",)
