"""The rtable/next/tail equivalence structure of He et al."""

from __future__ import annotations

import pytest

from repro.ccl.arun_ds import RunEquivalence
from repro.unionfind.remsp import merge as remsp_merge


def test_alloc_sequential_labels():
    eq = RunEquivalence(10)
    assert eq.alloc() == 1
    assert eq.alloc() == 2
    assert eq.labels_used() == 2
    assert eq.find(1) == 1
    assert eq.find(2) == 2


def test_resolve_keeps_smaller_representative():
    eq = RunEquivalence(10)
    a, b = eq.alloc(), eq.alloc()
    assert eq.resolve(b, a) == a
    assert eq.find(b) == a


def test_resolve_is_eager_for_all_members():
    """Every member of the losing set is relabeled immediately — O(1)
    find afterwards, by direct array read."""
    eq = RunEquivalence(10)
    l1, l2, l3, l4 = (eq.alloc() for _ in range(4))
    eq.resolve(l3, l4)  # {3, 4}
    eq.resolve(l1, l3)  # {1, 3, 4}
    assert eq.rtable[l4] == l1  # member, not just root, is updated
    assert eq.rtable[l3] == l1


def test_resolve_idempotent():
    eq = RunEquivalence(8)
    a, b = eq.alloc(), eq.alloc()
    eq.resolve(a, b)
    state = (list(eq.rtable), list(eq.next), list(eq.tail))
    assert eq.resolve(b, a) == a
    assert (list(eq.rtable), list(eq.next), list(eq.tail)) == state


def test_member_lists_concatenate():
    eq = RunEquivalence(10)
    labels = [eq.alloc() for _ in range(5)]
    eq.resolve(labels[0], labels[2])
    eq.resolve(labels[0], labels[4])
    # walk the member list of set 1
    members = []
    i = labels[0]
    while i != -1:
        members.append(i)
        i = eq.next[i]
    assert sorted(members) == [labels[0], labels[2], labels[4]]
    assert eq.tail[labels[0]] == members[-1]


def test_rtable_monotone_invariant(rng):
    """rtable[i] <= i always (FLATTEN precondition)."""
    eq = RunEquivalence(64)
    labels = [eq.alloc() for _ in range(50)]
    for _ in range(120):
        x, y = rng.choice(labels, size=2)
        eq.resolve(int(x), int(y))
        assert all(eq.rtable[l] <= l for l in labels)


def test_same_partition_as_remsp(rng):
    n = 40
    eq = RunEquivalence(n + 2)
    for _ in range(n):
        eq.alloc()
    p = list(range(n + 2))
    ops = [tuple(map(int, rng.integers(1, n + 1, size=2))) for _ in range(100)]
    for x, y in ops:
        eq.resolve(x, y)
        remsp_merge(p, x, y)
    # compare induced partitions over labels 1..n
    from repro.unionfind.base import roots_of

    rem_roots = roots_of(p)
    for i in range(1, n + 1):
        for j in range(i + 1, n + 1):
            assert (eq.rtable[i] == eq.rtable[j]) == (
                rem_roots[i] == rem_roots[j]
            )


def test_capacity_validation():
    with pytest.raises(ValueError):
        RunEquivalence(1)
    RunEquivalence(2)  # minimum viable


def test_merge_fn_adapter_ignores_p():
    eq = RunEquivalence(8)
    a, b = eq.alloc(), eq.alloc()
    fn = eq.merge_fn()
    assert fn(None, b, a) == a
    assert eq.find(b) == a


def test_offset_start():
    eq = RunEquivalence(100, start=50)
    assert eq.alloc() == 50
    assert eq.labels_used() == 1
