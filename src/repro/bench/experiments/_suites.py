"""Shared suite construction for the experiment drivers.

Builds the four paper suites at a common scale and attaches each image's
``linear_scale`` — the factor that prices the stand-in at the size it
represents in the paper (used by the simulated-machine experiments).
"""

from __future__ import annotations

import dataclasses
import math

from ...data.datasets import (
    DatasetImage,
    aerial_suite,
    misc_suite,
    nlcd_suite,
    texture_suite,
)

__all__ = ["SuiteImage", "build_suites", "SMALL_SUITES", "PAPER_THREADS"]

#: the three sub-megabyte suites of Figure 4 / Tables II & IV.
SMALL_SUITES = ("aerial", "texture", "misc")

#: thread counts the paper tables/figures sweep.
PAPER_THREADS = (2, 6, 8, 16, 24)


@dataclasses.dataclass(frozen=True)
class SuiteImage:
    """A dataset image plus its paper-scale pricing factor."""

    info: DatasetImage

    @property
    def linear_scale(self) -> float:
        """Linear factor mapping the stand-in to its nominal pixel count."""
        return math.sqrt(self.info.nominal_mb * 1e6 / self.info.image.size)


def build_suites(
    scale: float | None = None,
    suites: tuple[str, ...] = ("texture", "aerial", "misc", "nlcd"),
    seed_offset: int = 0,
) -> dict[str, list[SuiteImage]]:
    """Construct the requested suites.

    ``scale`` overrides each suite's default stand-in scale (small suites
    default to 0.05 of linear size, NLCD to 0.01 — NLCD paper images are
    up to 465 MB). ``seed_offset`` shifts every generator seed, used by
    robustness tests.
    """
    out: dict[str, list[SuiteImage]] = {}
    for name in suites:
        if name == "texture":
            imgs = texture_suite(
                **({"scale": scale} if scale is not None else {}),
                seed=2014 + seed_offset,
            )
        elif name == "aerial":
            imgs = aerial_suite(
                **({"scale": scale} if scale is not None else {}),
                seed=4102 + seed_offset,
            )
        elif name == "misc":
            imgs = misc_suite(
                **({"scale": scale} if scale is not None else {}),
                seed=365 + seed_offset,
            )
        elif name == "nlcd":
            imgs = nlcd_suite(
                **(
                    {"scale": scale * 0.2}
                    if scale is not None
                    else {}
                ),
                seed=2006 + seed_offset,
            )
        else:
            raise KeyError(f"unknown suite {name!r}")
        out[name] = [SuiteImage(info=i) for i in imgs]
    return out
