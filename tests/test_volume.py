"""3-D volume labeling vs the BFS oracle and scipy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ImageFormatError
from repro.verify import have_scipy, labelings_equivalent
from repro.volume import VOLUME_CONNECTIVITIES, flood_fill_label_3d, volume_label
from repro.volume.labeling3d import line_offsets
from repro.volume.oracle import neighbor_offsets_3d

CONNS = VOLUME_CONNECTIVITIES


def test_neighbor_offset_counts():
    assert len(neighbor_offsets_3d(6)) == 6
    assert len(neighbor_offsets_3d(18)) == 18
    assert len(neighbor_offsets_3d(26)) == 26
    with pytest.raises(ValueError):
        neighbor_offsets_3d(10)


def test_line_offsets_validation():
    with pytest.raises(ValueError):
        line_offsets(8)


def test_line_offsets_cover_all_preceding_neighbors():
    """Every preceding voxel neighbour must be reachable through some
    (dz, dy, reach) line entry — the matrix in the module docstring."""
    for conn in CONNS:
        # a preceding neighbour (dz, dy, dx) is covered iff (dz, dy) is a
        # listed line and |dx| <= its reach (single-voxel-run overlap
        # with reach r spans exactly |dx| <= r).
        lines = {(dz, dy): reach for dz, dy, reach in line_offsets(conn)}
        for dz, dy, dx in neighbor_offsets_3d(conn):
            if (dz, dy, dx) > (0, 0, 0):
                continue  # only preceding neighbours are matched
            if (dz, dy) == (0, 0):
                continue  # same-line adjacency is inside a run
            assert (dz, dy) in lines, (conn, dz, dy, dx)
            assert abs(dx) <= lines[(dz, dy)], (conn, dz, dy, dx)


@pytest.mark.parametrize("conn", CONNS)
def test_single_voxel(conn):
    v = np.zeros((3, 3, 3), dtype=np.uint8)
    v[1, 1, 1] = 1
    r = volume_label(v, conn)
    assert r.n_components == 1
    assert r.labels[1, 1, 1] == 1


def test_diagonal_chain_connectivity_split():
    v = np.zeros((3, 3, 3), dtype=np.uint8)
    v[0, 0, 0] = v[1, 1, 1] = v[2, 2, 2] = 1
    assert volume_label(v, 26).n_components == 1
    assert volume_label(v, 18).n_components == 3
    assert volume_label(v, 6).n_components == 3


def test_edge_neighbors_18():
    v = np.zeros((2, 2, 2), dtype=np.uint8)
    v[0, 0, 0] = v[1, 1, 0] = 1  # share an edge (two coords differ)
    assert volume_label(v, 6).n_components == 2
    assert volume_label(v, 18).n_components == 1


def test_solid_volume():
    v = np.ones((4, 5, 6), dtype=np.uint8)
    for conn in CONNS:
        r = volume_label(v, conn)
        assert r.n_components == 1
        assert (r.labels == 1).all()


def test_stacked_planes_separated():
    v = np.zeros((5, 4, 4), dtype=np.uint8)
    v[0] = 1
    v[2] = 1
    v[4] = 1
    for conn in CONNS:
        assert volume_label(v, conn).n_components == 3


@pytest.mark.parametrize("conn", CONNS)
def test_matches_bfs_oracle_random(conn, rng):
    for _ in range(20):
        shape = tuple(rng.integers(1, 7, size=3))
        v = (rng.random(shape) < rng.random()).astype(np.uint8)
        got = volume_label(v, conn)
        expected, n = flood_fill_label_3d(v, conn)
        assert got.n_components == n
        assert labelings_equivalent(
            got.labels.reshape(-1, 1), expected.reshape(-1, 1)
        )


@pytest.mark.parametrize("conn", CONNS)
def test_matches_scipy(conn, rng):
    if not have_scipy():
        pytest.skip("scipy not installed")
    from scipy import ndimage

    structure = ndimage.generate_binary_structure(3, {6: 1, 18: 2, 26: 3}[conn])
    for _ in range(10):
        shape = tuple(rng.integers(2, 10, size=3))
        v = (rng.random(shape) < 0.4).astype(np.uint8)
        got = volume_label(v, conn)
        _, n = ndimage.label(v, structure=structure)
        assert got.n_components == n


@given(
    v=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=3, max_dims=3, min_side=1, max_side=5),
        elements=st.integers(0, 1),
    ),
    conn=st.sampled_from(CONNS),
)
@settings(max_examples=30)
def test_property_volume_matches_oracle(v, conn):
    got = volume_label(v, conn)
    expected, n = flood_fill_label_3d(v, conn)
    assert got.n_components == n
    assert labelings_equivalent(
        got.labels.reshape(-1, 1), expected.reshape(-1, 1)
    )


def test_validation_and_empty():
    with pytest.raises(ImageFormatError):
        volume_label(np.zeros((2, 2)))
    r = volume_label(np.zeros((0, 3, 3), dtype=np.uint8))
    assert r.n_components == 0


def test_labels_background_preserved(rng):
    v = (rng.random((5, 6, 7)) < 0.4).astype(np.uint8)
    r = volume_label(v, 26)
    assert np.array_equal(r.labels == 0, v == 0)
    positive = np.unique(r.labels[r.labels > 0])
    assert positive.size == r.n_components
