"""Canonical types, validation, and the exception hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.errors import (
    BackendError,
    CostModelError,
    ImageFormatError,
    LabelOverflowError,
    PartitionError,
    ReproError,
    UnknownAlgorithmError,
)
from repro.types import (
    BACKGROUND,
    FOREGROUND,
    LABEL_DTYPE,
    Connectivity,
    as_binary_image,
    max_labels_for,
)


class TestAsBinaryImage:
    def test_uint8_passthrough_contiguous(self):
        img = np.zeros((4, 4), dtype=np.uint8)
        out = as_binary_image(img)
        assert out.dtype == np.uint8
        assert out.flags["C_CONTIGUOUS"]

    def test_bool_converted(self):
        out = as_binary_image(np.ones((2, 2), dtype=bool))
        assert out.dtype == np.uint8
        assert out.tolist() == [[1, 1], [1, 1]]

    def test_int_values_validated(self):
        with pytest.raises(ImageFormatError):
            as_binary_image(np.array([[0, 2]]))

    def test_negative_values_rejected(self):
        with pytest.raises(ImageFormatError):
            as_binary_image(np.array([[0, -1]]))

    def test_non_2d_rejected(self):
        with pytest.raises(ImageFormatError):
            as_binary_image(np.zeros(4))
        with pytest.raises(ImageFormatError):
            as_binary_image(np.zeros((2, 2, 2)))

    def test_validation_skippable(self):
        out = as_binary_image(np.array([[0, 2]]), validate=False)
        assert out.tolist() == [[0, 2]]

    def test_list_input(self):
        out = as_binary_image([[0, 1], [1, 0]])
        assert out.dtype == np.uint8

    def test_fortran_order_made_contiguous(self):
        img = np.asfortranarray(np.zeros((4, 6), dtype=np.uint8))
        assert as_binary_image(img).flags["C_CONTIGUOUS"]

    def test_empty_ok(self):
        assert as_binary_image(np.zeros((0, 0))).shape == (0, 0)


def test_connectivity_enum():
    assert Connectivity(4) is Connectivity.FOUR
    assert Connectivity(8) is Connectivity.EIGHT
    with pytest.raises(ValueError):
        Connectivity(6)


def test_constants():
    assert BACKGROUND == 0
    assert FOREGROUND == 1
    assert LABEL_DTYPE == np.int32


def test_max_labels_for():
    assert max_labels_for((3, 4)) == 13


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ImageFormatError,
            LabelOverflowError,
            PartitionError,
            UnknownAlgorithmError,
            BackendError,
            CostModelError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_dual_inheritance(self):
        assert issubclass(ImageFormatError, ValueError)
        assert issubclass(PartitionError, ValueError)
        assert issubclass(UnknownAlgorithmError, KeyError)
        assert issubclass(BackendError, RuntimeError)
        assert issubclass(LabelOverflowError, OverflowError)


class TestTopLevelAPI:
    def test_label_default(self, rng):
        img = (rng.random((12, 12)) < 0.5).astype(np.uint8)
        labels, n = repro.label(img)
        assert labels.shape == img.shape
        assert n == int(labels.max())

    def test_label_algorithm_selection(self, rng):
        img = (rng.random((10, 10)) < 0.5).astype(np.uint8)
        a, na = repro.label(img, algorithm="ccllrpc")
        b, nb = repro.label(img, algorithm="aremsp")
        assert na == nb

    def test_label_vectorized_engine(self, rng):
        img = (rng.random((10, 10)) < 0.5).astype(np.uint8)
        _, n1 = repro.label(img, engine="vectorized")
        _, n2 = repro.label(img)
        assert n1 == n2

    def test_label_bad_engine(self):
        # engine names resolve through the registry now, so a bad one is
        # the same typed error as a bad algorithm, with suggestions
        with pytest.raises(UnknownAlgorithmError, match="available"):
            repro.label(np.zeros((2, 2)), engine="cuda")

    def test_label_registry_engine_names(self):
        img = np.eye(6, dtype=np.uint8)
        for engine in ("itequiv", "coarse2fine", "auto"):
            _, n = repro.label(img, engine=engine)
            assert n == 1

    def test_label_unknown_algorithm(self):
        with pytest.raises(UnknownAlgorithmError):
            repro.label(np.zeros((2, 2)), algorithm="fancy")

    def test_unknown_algorithm_error_lists_names_and_suggests(self):
        from repro.ccl.registry import ALGORITHMS, get_algorithm

        with pytest.raises(UnknownAlgorithmError) as excinfo:
            get_algorithm("aremps")  # transposed typo
        message = str(excinfo.value)
        assert "aremsp" in message  # the nearest-match suggestion
        for name in ALGORITHMS:  # and the full roster
            assert name in message

    def test_unknown_algorithm_error_without_near_miss(self):
        from repro.ccl.registry import get_algorithm

        with pytest.raises(UnknownAlgorithmError, match="available"):
            get_algorithm("zzzzzz")

    def test_label_parallel(self, rng):
        img = (rng.random((14, 14)) < 0.5).astype(np.uint8)
        labels, n = repro.label_parallel(img, n_threads=3)
        ref, nref = repro.label(img)
        assert n == nref

    def test_version(self):
        assert repro.__version__
