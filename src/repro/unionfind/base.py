"""Common disjoint-set interface and parent-array utilities.

The functional kernels in :mod:`repro.unionfind.remsp` / ``.lrpc`` /
``.variants`` operate directly on parent sequences for speed; this module
provides the object-oriented facade (:class:`DisjointSets`) plus helpers
shared by tests, FLATTEN, and the graph substrate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, MutableSequence, Sequence

import numpy as np

__all__ = [
    "DisjointSets",
    "is_valid_parent_array",
    "count_sets",
    "components",
    "roots_of",
]


class DisjointSets(ABC):
    """Abstract disjoint-set forest over the elements ``0..n-1``.

    Concrete subclasses differ only in their *union* strategy and *find*
    compression technique — exactly the design space reference [40] of the
    paper explores. All subclasses expose the parent sequence as ``.p`` so
    FLATTEN and the CCL labeling pass can consume it directly.
    """

    #: parent sequence; ``p[i]`` is the parent of ``i``, roots are fixpoints.
    p: MutableSequence[int]

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"number of elements must be >= 0, got {n}")
        self.p = self._make_parents(n)

    @staticmethod
    def _make_parents(n: int) -> MutableSequence[int]:
        """Create the initial parent sequence (every element its own root)."""
        return list(range(n))

    def __len__(self) -> int:
        return len(self.p)

    @abstractmethod
    def find(self, x: int) -> int:
        """Return the root representative of *x* (may compress paths)."""

    @abstractmethod
    def union(self, x: int, y: int) -> int:
        """Unite the sets of *x* and *y*; return the surviving root."""

    def same_set(self, x: int, y: int) -> bool:
        """True iff *x* and *y* currently belong to the same set."""
        return self.find(x) == self.find(y)

    def add(self) -> int:
        """Append a fresh singleton element; return its index."""
        i = len(self.p)
        self.p.append(i)
        return i

    def n_sets(self) -> int:
        """Number of disjoint sets currently in the forest."""
        return count_sets(self.p)

    def sets(self) -> dict[int, list[int]]:
        """Materialise the partition as ``{root: sorted members}``."""
        return components(self.p)


def is_valid_parent_array(p: Sequence[int]) -> bool:
    """Check that *p* encodes a forest: in-range parents, no cycles except
    self-loops at roots.

    A parent array is a forest iff following parent pointers from every
    node terminates at a fixpoint. Since parents are in-range, it suffices
    that repeated application of ``p`` stabilises.
    """
    n = len(p)
    arr = np.asarray(p, dtype=np.int64)
    if n == 0:
        return True
    if arr.min() < 0 or arr.max() >= n:
        return False
    # Pointer-jump until stable; a forest stabilises in <= log2(n)+1 rounds
    # after which every pointer is a root. A cycle (length >= 2) never
    # stabilises, but alternates — detect via bounded iterations.
    cur = arr
    for _ in range(max(1, n.bit_length() + 2)):
        nxt = cur[cur]
        if np.array_equal(nxt, cur):
            # Stable: every element now points at some fixpoint of ``cur``.
            # It encodes a forest iff those fixpoints are roots of ``p``
            # itself (a 2-cycle also stabilises — at the identity map — but
            # its elements are not fixpoints of ``p``).
            return bool((arr[cur] == cur).all())
        cur = nxt
    # Not stable after log rounds of doubling => a non-trivial cycle exists.
    return False


def roots_of(p: Sequence[int]) -> np.ndarray:
    """Vectorised full find: root representative for every element.

    Does not mutate *p*. Uses pointer doubling, so it runs in
    ``O(n log depth)`` NumPy passes regardless of tree shape.
    """
    cur = np.asarray(p, dtype=np.int64).copy()
    while True:
        nxt = cur[cur]
        if np.array_equal(nxt, cur):
            return cur
        cur = nxt


def count_sets(p: Sequence[int]) -> int:
    """Number of disjoint sets encoded by parent sequence *p*."""
    n = len(p)
    if n == 0:
        return 0
    arr = np.asarray(p)
    return int(np.count_nonzero(arr == np.arange(n)))


def components(p: Sequence[int]) -> dict[int, list[int]]:
    """Materialise the partition of ``0..n-1`` as ``{root: sorted members}``."""
    roots = roots_of(p)
    out: dict[int, list[int]] = {}
    for i, r in enumerate(roots.tolist()):
        out.setdefault(r, []).append(i)
    return out


def iter_edges_canonical(p: Sequence[int]) -> Iterator[tuple[int, int]]:
    """Yield ``(child, parent)`` pairs for every non-root element."""
    for i, pi in enumerate(p):
        if pi != i:
            yield i, pi
