"""Grayscale connected-component labeling — the paper's stated extension.

Section V of the paper notes the algorithms "can be easily extended to
gray scale images": instead of foreground-vs-background, two adjacent
pixels are connected when their gray values are *similar* — equal, or
within a tolerance. Every pixel then belongs to exactly one region (there
is no background), which is the convention of He et al.'s gray-level
extension.

Two engines, same contract as the binary algorithms:

* :func:`grayscale_label` — interpreter two-pass scan over the Fig 1a
  mask with REMSP equivalences, supporting any ``tolerance``;
* :func:`grayscale_label_runs` — vectorised run-based engine for the
  exact-equality case (``tolerance=0``): runs are maximal spans of equal
  value, matched across rows like the binary RUN engine but with a
  value-equality test on each overlap.

Note on ``tolerance > 0``: pixel similarity is then not transitive, so
regions are the connected components of the similarity *graph* — two
pixels in one region may differ by more than the tolerance through a
chain. That is the standard definition and what both engines (and the
BFS oracle in :mod:`repro.verify.gray_oracle`) compute.

Labels are consecutive ``1..K`` in raster first-appearance order, as
everywhere in this library.
"""

from __future__ import annotations

import time

import numpy as np

from ..errors import ImageFormatError
from ..types import LABEL_DTYPE
from ..unionfind.flatten import flatten
from ..unionfind.remsp import merge as remsp_merge
from .labeling import CCLResult, apply_table, check_label_capacity

__all__ = ["grayscale_label", "grayscale_label_runs"]


def _as_gray(image: np.ndarray) -> np.ndarray:
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ImageFormatError(
            f"grayscale CCL needs a 2-D image, got shape {arr.shape!r}"
        )
    return np.ascontiguousarray(arr)


def grayscale_label(
    image: np.ndarray,
    connectivity: int = 8,
    tolerance: float = 0,
) -> CCLResult:
    """Label equal/similar-valued regions of a grayscale image.

    Every pixel receives a label; adjacent pixels join the same region
    when ``|v(a) - v(b)| <= tolerance``.

    >>> import numpy as np
    >>> r = grayscale_label(np.array([[3, 3, 7], [3, 7, 7]]))
    >>> r.labels.tolist()
    [[1, 1, 2], [1, 2, 2]]
    """
    if tolerance < 0:
        raise ValueError(f"tolerance must be >= 0, got {tolerance}")
    img = _as_gray(image)
    rows, cols = img.shape
    check_label_capacity((rows, cols))
    vals = img.tolist()
    # every pixel can be a fresh label in the worst case
    p: list[int] = [0] * (rows * cols + 1)
    count = 1
    lab = [[0] * cols for _ in range(rows)]
    if connectivity == 8:
        offsets = ((-1, -1), (-1, 0), (-1, 1), (0, -1))
    elif connectivity == 4:
        offsets = ((-1, 0), (0, -1))
    else:
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")

    t0 = time.perf_counter()
    for r in range(rows):
        vrow = vals[r]
        lrow = lab[r]
        for c in range(cols):
            v = vrow[c]
            label = 0
            for dr, dc in offsets:
                nr, nc = r + dr, c + dc
                if 0 <= nr < rows and 0 <= nc < cols:
                    w = vals[nr][nc]
                    if abs(v - w) <= tolerance:
                        n_label = lab[nr][nc]
                        if label == 0:
                            label = p[n_label]
                        else:
                            label = remsp_merge(p, label, n_label)
            if label == 0:
                p[count] = count
                label = count
                count += 1
            lrow[c] = label
    t1 = time.perf_counter()
    n_components = flatten(p, count)
    t2 = time.perf_counter()
    labels = apply_table(lab, p, count).reshape(rows, cols)
    t3 = time.perf_counter()
    return CCLResult(
        labels=labels,
        n_components=n_components,
        provisional_count=count - 1,
        phase_seconds={"scan": t1 - t0, "flatten": t2 - t1, "label": t3 - t2},
        algorithm="grayscale",
        meta={"tolerance": tolerance},
    )


def grayscale_label_runs(
    image: np.ndarray, connectivity: int = 8
) -> CCLResult:
    """Vectorised grayscale labeling for exact-equality regions.

    Run extraction: boundaries wherever the value changes within a row;
    run matching: previous-row runs whose column interval overlaps
    (widened by one for 8-connectivity) *and* whose value is equal.
    """
    img = _as_gray(image)
    rows, cols = img.shape
    check_label_capacity((rows, cols))
    reach = 1 if connectivity == 8 else 0
    if connectivity not in (4, 8):
        raise ValueError(f"connectivity must be 4 or 8, got {connectivity}")

    t0 = time.perf_counter()
    if img.size == 0:
        return CCLResult(
            labels=np.zeros((rows, cols), dtype=LABEL_DTYPE),
            n_components=0,
            provisional_count=0,
            phase_seconds={"scan": 0.0, "flatten": 0.0, "label": 0.0},
            algorithm="grayscale-runs",
        )
    # run starts: column 0, or value differs from the left neighbour
    change = np.ones((rows, cols), dtype=bool)
    change[:, 1:] = img[:, 1:] != img[:, :-1]
    starts_flat = np.flatnonzero(change.ravel())
    run_row = starts_flat // cols
    run_s = starts_flat - run_row * cols
    # run ends: next run's start within the row, else the row end
    run_e = np.empty_like(run_s)
    run_e[:-1] = run_s[1:]
    run_e[-1] = cols
    new_row = np.empty(len(run_s), dtype=bool)
    new_row[:-1] = run_row[1:] != run_row[:-1]
    new_row[-1] = True
    run_e[new_row & (np.arange(len(run_s)) < len(run_s) - 1)] = cols
    run_val = img[run_row, run_s]
    n_runs = len(run_s)

    p: list[int] = list(range(n_runs + 1))
    # composite-key overlap matching as in the binary vectorised engine
    W = cols + 2
    s_keys = run_row * W + run_s
    e_keys = run_row * W + run_e
    cur_idx = np.flatnonzero(run_row > 0)
    if len(cur_idx):
        prev_base = (run_row[cur_idx] - 1) * W
        first = np.searchsorted(
            e_keys, prev_base + run_s[cur_idx] - reach, side="right"
        )
        last = np.searchsorted(
            s_keys, prev_base + run_e[cur_idx] + reach, side="left"
        )
        row_begin = np.searchsorted(run_row, np.arange(rows), side="left")
        row_end = np.searchsorted(run_row, np.arange(rows), side="right")
        prev_rows = run_row[cur_idx] - 1
        first = np.maximum(first, row_begin[prev_rows])
        last = np.minimum(last, row_end[prev_rows])
        counts = np.maximum(0, last - first)
        total = int(counts.sum())
        if total:
            cum = np.cumsum(counts)
            ii = np.repeat(cur_idx, counts)
            jj = np.arange(total) - np.repeat(cum - counts, counts)
            jj += np.repeat(first, counts)
            same = run_val[ii] == run_val[jj]
            ii, jj = ii[same], jj[same]
            for u, v in zip((ii + 1).tolist(), (jj + 1).tolist()):
                remsp_merge(p, u, v)
    t1 = time.perf_counter()
    n_components = flatten(p, n_runs + 1)
    t2 = time.perf_counter()
    lut = np.asarray(p, dtype=LABEL_DTYPE)
    run_final = lut[1 : n_runs + 1]
    lengths = run_e - run_s
    labels = np.repeat(run_final, lengths).reshape(rows, cols)
    t3 = time.perf_counter()
    return CCLResult(
        labels=np.ascontiguousarray(labels),
        n_components=n_components,
        provisional_count=n_runs,
        phase_seconds={"scan": t1 - t0, "flatten": t2 - t1, "label": t3 - t2},
        algorithm="grayscale-runs",
    )
