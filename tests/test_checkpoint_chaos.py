"""Chaos: a real ``SIGKILL`` mid-job, then a resume round-trip.

The in-suite crash tests use the injected ``crash_at_checkpoint`` fault
(a raised exception); this module kills an actual OS process with
``SIGKILL`` — no cleanup handlers, no atexit, exactly what a OOM-killer
or a pre-empted node does — and then resumes through the public CLI.
Byte-identity against an uninterrupted run is the acceptance bar.

Marked ``chaos`` (the ``make chaos`` / CI chaos-job set, which runs
under a hard wall-clock timeout); every subprocess here also carries
its own ``timeout=`` so a hang can never eat the whole job budget.
"""

from __future__ import annotations

import os
import pathlib
import select
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.checkpoint import StreamingJob, TiledJob

pytestmark = pytest.mark.chaos

SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")

#: child-side throttle after each snapshot commit, to widen the window
#: the parent's SIGKILL lands in (the job itself takes only ~100 ms).
THROTTLE = (
    "import time as _t\n"
    "from repro.checkpoint import snapshot as _snap\n"
    "_orig = _snap.SnapshotStore.save\n"
    "def _slow(self, state, seq):\n"
    "    path = _orig(self, state, seq)\n"
    "    print(f'CKPT {seq}', flush=True)\n"
    "    _t.sleep(0.25)\n"
    "    return path\n"
    "_snap.SnapshotStore.save = _slow\n"
)


def _spawn(code: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-u", "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=dict(os.environ, PYTHONPATH=SRC),
    )


def _kill_after_checkpoints(proc: subprocess.Popen, n: int, deadline: float):
    """Read child stdout until *n* ``CKPT`` lines, then SIGKILL it."""
    seen = 0
    while time.monotonic() < deadline:
        ready, _, _ = select.select([proc.stdout], [], [], 1.0)
        if not ready:
            if proc.poll() is not None:
                break
            continue
        line = proc.stdout.readline()
        if not line:
            break
        if line.startswith("CKPT"):
            seen += 1
            if seen >= n:
                os.kill(proc.pid, signal.SIGKILL)
                proc.wait(timeout=30)
                return seen
    pytest.fail(
        f"child finished or timed out before {n} checkpoints "
        f"(saw {seen}; rc={proc.poll()}; stderr={proc.stderr.read()!r})"
    )


def _job_code(kind: str, img, out, ck) -> str:
    ctor = {
        "streaming": "StreamingJob(img, out, checkpoint_dir=ck, every=16)",
        "tiled": (
            "TiledJob(img, out, checkpoint_dir=ck, every=2, "
            "tile_shape=(32, 32))"
        ),
    }[kind]
    return (
        "import numpy as np\n"
        "from repro.checkpoint import StreamingJob, TiledJob\n"
        + THROTTLE
        + f"img = np.load({str(img)!r})\n"
        f"out, ck = {str(out)!r}, {str(ck)!r}\n"
        f"res = {ctor}.run()\n"
        "print('DONE', res.n_components, flush=True)\n"
    )


@pytest.mark.parametrize("kind", ["streaming", "tiled"])
def test_sigkill_then_cli_resume_round_trip(tmp_path, kind):
    rng = np.random.default_rng(17)
    img = (rng.random((128, 96)) < 0.45).astype(np.uint8)
    np.save(tmp_path / "img.npy", img)
    ck = tmp_path / "ck"

    # uninterrupted reference (no checkpointing at all)
    job_cls = {"streaming": StreamingJob, "tiled": TiledJob}[kind]
    kwargs = {} if kind == "streaming" else {"tile_shape": (32, 32)}
    ref = job_cls(img, tmp_path / "ref.npy", **kwargs).run()

    deadline = time.monotonic() + 60.0
    proc = _spawn(
        _job_code(kind, tmp_path / "img.npy", tmp_path / "out.npy", ck)
    )
    try:
        _kill_after_checkpoints(proc, n=2, deadline=deadline)
    finally:
        if proc.poll() is None:  # pragma: no cover - watchdog path
            proc.kill()
    assert proc.returncode == -signal.SIGKILL
    # the kill left work behind: snapshots + the partial, but never a
    # file at the final output path
    assert list(ck.iterdir()), "no snapshots survived the kill"
    assert not (tmp_path / "out.npy").exists()

    # resume through the public CLI, under its own hard timeout
    cli = subprocess.run(
        [
            sys.executable, "-m", "repro.cli",
            str(tmp_path / "img.npy"), str(tmp_path / "out.npy"),
            "--job", kind, "--checkpoint-dir", str(ck),
            "--checkpoint-every", "16" if kind == "streaming" else "2",
            "--tile-shape", "32x32",
            "--resume",
        ],
        capture_output=True,
        text=True,
        timeout=120,
        env=dict(os.environ, PYTHONPATH=SRC),
    )
    assert cli.returncode == 0, cli.stderr
    assert "resumed from snapshot" in cli.stdout

    assert (tmp_path / "out.npy").read_bytes() == (
        tmp_path / "ref.npy"
    ).read_bytes()
    assert ref.n_components > 0
    # a completed resume leaves zero snapshot/scratch files
    assert list(ck.iterdir()) == []
    leftovers = sorted(
        p.name for p in tmp_path.iterdir()
        if p.name not in ("img.npy", "out.npy", "ref.npy", "ck")
    )
    assert leftovers == [], leftovers


def test_sigkill_between_checkpoints_resume_in_process(tmp_path):
    """Kill while rows are streaming (not inside a save): the rows since
    the last snapshot are replayed and the result is still identical."""
    rng = np.random.default_rng(23)
    img = (rng.random((160, 64)) < 0.4).astype(np.uint8)
    np.save(tmp_path / "img.npy", img)
    ref = StreamingJob(img, tmp_path / "ref.npy").run()

    code = (
        "import numpy as np, time\n"
        "from repro.checkpoint import StreamingJob\n"
        "from repro.ccl.streaming import StreamingLabeler\n"
        "_orig = StreamingLabeler.push_row\n"
        "def _slow(self, row):\n"
        "    time.sleep(0.01)\n"
        "    if self._row == 48: print('MIDWAY', flush=True)\n"
        "    return _orig(self, row)\n"
        "StreamingLabeler.push_row = _slow\n"
        f"img = np.load({str(tmp_path / 'img.npy')!r})\n"
        f"StreamingJob(img, {str(tmp_path / 'out.npy')!r}, "
        f"checkpoint_dir={str(tmp_path / 'ck')!r}, every=16).run()\n"
    )
    proc = _spawn(code)
    deadline = time.monotonic() + 60.0
    try:
        while time.monotonic() < deadline:
            ready, _, _ = select.select([proc.stdout], [], [], 1.0)
            if ready:
                line = proc.stdout.readline()
                if line.startswith("MIDWAY"):
                    os.kill(proc.pid, signal.SIGKILL)
                    proc.wait(timeout=30)
                    break
                if not line:
                    break
            elif proc.poll() is not None:
                break
        else:  # pragma: no cover - watchdog path
            proc.kill()
            pytest.fail("child never reached the midway marker")
    finally:
        if proc.poll() is None:  # pragma: no cover
            proc.kill()
    assert proc.returncode == -signal.SIGKILL

    res = StreamingJob(
        img, tmp_path / "out.npy", checkpoint_dir=tmp_path / "ck", every=16
    ).run(resume=True)
    assert res.resumed_from == 48  # last committed snapshot before row 48+
    assert (tmp_path / "out.npy").read_bytes() == (
        tmp_path / "ref.npy"
    ).read_bytes()
    assert list((tmp_path / "ck").iterdir()) == []
