"""Comparing labelings: partition equality and canonical-form checks.

Two label images are *equivalent* when they induce the same partition of
the foreground pixels — i.e. there is a bijection between their label sets
that maps one image onto the other and both agree on which pixels are
background. This is the correct notion for comparing algorithms that may
number components differently.

The paper's FLATTEN pins a *canonical* labeling: labels are exactly
``1..K``, assigned in raster order of each component's first pixel.
:func:`is_canonical_labeling` verifies that contract, and
:func:`canonicalize_labeling` rewrites any valid labeling into it (used to
make the nondeterministic parallel backends comparable bit-for-bit).
"""

from __future__ import annotations

import numpy as np

from ..types import LABEL_DTYPE

__all__ = [
    "labelings_equivalent",
    "is_canonical_labeling",
    "canonicalize_labeling",
]


def labelings_equivalent(a: np.ndarray, b: np.ndarray) -> bool:
    """True iff *a* and *b* induce the same foreground partition.

    Checks, in one vectorised pass:

    1. identical shape;
    2. identical background mask (``== 0``);
    3. the map ``a-label -> b-label`` over foreground pixels is a
       function, and so is its inverse (i.e. it is a bijection).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        return False
    fg_a = a != 0
    fg_b = b != 0
    if not np.array_equal(fg_a, fg_b):
        return False
    av = a[fg_a].ravel()
    bv = b[fg_a].ravel()
    if av.size == 0:
        return True
    # a->b functional: every distinct a-label pairs with exactly one b-label
    pairs = np.unique(np.stack([av, bv], axis=1), axis=0)
    if len(np.unique(pairs[:, 0])) != len(pairs):
        return False
    if len(np.unique(pairs[:, 1])) != len(pairs):
        return False
    return True


def canonicalize_labeling(labels: np.ndarray) -> np.ndarray:
    """Rewrite *labels* so components are numbered 1..K in raster
    first-appearance order (FLATTEN's contract). Background (0) is kept.

    Vectorised: one ``unique`` + one gather.
    """
    labels = np.asarray(labels)
    flat = labels.ravel()
    # first occurrence index of each distinct label, in raster order
    uniq, first_idx = np.unique(flat, return_index=True)
    order = np.argsort(first_idx)
    uniq_in_order = uniq[order]
    mapping = {}
    nxt = 1
    for lab in uniq_in_order.tolist():
        if lab == 0:
            mapping[lab] = 0
        else:
            mapping[lab] = nxt
            nxt += 1
    lut_keys = np.array(sorted(mapping), dtype=flat.dtype)
    lut_vals = np.array([mapping[k] for k in sorted(mapping)], dtype=LABEL_DTYPE)
    idx = np.searchsorted(lut_keys, flat)
    return lut_vals[idx].reshape(labels.shape)


def is_canonical_labeling(labels: np.ndarray) -> bool:
    """True iff *labels* already satisfies the FLATTEN contract.

    That is: the set of positive labels is exactly ``{1..K}`` and label
    ``i`` first appears (in raster order) before label ``i+1``.
    """
    labels = np.asarray(labels)
    return np.array_equal(labels, canonicalize_labeling(labels))
