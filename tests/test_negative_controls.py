"""Negative controls: deliberately broken variants must be *caught*.

Each test builds a sabotaged version of one pipeline stage and asserts
the result disagrees with the oracle. This demonstrates the test
suite's sensitivity — if one of these ever starts passing as "correct",
the corresponding stage has silently become dead code.
"""

from __future__ import annotations

import numpy as np

from repro.ccl.labeling import apply_table, prealloc_capacity, remsp_alloc
from repro.ccl.scan_aremsp import scan_tworow
from repro.parallel.partition import partition_rows
from repro.unionfind.flatten import flatten, flatten_ranges
from repro.unionfind.remsp import merge as remsp_merge
from repro.verify import flood_fill_label, labelings_equivalent


def _spanning_image() -> np.ndarray:
    img = np.zeros((16, 8), dtype=np.uint8)
    img[:, 3] = 1  # one component through every chunk
    return img


def test_boundary_merge_is_load_bearing():
    """PAREMSP without the boundary pass must over-count."""
    img = _spanning_image()
    rows, cols = img.shape
    img_rows = img.tolist()
    chunks = partition_rows(rows, cols, 4)
    p = [0] * (rows * cols + 2)
    label_rows: list[list[int]] = []
    used = []
    for chunk in chunks:
        alloc, watermark = remsp_alloc(p, start=chunk.label_start)
        label_rows.extend(
            scan_tworow(
                img_rows[chunk.row_start : chunk.row_stop],
                p,
                remsp_merge,
                alloc,
                8,
            )
        )
        used.append(watermark())
    # -- sabotage: skip the boundary merge entirely --
    ranges = [(c.label_start, u) for c, u in zip(chunks, used)]
    n = flatten_ranges(p, ranges)
    assert n == 4  # one fragment per chunk
    _, n_true = flood_fill_label(img, 8)
    assert n != n_true  # the bug is visible


# A shape whose two-row scan MUST issue a merge (copies cannot resolve
# it): e = (2, 1) sees a = (1, 0) and c = (1, 2) as two different
# provisional sets — the copy(a) branch plus an explicit merge with c.
_MERGE_REQUIRED = np.array(
    [
        [0, 0, 0, 0],
        [1, 0, 1, 0],
        [0, 1, 0, 0],
        [0, 0, 0, 1],  # plus one isolated pixel -> a third label
    ],
    dtype=np.uint8,
)


def test_equivalence_recording_is_load_bearing():
    """A scan whose merge is a no-op must split merge-requiring shapes."""
    img = _MERGE_REQUIRED
    p = [0] * prealloc_capacity(*img.shape)
    alloc, used = remsp_alloc(p)

    def broken_merge(pp, x, y):
        return x  # records nothing

    scan_tworow(img.tolist(), p, broken_merge, alloc, 8)
    n = flatten(p, used())
    _, n_true = flood_fill_label(img, 8)
    assert n_true == 2
    assert n > n_true  # a/c stayed split without the merge


def test_flatten_is_load_bearing():
    """Skipping FLATTEN leaves non-consecutive labels after a merge."""
    img = _MERGE_REQUIRED
    p = [0] * prealloc_capacity(*img.shape)
    alloc, used = remsp_alloc(p)
    label_rows = scan_tworow(img.tolist(), p, remsp_merge, alloc, 8)
    # -- sabotage: apply the raw equivalence array without flattening --
    raw = apply_table(label_rows, p, used()).reshape(img.shape)
    expected, n_true = flood_fill_label(img, 8)
    assert n_true == 2
    # labels 1 and 2 merged, so the isolated pixel keeps provisional
    # label 3: {1, 3} instead of the canonical {1, 2}.
    assert int(raw.max()) == 3
    assert not np.array_equal(raw, expected)
    # control: flattening fixes it
    p2 = [0] * prealloc_capacity(*img.shape)
    alloc2, used2 = remsp_alloc(p2)
    rows2 = scan_tworow(img.tolist(), p2, remsp_merge, alloc2, 8)
    count2 = used2()
    assert flatten(p2, count2) == 2
    fixed = apply_table(rows2, p2, count2).reshape(img.shape)
    assert labelings_equivalent(fixed, expected)


def test_tile_column_seams_are_load_bearing():
    """Tiled labeling without vertical seams must split a horizontal
    band crossing tile columns (reimplements the driver minus one
    stage)."""
    from repro.ccl.run_based import run_based_vectorized
    from repro.parallel.boundary import merge_boundary_row
    from repro.types import LABEL_DTYPE

    img = np.zeros((4, 12), dtype=np.uint8)
    img[2, :] = 1
    th, tw = 4, 4
    labels = np.zeros(img.shape, dtype=LABEL_DTYPE)
    count = 1
    for c0 in range(0, 12, tw):
        local = run_based_vectorized(img[:, c0 : c0 + tw], 8)
        if local.n_components:
            labels[:, c0 : c0 + tw] = np.where(
                local.labels > 0, local.labels + (count - 1), 0
            )
            count += local.n_components
    p = list(range(count))
    # -- sabotage: only horizontal seams (there are none here) --
    n = flatten(p, count)
    assert n == 3  # one fragment per tile column
    _, n_true = flood_fill_label(img, 8)
    assert n != n_true
    # control: with the column seams the count is right
    p2 = list(range(count))
    for c in range(tw, 12, tw):
        merge_boundary_row(
            [labels[:, c - 1], labels[:, c]], 1, 4, p2, remsp_merge, 8
        )
    assert flatten(p2, count) == n_true


def test_label_range_offsets_are_load_bearing():
    """Chunks sharing one label space must collide and corrupt counts."""
    img = np.zeros((8, 4), dtype=np.uint8)
    img[0, 0] = 1  # one component in chunk 0
    img[5, 2] = 1  # one component in chunk 1
    rows, cols = img.shape
    img_rows = img.tolist()
    chunks = partition_rows(rows, cols, 2)
    p = [0] * (rows * cols + 2)
    label_rows: list[list[int]] = []
    for chunk in chunks:
        # -- sabotage: every chunk allocates from label 1 --
        alloc, _used = remsp_alloc(p, start=1)
        label_rows.extend(
            scan_tworow(
                img_rows[chunk.row_start : chunk.row_stop],
                p,
                remsp_merge,
                alloc,
                8,
            )
        )
    merged = np.asarray(label_rows)
    # both isolated pixels received the SAME provisional label — the
    # collision the paper's `count <- start x col` rule prevents.
    assert merged[0, 0] == merged[5, 2] != 0
    expected, n_true = flood_fill_label(img, 8)
    assert n_true == 2
    assert not labelings_equivalent(merged, expected)
