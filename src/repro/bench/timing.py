"""Timing primitives for the experiment harness.

The paper reports per-image execution times; we measure with
``perf_counter`` around the algorithm call (input marshalling excluded —
it happens inside the drivers before their timed phases, consistent with
timing a C implementation that scans a resident buffer).

``repeats`` defaults low because the experiment scripts sweep many
(image, algorithm, thread) combinations; pytest-benchmark, which owns
statistical rigour, is the harness used for the headline per-kernel
numbers in ``benchmarks/``.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable

__all__ = ["TimingSample", "measure"]


@dataclasses.dataclass(frozen=True)
class TimingSample:
    """Repeated-measurement record (seconds)."""

    seconds: tuple[float, ...]
    result: Any

    @property
    def best(self) -> float:
        return min(self.seconds)

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds)

    @property
    def median(self) -> float:
        """The robust summary the perf history stores (insensitive to
        one scheduler hiccup, unlike the mean or even the best)."""
        ordered = sorted(self.seconds)
        n = len(ordered)
        mid = n // 2
        if n % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    @property
    def best_ms(self) -> float:
        return self.best * 1e3


def measure(
    fn: Callable[..., Any],
    *args: Any,
    repeats: int = 1,
    warmup: int = 0,
    **kwargs: Any,
) -> TimingSample:
    """Call ``fn(*args, **kwargs)`` *repeats* times; keep every duration
    and the last return value. *warmup* extra untimed calls run first
    (page-cache/allocator/JIT-free steady state before the clock
    starts)."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    for _ in range(warmup):
        fn(*args, **kwargs)
    times = []
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        times.append(time.perf_counter() - t0)
    return TimingSample(seconds=tuple(times), result=result)
