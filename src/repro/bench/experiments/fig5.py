"""Figure 5 — PAREMSP speedup on the NLCD ladder, local vs local+merge.

The paper's twin panels plot, for the six NLCD images of Table III,
speedup vs 1-24 threads for (a) Phase-I only ("local" = parallel-region
entry + chunk scans) and (b) the whole algorithm ("local + merge").
Findings reproduced here:

* near-linear scaling for the large rungs, up to ~20.1x at 24 threads
  for the 465.2 MB image;
* speedup increases monotonically with image size;
* panels (a) and (b) are nearly indistinguishable — the boundary-merge
  phase is a negligible share of the runtime.
"""

from __future__ import annotations

from ...simmachine.costmodel import CostModel
from ...simmachine.machine import speedup_curve
from ..report import ExperimentReport, render_series
from ._suites import build_suites

__all__ = ["run_fig5", "FIG5_THREADS"]

#: x-axis of the paper's figure (1..24 cores, dense enough for shape).
FIG5_THREADS = (1, 2, 4, 6, 8, 12, 16, 20, 24)


def run_fig5(
    scale: float | None = None,
    thread_counts: tuple[int, ...] = FIG5_THREADS,
    cost_model: CostModel | None = None,
    connectivity: int = 8,
) -> ExperimentReport:
    """Regenerate Figure 5a ("local") and 5b ("local + merge").

    ``data["local"]`` / ``data["total"]`` map
    ``image name -> {n_threads: speedup}``.
    """
    suites = build_suites(scale, suites=("nlcd",))
    local: dict[str, dict[int, float]] = {}
    total: dict[str, dict[int, float]] = {}
    for si in suites["nlcd"]:
        name = si.info.name
        common = dict(
            thread_counts=thread_counts,
            cost_model=cost_model,
            connectivity=connectivity,
            linear_scale=si.linear_scale,
        )
        local[name] = speedup_curve(si.info.image, phase="local", **common)
        total[name] = speedup_curve(si.info.image, phase="total", **common)
    rows = []
    for t in thread_counts:
        rows.append(
            [
                str(t),
                *(f"{local[n][t]:.2f}" for n in local),
                *(f"{total[n][t]:.2f}" for n in total),
            ]
        )
    max_t = max(thread_counts)
    peak_total = {n: c[max_t] for n, c in total.items()}
    merge_gap = {
        n: abs(local[n][max_t] - total[n][max_t]) for n in local
    }
    return ExperimentReport(
        experiment="fig5",
        title=(
            "Figure 5: NLCD speedup vs #threads — (a) local, "
            "(b) local + merge (simulated)"
        ),
        headers=[
            "#Threads",
            *[f"{n} (a)" for n in local],
            *[f"{n} (b)" for n in total],
        ],
        rows=rows,
        data={"local": local, "total": total, "peak_total": peak_total},
        notes=[
            "panel (b):\n" + render_series(total),
            f"peak overall speedups at {max_t} threads: "
            + ", ".join(f"{n}={v:.1f}" for n, v in peak_total.items()),
            "local-vs-total gap at max threads (merge overhead): "
            + ", ".join(f"{n}={v:.2f}" for n, v in merge_gap.items()),
        ],
    )
