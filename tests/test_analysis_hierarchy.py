"""Containment hierarchy: nesting depths, parents, children."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import component_tree, holes_count


def _nested_rings(levels: int, unit: int = 2) -> np.ndarray:
    """Concentric square rings: level k ring at depth k."""
    size = levels * 4 * unit + unit
    img = np.zeros((size, size), dtype=np.uint8)
    for k in range(levels):
        a = k * 2 * unit
        b = size - a
        img[a : a + unit, a:b] = 1
        img[b - unit : b, a:b] = 1
        img[a:b, a : a + unit] = 1
        img[a:b, b - unit : b] = 1
    return img


def test_flat_components_depth_zero(rng):
    img = np.zeros((8, 12), dtype=np.uint8)
    img[1:3, 1:3] = 1
    img[5:7, 8:11] = 1
    tree = component_tree(img)
    assert tree.n_components == 2
    assert tree.fg_depth.tolist() == [0, 0]
    assert tree.top_level() == [1, 2]
    assert tree.max_depth == 0


def test_dot_in_ring():
    ring = np.ones((5, 5), dtype=np.uint8)
    ring[1:4, 1:4] = 0
    ring[2, 2] = 1
    tree = component_tree(ring)
    assert tree.n_components == 2
    assert tree.fg_depth.tolist() == [0, 1]
    assert tree.children_of(1) == [2]
    assert tree.children_of(2) == []
    assert tree.top_level() == [1]


@pytest.mark.parametrize("levels", [1, 2, 3])
def test_nested_rings_depths(levels):
    img = _nested_rings(levels)
    tree = component_tree(img)
    assert tree.n_components == levels
    assert sorted(tree.fg_depth.tolist()) == list(range(levels))
    assert tree.max_depth == levels - 1


def test_two_children_in_one_hole():
    img = np.ones((7, 9), dtype=np.uint8)
    img[1:6, 1:8] = 0
    img[3, 2] = 1
    img[3, 6] = 1
    tree = component_tree(img)
    assert tree.n_components == 3
    assert sorted(tree.children_of(1)) == [2, 3]
    assert tree.fg_depth.tolist() == [0, 1, 1]


def test_region_parents_consistent_with_holes(rng):
    """Every non-border background region's parent must be a real
    component, and their count must equal holes_count."""
    from repro.data import blobs

    img = blobs((40, 40), 0.5, seed=12)
    tree = component_tree(img)
    enclosed = tree.region_parent_component > 0
    assert int(enclosed.sum()) == holes_count(img)
    for j in np.flatnonzero(enclosed):
        assert 1 <= tree.region_parent_component[j] <= tree.n_components


def test_children_partition(rng):
    """Every component is a child of exactly one parent (or top level)."""
    from repro.data import maze

    img = maze((30, 30), 0.5, seed=4)
    tree = component_tree(img)
    seen: list[int] = list(tree.top_level())
    for comp in range(1, tree.n_components + 1):
        seen.extend(tree.children_of(comp))
    assert sorted(seen) == list(range(1, tree.n_components + 1))


def test_empty_and_blank():
    tree = component_tree(np.zeros((0, 0), dtype=np.uint8))
    assert tree.n_components == 0
    tree = component_tree(np.zeros((5, 5), dtype=np.uint8))
    assert tree.n_components == 0
    assert tree.n_regions == 1  # one outside region


def test_full_image_component():
    tree = component_tree(np.ones((4, 4), dtype=np.uint8))
    assert tree.n_components == 1
    assert tree.fg_depth.tolist() == [0]
    assert tree.n_regions == 0


def test_4_connectivity_duality():
    """4-connected components with an 8-connected background: the
    checkerboard has no holes under this duality."""
    from repro.data import checkerboard

    img = checkerboard((6, 6))
    tree = component_tree(img, connectivity=4)
    assert (tree.fg_depth == 0).all()
