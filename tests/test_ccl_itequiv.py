"""Iterative min-propagation engine: fixed-point and termination laws.

Beyond the shared oracle matrix (``test_ccl_oracle.py``, which itequiv
joins via the registry), these are the properties that make the engine
*correct by construction*: sweeps only ever lower labels, the iteration
count respects the provable bound, the final state is a genuine fixed
point of ``sweep_once``, and the output needs no canonicalization pass.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ccl.itequiv import _BIG, iteration_bound, itequiv, sweep_once
from repro.errors import ConnectivityError
from repro.types import LABEL_DTYPE
from repro.verify import canonicalize_labeling, flood_fill_label

binary_images = hnp.arrays(
    dtype=np.uint8,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=24),
    elements=st.integers(0, 1),
)


def _initial_work(img):
    fg = np.asarray(img) != 0
    rows, cols = fg.shape
    init = np.arange(1, rows * cols + 1, dtype=LABEL_DTYPE).reshape(rows, cols)
    return np.where(fg, init, LABEL_DTYPE(_BIG)), fg


def _fixed_point_work(labels, fg):
    """Reconstruct the converged work array from the final labels: every
    pixel holds its component's minimal initial label."""
    rows, cols = fg.shape
    init = np.arange(1, rows * cols + 1, dtype=LABEL_DTYPE).reshape(rows, cols)
    mins = np.full(int(labels.max()) + 1, _BIG, dtype=LABEL_DTYPE)
    np.minimum.at(mins, labels.ravel(), init.ravel())
    work = np.full((rows, cols), LABEL_DTYPE(_BIG))
    work[fg] = mins[labels[fg]]
    return work


@given(img=binary_images, connectivity=st.sampled_from([4, 8]))
def test_property_terminates_within_bound(img, connectivity):
    result = itequiv(img, connectivity)
    assert result.meta["iterations"] <= result.meta["bound"]
    assert result.meta["bound"] == iteration_bound(img)


@given(img=binary_images, connectivity=st.sampled_from([4, 8]))
def test_property_output_is_fixed_point(img, connectivity):
    result = itequiv(img, connectivity)
    fg = np.asarray(img) != 0
    work = _fixed_point_work(result.labels, fg)
    again = sweep_once(work, fg, connectivity)
    assert np.array_equal(again, work)


@given(img=binary_images, connectivity=st.sampled_from([4, 8]))
def test_property_sweeps_never_raise_labels(img, connectivity):
    work, fg = _initial_work(img)
    for _ in range(3):
        nxt = sweep_once(work, fg, connectivity)
        assert (nxt <= work).all()
        work = nxt


@given(img=binary_images, connectivity=st.sampled_from([4, 8]))
def test_property_output_is_already_canonical(img, connectivity):
    result = itequiv(img, connectivity)
    assert np.array_equal(result.labels, canonicalize_labeling(result.labels))


@given(img=binary_images, connectivity=st.sampled_from([4, 8]))
def test_property_matches_flood_fill(img, connectivity):
    expected, n = flood_fill_label(img, connectivity)
    result = itequiv(img, connectivity)
    assert result.n_components == n
    assert np.array_equal(result.labels, canonicalize_labeling(expected))


def test_iteration_metadata_and_gauge():
    img = np.zeros((8, 8), dtype=np.uint8)
    img[:, ::2] = 1  # vertical stripes converge in two sweeps
    result = itequiv(img, 4)
    assert result.meta["iterations"] == 2
    assert result.algorithm == "itequiv"
    assert set(result.phase_seconds) >= {"scan", "flatten", "label"}


def test_serpentine_needs_many_sweeps_but_stays_within_bound():
    # single-pixel-wide serpentine: the hardest shape for propagation
    img = np.zeros((9, 9), dtype=np.uint8)
    img[::2, :] = 1
    img[1::4, -1] = 1
    img[3::4, 0] = 1
    result = itequiv(img, 4)
    assert result.n_components == 1
    assert 1 < result.meta["iterations"] <= result.meta["bound"]


def test_bad_connectivity_is_typed():
    with pytest.raises(ConnectivityError):
        itequiv(np.eye(3, dtype=np.uint8), 6)


@pytest.mark.parametrize(
    "shape", [(0, 0), (1, 7), (7, 1), (1, 1)], ids=str
)
def test_degenerate_shapes(shape):
    result = itequiv(np.ones(shape, dtype=np.uint8), 8)
    expected_n = 1 if np.prod(shape) else 0
    assert result.n_components == expected_n
    assert result.labels.shape == shape
