"""Public-API hygiene: everything in __all__ exists, imports are clean,
and the advertised entry points are callable."""

from __future__ import annotations

import importlib

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.types",
    "repro.errors",
    "repro.unionfind",
    "repro.unionfind.remsp",
    "repro.unionfind.lrpc",
    "repro.unionfind.variants",
    "repro.unionfind.flatten",
    "repro.unionfind.parallel",
    "repro.unionfind.graph",
    "repro.unionfind.analyze",
    "repro.ccl",
    "repro.ccl.registry",
    "repro.ccl.opcount",
    "repro.ccl.streaming",
    "repro.ccl.grayscale",
    "repro.faults",
    "repro.faults.plan",
    "repro.faults.resilience",
    "repro.parallel",
    "repro.parallel.partition",
    "repro.parallel.supervisor",
    "repro.parallel.boundary",
    "repro.parallel.distributed",
    "repro.parallel.tiled",
    "repro.parallel.net",
    "repro.mp",
    "repro.volume",
    "repro.simmachine",
    "repro.simmachine.trace",
    "repro.data",
    "repro.data.pnm",
    "repro.verify",
    "repro.analysis",
    "repro.bench",
    "repro.bench.history",
    "repro.bench.fullreport",
    "repro.cli",
]


@pytest.mark.parametrize("name", PUBLIC_MODULES)
def test_module_all_is_accurate(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{name} should declare __all__"
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"


def test_top_level_entry_points_callable():
    import repro

    for fn_name in (
        "label",
        "label_parallel",
        "paremsp",
        "grayscale_label",
        "volume_label",
        "tiled_label",
        "distributed_label",
    ):
        assert callable(getattr(repro, fn_name))


def test_registry_names_are_stable():
    """Published algorithm names are API; renames are breaking changes."""
    from repro.ccl.registry import ALGORITHMS

    assert {
        "ccllrpc",
        "cclremsp",
        "arun",
        "aremsp",
        "run",
        "run-vectorized",
        "multipass",
        "propagation-vectorized",
        "suzuki",
        "contour",
        "block2x2",
        "itequiv",
        "coarse2fine",
        "auto",
    } == set(ALGORITHMS)


def test_experiment_names_are_stable():
    from repro.bench.experiments import ALL_EXPERIMENTS

    assert set(ALL_EXPERIMENTS) == {
        "table2",
        "table3",
        "table4",
        "fig4",
        "fig5",
        "opcounts",
        "weak",
        "granularity",
    }


def test_console_scripts_import():
    from repro.bench.cli import main as bench_main
    from repro.cli import main as label_main
    from repro.parallel.net.worker import main as worker_main

    assert callable(bench_main)
    assert callable(label_main)
    assert callable(worker_main)


def test_no_internal_leaks_in_top_level():
    import repro

    assert "np" not in repro.__all__
    for name in repro.__all__:
        assert not name.startswith("_")
