"""Shared types, dtypes and validation helpers.

The whole library standardises on:

* binary images: 2-D :class:`numpy.ndarray` of ``uint8`` with values in
  ``{0, 1}`` (``1`` = object/foreground pixel, ``0`` = background), C-order;
* label images: 2-D :class:`numpy.ndarray` of :data:`LABEL_DTYPE`
  (``int32`` by default) where ``0`` is background and final labels are the
  consecutive integers ``1..K`` (FLATTEN semantics from the paper);
* equivalence arrays ``p``: 1-D arrays of :data:`LABEL_DTYPE` indexed by
  provisional label, ``p[0] == 0`` reserved for background.

Keeping one canonical memory layout matters for the vectorised engines: the
scan phases walk rows, so C-contiguity makes the inner loop stride-1 (see
the cache-effects discussion in the scientific-python optimisation guide).
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

__all__ = [
    "LABEL_DTYPE",
    "PIXEL_DTYPE",
    "BACKGROUND",
    "FOREGROUND",
    "Connectivity",
    "as_binary_image",
    "ensure_input",
    "max_labels_for",
]

#: dtype used for provisional and final labels.
LABEL_DTYPE = np.int32

#: dtype used for binary images.
PIXEL_DTYPE = np.uint8

#: background pixel / label value.
BACKGROUND = 0

#: foreground (object) pixel value.
FOREGROUND = 1


class Connectivity(enum.IntEnum):
    """Pixel connectivity for 2-D images.

    The paper uses 8-connectivity exclusively; 4-connectivity is provided
    as the natural extension (the scan masks degenerate to their
    non-diagonal subsets).
    """

    FOUR = 4
    EIGHT = 8


def as_binary_image(image: Any, *, validate: bool = True) -> np.ndarray:
    """Coerce *image* to the canonical binary-image representation.

    Accepts anything :func:`numpy.asarray` accepts. Boolean arrays are
    reinterpreted as ``{0, 1}``; other dtypes are kept but (optionally)
    validated to contain only ``0`` and ``1``.

    Parameters
    ----------
    image:
        Array-like 2-D input.
    validate:
        When true (default), raise :class:`~repro.errors.ImageFormatError`
        on non-2-D input or on pixel values outside ``{0, 1}``. Disable for
        hot paths that already guarantee canonical input.

    Returns
    -------
    numpy.ndarray
        C-contiguous ``uint8`` array of the same shape, values in ``{0,1}``.
    """
    from .errors import ImageFormatError

    arr = np.asarray(image)
    if arr.dtype == np.bool_:
        arr = arr.astype(PIXEL_DTYPE)
    if validate:
        if arr.ndim != 2:
            raise ImageFormatError(
                f"binary image must be 2-D, got shape {arr.shape!r}"
            )
        if arr.size and not np.isin(arr, (BACKGROUND, FOREGROUND)).all():
            bad = np.unique(arr[~np.isin(arr, (BACKGROUND, FOREGROUND))])
            raise ImageFormatError(
                f"binary image may contain only 0 and 1, found {bad[:8]!r}"
            )
    if arr.dtype != PIXEL_DTYPE:
        arr = arr.astype(PIXEL_DTYPE)
    return np.ascontiguousarray(arr)


def ensure_input(image: Any, *, what: str = "image") -> np.ndarray:
    """Validate and canonicalise a public-API binary image.

    One gate shared by every labeling entry point (``label``,
    ``label_parallel``/``paremsp``, the streaming labeler,
    ``tiled_label``) so layout oddities meet one policy instead of
    backend-specific crashes:

    * **coerced** — ``bool`` and wider integer dtypes (``uint16``,
      ``int64``, ...), float arrays whose values are exactly ``{0, 1}``,
      Fortran-order and otherwise non-contiguous views, read-only
      buffers/memmaps (copied only when a dtype or layout change forces
      it; a canonical read-only array passes through untouched — the
      engines never write into their input);
    * **rejected** with :class:`~repro.errors.InputError` — non-2-D
      arrays, complex/object/string dtypes, and any value outside
      ``{0, 1}``.

    Returns a C-contiguous ``uint8`` array with values in ``{0, 1}``.

    >>> import numpy as np
    >>> f = np.asfortranarray(np.eye(3, dtype=np.uint16))
    >>> out = ensure_input(f)
    >>> out.dtype.name, out.flags.c_contiguous
    ('uint8', True)
    """
    from .errors import InputError

    try:
        arr = np.asarray(image)
    except Exception as exc:  # ragged lists, unconvertible objects
        raise InputError(f"{what} is not convertible to an array: {exc}") from exc
    if arr.ndim != 2:
        raise InputError(
            f"{what} must be 2-D, got shape {arr.shape!r}"
            + (" (see repro.volume for 3-D labeling)" if arr.ndim == 3 else "")
        )
    kind = arr.dtype.kind
    if kind == "b":
        arr = arr.astype(PIXEL_DTYPE)
    elif kind == "f":
        # accept float rasters that are exactly binary (e.g. thresholded
        # images saved as float); anything else needs explicit im2bw
        if arr.size and not np.isin(arr, (0.0, 1.0)).all():
            raise InputError(
                f"float {what} must contain only 0.0 and 1.0; threshold "
                "it first (repro.data.binarize.im2bw)"
            )
        arr = arr.astype(PIXEL_DTYPE)
    elif kind not in "ui":
        raise InputError(
            f"unsupported {what} dtype {arr.dtype!r}; expected a "
            "boolean, integer, or binary float array"
        )
    if arr.size and not np.isin(arr, (BACKGROUND, FOREGROUND)).all():
        bad = np.unique(arr[~np.isin(arr, (BACKGROUND, FOREGROUND))])
        raise InputError(
            f"{what} may contain only 0 and 1, found {bad[:8]!r}"
        )
    if arr.dtype != PIXEL_DTYPE:
        arr = arr.astype(PIXEL_DTYPE)
    if not arr.flags.c_contiguous:
        arr = np.ascontiguousarray(arr)
    return arr


def max_labels_for(shape: tuple[int, int]) -> int:
    """Upper bound on provisional labels a scan can allocate for *shape*.

    The CCLREMSP scan allocates at most one label per foreground pixel; the
    AREMSP scan at most one per pixel of each processed pixel pair. Both are
    bounded by the pixel count. ``+1`` accounts for label 0 being reserved
    for background.
    """
    rows, cols = shape
    return rows * cols + 1
