"""Coarse-to-fine engine: block invariance and the refinement law.

The engine's central invariant is that the fine phase's block-local
labeling *refines* the final partition: every local component lies
inside exactly one final component, and the boundary merge only ever
fuses local components — it never splits one. These tests check that
law directly from public outputs, plus block-size invariance (the block
parameter is a performance knob, never a correctness knob).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ccl.coarse2fine import DEFAULT_BLOCK, coarse2fine
from repro.errors import ConnectivityError
from repro.verify import canonicalize_labeling, flood_fill_label

binary_images = hnp.arrays(
    dtype=np.uint8,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=24),
    elements=st.integers(0, 1),
)


@given(
    img=binary_images,
    connectivity=st.sampled_from([4, 8]),
    block=st.sampled_from([2, 3, 4, 8]),
)
def test_property_block_size_is_invisible(img, connectivity, block):
    """Any block size produces byte-identical labels (all canonical)."""
    a = coarse2fine(img, connectivity, block=block)
    b = coarse2fine(img, connectivity, block=DEFAULT_BLOCK)
    assert np.array_equal(a.labels, b.labels)
    assert a.n_components == b.n_components


@given(img=binary_images, connectivity=st.sampled_from([4, 8]))
def test_property_matches_flood_fill_and_is_canonical(img, connectivity):
    expected, n = flood_fill_label(img, connectivity)
    result = coarse2fine(img, connectivity, block=4)
    assert result.n_components == n
    assert np.array_equal(result.labels, canonicalize_labeling(expected))
    assert np.array_equal(result.labels, canonicalize_labeling(result.labels))


@given(
    img=binary_images,
    connectivity=st.sampled_from([4, 8]),
    block=st.sampled_from([2, 4, 8]),
)
def test_property_local_labels_refine_final_partition(img, connectivity,
                                                      block):
    """Relabeling each block tile in isolation must yield components
    that sit inside exactly one final component each."""
    result = coarse2fine(img, connectivity, block=block)
    img = np.asarray(img)
    rows, cols = img.shape
    for r0 in range(0, rows, block):
        for c0 in range(0, cols, block):
            tile = img[r0:r0 + block, c0:c0 + block]
            final = result.labels[r0:r0 + block, c0:c0 + block]
            local, n_local = flood_fill_label(tile, connectivity)
            for k in range(1, n_local + 1):
                finals = np.unique(final[local == k])
                assert finals.size == 1, (
                    "local component straddles final components"
                )


@given(img=binary_images, connectivity=st.sampled_from([4, 8]))
def test_property_merge_only_fuses(img, connectivity):
    """Boundary refinement can only reduce the component count, and
    without seam edges it must not change it at all."""
    result = coarse2fine(img, connectivity, block=4)
    assert result.meta["local_components"] >= result.n_components
    if result.meta["boundary_edges"] == 0:
        assert result.meta["local_components"] == result.n_components


def test_meta_and_phases():
    img = np.zeros((40, 40), dtype=np.uint8)
    img[::3, :] = 1
    result = coarse2fine(img, 8, block=8)
    assert result.algorithm == "coarse2fine"
    assert result.meta["block"] == 8
    assert result.meta["iterations"] >= 1
    assert set(result.phase_seconds) >= {"scan", "merge", "flatten", "label"}


def test_bad_parameters_are_typed():
    img = np.eye(4, dtype=np.uint8)
    with pytest.raises(ConnectivityError):
        coarse2fine(img, 5)
    with pytest.raises(ValueError):
        coarse2fine(img, 8, block=1)


@pytest.mark.parametrize(
    "shape", [(0, 0), (1, 37), (37, 1), (5, 5)], ids=str
)
def test_degenerate_shapes(shape):
    for value in (0, 1):
        img = np.full(shape, value, dtype=np.uint8)
        result = coarse2fine(img, 8)
        assert result.labels.shape == shape
        expected_n = 1 if value and np.prod(shape) else 0
        assert result.n_components == expected_n
