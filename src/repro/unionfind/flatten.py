"""FLATTEN — the analysis phase (Algorithm 3 of the paper).

After the scan phase, the equivalence array ``p`` encodes a forest in which
every root is the minimum provisional label of its connected component
(REMSP maintains ``p[i] <= i``). FLATTEN performs a single left-to-right
pass that simultaneously

1. fully flattens the forest (every entry points directly at its final
   label), and
2. renumbers the roots with *consecutive* labels ``1..K`` in order of
   first appearance.

The single pass is sufficient precisely because of the ``p[i] <= i``
invariant: when index ``i`` is visited, ``p[i] < i`` implies ``p[p[i]]``
has already been rewritten to its final label.

Two variants are provided:

* :func:`flatten` — the dense case used by the sequential algorithms
  (labels ``1..count-1`` all allocated);
* :func:`flatten_ranges` — the sparse case used by PAREMSP, where each
  thread allocated labels from its own disjoint range ``[start, start +
  used)`` and the gaps between ranges must not consume final labels.
"""

from __future__ import annotations

from typing import MutableSequence, Sequence

import numpy as np

__all__ = ["flatten", "flatten_ranges", "flatten_ranges_array"]


def flatten(p: MutableSequence[int], count: int) -> int:
    """Resolve equivalences in-place; return the number of final labels.

    Faithful transcription of Algorithm 3. Entries ``1..count-1`` of *p*
    are rewritten so that ``p[provisional]`` is the final label; label 0
    (background) is untouched.

    Parameters
    ----------
    p:
        Equivalence array with the ``p[i] <= i`` root-minimum invariant.
    count:
        One past the largest provisional label allocated by the scan
        (i.e. the scan's running label counter, whose next fresh label
        would have been ``count``).

    Returns
    -------
    int
        ``K``, the number of connected components (final labels are
        ``1..K``).
    """
    k = 1
    for i in range(1, count):
        if p[i] < i:
            p[i] = p[p[i]]
        else:
            p[i] = k
            k += 1
    return k - 1


def flatten_ranges(
    p: MutableSequence[int], ranges: Sequence[tuple[int, int]]
) -> int:
    """Sparse FLATTEN over the allocated label ranges of a parallel scan.

    PAREMSP gives thread ``t`` the provisional-label range starting at
    ``start_t = t * chunk_rows * cols`` (Algorithm 7 line 7); after the
    scan only a prefix ``[start_t, start_t + used_t)`` of each range is
    allocated. Gaps contain stale values and must be skipped — running the
    dense :func:`flatten` over them would hand final labels to unallocated
    entries, breaking label consecutiveness.

    Ranges must be disjoint and sorted ascending. Merges may point a label
    in a later range at a root in an earlier range (boundary merging only
    ever lowers values thanks to Rem's invariant), so ascending-order
    processing preserves the one-pass property.

    Returns the number of final labels ``K``.
    """
    k = 1
    for start, stop in ranges:
        lo = max(start, 1)  # label 0 is the background sentinel
        for i in range(lo, stop):
            if p[i] < i:
                p[i] = p[p[i]]
            else:
                p[i] = k
                k += 1
    return k - 1


def flatten_ranges_array(
    p: np.ndarray, ranges: Sequence[tuple[int, int]]
) -> int:
    """:func:`flatten_ranges` for ndarray equivalence tables, vectorised.

    The sequential FLATTEN pass cannot be transcribed directly (each entry
    reads an entry the same pass already rewrote), so the array form works
    in three whole-array steps instead:

    1. roots are the allocated entries with ``p[i] == i``; they receive
       final labels ``1..K`` in ascending index order — exactly the order
       the sequential pass hands them out;
    2. every allocated entry is resolved to its root by pointer jumping
       (``r = p[r]`` until fixpoint; Rem's splicing keeps the forest
       shallow, so this converges in a handful of gathers);
    3. root indices are sorted (they already are), so each entry's final
       label is ``searchsorted(roots, r) + 1`` — no dense LUT needed.

    Produces a table byte-identical to :func:`flatten_ranges` on the same
    input. Unallocated gap entries are never read or written. Returns
    ``K``, the number of final labels.
    """
    parts = [
        np.arange(max(start, 1), stop, dtype=np.int64)
        for start, stop in ranges
        if stop > max(start, 1)
    ]
    if not parts:
        return 0
    idx = parts[0] if len(parts) == 1 else np.concatenate(parts)
    r = p[idx].astype(np.int64, copy=True)
    roots = idx[r == idx]
    while True:
        nxt = p[r]
        if np.array_equal(nxt, r):
            break
        r = nxt
    p[idx] = (np.searchsorted(roots, r) + 1).astype(p.dtype)
    return len(roots)
