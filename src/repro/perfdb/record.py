"""Perf-history records: median + bootstrap CI + environment fingerprint.

One record = one benchmark run (N repetitions after warmup). Records
are stored append-only: :func:`append_record` always creates a new
file named ``<benchmark>-<utc stamp>-<sha>.json`` (uniquified if
needed) and never rewrites an existing one, so ``benchmarks/history/``
is a log you can bisect, not a mutable cache.

The summary statistic is the **median** (robust to the occasional
scheduler hiccup that poisons a mean) with a percentile-bootstrap
confidence interval, so a compare can tell "noise" from "moved".
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from typing import Any, Mapping, Sequence, Union

__all__ = [
    "RECORD_SCHEMA_VERSION",
    "DEFAULT_HISTORY_DIR",
    "environment_fingerprint",
    "bootstrap_ci",
    "median",
    "build_record",
    "record_filename",
    "append_record",
    "load_record",
    "list_records",
    "latest_record",
]

PathLike = Union[str, os.PathLike]

#: record schema; bump on breaking layout changes.
RECORD_SCHEMA_VERSION = 1

#: where the repo keeps its committed history (relative to the cwd).
DEFAULT_HISTORY_DIR = os.path.join("benchmarks", "history")


def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def environment_fingerprint(n_threads: int | None = None) -> dict[str, Any]:
    """What produced this measurement: code, interpreter, machine.

    Everything a future reader needs to decide whether two records are
    comparable at all. Fields are best-effort: ``git_sha`` is ``None``
    outside a work tree rather than an error.
    """
    import numpy

    return {
        "git_sha": _git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor() or None,
        "cpu_count": os.cpu_count(),
        "n_threads": n_threads,
    }


def median(values: Sequence[float]) -> float:
    """Plain median (no numpy needed at call sites)."""
    if not values:
        raise ValueError("median of an empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI of the median of *values*.

    Deterministic (seeded) so re-summarising a record reproduces the
    stored interval. With a single repetition the interval collapses to
    the point — honest, if useless, which is the right incentive to run
    more repetitions.
    """
    import numpy as np

    if not values:
        raise ValueError("bootstrap_ci of an empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(values, dtype=float)
    if arr.size == 1:
        return float(arr[0]), float(arr[0])
    rng = np.random.default_rng(seed)
    samples = rng.choice(arr, size=(n_boot, arr.size), replace=True)
    medians = np.median(samples, axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(medians, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


def _summary(values: Sequence[float]) -> dict[str, Any]:
    lo, hi = bootstrap_ci(values)
    return {
        "reps": [float(v) for v in values],
        "median": median(values),
        "ci95": [lo, hi],
    }


def build_record(
    benchmark: str,
    reps: Sequence[float],
    phases: Mapping[str, Sequence[float]] | None = None,
    warmup: int = 0,
    meta: Mapping[str, Any] | None = None,
    env: Mapping[str, Any] | None = None,
    created: float | None = None,
) -> dict[str, Any]:
    """Assemble one history record from raw repetition vectors.

    *reps* are total wall seconds per repetition; *phases* maps phase
    name -> per-repetition seconds (same length). *created* is a unix
    timestamp (defaults to now).
    """
    if not reps:
        raise ValueError("a record needs at least one repetition")
    phases = phases or {}
    for name, values in phases.items():
        if len(values) != len(reps):
            raise ValueError(
                f"phase {name!r} has {len(values)} reps, total has "
                f"{len(reps)}"
            )
    created = time.time() if created is None else float(created)
    return {
        "schema_version": RECORD_SCHEMA_VERSION,
        "benchmark": benchmark,
        "created": created,
        "created_utc": time.strftime(
            "%Y-%m-%dT%H:%M:%SZ", time.gmtime(created)
        ),
        "warmup": int(warmup),
        "total": _summary(reps),
        "phases": {name: _summary(values) for name, values in phases.items()},
        "env": dict(env) if env is not None else environment_fingerprint(),
        "meta": dict(meta) if meta else {},
    }


def record_filename(record: Mapping[str, Any]) -> str:
    """Canonical file name: benchmark, UTC stamp, short sha."""
    stamp = time.strftime(
        "%Y%m%dT%H%M%SZ", time.gmtime(float(record["created"]))
    )
    sha = (record.get("env") or {}).get("git_sha") or "nogit"
    return f"{record['benchmark']}-{stamp}-{sha[:7]}.json"


def append_record(record: Mapping[str, Any], directory: PathLike) -> str:
    """Write *record* as a brand-new file under *directory*.

    Append-only by construction: an existing name gets a ``-N``
    suffix instead of being overwritten. Returns the path written.
    """
    directory = os.fspath(directory)
    os.makedirs(directory, exist_ok=True)
    base = record_filename(record)
    stem, ext = os.path.splitext(base)
    path = os.path.join(directory, base)
    n = 1
    while os.path.exists(path):
        path = os.path.join(directory, f"{stem}-{n}{ext}")
        n += 1
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    return path


def load_record(path: PathLike) -> dict[str, Any]:
    """Load one record; validates the schema version."""
    with open(path) as fh:
        record = json.load(fh)
    version = record.get("schema_version")
    if version != RECORD_SCHEMA_VERSION:
        raise ValueError(
            f"{os.fspath(path)}: unsupported perfdb record schema "
            f"{version!r} (expected {RECORD_SCHEMA_VERSION})"
        )
    return record


def list_records(
    directory: PathLike, benchmark: str | None = None
) -> list[tuple[str, dict[str, Any]]]:
    """All ``(path, record)`` pairs under *directory*, oldest first.

    Non-record JSON files are skipped silently (the directory may hold
    a committed baseline with other provenance).
    """
    directory = os.fspath(directory)
    if not os.path.isdir(directory):
        return []
    out: list[tuple[str, dict[str, Any]]] = []
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        path = os.path.join(directory, name)
        try:
            record = load_record(path)
        except (ValueError, json.JSONDecodeError, OSError):
            continue
        if benchmark is not None and record.get("benchmark") != benchmark:
            continue
        out.append((path, record))
    out.sort(key=lambda pr: float(pr[1].get("created", 0.0)))
    return out


def latest_record(
    directory: PathLike, benchmark: str | None = None
) -> tuple[str, dict[str, Any]] | None:
    """Newest ``(path, record)`` under *directory*, or ``None``."""
    records = list_records(directory, benchmark=benchmark)
    return records[-1] if records else None
