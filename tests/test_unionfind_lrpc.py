"""Tests for link-by-rank + path compression (the CCLLRPC structure)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simmachine.counters import OpCounter
from repro.unionfind.base import roots_of
from repro.unionfind.lrpc import (
    LinkByRankPC,
    find_compress,
    find_compress_counting,
    union_by_rank,
    union_by_rank_counting,
)
from repro.unionfind.remsp import merge as remsp_merge


def test_find_compress_flattens_chain():
    # 4 -> 3 -> 2 -> 1 -> 0
    p = [0, 0, 1, 2, 3]
    root = find_compress(p, 4)
    assert root == 0
    # every node on the walked path now points directly at the root
    assert p == [0, 0, 0, 0, 0]


def test_find_compress_root_is_identity():
    p = list(range(3))
    assert find_compress(p, 2) == 2
    assert p == [0, 1, 2]


def test_union_returns_minimum_root():
    p = list(range(8))
    rank = [0] * 8
    assert union_by_rank(p, rank, 5, 2) == 2
    assert union_by_rank(p, rank, 5, 7) == 2
    assert find_compress(p, 7) == 2


def test_union_preserves_monotone_parent_invariant(rng):
    """FLATTEN needs p[i] <= i; the CCL-flavoured LRPC guarantees it."""
    n = 150
    p = list(range(n))
    rank = [0] * n
    for _ in range(300):
        x, y = map(int, rng.integers(0, n, size=2))
        union_by_rank(p, rank, x, y)
    assert all(p[i] <= i for i in range(n))


def test_union_idempotent():
    p = list(range(4))
    rank = [0] * 4
    union_by_rank(p, rank, 0, 3)
    before = list(p)
    assert union_by_rank(p, rank, 3, 0) == 0
    assert p == before


@given(
    n=st.integers(1, 48),
    ops=st.lists(st.tuples(st.integers(0, 47), st.integers(0, 47)), max_size=96),
)
def test_property_same_partition_as_remsp(n, ops):
    """LRPC and REMSP must induce identical partitions (different trees)."""
    p_lrpc = list(range(n))
    rank = [0] * n
    p_rem = list(range(n))
    for x, y in ops:
        x %= n
        y %= n
        union_by_rank(p_lrpc, rank, x, y)
        remsp_merge(p_rem, x, y)
    ra = roots_of(p_lrpc)
    rb = roots_of(p_rem)
    for i in range(n):
        for j in range(i + 1, n):
            assert (ra[i] == ra[j]) == (rb[i] == rb[j])


def test_counting_variant_matches_plain(rng):
    n = 64
    ops = [tuple(map(int, rng.integers(0, n, size=2))) for _ in range(120)]
    p1, r1 = list(range(n)), [0] * n
    p2, r2 = list(range(n)), [0] * n
    counter = OpCounter()
    for x, y in ops:
        a = union_by_rank(p1, r1, x, y)
        b = union_by_rank_counting(p2, r2, x, y, counter)
        assert a == b
    assert p1 == p2
    assert counter.uf_merge == len(ops)


def test_find_compress_counting_counts_hops():
    p = [0, 0, 1, 2, 3]
    counter = OpCounter()
    find_compress_counting(p, 4, counter)
    # 4 hops up (4->3->2->1->0) + 3 compression writes
    assert counter.uf_step == 7


class TestLinkByRankPCClass:
    def test_roundtrip(self):
        ds = LinkByRankPC(5)
        assert ds.union(4, 1) == 1
        assert ds.find(4) == 1
        assert ds.n_sets() == 4

    def test_rank_grows_on_ties(self):
        ds = LinkByRankPC(4)
        ds.union(0, 1)
        assert ds.rank[0] == 1
        ds.union(2, 3)
        ds.union(0, 2)
        assert ds.rank[0] == 2

    def test_add_extends_rank_array(self):
        ds = LinkByRankPC(2)
        idx = ds.add()
        assert len(ds.rank) == 3
        assert ds.rank[idx] == 0


def test_union_rank_absorbs_higher_rank_under_lower_index():
    """When the higher-index root has the taller tree, the survivor (the
    min index) inherits its rank so future links stay balanced."""
    p = list(range(6))
    rank = [0] * 6
    union_by_rank(p, rank, 4, 5)  # root 4, rank 1
    union_by_rank(p, rank, 4, 3)  # root 3 absorbs, rank must be >= 1
    assert rank[3] >= 1
    with pytest.raises(IndexError):
        find_compress(p, 10)
