"""Plain-text rendering of experiment results.

Every experiment returns an :class:`ExperimentReport`: a title, a table
(headers + string rows), free-form notes, and the raw data dict for
programmatic consumers (tests assert on ``data``, never on rendered
text). ``render()`` produces aligned monospace output shaped like the
paper's tables; ``render_series`` adds a small ASCII plot for the
figure experiments.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

__all__ = ["ExperimentReport", "render_table", "render_series"]


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Align *rows* under *headers* (first column left, rest right)."""
    cols = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        cells = []
        for i in range(cols):
            cell = row[i] if i < len(row) else ""
            cells.append(
                cell.ljust(widths[i]) if i == 0 else cell.rjust(widths[i])
            )
        return "  ".join(cells).rstrip()

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep, *(fmt(r) for r in rows)])


def render_series(
    series: Mapping[str, Mapping[int, float]],
    *,
    width: int = 48,
    ylabel: str = "speedup",
) -> str:
    """ASCII rendering of per-series ``{x: y}`` curves (one row per x,
    one column block per series) plus a bar strip for the last series
    point — enough to eyeball the figures in a terminal."""
    xs = sorted({x for curve in series.values() for x in curve})
    names = list(series)
    headers = ["threads", *names]
    rows = []
    peak = max(
        (v for curve in series.values() for v in curve.values()), default=1.0
    )
    for x in xs:
        row = [str(x)]
        for name in names:
            v = series[name].get(x)
            row.append("" if v is None else f"{v:.2f}")
        rows.append(row)
    table = render_table(headers, rows)
    bars = []
    for name in names:
        curve = series[name]
        last = curve[max(curve)]
        n = max(1, int(round(width * last / peak)))
        bars.append(f"{name:>12s} |{'#' * n} {last:.1f}")
    return table + f"\n\n{ylabel} at max threads:\n" + "\n".join(bars)


@dataclasses.dataclass
class ExperimentReport:
    """Uniform result object for all experiments."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list[str]]
    data: dict[str, Any]
    notes: list[str] = dataclasses.field(default_factory=list)

    def render(self) -> str:
        out = [f"== {self.title} ==", ""]
        out.append(render_table(self.headers, self.rows))
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)
