"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` from wrong argument types,
etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ImageFormatError",
    "LabelOverflowError",
    "PartitionError",
    "UnknownAlgorithmError",
    "BackendError",
    "CostModelError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ImageFormatError(ReproError, ValueError):
    """An input array is not a valid binary image for CCL.

    Raised for non-2D inputs, unsupported dtypes, or pixel values outside
    ``{0, 1}`` when strict validation is requested, and by the PNM codec for
    malformed files.
    """


class LabelOverflowError(ReproError, OverflowError):
    """The provisional-label space of the chosen dtype was exhausted.

    The scan phase assigns at most one provisional label per foreground
    pixel; an ``M x N`` image therefore needs ``M * N + 1`` representable
    labels. This error indicates the configured label dtype is too narrow
    for the input image.
    """


class PartitionError(ReproError, ValueError):
    """A parallel row partition is invalid (empty chunks, bad alignment)."""


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name was not found in :mod:`repro.ccl.registry`."""


class BackendError(ReproError, RuntimeError):
    """A parallel backend failed or was asked for an unsupported feature."""


class CostModelError(ReproError, ValueError):
    """A simulated-machine cost model is inconsistent (negative costs...)."""
