"""Granularity sweep — the YACCLAB-style synthetic benchmark axis.

Holds foreground density at 50% while sweeping the block granularity
from 1 px (white noise: merge-heavy, run-hostile) to 16 px (chunky:
run-friendly). The deterministic op-count sweep quantifies *why* the
timings move: merges per pixel collapse as granularity grows, and the
run count per pixel with them.
"""

from __future__ import annotations

import pytest

from repro.ccl import aremsp, ccllrpc, run_based_vectorized
from repro.ccl.block2x2 import block_label
from repro.ccl.opcount import tworow_opcounts
from repro.data import granularity

GRANULARITIES = (1, 2, 4, 8, 16)
SIDE = 160


@pytest.fixture(scope="module", params=GRANULARITIES)
def image(request):
    return granularity((SIDE, SIDE), density=0.5, block=request.param, seed=5)


def test_aremsp(benchmark, image):
    result = benchmark(aremsp, image, 8)
    assert result.n_components >= 1


def test_ccllrpc(benchmark, image):
    result = benchmark(ccllrpc, image, 8)
    assert result.n_components >= 1


def test_run_vectorized(benchmark, image):
    result = benchmark(run_based_vectorized, image, 8)
    assert result.n_components >= 1


def test_block2x2(benchmark, image):
    result = benchmark(block_label, image, 8)
    assert result.n_components >= 1


def test_opcounts_fall_with_granularity(capsys):
    """Deterministic version of the sweep: merge traffic per pixel must
    fall monotonically as blocks grow."""
    merges = {}
    runs = {}
    for g in GRANULARITIES:
        img = granularity((SIDE, SIDE), density=0.5, block=g, seed=5)
        counts = tworow_opcounts(img)
        merges[g] = counts.merges / img.size
        result = run_based_vectorized(img, 8)
        runs[g] = result.provisional_count / img.size
    with capsys.disabled():
        print("\nmerges/px by granularity:",
              {k: f"{v:.4f}" for k, v in merges.items()})
        print("runs/px by granularity:  ",
              {k: f"{v:.4f}" for k, v in runs.items()})
    vals = [merges[g] for g in GRANULARITIES]
    assert vals == sorted(vals, reverse=True)
    run_vals = [runs[g] for g in GRANULARITIES]
    assert run_vals == sorted(run_vals, reverse=True)
