"""Sequential connected-component labeling algorithms.

The paper's 2x2 design space plus every baseline it is compared against:

===============  =====================  =======================
Algorithm        First-scan strategy    Equivalence structure
===============  =====================  =======================
CCLLRPC [36]     decision tree (Fig 2)  link-by-rank + path comp.
**CCLREMSP**     decision tree (Fig 2)  Rem's + splicing (REMSP)
ARUN [37]        two-row mask (Fig 1b)  rtable/next/tail run sets
**AREMSP**       two-row mask (Fig 1b)  Rem's + splicing (REMSP)
RUN [43]         row runs               rtable/next/tail run sets
MULTIPASS [11]   repeated raster sweeps (label propagation)
SUZUKI [10]      repeated sweeps + 1-D connection table
===============  =====================  =======================

Bold = the paper's proposals. All entry points take a binary image and
return a :class:`~repro.ccl.labeling.CCLResult`; the uniform access point
is :func:`repro.ccl.registry.get_algorithm` /
:func:`repro.label`.

Beyond the paper's roster, the whole-array NumPy engine family
(ROADMAP item 2): :mod:`~repro.ccl.itequiv` (iterative label
equivalence, arXiv:1708.08180-style), :mod:`~repro.ccl.coarse2fine`
(block-local propagation + boundary-only merge, arXiv:1712.09789), and
:mod:`~repro.ccl.dispatch` (the ``"auto"`` registry entry that picks an
engine from measured image statistics).
"""

from .aremsp import aremsp
from .arun import arun
from .ccllrpc import ccllrpc
from .cclremsp import cclremsp
from .coarse2fine import coarse2fine
from .dispatch import auto_label, choose_engine, image_stats
from .grayscale import grayscale_label, grayscale_label_runs
from .itequiv import itequiv
from .labeling import CCLResult
from .multipass import multipass
from .registry import ALGORITHMS, get_algorithm
from .run_based import run_based, run_based_vectorized
from .suzuki import suzuki

__all__ = [
    "CCLResult",
    "aremsp",
    "arun",
    "ccllrpc",
    "cclremsp",
    "run_based",
    "run_based_vectorized",
    "multipass",
    "suzuki",
    "itequiv",
    "coarse2fine",
    "auto_label",
    "choose_engine",
    "image_stats",
    "grayscale_label",
    "grayscale_label_runs",
    "ALGORITHMS",
    "get_algorithm",
]
