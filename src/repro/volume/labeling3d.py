"""Vectorised run-based 3-D labeling.

A volume is a stack of scan lines (one per ``(z, y)``); runs along the
x axis are extracted exactly as in the 2-D engine (the volume is viewed
as a ``(Z*Y, X)`` image — padding guarantees runs never cross lines).
Each run is then matched against the runs of its *preceding* neighbour
lines; which lines those are, and how far the column overlap reaches,
encodes the connectivity:

============ ============================== =====================
Connectivity preceding neighbour lines      column reach
============ ============================== =====================
6            (z, y-1), (z-1, y)             0 (exact overlap)
18           (z, y-1), (z-1, y)             1
...          (z-1, y-1), (z-1, y+1)         0
26           (z, y-1), (z-1, y-1),          1
...          (z-1, y), (z-1, y+1)
============ ============================== =====================

(derivation: an offset ``(dz, dy, dx)`` is a neighbour when it has at
most 1/2/3 nonzero coordinates for 6/18/26; ``dx`` freedom becomes the
column reach of the line at ``(dz, dy)``).

Unions run on run ids through REMSP, the analysis phase is the shared
FLATTEN, and painting is a single ``repeat`` gather — the same
three-phase structure as every two-pass algorithm in this library.
"""

from __future__ import annotations

import time

import numpy as np

from ..ccl.run_based import extract_runs
from ..errors import ImageFormatError
from ..types import LABEL_DTYPE, PIXEL_DTYPE
from ..unionfind.flatten import flatten
from ..unionfind.remsp import merge as remsp_merge
from ..ccl.labeling import CCLResult

__all__ = ["volume_label", "VOLUME_CONNECTIVITIES", "line_offsets"]

#: supported voxel connectivities.
VOLUME_CONNECTIVITIES = (6, 18, 26)


def line_offsets(connectivity: int) -> tuple[tuple[int, int, int], ...]:
    """Preceding neighbour lines as ``(dz, dy, reach)`` triples."""
    if connectivity == 6:
        return ((0, -1, 0), (-1, 0, 0))
    if connectivity == 18:
        return ((0, -1, 1), (-1, 0, 1), (-1, -1, 0), (-1, 1, 0))
    if connectivity == 26:
        return ((0, -1, 1), (-1, -1, 1), (-1, 0, 1), (-1, 1, 1))
    raise ValueError(
        f"3-D connectivity must be one of {VOLUME_CONNECTIVITIES}, "
        f"got {connectivity}"
    )


def volume_label(
    volume: np.ndarray, connectivity: int = 26
) -> CCLResult:
    """Label foreground components of a binary 3-D volume.

    Returns a :class:`~repro.ccl.labeling.CCLResult` whose ``labels``
    array is 3-D; labels are consecutive ``1..K`` in (z, y, x) raster
    first-appearance order of each component's first *run*.

    >>> import numpy as np
    >>> v = np.zeros((2, 2, 2), dtype=np.uint8)
    >>> v[0, 0, 0] = v[1, 1, 1] = 1
    >>> int(volume_label(v, 26).n_components)
    1
    >>> int(volume_label(v, 6).n_components)
    2
    """
    offsets = line_offsets(connectivity)
    vol = np.asarray(volume)
    if vol.ndim != 3:
        raise ImageFormatError(f"expected a 3-D volume, got shape {vol.shape!r}")
    if vol.dtype == np.bool_:
        vol = vol.astype(PIXEL_DTYPE)
    Z, Y, X = vol.shape
    t0 = time.perf_counter()
    if vol.size == 0:
        return CCLResult(
            labels=np.zeros((Z, Y, X), dtype=LABEL_DTYPE),
            n_components=0,
            provisional_count=0,
            phase_seconds={"scan": 0.0, "flatten": 0.0, "label": 0.0},
            algorithm=f"volume-{connectivity}",
        )
    lines = np.ascontiguousarray(vol.reshape(Z * Y, X))
    run_line, run_s, run_e = extract_runs(lines)
    n_runs = len(run_s)
    p: list[int] = list(range(n_runs + 1))
    W = X + 2
    n_lines = Z * Y
    if n_runs:
        s_keys = run_line * W + run_s
        e_keys = run_line * W + run_e
        line_begin = np.searchsorted(run_line, np.arange(n_lines), "left")
        line_end = np.searchsorted(run_line, np.arange(n_lines), "right")
        run_z = run_line // Y
        run_y = run_line - run_z * Y
        for dz, dy, reach in offsets:
            nz = run_z + dz
            ny = run_y + dy
            valid = (nz >= 0) & (ny >= 0) & (ny < Y)
            idx = np.flatnonzero(valid)
            if not len(idx):
                continue
            target = nz[idx] * Y + ny[idx]
            base = target * W
            first = np.searchsorted(
                e_keys, base + run_s[idx] - reach, side="right"
            )
            last = np.searchsorted(
                s_keys, base + run_e[idx] + reach, side="left"
            )
            first = np.maximum(first, line_begin[target])
            last = np.minimum(last, line_end[target])
            counts = np.maximum(0, last - first)
            total = int(counts.sum())
            if not total:
                continue
            cum = np.cumsum(counts)
            ii = np.repeat(idx, counts)
            jj = np.arange(total) - np.repeat(cum - counts, counts)
            jj += np.repeat(first, counts)
            for u, v in zip((ii + 1).tolist(), (jj + 1).tolist()):
                remsp_merge(p, u, v)
    t1 = time.perf_counter()
    n_components = flatten(p, n_runs + 1)
    t2 = time.perf_counter()
    flat = np.zeros(n_lines * W, dtype=LABEL_DTYPE)
    if n_runs:
        lut = np.asarray(p, dtype=LABEL_DTYPE)
        final = lut[1 : n_runs + 1]
        lengths = run_e - run_s
        total_px = int(lengths.sum())
        flat_starts = run_line * W + run_s + 1
        cum = np.cumsum(lengths)
        within = np.arange(total_px) - np.repeat(cum - lengths, lengths)
        flat[np.repeat(flat_starts, lengths) + within] = np.repeat(
            final, lengths
        )
    labels = np.ascontiguousarray(
        flat.reshape(n_lines, W)[:, 1 : X + 1].reshape(Z, Y, X)
    )
    t3 = time.perf_counter()
    return CCLResult(
        labels=labels,
        n_components=n_components,
        provisional_count=n_runs,
        phase_seconds={"scan": t1 - t0, "flatten": t2 - t1, "label": t3 - t2},
        algorithm=f"volume-{connectivity}",
    )
