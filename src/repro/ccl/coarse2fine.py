"""Coarse-to-fine CCL — block-local propagation, boundary-only merge.

Chen et al.'s coarse-to-fine parallel CCL (arXiv:1712.09789) splits the
work into a *fine* phase that never leaves a small block and a *coarse*
phase that only touches block boundaries:

1. **local scan** — the image is cut into ``block x block`` tiles and
   every tile runs the iterative run-aware min-propagation kernel of
   :mod:`repro.ccl.itequiv` *simultaneously*, as one batched
   ``(n_tiles, block, block)`` array whose batch axis stops labels from
   leaking between tiles. Convergence is local: at most
   ``block * block`` sweeps regardless of image size, and in practice a
   handful, because no label has to travel further than a tile
   diagonal;
2. **boundary refine** — components that straddle a tile edge appear as
   distinct local labels; the only evidence needed to reconcile them is
   the one-pixel-wide seam between adjacent tiles. Every cross-seam
   adjacent foreground pair yields an equivalence edge, the edges run
   through REMSP union-find on the (compacted) local labels, and
   FLATTEN renumbers — exactly the paper's merge machinery, applied to
   ``O(pixels / block)`` seam pixels instead of the whole image.

The local labels are a *refinement* of the final partition: every local
component lies inside exactly one final component, and merges happen
only through seam edges — the invariant the property tests assert.

Because Rem's merge keeps the minimum label as root and initial labels
are padded linear indexes, FLATTEN's ascending-root numbering directly
reproduces the canonical raster first-appearance numbering; no
renumbering pass is needed.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConnectivityError
from ..obs import PhaseTimer, get_recorder
from ..types import LABEL_DTYPE, as_binary_image
from ..unionfind.flatten import flatten
from ..unionfind.remsp import merge as remsp_merge
from .itequiv import _BIG, _run_min, _segments
from .labeling import CCLResult, check_label_capacity

__all__ = ["coarse2fine", "DEFAULT_BLOCK"]

#: default tile side; small enough that local convergence is fast,
#: large enough that seams are a small fraction of the image.
DEFAULT_BLOCK = 32


class _BlockPlan:
    """Per-batch run segmentation for a ``(n_tiles, B, B)`` tile stack.

    The batch axis keeps tiles independent: run-min operates on the last
    axis only, and the diagonal shifts move within axes 1-2. Like
    ``itequiv._SweepPlan``, segmentation depends only on the foreground
    mask and is computed once for both orientations.
    """

    def __init__(self, fg: np.ndarray) -> None:
        self.fg = fg
        self.fg_flat = fg.ravel()
        self.fg_t = np.ascontiguousarray(fg.transpose(0, 2, 1))
        self.fg_t_flat = self.fg_t.ravel()
        self.row_starts, self.row_ids = _segments(fg)
        self.col_starts, self.col_ids = _segments(self.fg_t)

    def sweep(self, work: np.ndarray, connectivity: int) -> np.ndarray:
        shape = work.shape
        flat = _run_min(work.ravel(), self.fg_flat, self.row_starts,
                        self.row_ids)
        work_t = np.ascontiguousarray(
            flat.reshape(shape).transpose(0, 2, 1)
        )
        flat_t = _run_min(work_t.ravel(), self.fg_t_flat, self.col_starts,
                          self.col_ids)
        work = np.ascontiguousarray(
            flat_t.reshape(work_t.shape).transpose(0, 2, 1)
        )
        if connectivity == 8:
            out = work.copy()
            np.minimum(out[:, 1:, 1:], work[:, :-1, :-1], out=out[:, 1:, 1:])
            np.minimum(out[:, 1:, :-1], work[:, :-1, 1:], out=out[:, 1:, :-1])
            np.minimum(out[:, :-1, 1:], work[:, 1:, :-1], out=out[:, :-1, 1:])
            np.minimum(out[:, :-1, :-1], work[:, 1:, 1:],
                       out=out[:, :-1, :-1])
            work = np.where(self.fg, out, LABEL_DTYPE(_BIG))
        return work


def _sweep_blocks(
    work: np.ndarray, fg: np.ndarray, connectivity: int
) -> np.ndarray:
    """One batched propagation sweep. Exposed for the refinement
    property tests; the engine itself reuses one :class:`_BlockPlan`."""
    return _BlockPlan(fg).sweep(work, connectivity)


def _seam_edges(
    local: np.ndarray, block: int, connectivity: int
) -> tuple[np.ndarray, np.ndarray]:
    """Equivalence edges across tile seams of the padded label image.

    Returns ``(u, v)`` label pairs (both foreground) for every adjacent
    pixel pair whose members lie in different tiles.
    """
    R, C = local.shape
    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []

    def collect(a: np.ndarray, b: np.ndarray) -> None:
        hit = (a > 0) & (b > 0)
        if hit.any():
            us.append(a[hit])
            vs.append(b[hit])

    if C > block:
        left = local[:, block - 1 : C - 1 : block]
        right = local[:, block:C:block]
        collect(left, right)
        if connectivity == 8:
            collect(left[:-1, :], right[1:, :])
            collect(left[1:, :], right[:-1, :])
    if R > block:
        top = local[block - 1 : R - 1 : block, :]
        bottom = local[block:R:block, :]
        collect(top, bottom)
        if connectivity == 8:
            collect(top[:, :-1], bottom[:, 1:])
            collect(top[:, 1:], bottom[:, :-1])
    if not us:
        empty = np.empty(0, dtype=local.dtype)
        return empty, empty
    return np.concatenate(us), np.concatenate(vs)


def coarse2fine(
    image: np.ndarray, connectivity: int = 8, block: int = DEFAULT_BLOCK
) -> CCLResult:
    """Label *image* with the coarse-to-fine block algorithm.

    >>> import numpy as np
    >>> int(coarse2fine(np.eye(5, dtype=np.uint8)).n_components)
    1
    """
    if connectivity not in (4, 8):
        raise ConnectivityError(
            f"connectivity must be 4 or 8, got {connectivity!r}"
        )
    if block < 2:
        raise ValueError(f"block must be >= 2, got {block}")
    img = as_binary_image(image)
    rows, cols = img.shape
    check_label_capacity((rows, cols))

    rec = get_recorder()
    mark = rec.mark()
    timer = PhaseTimer(rec)

    if img.size == 0 or not img.any():
        for ph in ("scan", "merge", "flatten", "label"):
            timer.seconds.setdefault(ph, 0.0)
        return CCLResult(
            labels=np.zeros((rows, cols), dtype=LABEL_DTYPE),
            n_components=0,
            provisional_count=0,
            phase_seconds=timer.seconds,
            algorithm="coarse2fine",
            meta={"block": block, "iterations": 0, "boundary_edges": 0,
                  "local_components": 0},
            timings=rec.report(since=mark) if rec.enabled else None,
        )

    iterations = 0
    with timer.time("scan"):
        # pad to tile multiples; padding is background, so it neither
        # creates components nor blocks seams.
        R = -(-rows // block) * block
        C = -(-cols // block) * block
        fg_pad = np.zeros((R, C), dtype=bool)
        fg_pad[:rows, :cols] = img != 0
        init = np.zeros((R, C), dtype=LABEL_DTYPE)
        init[:rows, :cols] = np.arange(
            1, rows * cols + 1, dtype=LABEL_DTYPE
        ).reshape(rows, cols)
        nbr, nbc = R // block, C // block
        to_tiles = lambda a: (
            a.reshape(nbr, block, nbc, block)
            .transpose(0, 2, 1, 3)
            .reshape(nbr * nbc, block, block)
        )
        fg_t = to_tiles(fg_pad)
        work = np.where(fg_t, to_tiles(init), LABEL_DTYPE(_BIG))
        plan = _BlockPlan(fg_t)
        while True:
            nxt = plan.sweep(work, connectivity)
            iterations += 1
            if np.array_equal(nxt, work):
                break
            work = nxt
        local = np.where(fg_t, work, 0).astype(LABEL_DTYPE)
        local = (
            local.reshape(nbr, nbc, block, block)
            .transpose(0, 2, 1, 3)
            .reshape(R, C)
        )

    with timer.time("merge"):
        # compact local labels to dense ids with 0 = background
        uniq, inv = np.unique(local, return_inverse=True)
        if uniq.size == 0 or uniq[0] != 0:
            uniq = np.concatenate([[0], uniq]).astype(local.dtype)
            inv = inv + 1
        m = int(uniq.size)  # ids 0..m-1, 0 is background
        p: list[int] = list(range(m))
        u_lab, v_lab = _seam_edges(local, block, connectivity)
        n_edges = int(u_lab.size)
        if n_edges:
            u_ids = np.searchsorted(uniq, u_lab)
            v_ids = np.searchsorted(uniq, v_lab)
            for x, y in zip(u_ids.tolist(), v_ids.tolist()):
                remsp_merge(p, x, y)
    with timer.time("flatten"):
        n_components = flatten(p, m)
    with timer.time("label"):
        lut = np.asarray(p, dtype=LABEL_DTYPE)
        labels = np.ascontiguousarray(
            lut[inv.reshape(R, C)][:rows, :cols]
        )

    if rec.enabled:
        rec.gauge("coarse2fine.iterations", float(iterations))
        rec.gauge("coarse2fine.boundary_edges", float(n_edges))
        rec.gauge("coarse2fine.local_components", float(m - 1))
    return CCLResult(
        labels=labels,
        n_components=n_components,
        provisional_count=m - 1,
        phase_seconds=timer.seconds,
        algorithm="coarse2fine",
        meta={
            "block": block,
            "iterations": iterations,
            "boundary_edges": n_edges,
            "local_components": m - 1,
        },
        timings=rec.report(since=mark) if rec.enabled else None,
    )
