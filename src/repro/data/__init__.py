"""Image substrate: binarization, synthetic datasets, and PNM I/O.

The paper evaluates on four image suites — USC-SIPI **Texture**,
**Aerial**, **Miscellaneous**, and **NLCD 2006** land-cover rasters — all
binarized with MATLAB ``im2bw(level=0.5)``. Those exact images are not
redistributable here, so this subpackage builds the closest synthetic
equivalents (see DESIGN.md §2 for the substitution argument):

* :mod:`~repro.data.binarize` — a faithful ``im2bw``: ITU-R BT.601
  luminance for RGB, threshold at ``level`` (default 0.5 of full scale);
* :mod:`~repro.data.valuenoise` — seeded fractal value noise, the raw
  material for texture- and aerial-like imagery;
* :mod:`~repro.data.synthetic` — parametric structures (blobs, stripes,
  checkerboards, spirals, mazes, worst cases) used by tests and ablations;
* :mod:`~repro.data.datasets` — the four named suites, including the
  Table III NLCD size ladder with a configurable scale factor;
* :mod:`~repro.data.pnm` — dependency-free PBM/PGM (P1/P2/P4/P5) reader
  and writer so users can run the library on their own images.
"""

from .binarize import im2bw, rgb_to_gray
from .datasets import (
    DatasetImage,
    aerial_suite,
    misc_suite,
    nlcd_suite,
    suite_by_name,
    texture_suite,
)
from .pnm import read_pnm, write_pnm
from .synthetic import (
    blobs,
    checkerboard,
    diagonal_chains,
    diagonal_stripes,
    granularity,
    halves,
    hilbert_curve,
    maze,
    random_noise,
    ridges,
    solid,
    spiral,
)
from .valuenoise import fractal_noise

__all__ = [
    "im2bw",
    "rgb_to_gray",
    "fractal_noise",
    "random_noise",
    "blobs",
    "checkerboard",
    "diagonal_stripes",
    "spiral",
    "maze",
    "solid",
    "halves",
    "granularity",
    "ridges",
    "hilbert_curve",
    "diagonal_chains",
    "DatasetImage",
    "texture_suite",
    "aerial_suite",
    "misc_suite",
    "nlcd_suite",
    "suite_by_name",
    "read_pnm",
    "write_pnm",
]
