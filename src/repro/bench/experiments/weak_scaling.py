"""Weak scaling (ours) — fixed work per thread.

The paper reports only strong scaling (fixed image, more threads). The
dual experiment grows the image *with* the team: rows proportional to
the thread count, so each thread's chunk stays constant. A perfectly
scalable algorithm holds efficiency ``T(1, W) / T(t, t*W)`` at 1.0;
what pulls PAREMSP below 1.0 is exactly its serial residue (FLATTEN is
O(total labels), which grows with the image while everything else
parallelises) — this experiment isolates and quantifies that residue.
"""

from __future__ import annotations

from ...data.synthetic import blobs
from ...simmachine.costmodel import CostModel
from ...simmachine.machine import simulate_paremsp
from ..report import ExperimentReport

__all__ = ["run_weak_scaling"]

WEAK_THREADS = (1, 2, 4, 8, 16, 24)


def run_weak_scaling(
    scale: float | None = None,
    base_rows: int = 48,
    cols: int = 192,
    thread_counts: tuple[int, ...] = WEAK_THREADS,
    cost_model: CostModel | None = None,
) -> ExperimentReport:
    """Regenerate the weak-scaling ablation.

    ``scale`` maps to the simulated-machine pricing factor (default 40x
    linear, i.e. each thread's chunk stands in for ~15 MP of work).
    """
    price = 40.0 if scale is None else max(1.0, scale * 2000)
    base = simulate_paremsp(
        blobs((base_rows, cols), 0.5, seed=1), 1, cost_model,
        linear_scale=price,
    )
    rows_data: list[list[str]] = []
    effs: dict[int, float] = {}
    flatten_share: dict[int, float] = {}
    for t in thread_counts:
        img = blobs((base_rows * t, cols), 0.5, seed=1)
        sim = simulate_paremsp(img, t, cost_model, linear_scale=price)
        effs[t] = base.total_seconds / sim.total_seconds
        flatten_share[t] = sim.phase_seconds["flatten"] / sim.total_seconds
        rows_data.append(
            [
                str(t),
                f"{base_rows * t}x{cols}",
                f"{sim.total_seconds * 1e3:.2f}",
                f"{effs[t]:.3f}",
                f"{flatten_share[t]:.1%}",
            ]
        )
    return ExperimentReport(
        experiment="weak",
        title=(
            "Weak scaling (ours): fixed work per thread on the simulated "
            "node"
        ),
        headers=["#Threads", "Image", "Time ms", "Efficiency", "Flatten share"],
        rows=rows_data,
        data={"efficiency": effs, "flatten_share": flatten_share},
        notes=[
            "efficiency = T(1, W) / T(t, t*W); the decay tracks the "
            "serial FLATTEN share, PAREMSP's only non-parallel phase"
        ],
    )
