"""Thread backend: real ``threading`` concurrency with striped locks.

This is the structurally-faithful port of the paper's OpenMP execution:
chunk scans run on a thread pool (they touch disjoint rows and disjoint
label ranges, so the scan phase needs no synchronisation at all), and
boundary merges run concurrently through the lock-based MERGER of
Algorithm 8 (:class:`repro.unionfind.parallel.LockStripedMerger`).

CPython's GIL serialises the bytecode, so this backend demonstrates
*correctness under real interleaving*, not speedup — that is the
documented substitution (DESIGN.md §2); wall-clock scaling experiments
use the ``processes`` backend or the simulated machine.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import MutableSequence, Sequence

from ...ccl.labeling import remsp_alloc
from ...ccl.scan_aremsp import scan_tworow
from ...unionfind.parallel import LockStripedMerger
from ...unionfind.remsp import merge as remsp_merge
from ..boundary import boundary_rows, merge_boundary_row
from ..partition import RowChunk

__all__ = ["ThreadBackend"]


class ThreadBackend:
    """Thread-pool execution of the PAREMSP phases."""

    name = "threads"

    def scan(
        self,
        img_rows: Sequence[Sequence[int]],
        chunks: Sequence[RowChunk],
        p: MutableSequence[int],
        connectivity: int,
    ) -> tuple[list[list[int]], list[int], dict]:
        def run(chunk: RowChunk) -> tuple[list[list[int]], int]:
            alloc, watermark = remsp_alloc(p, start=chunk.label_start)
            rows = scan_tworow(
                img_rows[chunk.row_start : chunk.row_stop],
                p,
                # scan-phase merges stay inside one chunk's label range,
                # so the sequential kernel is safe here (the paper's
                # Algorithm 7 likewise uses plain merge in the scan).
                remsp_merge,
                alloc,
                connectivity,
            )
            return rows, watermark()

        with ThreadPoolExecutor(max_workers=max(1, len(chunks))) as pool:
            results = list(pool.map(run, chunks))
        label_rows: list[list[int]] = []
        used: list[int] = []
        for rows, watermark in results:
            label_rows.extend(rows)
            used.append(watermark)
        return label_rows, used, {}

    def boundary(
        self,
        label_rows: Sequence[Sequence[int]],
        chunks: Sequence[RowChunk],
        cols: int,
        p: MutableSequence[int],
        connectivity: int,
    ) -> dict:
        rows = boundary_rows(chunks)
        if not rows:
            return {"boundary_unions": 0}
        merger = LockStripedMerger(p)

        def union(pp: MutableSequence[int], x: int, y: int) -> int:
            return merger.merge(x, y)

        def run(row: int) -> int:
            return merge_boundary_row(
                label_rows, row, cols, p, union, connectivity
            )

        with ThreadPoolExecutor(max_workers=max(1, len(rows))) as pool:
            ops = sum(pool.map(run, rows))
        return {"boundary_unions": ops}
