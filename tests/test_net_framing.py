"""The wire protocol (:mod:`repro.parallel.net.framing`).

Property coverage for the framing invariants the transport leans on:
every intact frame round-trips; every payload corruption is caught by
the CRC as a *non-fatal* per-frame rejection; every header corruption
or truncation is caught as the right typed error; and the replay cache
answers duplicates without re-executing.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import FrameCorruptError, FrameTruncatedError
from repro.parallel.net.framing import (
    HEADER,
    MAGIC,
    MAX_FRAME_PAYLOAD,
    ReplayCache,
    decode_header,
    dumps_payload,
    encode_frame,
    loads_payload,
    read_frame,
    recv_exact,
)


class ByteSock:
    """A socket-shaped reader over a byte buffer, with partial recvs."""

    def __init__(self, data: bytes, chunk: int | None = None) -> None:
        self._data = bytes(data)
        self._pos = 0
        self._chunk = chunk

    def recv(self, n: int) -> bytes:
        if self._chunk is not None:
            n = min(n, self._chunk)
        out = self._data[self._pos : self._pos + n]
        self._pos += len(out)
        return out


payloads = st.binary(min_size=0, max_size=2048)
seqs = st.integers(min_value=0, max_value=2**63)


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------


@given(seq=seqs, payload=payloads, chunk=st.integers(1, 7))
def test_frame_roundtrip(seq, payload, chunk):
    # dribbling the bytes in tiny chunks must not matter
    sock = ByteSock(encode_frame(seq, payload), chunk=chunk)
    assert read_frame(sock) == (seq, payload)


@given(frames=st.lists(st.tuples(seqs, payloads), min_size=1, max_size=5))
def test_back_to_back_frames_stay_aligned(frames):
    sock = ByteSock(b"".join(encode_frame(s, p) for s, p in frames))
    for seq, payload in frames:
        assert read_frame(sock) == (seq, payload)


@given(obj=st.dictionaries(
    st.text(max_size=8),
    st.one_of(st.integers(), st.text(max_size=16), st.booleans(), st.none()),
    max_size=6,
))
def test_payload_json_roundtrip(obj):
    assert loads_payload(dumps_payload(obj)) == obj


# ---------------------------------------------------------------------------
# the two corruption regimes
# ---------------------------------------------------------------------------


@given(seq=seqs, payload=st.binary(min_size=1, max_size=512),
       data=st.data())
def test_any_payload_corruption_is_nonfatal_and_caught(seq, payload, data):
    frame = bytearray(encode_frame(seq, payload))
    i = data.draw(st.integers(HEADER.size, len(frame) - 1), label="byte")
    flip = data.draw(st.integers(1, 255), label="xor")
    frame[i] ^= flip
    with pytest.raises(FrameCorruptError) as err:
        read_frame(ByteSock(bytes(frame)))
    # the header still framed it: stream stays usable, seq identifies
    # the frame to NACK
    assert err.value.fatal is False
    assert err.value.seq == seq


@given(seq=seqs, payload=payloads, data=st.data())
def test_magic_corruption_is_fatal(seq, payload, data):
    frame = bytearray(encode_frame(seq, payload))
    i = data.draw(st.integers(0, len(MAGIC) - 1), label="byte")
    frame[i] ^= data.draw(st.integers(1, 255), label="xor")
    with pytest.raises(FrameCorruptError) as err:
        read_frame(ByteSock(bytes(frame)))
    assert err.value.fatal is True


def test_absurd_length_is_fatal():
    header = HEADER.pack(MAGIC, 7, MAX_FRAME_PAYLOAD + 1, 0)
    with pytest.raises(FrameCorruptError) as err:
        read_frame(ByteSock(header + b"x" * 64))
    assert err.value.fatal is True


@given(seq=seqs, payload=payloads, data=st.data())
def test_any_truncation_is_typed(seq, payload, data):
    frame = encode_frame(seq, payload)
    cut = data.draw(st.integers(0, len(frame) - 1), label="cut")
    with pytest.raises(FrameTruncatedError):
        read_frame(ByteSock(frame[:cut]))


def test_truncation_error_reports_progress():
    with pytest.raises(FrameTruncatedError) as err:
        recv_exact(ByteSock(b"abc"), 10)
    assert err.value.wanted == 10
    assert err.value.got == 3


def test_encode_rejects_bad_inputs():
    with pytest.raises(ValueError):
        encode_frame(-1, b"")
    with pytest.raises(ValueError):
        encode_frame(0, b"x" * (MAX_FRAME_PAYLOAD + 1))


def test_decode_header_accepts_good_header():
    payload = b"hello"
    frame = encode_frame(3, payload)
    seq, length, crc = decode_header(frame[: HEADER.size])
    assert (seq, length) == (3, len(payload))


# ---------------------------------------------------------------------------
# the replay cache
# ---------------------------------------------------------------------------


def test_replay_cache_deduplicates_completed_frames():
    cache = ReplayCache()
    state, event = cache.start("peer-a", 1)
    assert state == "new"
    cache.done("peer-a", 1, {"ok": True, "n": 42})
    state, reply = cache.start("peer-a", 1)
    assert state == "cached"
    assert reply == {"ok": True, "n": 42}
    assert cache.deduped == 1
    # a different peer's seq 1 is a different key entirely
    state, _ = cache.start("peer-b", 1)
    assert state == "new"


def test_replay_cache_waits_out_inflight_duplicates():
    cache = ReplayCache()
    state, event = cache.start("p", 5)
    assert state == "new"
    state, wait_event = cache.start("p", 5)
    assert state == "wait"
    got: list = []

    def waiter():
        wait_event.wait(5.0)
        got.append(cache.get("p", 5))

    thread = threading.Thread(target=waiter)
    thread.start()
    cache.done("p", 5, {"ok": True})
    thread.join(5.0)
    assert got == [{"ok": True}]
    assert cache.deduped == 1


def test_replay_cache_evicts_oldest_beyond_capacity():
    cache = ReplayCache(capacity=4)
    for seq in range(10):
        cache.start("p", seq)
        cache.done("p", seq, {"seq": seq})
    assert cache.get("p", 0) is None  # evicted
    assert cache.get("p", 9) == {"seq": 9}
    # an evicted key re-executes (state "new"), which idempotent
    # handlers make safe
    state, _ = cache.start("p", 0)
    assert state == "new"
