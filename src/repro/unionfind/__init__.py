"""Union-find (disjoint-set) substrate.

This subpackage implements the data-structure layer the paper builds on:

* :mod:`~repro.unionfind.remsp` — Rem's union-find with the *splicing*
  compression technique (REMSP), Algorithm 2 of the paper. This is the
  structure both proposed CCL algorithms (CCLREMSP, AREMSP) use.
* :mod:`~repro.unionfind.lrpc` — link-by-rank with path compression, the
  technique used by the CCLLRPC baseline (Wu, Otoo, Suzuki 2009).
* :mod:`~repro.unionfind.variants` — the wider family benchmarked by
  Patwary, Blair, Manne (SEA 2010), reference [40]: link-by-size,
  path-halving, path-splitting, and naive linking. These power the
  union-find ablation benchmark.
* :mod:`~repro.unionfind.flatten` — the FLATTEN analysis phase
  (Algorithm 3) that resolves equivalences into consecutive final labels.
* :mod:`~repro.unionfind.parallel` — the lock-based parallel Rem's merge
  (MERGER, Algorithm 8; Patwary, Refsnes, Manne IPDPS 2012).
* :mod:`~repro.unionfind.graph` — spanning-forest / component counting
  over explicit edge lists, the substrate [38] evaluates union-find on.

All low-level functions operate on a *parent sequence* ``p`` — a mutable
sequence (Python list in the interpreter-hot paths, NumPy array elsewhere)
where ``p[i]`` is the parent of element ``i`` and roots satisfy
``p[i] == i``. REMSP maintains the additional invariant ``p[i] <= i`` is
NOT required; instead the parent *values* define the ordering used by the
splicing walk.
"""

from .base import DisjointSets, components, count_sets, is_valid_parent_array
from .flatten import flatten, flatten_ranges
from .lrpc import LinkByRankPC, find_compress, union_by_rank
from .parallel import LockStripedMerger, merger
from .remsp import RemSP, find_root, merge, same_set

__all__ = [
    "DisjointSets",
    "RemSP",
    "LinkByRankPC",
    "LockStripedMerger",
    "merge",
    "merger",
    "find_root",
    "same_set",
    "find_compress",
    "union_by_rank",
    "flatten",
    "flatten_ranges",
    "components",
    "count_sets",
    "is_valid_parent_array",
]
