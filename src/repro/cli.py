"""``repro-label`` — label an image file from the shell.

The end-user pipeline the paper motivates, as one command::

    repro-label scan.pbm labels.pgm --algorithm aremsp --min-area 8
    repro-label photo.pgm out.npy --level 0.5 --engine vectorized --stats

Input: any netpbm file (PBM/PGM/PPM, ASCII or binary) or ``.npy``;
colour/gray inputs are binarized with the paper's ``im2bw`` rule at
``--level`` (default 0.5). Output by extension: ``.npy`` (int32
labels), ``.pgm`` (faithful label image, 16-bit when more than 255
components), or ``.ppm`` (colour visualisation, one distinct colour
per component).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

import numpy as np

from .analysis import clear_border, component_stats, fill_holes, filter_components
from .ccl.registry import ALGORITHMS, get_algorithm
from .data.binarize import im2bw
from .data.pnm import read_pnm, write_pnm

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-label",
        description="Connected-component labeling (Gupta et al. 2014 algorithms)",
    )
    parser.add_argument("input", help="input image: .pbm/.pgm/.pnm or .npy")
    parser.add_argument("output", help="output labels: .npy or .pgm")
    parser.add_argument(
        "--algorithm",
        default="aremsp",
        choices=sorted(ALGORITHMS),
        help="labeling algorithm (default: aremsp, the paper's best)",
    )
    parser.add_argument(
        "--engine",
        choices=("python", "vectorized", "auto", "itequiv", "coarse2fine",
                 "block2x2"),
        default=None,
        help="force an engine: vectorized = NumPy run-based; auto = "
        "density-aware dispatch over the measured fastest engine per "
        "image regime; itequiv/coarse2fine/block2x2 = that whole-array "
        "kernel",
    )
    parser.add_argument(
        "--connectivity", type=int, choices=(4, 8), default=8
    )
    parser.add_argument(
        "--backend",
        choices=("serial", "threads", "processes"),
        default=None,
        help="run the parallel PAREMSP pipeline on this backend instead "
        "of the single-pass --algorithm (uses --engine interpreter or "
        "vectorized)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=4,
        help="worker/chunk count for --backend runs (default: 4)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        help="max per-phase worker retries for --backend runs "
        "(default: the ResilienceConfig default)",
    )
    parser.add_argument(
        "--degrade",
        action="store_true",
        help="on a backend failure, fall back down the ladder "
        "(processes -> threads -> serial) instead of erroring out",
    )
    parser.add_argument(
        "--job",
        choices=("streaming", "tiled"),
        default=None,
        help="run as an out-of-core job (row-streaming or tiled) that "
        "labels straight into an on-disk array; required for "
        "checkpointing",
    )
    parser.add_argument(
        "--tile-shape",
        metavar="HxW",
        default="256x256",
        help="tile grid for --job tiled (default: 256x256); a resume "
        "must use the same shape as the interrupted run",
    )
    parser.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        default=None,
        help="directory for crash-safe snapshots of the --job state "
        "(atomic rename + checksum); a killed run restarted with "
        "--resume continues from the latest valid snapshot",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        metavar="N",
        default=None,
        help="snapshot cadence: every N rows (streaming) or every N "
        "tiles/seams/blocks (tiled); defaults 256 rows / 8 tiles",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="resume the --job (or --shards run) from the latest valid "
        "snapshot in --checkpoint-dir / --shard-checkpoint-dir instead "
        "of starting over",
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        default=None,
        help="label via the elastic sharded runtime: cut the raster "
        "into N band shards executed by supervised worker processes "
        "with tree-reduce seam merging (see docs/SHARDED.md); uses "
        "--tile-shape and --checkpoint-every",
    )
    parser.add_argument(
        "--shard-checkpoint-dir",
        metavar="DIR",
        default=None,
        help="durable scratch directory for --shards runs; a killed "
        "run restarted with --resume continues from the per-shard "
        "snapshots",
    )
    parser.add_argument(
        "--hosts",
        metavar="HOST:PORT,...",
        default=None,
        help="run --shards across these repro-shard-worker daemons "
        "(comma-separated addresses); the scratch directory must be on "
        "a filesystem every host shares. Unreachable hosts degrade the "
        "run down the ladder (multi-host -> local shards -> inline) "
        "unless quorum holds",
    )
    parser.add_argument(
        "--virtual-hosts",
        type=int,
        metavar="N",
        default=None,
        help="run --shards across N loopback worker daemons spawned "
        "locally -- the CI/dev stand-in for --hosts, exercising the "
        "real socket transport without real machines",
    )
    parser.add_argument(
        "--level",
        type=float,
        default=0.5,
        help="im2bw threshold for grayscale inputs (fraction of full scale)",
    )
    parser.add_argument(
        "--min-area",
        type=int,
        default=0,
        help="drop components smaller than this many pixels",
    )
    parser.add_argument(
        "--fill-holes", action="store_true", help="fill enclosed holes first"
    )
    parser.add_argument(
        "--clear-border",
        action="store_true",
        help="drop components touching the image border first",
    )
    parser.add_argument(
        "--stats", action="store_true", help="print per-component statistics"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record phase spans + metrics during labeling and write them "
        "as trace.jsonl to PATH (also prints the phase table)",
    )
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="attach the sampling profiler during labeling and write "
        "collapsed stacks (flamegraph.pl / speedscope input, one "
        "'phase;frame;... count' line each) to PATH",
    )
    return parser


def _maybe_profiler(args):
    """The --profile context: a live sampler, or an inert null."""
    if not args.profile:
        import contextlib

        return contextlib.nullcontext(None)
    from .obs.runtime import SamplingProfiler

    return SamplingProfiler()


def _write_profile(args, prof) -> None:
    if prof is None:
        return
    prof.write_collapsed(args.profile)
    print(
        f"profile -> {args.profile} ({prof.sample_count} samples; "
        "feed to flamegraph.pl or speedscope)"
    )


def _load(path: pathlib.Path, level: float) -> np.ndarray:
    if path.suffix == ".npy":
        arr = np.load(path)
    else:
        arr = read_pnm(path)
    if arr.ndim == 3 or (arr.ndim == 2 and arr.max(initial=0) > 1):
        arr = im2bw(arr, level)  # the paper's preprocessing step
    return arr


def _save(path: pathlib.Path, labels: np.ndarray) -> None:
    if path.suffix == ".npy":
        np.save(path, labels)
    elif path.suffix == ".ppm":
        # colour visualisation: one distinct colour per component
        from .analysis import colorize_labels

        write_pnm(path, colorize_labels(labels))
    else:
        mx = int(labels.max(initial=0))
        # a PGM must carry every label faithfully
        write_pnm(path, labels.astype(np.uint16 if mx > 255 else np.uint8),
                  maxval=max(1, mx))


def _print_stats(labels: np.ndarray, n: int) -> None:
    stats = component_stats(labels)
    order = np.argsort(stats.areas)[::-1]
    print(f"{'label':>6s} {'area':>8s} {'bbox':>20s} {'centroid':>16s}")
    for i in order[:20]:
        c = stats.component(int(i) + 1)
        r0, c0, r1, c1 = c["bbox"]
        cy, cx = c["centroid"]
        print(
            f"{c['label']:6d} {c['area']:8d} "
            f"{f'({r0},{c0})-({r1},{c1})':>20s} "
            f"{f'({cy:.1f},{cx:.1f})':>16s}"
        )
    if n > 20:
        print(f"... {n - 20} more")


def _degrade_detail(reason: dict) -> str:
    """Render the error/ranks portion of a ``degraded_from`` reason."""
    bits = []
    if reason.get("error"):
        bits.append(reason["error"])
    if reason.get("ranks"):
        bits.append(f"ranks {list(reason['ranks'])}")
    return f" ({', '.join(bits)})" if bits else ""


def _parse_tile_shape(raw: str) -> tuple[int, int] | None:
    try:
        th, _, tw = raw.lower().partition("x")
        return (int(th), int(tw or th))
    except ValueError:
        print(
            f"error: bad --tile-shape {raw!r} (expected HxW, e.g. 128x128)",
            file=sys.stderr,
        )
        return None


def _run_sharded(args, image, in_path, out_path) -> int:
    """The ``--shards`` path: elastic sharded labeling, multi-process
    locally or multi-host over ``--hosts`` / ``--virtual-hosts``."""
    import time

    tile_shape = _parse_tile_shape(args.tile_shape)
    if tile_shape is None:
        return 2
    kwargs: dict = {}
    if args.checkpoint_every is not None:
        kwargs["checkpoint_every"] = args.checkpoint_every
    t0 = time.perf_counter()
    with _maybe_profiler(args) as prof:
        if args.hosts or args.virtual_hosts:
            from .parallel import net_shard_label

            result = net_shard_label(
                image,
                hosts=args.hosts,
                virtual_hosts=args.virtual_hosts,
                n_shards=args.shards,
                tile_shape=tile_shape,
                connectivity=args.connectivity,
                checkpoint_dir=args.shard_checkpoint_dir,
                resume=args.resume,
                **kwargs,
            )
        else:
            from .parallel import shard_label

            result = shard_label(
                image,
                n_shards=args.shards,
                tile_shape=tile_shape,
                connectivity=args.connectivity,
                checkpoint_dir=args.shard_checkpoint_dir,
                resume=args.resume,
                **kwargs,
            )
    elapsed = time.perf_counter() - t0
    _write_profile(args, prof)
    labels = np.asarray(result.labels)
    n = result.n_components
    if args.min_area > 0:
        labels = filter_components(labels, min_area=args.min_area)
        n = int(labels.max(initial=0))
    _save(out_path, labels)
    n_hosts = result.meta.get("n_hosts")
    mode = (
        f"sharded x{result.meta['n_shards']} over {n_hosts} host(s)"
        if n_hosts
        else f"sharded x{result.meta['n_shards']}"
    )
    print(
        f"{in_path.name}: {image.shape[0]}x{image.shape[1]}, "
        f"{n} components -> {out_path.name} "
        f"({elapsed * 1e3:.1f} ms, {mode})"
    )
    resumed = result.meta.get("shards_resumed")
    if resumed:
        print(
            f"note: resumed {len(resumed)} shard(s) from checkpoint "
            f"({result.meta['rescan_chunks']} chunks rescanned)"
        )
    degraded_from = result.meta.get("degraded_from")
    if degraded_from:
        if degraded_from.get("backend") == "net-sharded":
            print(
                f"note: host pool lost quorum"
                f"{_degrade_detail(degraded_from)}; finished on "
                "local shards"
            )
        else:
            print(
                f"note: shard pool lost quorum"
                f"{_degrade_detail(degraded_from)}; finished inline"
            )
    if args.stats and n:
        _print_stats(labels, n)
    return 0


def _run_job(args, image, in_path, out_path) -> int:
    """The ``--job`` path: checkpointable out-of-core labeling."""
    import dataclasses as _dc
    import time

    from .checkpoint import JobRunner, StreamingJob, TiledJob
    from .faults import DEFAULT_RESILIENCE, DegradationPolicy

    # the job writes .npy; for .pgm/.ppm outputs label into a sidecar
    # .npy and convert at the end
    job_out = (
        out_path
        if out_path.suffix == ".npy"
        else out_path.with_name(out_path.name + ".labels.npy")
    )
    kwargs: dict = {"checkpoint_dir": args.checkpoint_dir,
                    "connectivity": args.connectivity}
    if args.checkpoint_every is not None:
        kwargs["every"] = args.checkpoint_every
    if args.job == "tiled":
        tile_shape = _parse_tile_shape(args.tile_shape)
        if tile_shape is None:
            return 2

    def build_and_run():
        # built inside the recorder context: the job and its snapshot
        # store capture the ambient recorder at construction
        if args.job == "streaming":
            job = StreamingJob(image, job_out, **kwargs)
        else:
            job = TiledJob(
                image, job_out,
                tile_shape=tile_shape,
                workers=args.threads,
                pool=args.backend or "processes",
                **kwargs,
            )
        resilience = (
            _dc.replace(DEFAULT_RESILIENCE, max_retries=args.retries)
            if args.retries is not None
            else None
        )
        degradation = DegradationPolicy() if args.degrade else None
        runner = JobRunner(job, degradation=degradation,
                           resilience=resilience)
        return job, runner.run(resume=args.resume)

    t0 = time.perf_counter()
    with _maybe_profiler(args) as prof:
        if args.trace:
            from .obs import TraceRecorder, use_recorder, write_trace_jsonl

            rec = TraceRecorder()
            with use_recorder(rec):
                job, result = build_and_run()
            report = rec.report()
            write_trace_jsonl(
                report.spans, args.trace, metrics=report.metrics
            )
            print(report.render())
            print(f"trace -> {args.trace}")
        else:
            job, result = build_and_run()
    elapsed = time.perf_counter() - t0
    _write_profile(args, prof)
    labels = result.labels
    n = result.n_components
    if args.min_area > 0:
        labels = filter_components(np.asarray(labels), min_area=args.min_area)
        n = int(labels.max(initial=0))
    if job_out != out_path:
        _save(out_path, np.asarray(labels))
        job_out.unlink(missing_ok=True)
    elif args.min_area > 0:
        np.save(out_path, labels)  # re-save the filtered labels
    print(
        f"{in_path.name}: {image.shape[0]}x{image.shape[1]}, "
        f"{n} components -> {out_path.name} "
        f"({elapsed * 1e3:.1f} ms, {args.job} job)"
    )
    if result.resumed_from is not None:
        print(f"note: resumed from snapshot seq {result.resumed_from}")
    degraded_from = result.meta.get("degraded_from")
    if degraded_from:
        print(
            f"note: backend {degraded_from['backend']!r} failed"
            f"{_degrade_detail(degraded_from)}; job degraded to "
            f"{job.backend_name!r}"
        )
    if args.stats and n:
        _print_stats(np.asarray(labels), n)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    in_path = pathlib.Path(args.input)
    out_path = pathlib.Path(args.output)
    if args.checkpoint_dir and not args.job:
        print(
            "error: --checkpoint-dir requires --job (streaming or tiled)",
            file=sys.stderr,
        )
        return 2
    if args.shards is not None and args.job:
        print(
            "error: --shards and --job are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.shard_checkpoint_dir and args.shards is None:
        print(
            "error: --shard-checkpoint-dir requires --shards",
            file=sys.stderr,
        )
        return 2
    if (args.hosts or args.virtual_hosts) and args.shards is None:
        print(
            "error: --hosts/--virtual-hosts require --shards",
            file=sys.stderr,
        )
        return 2
    if args.hosts and args.virtual_hosts:
        print(
            "error: --hosts and --virtual-hosts are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.resume and not (args.checkpoint_dir or args.shard_checkpoint_dir):
        print(
            "error: --resume requires --checkpoint-dir "
            "(or --shard-checkpoint-dir for --shards runs)",
            file=sys.stderr,
        )
        return 2
    if not in_path.exists():
        print(f"error: no such file: {in_path}", file=sys.stderr)
        return 2

    image = _load(in_path, args.level)
    if args.fill_holes:
        image = fill_holes(image, args.connectivity)
    if args.clear_border:
        image = clear_border(image, args.connectivity)

    if args.job:
        return _run_job(args, image, in_path, out_path)
    if args.shards is not None:
        return _run_sharded(args, image, in_path, out_path)

    if args.backend:
        import dataclasses as _dc

        from .faults import DEFAULT_RESILIENCE, DegradationPolicy
        from .parallel import paremsp

        resilience = (
            _dc.replace(DEFAULT_RESILIENCE, max_retries=args.retries)
            if args.retries is not None
            else None
        )
        degradation = DegradationPolicy() if args.degrade else None
        engine = "vectorized" if args.engine == "vectorized" else "interpreter"

        def fn(image, connectivity):
            return paremsp(
                image,
                n_threads=args.threads,
                backend=args.backend,
                connectivity=connectivity,
                engine=engine,
                resilience=resilience,
                degradation=degradation,
            )

    elif args.engine == "vectorized":
        fn = get_algorithm("run-vectorized")
    elif args.engine not in (None, "python"):
        fn = get_algorithm(args.engine)  # auto / itequiv / coarse2fine / ...
    else:
        fn = get_algorithm(args.algorithm)
    with _maybe_profiler(args) as prof:
        if args.trace:
            from .obs import TraceRecorder, use_recorder, write_trace_jsonl

            rec = TraceRecorder()
            with use_recorder(rec):
                result = fn(image, args.connectivity)
            report = rec.report()
            write_trace_jsonl(
                report.spans, args.trace, metrics=report.metrics
            )
            print(report.render())
            print(f"trace -> {args.trace}")
        else:
            result = fn(image, args.connectivity)
    _write_profile(args, prof)
    labels = result.labels
    n = result.n_components
    if args.min_area > 0:
        labels = filter_components(labels, min_area=args.min_area)
        n = int(labels.max(initial=0))

    _save(out_path, labels)
    print(
        f"{in_path.name}: {image.shape[0]}x{image.shape[1]}, "
        f"{n} components -> {out_path.name} "
        f"({result.total_seconds * 1e3:.1f} ms, {result.algorithm})"
    )
    degraded_from = (result.meta or {}).get("degraded_from")
    if degraded_from:
        print(
            f"note: backend {degraded_from['backend']!r} failed"
            f"{_degrade_detail(degraded_from)}; run degraded to "
            f"{result.backend!r}"
        )
    dispatch = (result.meta or {}).get("dispatch")
    if dispatch:
        print(
            f"note: auto dispatch chose {dispatch['engine']!r} "
            f"(density {dispatch['density']}, rule {dispatch['rule']!r})"
        )
    if args.stats and n:
        _print_stats(labels, n)
    return 0


if __name__ == "__main__":
    sys.exit(main())
