"""Counters and gauges: the metrics half of the observability layer.

A :class:`MetricsRegistry` is a flat, thread-safe namespace of named
instruments, created on first touch:

* :class:`Counter` — monotonically increasing integer (union-find
  merges, lock acquisitions, seam unions, worker forks, ...);
* :class:`Gauge` — last-written float, with a ``set_max`` variant for
  high-watermark tracking (shared-memory bytes, peak active
  components, ...).

Naming convention: dotted ``area.instrument`` strings, e.g.
``merger.lock_contended`` or ``shm.bytes`` (the full inventory lives in
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import threading

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self.value += n


class Gauge:
    """Last-value (or high-watermark) float instrument."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def set_max(self, value: float) -> None:
        with self._lock:
            if value > self.value:
                self.value = float(value)


class MetricsRegistry:
    """Create-on-touch registry of counters and gauges.

    >>> reg = MetricsRegistry()
    >>> reg.counter("uf.merges").inc(3)
    >>> reg.gauge("shm.bytes").set(4096)
    >>> reg.as_dict() == {"counters": {"uf.merges": 3},
    ...                   "gauges": {"shm.bytes": 4096.0}}
    True
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
        return inst

    def as_dict(self) -> dict:
        """Plain-data snapshot: ``{"counters": {...}, "gauges": {...}}``."""
        with self._lock:
            return {
                "counters": {
                    k: c.value for k, c in sorted(self._counters.items())
                },
                "gauges": {
                    k: g.value for k, g in sorted(self._gauges.items())
                },
            }
