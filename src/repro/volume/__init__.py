"""3-D connected-component labeling.

The paper's related work spans 3-D labeling (Lumia [16], Hu et al. [6],
Knop & Rego [7]); this subpackage extends the library's run-based engine
to volumes, with the three standard voxel connectivities:

* **6** — face neighbours;
* **18** — face + edge neighbours;
* **26** — the full 3x3x3 cube.

:func:`~repro.volume.labeling3d.volume_label` is the vectorised
production entry point (runs along the x axis, matched across the
preceding scan lines of the same and previous slice);
:func:`~repro.volume.oracle.flood_fill_label_3d` is the independent BFS
oracle the tests verify against (alongside ``scipy.ndimage``).
"""

from .labeling3d import VOLUME_CONNECTIVITIES, volume_label
from .oracle import flood_fill_label_3d
from .parallel3d import volume_label_slabs

__all__ = [
    "volume_label",
    "volume_label_slabs",
    "flood_fill_label_3d",
    "VOLUME_CONNECTIVITIES",
]
