"""Scan-kernel-level tests: provisional labels, errata cases, allocation
bounds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccl.labeling import prealloc_capacity, remsp_alloc
from repro.ccl.scan_aremsp import scan_tworow
from repro.ccl.scan_cclremsp import scan_decision_tree
from repro.unionfind.base import roots_of
from repro.unionfind.remsp import merge
from repro.verify import flood_fill_label


def _scan(img, scan_fn, connectivity=8):
    img = np.asarray(img, dtype=np.uint8)
    p = [0] * prealloc_capacity(*img.shape)
    alloc, used = remsp_alloc(p)
    labels = scan_fn(img.tolist(), p, merge, alloc, connectivity)
    return np.asarray(labels, dtype=np.int64).reshape(img.shape), p, used()


SCANS = [scan_decision_tree, scan_tworow]


@pytest.mark.parametrize("scan_fn", SCANS)
def test_background_gets_zero(scan_fn):
    img = np.zeros((4, 4), dtype=np.uint8)
    img[1, 1] = 1
    labels, _, _ = _scan(img, scan_fn)
    assert labels[1, 1] == 1
    assert (labels == 0).sum() == 15


@pytest.mark.parametrize("scan_fn", SCANS)
def test_provisional_labels_cover_components(scan_fn, structural_image):
    """Scan + equivalences must induce the oracle partition (FLATTEN is
    tested separately; here we resolve with roots_of)."""
    img = np.asarray(structural_image, dtype=np.uint8)
    labels, p, count = _scan(img, scan_fn)
    expected, n_expected = flood_fill_label(img, 8)
    roots = roots_of(p[:count]) if count else np.array([0])
    resolved = np.where(labels > 0, roots[labels], 0)
    # same partition: map resolved roots <-> oracle labels bijectively
    pairs = {
        (int(a), int(b))
        for a, b in zip(resolved.ravel(), expected.ravel())
        if a or b
    }
    assert len({a for a, _ in pairs}) == n_expected
    assert len({b for _, b in pairs}) == n_expected
    assert len(pairs) == n_expected


@pytest.mark.parametrize("scan_fn", SCANS)
def test_allocation_never_exceeds_capacity_bound(scan_fn, rng):
    """The prealloc_capacity bound must hold for adversarial images."""
    for trial in range(30):
        rows = int(rng.integers(1, 12))
        cols = int(rng.integers(1, 12))
        img = (rng.random((rows, cols)) < rng.random()).astype(np.uint8)
        cap = prealloc_capacity(rows, cols)
        _, _, count = _scan(img, scan_fn)
        assert count <= cap
    # the known worst cases
    iso = np.zeros((11, 11), dtype=np.uint8)
    iso[::2, ::2] = 1
    _, _, count = _scan(iso, scan_fn)
    assert count - 1 == 36  # 6x6 isolated pixels
    assert count <= prealloc_capacity(11, 11)


def test_erratum1_merge_arity_case():
    """Alg 6 line 14 case: e labeled from f, a present and disconnected.

        a . .
        . e .
        f . .
    """
    img = np.array(
        [
            [1, 0, 0],
            [0, 1, 0],
            [1, 0, 0],
        ],
        dtype=np.uint8,
    )
    labels, p, count = _scan(img, scan_tworow)
    roots = roots_of(p[:count])
    vals = {int(roots[l]) for l in labels[labels > 0].ravel()}
    assert len(vals) == 1  # a, e, f all one component


def test_erratum2_g_new_label_case():
    """e background, g foreground, d and f background: the paper's text
    assigns label(e); the correct target is g."""
    img = np.array([[0, 0], [0, 1]], dtype=np.uint8)
    labels, _, count = _scan(img, scan_tworow)
    assert labels[1, 1] == 1
    assert labels[0, 1] == 0
    assert count - 1 == 1


def test_erratum3_g_binding_in_all_branches():
    """e and g both foreground with e labeled via every branch: g must
    inherit e's label each time."""
    cases = [
        # b-branch
        [[0, 1, 0], [0, 1, 0], [0, 1, 0]],
        # f-branch (f at row+1 col-1)
        [[0, 0, 0], [0, 1, 0], [1, 1, 0]],
        # a-branch
        [[1, 0, 0], [0, 1, 0], [0, 1, 0]],
        # c-branch
        [[0, 0, 1], [0, 1, 0], [0, 1, 0]],
        # d-branch
        [[0, 0, 0], [1, 1, 0], [0, 1, 0]],
        # new-label branch
        [[0, 0, 0], [0, 1, 0], [0, 1, 0]],
    ]
    for case in cases:
        img = np.asarray(case, dtype=np.uint8)
        expected, n = flood_fill_label(img, 8)
        labels, p, count = _scan(img, scan_tworow)
        roots = roots_of(p[:count])
        resolved = np.where(labels > 0, roots[labels], 0)
        assert len(np.unique(resolved[resolved > 0])) == n, case


def test_tworow_odd_tail_row_connectivity():
    """The odd final row must connect to the pair above it."""
    img = np.ones((5, 3), dtype=np.uint8)
    labels, p, count = _scan(img, scan_tworow)
    roots = roots_of(p[:count])
    assert len(np.unique(roots[labels[labels > 0]])) == 1


def test_decision_tree_copy_uses_equivalence_array():
    """copy(x) is label(e) = p[label(x)], not label(x) itself: after a
    merge lowers x's parent, later copies must pick the lower value."""
    # row0: two separate seeds; row1 merges them; row2 copies from row1
    img = np.array(
        [
            [1, 0, 1],
            [0, 1, 0],
            [0, 1, 0],
        ],
        dtype=np.uint8,
    )
    labels, p, count = _scan(img, scan_decision_tree)
    assert labels[2, 1] == 1  # copied through p, the root, not label 2


@pytest.mark.parametrize("scan_fn", SCANS)
@pytest.mark.parametrize("connectivity", [4, 8])
def test_single_row_image(scan_fn, connectivity):
    img = np.array([[1, 1, 0, 1, 0, 1, 1, 1]], dtype=np.uint8)
    labels, p, count = _scan(img, scan_fn, connectivity)
    roots = roots_of(p[:count])
    resolved = np.where(labels > 0, roots[labels], 0)
    assert len(np.unique(resolved[resolved > 0])) == 3
