"""Run extraction and the two RUN engines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ccl.run_based import (
    extract_runs,
    row_runs,
    run_based,
    run_based_vectorized,
)
from repro.verify import flood_fill_label, labelings_equivalent


class TestRowRuns:
    def test_empty_row(self):
        assert row_runs(np.zeros(5, dtype=np.uint8)) == []

    def test_full_row(self):
        assert row_runs(np.ones(4, dtype=np.uint8)) == [(0, 4)]

    def test_single_pixel_runs(self):
        row = np.array([1, 0, 1, 0, 1], dtype=np.uint8)
        assert row_runs(row) == [(0, 1), (2, 3), (4, 5)]

    def test_runs_at_edges(self):
        row = np.array([1, 1, 0, 0, 1, 1], dtype=np.uint8)
        assert row_runs(row) == [(0, 2), (4, 6)]

    @given(
        row=hnp.arrays(
            dtype=np.uint8,
            shape=st.integers(1, 40),
            elements=st.integers(0, 1),
        )
    )
    def test_property_runs_reconstruct_row(self, row):
        painted = np.zeros_like(row)
        for s, e in row_runs(row):
            assert s < e
            painted[s:e] = 1
        assert np.array_equal(painted, row)


class TestExtractRuns:
    def test_matches_per_row_extraction(self, structural_image):
        img = np.asarray(structural_image, dtype=np.uint8)
        rr, ss, ee = extract_runs(img)
        per_row: list[tuple[int, int, int]] = []
        for r in range(img.shape[0]):
            for s, e in row_runs(img[r]):
                per_row.append((r, s, e))
        assert per_row == list(zip(rr.tolist(), ss.tolist(), ee.tolist()))

    def test_empty_image(self):
        rr, ss, ee = extract_runs(np.zeros((0, 0), dtype=np.uint8))
        assert len(rr) == len(ss) == len(ee) == 0

    def test_runs_in_raster_order(self, rng):
        img = (rng.random((12, 12)) < 0.5).astype(np.uint8)
        rr, ss, _ = extract_runs(img)
        keys = list(zip(rr.tolist(), ss.tolist()))
        assert keys == sorted(keys)


@pytest.mark.parametrize("engine", [run_based, run_based_vectorized])
@pytest.mark.parametrize("connectivity", [4, 8])
def test_engines_match_oracle(engine, connectivity, structural_image):
    expected, n = flood_fill_label(structural_image, connectivity)
    result = engine(structural_image, connectivity)
    assert result.n_components == n
    assert labelings_equivalent(result.labels, expected)


def test_engines_bit_identical(structural_image):
    a = run_based(structural_image, 8)
    b = run_based_vectorized(structural_image, 8)
    assert np.array_equal(a.labels, b.labels)
    assert a.n_components == b.n_components
    # provisional semantics differ by design: the interpreter engine
    # allocates a label only for runs with no connected predecessor,
    # the vectorised engine ids every run.
    assert a.provisional_count <= b.provisional_count


@given(
    img=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=24),
        elements=st.integers(0, 1),
    ),
    connectivity=st.sampled_from([4, 8]),
)
def test_property_engines_agree(img, connectivity):
    a = run_based(img, connectivity)
    b = run_based_vectorized(img, connectivity)
    assert np.array_equal(a.labels, b.labels)


def test_provisional_count_equals_run_count(rng):
    img = (rng.random((20, 20)) < 0.5).astype(np.uint8)
    result = run_based_vectorized(img, 8)
    _, ss, _ = extract_runs(img)
    assert result.provisional_count == len(ss)


def test_vectorized_4conn_touching_diagonal_runs_stay_separate():
    img = np.array(
        [
            [1, 1, 0, 0],
            [0, 0, 1, 1],
        ],
        dtype=np.uint8,
    )
    r4 = run_based_vectorized(img, 4)
    r8 = run_based_vectorized(img, 8)
    assert r4.n_components == 2
    assert r8.n_components == 1


def test_large_random_against_scipy():
    from repro.verify import have_scipy, scipy_label

    if not have_scipy():
        pytest.skip("scipy not installed")
    rng = np.random.default_rng(7)
    img = (rng.random((300, 257)) < 0.42).astype(np.uint8)
    _, n = scipy_label(img, 8)
    result = run_based_vectorized(img, 8)
    assert result.n_components == n
