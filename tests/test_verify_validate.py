"""The public validation API: accepts the good, names the bad."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.ccl import aremsp
from repro.ccl.registry import ALGORITHMS, get_algorithm
from repro.verify import ValidationFailure, assert_valid_result, validate_labels


@pytest.fixture
def good(rng):
    img = (rng.random((14, 16)) < 0.5).astype(np.uint8)
    return img, aremsp(img)


def test_accepts_every_registry_algorithm(rng):
    img = (rng.random((12, 12)) < 0.5).astype(np.uint8)
    for name, fn in ALGORITHMS.items():
        assert_valid_result(fn(img, 8), img)


def test_returns_component_count(good):
    img, result = good
    assert validate_labels(result.labels, img) == result.n_components


def test_rejects_shape_mismatch(good):
    img, result = good
    with pytest.raises(ValidationFailure, match="shape"):
        validate_labels(result.labels[:-1], img)


def test_rejects_background_violation(good):
    img, result = good
    labels = result.labels.copy()
    bg = np.argwhere(img == 0)
    r, c = bg[0]
    labels[r, c] = 1
    with pytest.raises(ValidationFailure, match="[Bb]ackground"):
        validate_labels(labels, img)


def test_rejects_non_consecutive_labels(good):
    img, result = good
    labels = result.labels.copy()
    labels[labels == 1] = result.n_components + 5
    with pytest.raises(ValidationFailure, match="consecutive"):
        validate_labels(labels, img)


def test_rejects_wrong_declared_count(good):
    img, result = good
    with pytest.raises(ValidationFailure, match="n_components"):
        validate_labels(result.labels, img, n_components=999)


def test_rejects_split_component():
    img = np.ones((2, 4), dtype=np.uint8)
    labels = np.array([[1, 1, 2, 2], [1, 1, 2, 2]], dtype=np.int32)
    with pytest.raises(ValidationFailure, match="oracle"):
        validate_labels(labels, img)


def test_rejects_merged_components():
    img = np.zeros((3, 3), dtype=np.uint8)
    img[0, 0] = img[2, 2] = 1
    labels = np.zeros((3, 3), dtype=np.int32)
    labels[0, 0] = labels[2, 2] = 1
    with pytest.raises(ValidationFailure):
        validate_labels(labels, img)


def test_rejects_negative_labels(good):
    img, result = good
    labels = result.labels.copy()
    fg = np.argwhere(img == 1)
    r, c = fg[0]
    labels[r, c] = -3
    with pytest.raises(ValidationFailure):
        validate_labels(labels, img)


def test_rejects_wrong_dtype(good):
    img, result = good
    broken = dataclasses.replace(
        result, labels=result.labels.astype(np.int64)
    )
    with pytest.raises(ValidationFailure, match="dtype"):
        assert_valid_result(broken, img)


def test_rejects_bad_provisional(good):
    img, result = good
    broken = dataclasses.replace(result, provisional_count=0)
    if result.n_components > 0:
        with pytest.raises(ValidationFailure, match="provisional"):
            assert_valid_result(broken, img)


def test_rejects_negative_timing(good):
    img, result = good
    broken = dataclasses.replace(
        result, phase_seconds={**result.phase_seconds, "scan": -1.0}
    )
    with pytest.raises(ValidationFailure, match="timing"):
        assert_valid_result(broken, img)


def test_connectivity_mismatch_detected():
    img = np.eye(4, dtype=np.uint8)
    result_8 = get_algorithm("aremsp")(img, 8)
    # the diagonal is one 8-component but four 4-components
    with pytest.raises(ValidationFailure):
        validate_labels(result_8.labels, img, connectivity=4)
