"""Multi-host shard smoke: labeling must survive a network partition.

``make net-shard-smoke`` / ``python benchmarks/bench_net_shard_smoke.py``

Builds a ~64 MB on-disk raster (8192x8192 uint8, written block-wise so
the image never sits in RAM at once), labels it across **2 loopback
virtual hosts** x 4 shards with the multi-host sharded runtime
(:func:`repro.parallel.net_shard_label` — real sockets, real worker
processes, loopback addresses), then repeats the run with an injected
``partition`` blackout against one host as the reduce tree starts
(level 0). The gates:

* **byte-identity** — the clean runs *and* the partitioned run must
  match the serial ``tiled_label`` oracle file byte-for-byte (fatal
  even under ``--record-only``);
* **recovery overhead** — the partitioned run's wall time over the
  clean median must stay under ``--max-overhead`` (default 3x): a
  blackout costs retries/backoff plus at worst a lease expiry and the
  migration of the dark host's tasks, never a from-scratch rerun;
* **hygiene** — ``/dev/shm``, live child processes, and the checkpoint
  directory must be exactly as clean after the bench as before it.

The record merges into ``--out`` as a ``"netshard"`` section (sharing
one artifact with the paremsp/service/shard smokes); with ``--history``
a :mod:`repro.perfdb` record (benchmark ``netshard_smoke``) lands in
the history directory for the ``repro-obs compare`` regression gate
against the committed ``baseline_netshard.json``.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pathlib
import sys
import tempfile
import time

import numpy as np
from numpy.lib.format import open_memmap

from repro.faults import FaultPlan, FaultSpec, ResilienceConfig
from repro.parallel import net_shard_label, tiled_label
from repro.parallel.net import NetConfig

__all__ = ["run", "main"]

TILE = (256, 256)

#: bounded respawns, no backoff padding, a watchdog sized for the
#: full-raster scan on a busy CI box.
RESILIENCE = ResilienceConfig(
    max_retries=2, backoff_base=0.0, phase_timeout=600.0
)

#: enough retry budget to ride out the injected blackout without
#: waiting on the cap between attempts.
NET = NetConfig(max_retries=6, backoff_base=0.05, backoff_cap=0.5)


def _shm_segments() -> set[str]:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _live_children() -> set[str]:
    return {p.name for p in multiprocessing.active_children()}


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _write_raster(
    path: pathlib.Path, side: int, density: float, seed: int,
    block: int = 512,
) -> None:
    """Fill an on-disk uint8 raster block-wise (out-of-core build)."""
    rng = np.random.default_rng(seed)
    mm = open_memmap(path, mode="w+", dtype=np.uint8, shape=(side, side))
    for r0 in range(0, side, block):
        r1 = min(side, r0 + block)
        mm[r0:r1] = rng.random((r1 - r0, side)) < density
    mm.flush()
    del mm


def _files_identical(a: pathlib.Path, b: pathlib.Path) -> bool:
    if os.path.getsize(a) != os.path.getsize(b):
        return False
    chunk = 1 << 22
    with open(a, "rb") as fa, open(b, "rb") as fb:
        while True:
            ba = fa.read(chunk)
            if ba != fb.read(chunk):
                return False
            if not ba:
                return True


def run(
    side: int = 8192,
    density: float = 0.45,
    n_hosts: int = 2,
    n_shards: int = 4,
    repeats: int = 2,
    seed: int = 0,
    partition_seconds: float = 1.0,
    checkpoint_every: int = 4,
    workdir: str | os.PathLike | None = None,
) -> dict:
    """Time clean vs one-partition multi-host runs of a raster.

    Returns the record dict; raises ``SystemExit`` on a correctness or
    hygiene failure (those are fatal regardless of the timing gate).
    """
    tmp_ctx = None
    if workdir is None:
        tmp_ctx = tempfile.TemporaryDirectory(prefix="repro-netshard-smoke-")
        root = pathlib.Path(tmp_ctx.name)
    else:
        root = pathlib.Path(workdir)
        root.mkdir(parents=True, exist_ok=True)
    shm_before = _shm_segments()
    children_before = _live_children()
    try:
        img_path = root / "img.npy"
        _write_raster(img_path, side, density, seed)
        image = np.load(img_path, mmap_mode="r")

        oracle = tiled_label(image, tile_shape=TILE, out=root / "oracle.npy")
        n_oracle = oracle.n_components
        del oracle

        clean_reps: list[float] = []
        clean_meta: dict = {}
        for _ in range(repeats):
            t0 = time.perf_counter()
            res = net_shard_label(
                image, virtual_hosts=n_hosts, n_shards=n_shards,
                tile_shape=TILE, resilience=RESILIENCE, net_config=NET,
                out=root / "clean.npy",
            )
            clean_reps.append(time.perf_counter() - t0)
            clean_meta = dict(res.meta)
            del res
            if not _files_identical(root / "clean.npy", root / "oracle.npy"):
                raise SystemExit(
                    "FAIL: clean multi-host labels diverged from tiled_label"
                )
            if clean_meta.get("degraded_from"):
                raise SystemExit(
                    "FAIL: clean multi-host run degraded off the cluster "
                    f"rung: {clean_meta['degraded_from']}"
                )

        # the faulted pass: host 0 goes dark as the reduce tree starts
        # (level 0); retries ride out the blackout, or the lease expires
        # and its tasks migrate — either path must stay byte-identical
        plan = FaultPlan([
            FaultSpec("partition", phase="reduce-0", rank=0,
                      delay_seconds=partition_seconds),
        ])
        ck = root / "ck"
        t0 = time.perf_counter()
        faulted = net_shard_label(
            image, virtual_hosts=n_hosts, n_shards=n_shards,
            tile_shape=TILE, resilience=RESILIENCE, net_config=NET,
            checkpoint_dir=ck, checkpoint_every=checkpoint_every,
            fault_plan=plan, out=root / "fault.npy",
        )
        fault_wall = time.perf_counter() - t0
        if not _files_identical(root / "fault.npy", root / "oracle.npy"):
            raise SystemExit(
                "FAIL: post-partition labels diverged from tiled_label"
            )
        if plan.injected != 1:
            raise SystemExit("FAIL: the partition fault never fired")
        net_stats = dict(faulted.meta["net"])
        if net_stats["partitions"] != 1:
            raise SystemExit("FAIL: no partition recorded for the blackout")
        meta = dict(faulted.meta)
        n_faulted = faulted.n_components
        del faulted
        if n_faulted != n_oracle:
            raise SystemExit(
                "FAIL: component count diverged after the partition"
            )
        if (ck / "scratch").exists():
            raise SystemExit(
                "FAIL: recovery left scratch state under the checkpoint dir"
            )
    finally:
        if tmp_ctx is not None:
            tmp_ctx.cleanup()

    leaked = _shm_segments() - shm_before
    if leaked:
        raise SystemExit(
            f"FAIL: multi-host run leaked shm segments: {sorted(leaked)}"
        )
    stragglers = _live_children() - children_before
    if stragglers:
        raise SystemExit(
            f"FAIL: multi-host run leaked worker processes: "
            f"{sorted(stragglers)}"
        )

    clean_wall = _median(clean_reps)
    mpix = side * side / 1e6
    return {
        "benchmark": "netshard_smoke",
        "schema_version": 1,
        "raster": {
            "side": side,
            "bytes": side * side,
            "density": density,
            "seed": seed,
        },
        "n_hosts": n_hosts,
        "n_shards": n_shards,
        "tile_shape": list(TILE),
        "checkpoint_every": checkpoint_every,
        "partition_seconds": partition_seconds,
        "repeats": repeats,
        "n_components": n_oracle,
        "clean_wall_reps": clean_reps,
        "clean_wall_seconds": clean_wall,
        "clean_throughput_mpix_s": mpix / clean_wall,
        "fault_wall_seconds": fault_wall,
        "recovery_overhead": fault_wall / clean_wall,
        "net_tasks": net_stats["net_tasks"],
        "partitions": net_stats["partitions"],
        "lease_expired": net_stats["lease_expired"],
        "rejoined": net_stats["rejoined"],
        "tasks_deduped": net_stats["tasks_deduped"],
        "degraded": bool(meta.get("degraded_from")),
        "byte_identical": True,        # identity checks are fatal otherwise
        "shm_clean": True,             # leak check is fatal otherwise
        "no_leaked_processes": True,   # straggler check is fatal otherwise
        "checkpoint_dir_clean": True,  # scratch check is fatal otherwise
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--side", type=int, default=8192,
        help="raster side length (default 8192 = a 64 MB uint8 memmap)",
    )
    ap.add_argument("--density", type=float, default=0.45)
    ap.add_argument("--hosts", type=int, default=2,
                    help="loopback virtual hosts (default 2)")
    ap.add_argument("--shards", type=int, default=4)
    ap.add_argument("--repeats", type=int, default=2)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--partition-seconds", type=float, default=1.0)
    ap.add_argument("--checkpoint-every", type=int, default=4)
    ap.add_argument(
        "--max-overhead", type=float, default=3.0,
        help="fail when the partitioned run costs more than this factor "
        "of the clean median wall time",
    )
    ap.add_argument("--out", default="BENCH_paremsp.json")
    ap.add_argument(
        "--record-only", action="store_true",
        help="write the record but never fail the timing gate (CI smoke "
        "mode); correctness and hygiene checks stay fatal",
    )
    ap.add_argument(
        "--history", metavar="DIR", default=None,
        help="append a repro.perfdb record (median + bootstrap CI + "
        "environment fingerprint) under DIR for 'repro-obs compare'",
    )
    args = ap.parse_args(argv)

    record = run(
        side=args.side,
        density=args.density,
        n_hosts=args.hosts,
        n_shards=args.shards,
        repeats=args.repeats,
        seed=args.seed,
        partition_seconds=args.partition_seconds,
        checkpoint_every=args.checkpoint_every,
    )

    out = pathlib.Path(args.out)
    merged: dict = {}
    if out.exists():
        try:
            merged = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged["netshard"] = record
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")

    print(
        f"netshard {args.side}x{args.side} raster "
        f"({args.hosts} hosts x {args.shards} shards): "
        f"clean {record['clean_wall_seconds']:.2f}s "
        f"({record['clean_throughput_mpix_s']:.1f} Mpix/s), one "
        f"partition {record['fault_wall_seconds']:.2f}s "
        f"({record['recovery_overhead']:.2f}x, "
        f"{record['lease_expired']} lease(s) expired, "
        f"{record['tasks_deduped']} task(s) deduped) -> {out}"
    )

    if args.history:
        from repro.perfdb import (
            append_record,
            build_record,
            environment_fingerprint,
        )

        history_record = build_record(
            "netshard_smoke",
            record["clean_wall_reps"],
            meta={
                "raster": record["raster"],
                "n_hosts": record["n_hosts"],
                "n_shards": record["n_shards"],
                "recovery_overhead": record["recovery_overhead"],
                "fault_wall_seconds": record["fault_wall_seconds"],
                "partitions": record["partitions"],
                "lease_expired": record["lease_expired"],
            },
            env=environment_fingerprint(n_threads=args.shards),
        )
        path = append_record(history_record, args.history)
        print(f"history record -> {path}")

    if record["recovery_overhead"] > args.max_overhead:
        print(
            f"FAIL: recovery overhead {record['recovery_overhead']:.2f}x "
            f"above the {args.max_overhead:.1f}x ceiling"
        )
        if args.record_only:
            print("(record-only mode: timing gate not fatal)")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
