"""Parent-array utilities: forest validation, full-find, materialisation."""

from __future__ import annotations

import numpy as np

from repro.unionfind.base import (
    components,
    count_sets,
    is_valid_parent_array,
    iter_edges_canonical,
    roots_of,
)


class TestIsValidParentArray:
    def test_identity_is_forest(self):
        assert is_valid_parent_array([0, 1, 2])

    def test_empty(self):
        assert is_valid_parent_array([])

    def test_chain_is_forest(self):
        assert is_valid_parent_array([0, 0, 1, 2])

    def test_two_cycle_rejected(self):
        assert not is_valid_parent_array([1, 0])

    def test_long_cycle_rejected(self):
        assert not is_valid_parent_array([1, 2, 3, 0])

    def test_cycle_plus_forest_rejected(self):
        assert not is_valid_parent_array([0, 2, 1, 0])

    def test_out_of_range_rejected(self):
        assert not is_valid_parent_array([0, 5])
        assert not is_valid_parent_array([-1, 0])

    def test_upward_pointer_is_still_forest(self):
        # parents may exceed the child index; only cycles are invalid
        assert is_valid_parent_array([1, 1, 1])


def test_roots_of_deep_chain():
    p = [0, 0, 1, 2, 3, 4]
    assert roots_of(p).tolist() == [0] * 6


def test_roots_of_does_not_mutate():
    p = [0, 0, 1]
    roots_of(p)
    assert p == [0, 0, 1]


def test_count_sets():
    assert count_sets([]) == 0
    assert count_sets([0, 1, 2]) == 3
    assert count_sets([0, 0, 0]) == 1


def test_components_materialisation():
    p = [0, 0, 2, 2, 3]
    parts = components(p)
    assert parts == {0: [0, 1], 2: [2, 3, 4]}


def test_iter_edges_canonical():
    p = [0, 0, 1, 3]
    assert list(iter_edges_canonical(p)) == [(1, 0), (2, 1)]


def test_roots_of_numpy_input():
    p = np.array([0, 0, 1, 1])
    assert roots_of(p).tolist() == [0, 0, 0, 0]
