"""The warm worker pool: pre-forked labelers over a long-lived arena.

The paper's PAREMSP pays its parallel dividend only when per-call setup
is amortised; ROADMAP item 1 names fork + shared-memory setup as the
dominant cost at service scale. This pool pays it **once**:

* the coordinator allocates one long-lived shared-memory **arena** —
  an image plane and a label plane, divided into fixed-size request
  slots — and pre-forks ``workers`` labeler processes on the pinned
  executor context (:func:`repro.parallel.backends.executor.
  executor_context`);
* each worker **attaches once** to the arena (through the
  concurrency-safe :func:`~repro.parallel.backends.processes._attach`
  — this is exactly the many-concurrent-attaches regime that made the
  register-swap race a release blocker) and then serves requests
  forever over a duplex pipe: the request is a few slot coordinates,
  the reply a component count — pixels never cross the pipe;
* each worker owns a **disjoint slot range** (worker *w* gets slots
  ``[w*batch_slots, (w+1)*batch_slots)``), so slot accounting is free
  and a respawned worker can redo a batch idempotently, the same
  disjoint-range contract the scan backend gets from Algorithm 7;
* worker death is detected through ``connection.wait`` on the reply
  pipe *and* the process sentinel, and the worker is respawned —
  attached to the same arena — with the
  :class:`~repro.faults.ResilienceConfig` retry/backoff budgets, the
  backoff interruptible by shutdown
  (:func:`repro.parallel.supervisor.interruptible_backoff`) so a
  closing pool never strands a respawning worker;
* ``drain()`` is **graceful and idempotent**: in-flight dispatches
  finish, workers get a stop message and are reaped through
  :func:`repro.parallel.supervisor.kill_workers`, the arena is
  unlinked exactly once — double-signal (two drains racing, drain
  during respawn backoff) is safe by construction.

Workers label with the run-based vectorised engine, whose finals are
byte-identical to sequential AREMSP (the PR-1 determinism contract), so
a service answer equals a direct :func:`repro.label` call.

Fault injection rides the ambient :class:`~repro.faults.FaultPlan`
under ``phase="service"``: ``kill_worker`` / ``delay_chunk`` directives
are shipped to workers at spawn, mirroring the scan backend's
coordinator-side arbitration.
"""

from __future__ import annotations

import os
import queue
import threading
import time
from multiprocessing import connection
from typing import Sequence

import numpy as np

from ..ccl.run_based import run_based_vectorized
from ..errors import (
    PhaseTimeoutError,
    ServiceClosedError,
    ServiceError,
    WorkerCrashError,
)
from ..faults import (
    DEFAULT_RESILIENCE,
    get_fault_plan,
    record_injection,
)
from ..obs import NULL_RECORDER
from ..parallel.backends.executor import executor_context
from ..parallel.backends.processes import (
    _apply_directives,
    _attach,
    create_segment,
)
from ..parallel.supervisor import interruptible_backoff, kill_workers
from ..types import LABEL_DTYPE, PIXEL_DTYPE

__all__ = ["WarmWorkerPool", "DEFAULT_SLOT_SHAPE"]

_LABEL_ITEMSIZE = np.dtype(LABEL_DTYPE).itemsize

#: default per-request slot: the small-image regime the micro-batching
#: path targets (Chen et al.'s coarse-to-fine CCL motivates <= 256^2).
DEFAULT_SLOT_SHAPE = (256, 256)

#: how often a blocked worker wakes to check its parent is alive.
_ORPHAN_POLL_S = 5.0


class _WorkerDied(Exception):
    """Internal: the dispatched worker died before replying."""

    def __init__(self, exitcode) -> None:
        super().__init__(f"pool worker died (exitcode {exitcode})")
        self.exitcode = exitcode


def _worker_label_fn(engine: str):
    """Resolve the worker's label callable from the engine name."""
    if engine == "auto":
        from ..ccl.dispatch import auto_label

        return auto_label
    return run_based_vectorized


def _pool_worker(args: tuple) -> None:
    """Worker main loop: attach once, serve label requests forever.

    ``args`` is ``(img_name, lab_name, n_slots, slot_px, conn,
    parent_pid, directives, engine)``. Requests are ``("job", job_id,
    [(slot, rows, cols, request_id), ...], connectivity, trace)``; the
    reply is ``("done", job_id, [n_components, ...], spans)`` — labels
    travel through the shared label plane, never the pipe. When
    *trace* is set the worker times every request (plus its engine
    phases, reconstructed from ``phase_seconds``) and ships the spans
    back as plain tuples; ``perf_counter`` is fork-comparable on
    Linux, so they line up with the coordinator's lanes. ``("stop",)``
    exits cleanly. A parent that vanishes (pipe EOF, or reparenting
    observed on the idle poll) ends the worker too: a warm pool must
    never orphan labelers.
    """
    (
        img_name,
        lab_name,
        n_slots,
        slot_px,
        conn,
        parent_pid,
        directives,
        engine,
    ) = args
    try:
        segs = [_attach(img_name), _attach(lab_name)]
        img_arena = np.ndarray(
            (n_slots, slot_px), dtype=PIXEL_DTYPE, buffer=segs[0].buf
        )
        lab_arena = np.ndarray(
            (n_slots, slot_px), dtype=LABEL_DTYPE, buffer=segs[1].buf
        )
        label_fn = _worker_label_fn(engine)
        pid = os.getpid()
        served = 0
        while True:
            while not conn.poll(_ORPHAN_POLL_S):
                if os.getppid() != parent_pid:
                    os._exit(0)
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "stop":
                break
            _, job_id, items, connectivity, trace = msg
            if directives:
                _apply_directives(directives, served)
            counts = []
            spans: list[tuple] = []
            for slot, rows, cols, request_id in items:
                img = img_arena[slot, : rows * cols].reshape(rows, cols)
                t0 = time.perf_counter()
                local = label_fn(img, connectivity)
                t1 = time.perf_counter()
                lab_arena[slot, : rows * cols] = local.labels.ravel()
                counts.append(int(local.n_components))
                if trace:
                    attrs = {"pid": pid, "engine": local.algorithm}
                    if request_id is not None:
                        attrs["request_id"] = request_id
                    dispatch = (local.meta or {}).get("dispatch")
                    if dispatch:
                        attrs["dispatch_rule"] = dispatch.get("rule")
                        attrs["dispatch_engine"] = dispatch.get("engine")
                    spans.append(
                        ("main", "request", t0, t1, 0, attrs)
                    )
                    # engine phases ran back-to-back inside [t0, t1];
                    # reconstruct them as nested sub-spans.
                    t = t0
                    sub = (
                        {"request_id": request_id}
                        if request_id is not None else None
                    )
                    for phase, dur in local.phase_seconds.items():
                        spans.append(
                            ("main", phase, t, t + dur, 1, sub)
                        )
                        t += dur
            conn.send(("done", job_id, counts, spans))
            served += 1
        for seg in segs:
            seg.close()
    except BaseException:
        import sys
        import traceback

        traceback.print_exc()
        sys.stderr.flush()
        os._exit(1)
    os._exit(0)


class WarmWorkerPool:
    """A persistent pre-forked labeling pool over a shared-memory arena.

    Parameters
    ----------
    workers:
        Pre-forked labeler processes (each owns a disjoint slot range).
    batch_slots:
        Request slots per worker — the maximum micro-batch one dispatch
        may carry.
    slot_shape:
        Per-request capacity; images larger than this are the caller's
        problem (the front end rejects them at admission).
    connectivity:
        Default connectivity for :meth:`dispatch`.
    engine:
        Worker-side labeling engine: ``"run-vectorized"`` (default,
        the PR-1 determinism contract) or ``"auto"`` (the measured
        dispatcher — its pick lands in the worker span's
        ``dispatch_engine``/``dispatch_rule`` attrs).
    resilience / fault_plan / recorder:
        The usual knobs (:class:`~repro.faults.ResilienceConfig`
        respawn budgets; ambient fault plan; ambient-or-given trace
        recorder).

    >>> import numpy as np
    >>> pool = WarmWorkerPool(workers=1, batch_slots=2)
    >>> img = np.eye(8, dtype=np.uint8)
    >>> labels, counts = pool.dispatch([img])
    >>> int(counts[0])
    1
    >>> pool.drain()
    """

    def __init__(
        self,
        workers: int = 2,
        batch_slots: int = 8,
        slot_shape: tuple[int, int] = DEFAULT_SLOT_SHAPE,
        connectivity: int = 8,
        engine: str = "run-vectorized",
        resilience=None,
        fault_plan=None,
        recorder=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if engine not in ("run-vectorized", "auto"):
            raise ValueError(
                f"engine must be 'run-vectorized' or 'auto', "
                f"got {engine!r}"
            )
        if batch_slots < 1:
            raise ValueError(
                f"batch_slots must be >= 1, got {batch_slots}"
            )
        rows, cols = slot_shape
        if rows < 1 or cols < 1:
            raise ValueError(
                f"slot dimensions must be >= 1, got {slot_shape!r}"
            )
        self.workers = workers
        self.batch_slots = batch_slots
        self.slot_shape = (int(rows), int(cols))
        self.slot_px = int(rows) * int(cols)
        self.connectivity = connectivity
        self.engine = engine
        self.resilience = (
            resilience if resilience is not None else DEFAULT_RESILIENCE
        )
        self._fault_plan = fault_plan
        self._rec = recorder if recorder is not None else NULL_RECORDER
        self._ctx = executor_context()
        n_slots = workers * batch_slots
        self._shm_img = create_segment(n_slots * self.slot_px)
        self._shm_lab = create_segment(
            n_slots * self.slot_px * _LABEL_ITEMSIZE
        )
        self._img_arena = np.ndarray(
            (n_slots, self.slot_px),
            dtype=PIXEL_DTYPE,
            buffer=self._shm_img.buf,
        )
        self._lab_arena = np.ndarray(
            (n_slots, self.slot_px),
            dtype=LABEL_DTYPE,
            buffer=self._shm_lab.buf,
        )
        #: (process, parent_conn, generation) per worker index.
        self._procs: list = [None] * workers
        self._generation = [0] * workers
        self._available: queue.Queue[int] = queue.Queue()
        self._job_seq = 0
        self._job_lock = threading.Lock()
        self._state = "running"
        self._state_lock = threading.Lock()
        self._closed_event = threading.Event()
        self._stop_event = threading.Event()
        self.respawns = 0
        try:
            for w in range(workers):
                self._spawn_worker(w)
                self._available.put(w)
        except BaseException:
            self._destroy_arena()
            raise
        if self._rec.enabled:
            self._rec.gauge(
                "service.arena_bytes",
                float(self._shm_img.size + self._shm_lab.size),
            )
            self._rec.count("service.pool_started")

    # -- lifecycle ---------------------------------------------------------

    def _plan(self):
        return (
            self._fault_plan
            if self._fault_plan is not None
            else get_fault_plan()
        )

    def _spawn_worker(self, w: int) -> None:
        """Fork worker *w* (or its replacement) attached to the arena."""
        plan = self._plan()
        directives: tuple = ()
        if plan.enabled:
            specs = plan.directives(
                "service", w, self._generation[w]
            )
            for spec in specs:
                record_injection(self._rec, spec)
            directives = tuple(
                (
                    spec.kind,
                    spec.after_chunks,
                    spec.exit_code
                    if spec.kind == "kill_worker"
                    else spec.delay_seconds,
                )
                for spec in specs
            )
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        job = (
            self._shm_img.name,
            self._shm_lab.name,
            self.workers * self.batch_slots,
            self.slot_px,
            child_conn,
            os.getpid(),
            directives,
            self.engine,
        )
        proc = self._ctx.Process(
            target=_pool_worker, args=(job,), daemon=True
        )
        proc.start()
        child_conn.close()
        self._procs[w] = (proc, parent_conn)
        self._generation[w] += 1
        if self._rec.enabled:
            self._rec.count("service.worker_forked")

    def _destroy_arena(self) -> None:
        for seg in (self._shm_img, self._shm_lab):
            try:
                seg.close()
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass

    @property
    def closed(self) -> bool:
        return self._state == "closed"

    def drain(self, timeout: float | None = None) -> None:
        """Gracefully stop the pool — idempotent under double-signal.

        The first caller flips the state to ``draining`` (new
        dispatches are rejected with
        :class:`~repro.errors.ServiceClosedError`), waits for every
        in-flight dispatch to check its worker back in, stops workers,
        reaps them through the idempotent
        :func:`~repro.parallel.supervisor.kill_workers`, and unlinks
        the arena. Every later (or concurrent) caller just waits for
        that first drain to finish — calling ``drain`` twice, or from
        two threads at once, or while a dispatch sits in respawn
        backoff, is safe: the backoff wakes on the stop event instead
        of re-forking, so no worker is stranded mid-respawn.
        """
        with self._state_lock:
            if self._state == "running":
                self._state = "draining"
                owner = True
            else:
                owner = False
        if not owner:
            if not self._closed_event.wait(
                timeout if timeout is not None else 300.0
            ):
                raise ServiceError("drain did not complete in time")
            return
        self._stop_event.set()
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        try:
            for _ in range(self.workers):
                remaining = (
                    None
                    if deadline is None
                    else max(0.0, deadline - time.monotonic())
                )
                try:
                    self._available.get(timeout=remaining)
                except queue.Empty:
                    break  # in-flight dispatch overran: fall to kill
            procs = []
            for entry in self._procs:
                if entry is None:
                    continue
                proc, conn = entry
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                procs.append(proc)
            for entry in self._procs:
                if entry is None:
                    continue
                proc, conn = entry
                proc.join(5.0)
                try:
                    conn.close()
                except OSError:  # pragma: no cover - defensive
                    pass
            kill_workers(procs)
        finally:
            self._destroy_arena()
            self._state = "closed"
            self._closed_event.set()
            if self._rec.enabled:
                self._rec.count("service.pool_drained")

    close = drain

    def __enter__(self) -> "WarmWorkerPool":
        return self

    def __exit__(self, *exc) -> bool:
        self.drain()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing
        if getattr(self, "_state", "closed") != "closed":
            try:
                self.drain(timeout=5.0)
            except Exception:
                pass

    # -- dispatch ----------------------------------------------------------

    def dispatch(
        self,
        images: Sequence[np.ndarray],
        connectivity: int | None = None,
        timeout: float | None = None,
        request_ids: Sequence[str | None] | None = None,
    ) -> tuple[list[np.ndarray], list[int]]:
        """Label a micro-batch of canonical images on one warm worker.

        *images* must be canonical binary arrays (the front end runs
        :func:`~repro.types.ensure_input` at admission) no larger than
        ``slot_shape``, at most ``batch_slots`` of them. Returns
        ``(labels, counts)`` — label arrays are fresh copies, the
        arena slots are reusable on return.

        *request_ids* (one per image, optional) travel to the worker
        and back on its spans, so a traced service request stitches
        into one multi-lane chrome trace across the fork boundary.

        A worker that dies mid-request is respawned (attached to the
        same arena) and the batch is redone — slot writes are
        idempotent — up to the resilience budget, then
        :class:`~repro.errors.WorkerCrashError`.
        """
        if not images:
            return [], []
        if len(images) > self.batch_slots:
            raise ServiceError(
                f"batch of {len(images)} exceeds batch_slots="
                f"{self.batch_slots}"
            )
        if self._state != "running":
            raise ServiceClosedError(
                "pool is draining or closed; no new dispatches"
            )
        conn_value = (
            self.connectivity if connectivity is None else connectivity
        )
        w = self._checkout(timeout)
        try:
            config = self.resilience
            last_exc: Exception | None = None
            for attempt in range(config.max_retries + 1):
                try:
                    return self._dispatch_once(
                        w, images, conn_value, request_ids
                    )
                except _WorkerDied as exc:
                    last_exc = exc
                    if self._rec.enabled:
                        self._rec.count("service.worker_crashed")
                    if attempt >= config.max_retries:
                        break
                    if interruptible_backoff(
                        config.backoff(attempt + 1), self._stop_event
                    ):
                        raise ServiceClosedError(
                            "pool drained while respawning a worker"
                        ) from exc
                    self._respawn(w)
            raise WorkerCrashError(
                f"pool worker {w} failed "
                f"{config.max_retries + 1} time(s): {last_exc}",
                ranks=(w,),
                phase="service",
                attempts=config.max_retries + 1,
            )
        finally:
            self._checkin(w)

    def _checkout(self, timeout: float | None) -> int:
        try:
            return self._available.get(
                timeout=timeout
                if timeout is not None
                else self.resilience.phase_timeout
            )
        except queue.Empty:
            raise ServiceError(
                "no pool worker became available in time"
            ) from None

    def _checkin(self, w: int) -> None:
        self._available.put(w)

    def _respawn(self, w: int) -> None:
        proc, conn = self._procs[w]
        kill_workers([proc])
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
        self._spawn_worker(w)
        self.respawns += 1
        if self._rec.enabled:
            self._rec.count("service.worker_respawned")

    def _dispatch_once(
        self,
        w: int,
        images: Sequence[np.ndarray],
        connectivity: int,
        request_ids: Sequence[str | None] | None = None,
    ) -> tuple[list[np.ndarray], list[int]]:
        proc, pipe = self._procs[w]
        base = w * self.batch_slots
        trace = self._rec.enabled
        items = []
        for i, img in enumerate(images):
            rows, cols = img.shape
            if rows * cols > self.slot_px:
                raise ServiceError(
                    f"image {img.shape!r} exceeds the pool slot "
                    f"{self.slot_shape!r}"
                )
            slot = base + i
            self._img_arena[slot, : rows * cols] = img.ravel()
            rid = (
                request_ids[i]
                if request_ids is not None and i < len(request_ids)
                else None
            )
            items.append((slot, rows, cols, rid))
        with self._job_lock:
            self._job_seq += 1
            job_id = self._job_seq
        try:
            pipe.send(("job", job_id, items, connectivity, trace))
        except (BrokenPipeError, OSError):
            raise _WorkerDied(proc.exitcode) from None
        deadline = time.monotonic() + self.resilience.phase_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                kill_workers([proc])
                if self._rec.enabled:
                    self._rec.count("watchdog.timeout")
                raise PhaseTimeoutError(
                    f"pool worker {w} did not reply within "
                    f"{self.resilience.phase_timeout:.1f}s",
                    phase="service",
                    timeout=self.resilience.phase_timeout,
                    ranks=(w,),
                )
            ready = connection.wait(
                [pipe, proc.sentinel], timeout=remaining
            )
            if pipe in ready:
                break
            if proc.sentinel in ready and not pipe.poll(0):
                # death detected the moment the kernel closes the
                # sentinel — not when a recv times out.
                proc.join()
                raise _WorkerDied(proc.exitcode)
        try:
            reply = pipe.recv()
        except EOFError:
            proc.join()
            raise _WorkerDied(proc.exitcode) from None
        if reply[0] != "done" or reply[1] != job_id:
            raise ServiceError(
                f"pool protocol violation from worker {w}: {reply[:2]!r}"
            )
        counts = reply[2]
        labels = []
        for (slot, rows, cols, _rid), _n in zip(items, counts):
            labels.append(
                np.array(
                    self._lab_arena[slot, : rows * cols].reshape(
                        rows, cols
                    ),
                    copy=True,
                )
            )
        if trace:
            self._absorb_worker_spans(w, reply[3])
            self._rec.count("service.dispatches")
            self._rec.count("service.images_labeled", len(images))
        return labels, [int(n) for n in counts]

    def _absorb_worker_spans(self, w: int, raw_spans) -> None:
        """Re-lane spans shipped back from worker *w* into the trace.

        The worker records on its own default lanes ("main"); here
        they become ``worker {w}`` so the chrome export shows one
        lane per pool worker next to the coordinator's frontend lane.
        ``perf_counter`` is fork-comparable on Linux, so the worker's
        raw timestamps slot straight in.
        """
        for lane, phase, start, stop, depth, attrs in raw_spans:
            if lane in ("main", "machine"):
                lane = f"worker {w}"
            else:
                lane = f"worker {w} {lane}"
            self._rec.add_span(
                lane, phase, start, stop, depth=depth, attrs=attrs
            )
