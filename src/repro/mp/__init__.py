"""In-process message-passing substrate (MPI-style SPMD).

The paper positions PAREMSP against distributed alternatives and its
union-find lineage ([38]) targets both shared and distributed memory.
This subpackage provides the substrate a distributed-memory variant
needs — without requiring an MPI installation: an in-process
:class:`~repro.mp.comm.Communicator` with mpi4py-flavoured point-to-point
(``send``/``recv``) and collective (``bcast``, ``scatter``, ``gather``,
``allgather``, ``reduce``, ``allreduce``, ``barrier``) operations, and an
SPMD :func:`~repro.mp.runner.run_spmd` launcher that runs one callable
per rank.

Ranks are OS threads, so this substrate reproduces message-passing
*semantics* (no shared mutable state between ranks is used by the
algorithms built on it — everything crosses rank boundaries through
messages), not network performance. The distributed CCL built on top
lives in :mod:`repro.parallel.distributed`.
"""

from .comm import Communicator
from .metering import MeteredCommunicator, NetworkModel, TrafficCounter
from .runner import (
    DEFAULT_SPMD_TIMEOUT,
    SpmdError,
    resolve_spmd_timeout,
    run_spmd,
)

__all__ = [
    "Communicator",
    "run_spmd",
    "SpmdError",
    "DEFAULT_SPMD_TIMEOUT",
    "resolve_spmd_timeout",
    "MeteredCommunicator",
    "TrafficCounter",
    "NetworkModel",
]
