"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` from wrong argument types,
etc.) propagate unchanged.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InputError",
    "ImageFormatError",
    "LabelOverflowError",
    "PartitionError",
    "ConnectivityError",
    "UnknownAlgorithmError",
    "BackendError",
    "WorkerCrashError",
    "PhaseTimeoutError",
    "DeadlockError",
    "CostModelError",
    "CheckpointError",
    "CheckpointCorruptError",
    "ResumeMismatchError",
    "InjectedCrashError",
    "ServiceError",
    "ServiceClosedError",
    "ServiceOverloadedError",
    "QuotaExceededError",
    "NetError",
    "FrameCorruptError",
    "FrameTruncatedError",
    "PeerUnreachableError",
    "ClusterQuorumError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InputError(ReproError, ValueError):
    """A public-API input array is unusable as given.

    The umbrella for every input-shape/dtype/layout rejection the
    validated entry points (``label``, ``label_parallel``/``paremsp``,
    the streaming labeler, ``tiled_label``) can make: non-2-D arrays,
    unsupported dtypes, values outside ``{0, 1}``. Layout oddities
    (Fortran order, non-contiguous views, read-only memmaps, ``bool`` /
    ``uint16`` pixels) are *coerced*, not rejected — only genuinely
    uninterpretable inputs raise. Subclasses ``ValueError`` so
    pre-existing ``except ValueError`` callers keep working.
    """


class ImageFormatError(InputError):
    """An input array is not a valid binary image for CCL.

    Raised for non-2D inputs, unsupported dtypes, or pixel values outside
    ``{0, 1}`` when strict validation is requested, and by the PNM codec for
    malformed files.
    """


class LabelOverflowError(ReproError, OverflowError):
    """The provisional-label space of the chosen dtype was exhausted.

    The scan phase assigns at most one provisional label per foreground
    pixel; an ``M x N`` image therefore needs ``M * N + 1`` representable
    labels. This error indicates the configured label dtype is too narrow
    for the input image.
    """


class PartitionError(ReproError, ValueError):
    """A parallel row partition is invalid (empty chunks, bad alignment)."""


class ConnectivityError(ReproError, ValueError):
    """An algorithm was asked for a connectivity it does not define.

    The registry's :data:`~repro.ccl.registry.EIGHT_CONNECTIVITY_ONLY`
    entries (contour tracing, 2x2-block labeling) have no 4-connectivity
    formulation; asking for one is a typed, catchable error rather than
    a silently wrong answer. Subclasses ``ValueError`` so pre-existing
    ``except ValueError`` callers keep working.
    """


class UnknownAlgorithmError(ReproError, KeyError):
    """An algorithm name was not found in :mod:`repro.ccl.registry`.

    The message lists every registered name and, for near misses, a
    "did you mean" suggestion.
    """


class BackendError(ReproError, RuntimeError):
    """A parallel backend failed or was asked for an unsupported feature."""


class WorkerCrashError(BackendError):
    """One or more parallel workers died (process exit, injected kill).

    Carries enough diagnostics to answer *which* participant failed and
    *where*: ``ranks`` (worker/chunk indices), ``phase`` (``scan`` /
    ``merge`` / ...), ``exit_codes`` (process backend), and ``attempts``
    (how many supervised tries were made before giving up).
    """

    def __init__(
        self,
        message: str,
        *,
        ranks: tuple[int, ...] = (),
        phase: str | None = None,
        exit_codes: tuple[int, ...] = (),
        attempts: int | None = None,
    ) -> None:
        super().__init__(message)
        self.ranks = tuple(ranks)
        self.phase = phase
        self.exit_codes = tuple(exit_codes)
        self.attempts = attempts


class PhaseTimeoutError(BackendError, TimeoutError):
    """A parallel phase overran its watchdog deadline.

    The watchdog converts a hang (dead worker holding a barrier, lost
    message, runaway straggler) into a typed, bounded-latency failure.
    """

    def __init__(
        self,
        message: str,
        *,
        phase: str | None = None,
        timeout: float | None = None,
        ranks: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.phase = phase
        self.timeout = timeout
        self.ranks = tuple(ranks)


class DeadlockError(BackendError, TimeoutError):
    """A blocking receive or collective could not complete.

    Raised by :class:`repro.mp.comm.Communicator` when a message never
    arrives: either the awaited rank is known to have died (``dead``
    names it), the run was cancelled by the launcher's watchdog, or the
    receive deadline expired with every peer apparently alive
    (mismatched send/recv or collective ordering).
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int | None = None,
        source: int | None = None,
        tag: int | None = None,
        phase: str | None = None,
        dead: tuple[int, ...] = (),
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.source = source
        self.tag = tag
        self.phase = phase
        self.dead = tuple(dead)


class CostModelError(ReproError, ValueError):
    """A simulated-machine cost model is inconsistent (negative costs...)."""


class CheckpointError(ReproError, RuntimeError):
    """Base class for checkpoint/resume failures (:mod:`repro.checkpoint`)."""


class CheckpointCorruptError(CheckpointError):
    """No valid snapshot survives in a checkpoint directory.

    Raised only when *every* snapshot fails validation (missing payload,
    size mismatch, checksum mismatch, unreadable manifest) — a corrupt
    newest snapshot with an older valid one behind it falls back
    silently instead. ``candidates`` lists the (seq, reason) pairs that
    were rejected.
    """

    def __init__(
        self,
        message: str,
        *,
        directory: str | None = None,
        candidates: tuple[tuple[int, str], ...] = (),
    ) -> None:
        super().__init__(message)
        self.directory = directory
        self.candidates = tuple(candidates)


class ResumeMismatchError(CheckpointError):
    """A snapshot exists but belongs to a different job.

    The manifest's job fingerprint (shape, dtype, connectivity,
    parameters) disagrees with the run asking to resume — restarting
    from it could silently produce labels for the wrong input, so the
    mismatch is fatal. ``expected``/``found`` carry both fingerprints.
    """

    def __init__(
        self,
        message: str,
        *,
        expected: dict | None = None,
        found: dict | None = None,
    ) -> None:
        super().__init__(message)
        self.expected = expected
        self.found = found


class ServiceError(ReproError, RuntimeError):
    """Base class for labeling-service failures (:mod:`repro.service`)."""


class ServiceClosedError(ServiceError):
    """A request arrived at a drained or never-started service.

    Graceful drain closes the front door first: requests already queued
    are completed, new ones get this error immediately instead of
    waiting on a queue that will never advance.
    """


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a request: the queue is full.

    Backpressure is a *typed, immediate* rejection rather than an
    unbounded queue — the caller knows within microseconds that it
    should retry later or shed load, and the service's latency SLO is
    protected from convoy collapse. ``queue_depth`` carries the depth
    at rejection time.
    """

    def __init__(self, message: str, *, queue_depth: int = 0) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth


class QuotaExceededError(ServiceError):
    """A tenant exceeded its in-flight request quota.

    Per-tenant admission control: one chatty client saturating the
    queue must not starve the rest. ``tenant`` and ``in_flight`` say
    who and by how much.
    """

    def __init__(
        self, message: str, *, tenant: str = "", in_flight: int = 0
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.in_flight = in_flight


class NetError(ReproError, RuntimeError):
    """Base class for socket-transport failures (:mod:`repro.parallel.net`)."""


class FrameCorruptError(NetError, ValueError):
    """A received frame failed its integrity check.

    Either the magic/header bytes are not the protocol's (``fatal`` is
    ``True``: the stream is desynchronised and the connection must be
    torn down) or the payload's CRC32 did not match (``fatal`` is
    ``False``: the header framed the bad bytes correctly, so the
    receiver can reject just this frame and keep the stream).
    """

    def __init__(
        self, message: str, *, seq: int | None = None, fatal: bool = False
    ) -> None:
        super().__init__(message)
        self.seq = seq
        self.fatal = fatal


class FrameTruncatedError(NetError, ConnectionError):
    """The stream ended mid-frame (peer died or connection was cut)."""

    def __init__(self, message: str, *, wanted: int = 0, got: int = 0) -> None:
        super().__init__(message)
        self.wanted = wanted
        self.got = got


class PeerUnreachableError(NetError, ConnectionError):
    """A peer could not be reached within the retry/backoff budget.

    ``peer`` names the ``host:port`` endpoint, ``attempts`` how many
    connect/send cycles were burned before giving up.
    """

    def __init__(
        self,
        message: str,
        *,
        peer: str = "",
        attempts: int = 0,
        phase: str | None = None,
    ) -> None:
        super().__init__(message)
        self.peer = peer
        self.attempts = attempts
        self.phase = phase


class ClusterQuorumError(NetError):
    """Too few hosts are reachable to keep a multi-host run going.

    Raised only when degradation is disabled; with ``degrade=True`` the
    runtime steps down the ladder (multi-host -> single-host sharded ->
    inline) and records the reason in ``meta["degraded_from"]``.
    """

    def __init__(
        self,
        message: str,
        *,
        reachable: tuple[str, ...] = (),
        unreachable: tuple[str, ...] = (),
        quorum: int = 0,
    ) -> None:
        super().__init__(message)
        self.reachable = tuple(reachable)
        self.unreachable = tuple(unreachable)
        self.quorum = quorum


class InjectedCrashError(ReproError, SystemError):
    """A deterministic in-process stand-in for a hard process death.

    The ``crash_at_checkpoint`` fault kind raises this instead of
    calling ``os._exit`` so single-process tests can simulate a crash at
    a checkpoint boundary and then resume; the chaos suite uses a real
    ``SIGKILL`` for the out-of-process version. Never caught by the
    library's own recovery machinery — a crash is a crash.
    """

    def __init__(self, message: str, *, seq: int | None = None) -> None:
        super().__init__(message)
        self.seq = seq
