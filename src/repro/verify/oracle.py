"""Reference CCL by breadth-first flood fill.

Deliberately shares *no* code with the two-pass implementations: no scan
masks, no union-find, no FLATTEN. Any systematic bug in those layers
cannot be mirrored here, which is what makes this an oracle.

Labels are assigned ``1..K`` in raster order of each component's first
(top-most, then left-most) pixel — the same canonical order FLATTEN
produces — so oracle output can be compared to library output with plain
``array_equal`` and not only up to relabeling.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..types import LABEL_DTYPE, Connectivity, as_binary_image

__all__ = ["flood_fill_label", "NEIGHBORS_4", "NEIGHBORS_8"]

#: (dr, dc) offsets for 4-connectivity.
NEIGHBORS_4 = ((-1, 0), (0, -1), (0, 1), (1, 0))

#: (dr, dc) offsets for 8-connectivity (the paper's setting).
NEIGHBORS_8 = (
    (-1, -1),
    (-1, 0),
    (-1, 1),
    (0, -1),
    (0, 1),
    (1, -1),
    (1, 0),
    (1, 1),
)


def flood_fill_label(
    image: np.ndarray,
    connectivity: Connectivity | int = Connectivity.EIGHT,
) -> tuple[np.ndarray, int]:
    """Label connected components by BFS flood fill.

    Parameters
    ----------
    image:
        Binary image (anything :func:`repro.types.as_binary_image`
        accepts).
    connectivity:
        4 or 8 (default 8, as in the paper).

    Returns
    -------
    (label_image, n_components):
        ``label_image`` is ``int32`` with background 0 and components
        labelled ``1..K`` in raster first-appearance order.
    """
    img = as_binary_image(image)
    offsets = (
        NEIGHBORS_8
        if Connectivity(connectivity) is Connectivity.EIGHT
        else NEIGHBORS_4
    )
    rows, cols = img.shape
    labels = np.zeros((rows, cols), dtype=LABEL_DTYPE)
    # Python-list views for fast scalar access in the BFS inner loop.
    img_l = img.tolist()
    lab_l = labels.tolist()
    next_label = 0
    queue: deque[tuple[int, int]] = deque()
    for r0 in range(rows):
        row = img_l[r0]
        for c0 in range(cols):
            if row[c0] == 1 and lab_l[r0][c0] == 0:
                next_label += 1
                lab_l[r0][c0] = next_label
                queue.append((r0, c0))
                while queue:
                    r, c = queue.popleft()
                    for dr, dc in offsets:
                        nr, nc = r + dr, c + dc
                        if (
                            0 <= nr < rows
                            and 0 <= nc < cols
                            and img_l[nr][nc] == 1
                            and lab_l[nr][nc] == 0
                        ):
                            lab_l[nr][nc] = next_label
                            queue.append((nr, nc))
    return (
        np.asarray(lab_l, dtype=LABEL_DTYPE).reshape(rows, cols),
        next_label,
    )
