"""Dimension-agnostic component measurements.

The 2-D measurements of :mod:`repro.analysis.stats` generalise directly
to the 3-D labelings of :mod:`repro.volume` (and any future rank): all
reductions are ``bincount`` over the flattened label array with
per-axis coordinate weights.
"""

from __future__ import annotations

import numpy as np

__all__ = ["areas_nd", "centroids_nd", "bounding_boxes_nd"]


def _k(labels: np.ndarray) -> int:
    return int(labels.max()) if labels.size else 0


def areas_nd(labels: np.ndarray) -> np.ndarray:
    """Element count of each component, any rank."""
    k = _k(labels)
    if k == 0:
        return np.zeros(0, dtype=np.int64)
    return np.bincount(labels.ravel(), minlength=k + 1)[1:].astype(np.int64)


def centroids_nd(labels: np.ndarray) -> np.ndarray:
    """``(K, ndim)`` centroid coordinates in index space."""
    labels = np.asarray(labels)
    k = _k(labels)
    if k == 0:
        return np.zeros((0, labels.ndim))
    flat = labels.ravel()
    counts = np.bincount(flat, minlength=k + 1)[1:]
    out = np.empty((k, labels.ndim))
    for axis in range(labels.ndim):
        coords = np.arange(labels.shape[axis])
        shape = [1] * labels.ndim
        shape[axis] = labels.shape[axis]
        weights = np.broadcast_to(
            coords.reshape(shape), labels.shape
        ).ravel()
        sums = np.bincount(flat, weights=weights, minlength=k + 1)[1:]
        with np.errstate(invalid="ignore", divide="ignore"):
            out[:, axis] = sums / counts
    return out


def bounding_boxes_nd(labels: np.ndarray) -> np.ndarray:
    """``(K, 2 * ndim)`` boxes: mins of every axis, then maxes
    (inclusive), matching the 2-D convention's (r0, c0, r1, c1) layout
    generalised to (a0, b0, ..., a1, b1, ...)."""
    labels = np.asarray(labels)
    k = _k(labels)
    ndim = labels.ndim
    if k == 0:
        return np.zeros((0, 2 * ndim), dtype=np.int64)
    flat = labels.ravel()
    big = np.iinfo(np.int64).max
    mins = np.full((ndim, k + 1), big, dtype=np.int64)
    maxs = np.full((ndim, k + 1), -1, dtype=np.int64)
    for axis in range(ndim):
        coords = np.arange(labels.shape[axis])
        shape = [1] * ndim
        shape[axis] = labels.shape[axis]
        weights = np.broadcast_to(coords.reshape(shape), labels.shape).ravel()
        np.minimum.at(mins[axis], flat, weights)
        np.maximum.at(maxs[axis], flat, weights)
    return np.concatenate([mins[:, 1:], maxs[:, 1:]], axis=0).T
