"""Thread backend: real ``threading`` concurrency with striped locks.

This is the structurally-faithful port of the paper's OpenMP execution:
chunk scans run on a thread pool (they touch disjoint rows and disjoint
label ranges, so the scan phase needs no synchronisation at all), and
interpreter-engine boundary merges run concurrently through the
lock-based MERGER of Algorithm 8
(:class:`repro.unionfind.parallel.LockStripedMerger`).

CPython's GIL serialises interpreter bytecode, so the ``interpreter``
engine demonstrates *correctness under real interleaving*, not speedup —
that is the documented substitution (DESIGN.md §2). The vectorised
engines fare better here: NumPy kernels release the GIL for whole-array
operations, and each worker writes only its chunk's disjoint slice of
the shared label array. Their boundary phase runs as a single coordinator
batch (edge-list extraction + REMSP), since seam work is negligible
(Figure 5a vs 5b).
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import MutableSequence, Sequence

import numpy as np

from ...ccl.labeling import remsp_alloc
from ...ccl.scan_aremsp import scan_tworow
from ...errors import WorkerCrashError
from ...faults import (
    DEFAULT_RESILIENCE,
    get_fault_plan,
    record_injection,
)
from ...obs import NULL_RECORDER
from ...types import LABEL_DTYPE
from ...unionfind.parallel import LockStripedMerger
from ...unionfind.remsp import merge as remsp_merge
from ..boundary import (
    boundary_edges,
    boundary_rows,
    merge_boundary_row,
    merge_edges,
)
from ..partition import RowChunk
from ._common import chunk_kernel, gather_equivalences

__all__ = ["ThreadBackend"]


class ThreadBackend:
    """Thread-pool execution of the PAREMSP phases.

    *resilience* bounds the per-chunk retry loop the fault hooks feed
    (a simulated worker death at a chunk's start is retried in place
    with backoff); *fault_plan* overrides the ambient injection plan.
    The injection site sits at the start of each chunk scan, before any
    shared state is touched, so a retried chunk re-runs from scratch.
    """

    name = "threads"

    def __init__(self, resilience=None, fault_plan=None) -> None:
        self.resilience = (
            resilience if resilience is not None else DEFAULT_RESILIENCE
        )
        self._fault_plan = fault_plan

    def _plan(self):
        return (
            self._fault_plan
            if self._fault_plan is not None
            else get_fault_plan()
        )

    def _run_chunk(self, fn, i: int, plan, rec):
        """Run one chunk scan with fault sites + bounded in-place retry."""
        if not plan.enabled:
            return fn()
        config = self.resilience
        attempt = 0
        while True:
            try:
                spec = plan.take(
                    "delay_chunk", phase="scan", rank=i, attempt=attempt
                )
                if spec is not None:
                    record_injection(rec, spec)
                    time.sleep(spec.delay_seconds)
                spec = plan.take(
                    "kill_worker", phase="scan", rank=i, attempt=attempt
                )
                if spec is not None:
                    record_injection(rec, spec)
                    raise WorkerCrashError(
                        f"injected worker death scanning chunk {i}",
                        ranks=(i,),
                        phase="scan",
                        attempts=attempt + 1,
                    )
                result = fn()
                if attempt > 0 and rec.enabled:
                    rec.count("retry.succeeded")
                return result
            except WorkerCrashError:
                if rec.enabled:
                    rec.count("worker.crashed")
                if attempt >= config.max_retries:
                    if rec.enabled:
                        rec.count("retry.exhausted")
                    raise
                attempt += 1
                if rec.enabled:
                    rec.count("retry.attempt")
                time.sleep(config.backoff(attempt))

    def scan(
        self,
        img: np.ndarray,
        chunks: Sequence[RowChunk],
        connectivity: int,
        engine: str = "interpreter",
        recorder=None,
    ) -> tuple[list[list[int]] | np.ndarray, list[int], list[int] | np.ndarray, dict]:
        rec = recorder if recorder is not None else NULL_RECORDER
        plan = self._plan()
        rows, cols = img.shape
        if engine == "interpreter":
            img_rows = img.tolist()
            p: list[int] = [0] * (rows * cols + 2)

            def run(job: tuple[int, RowChunk]) -> tuple[list[list[int]], int]:
                i, chunk = job

                def scan_once():
                    alloc, watermark = remsp_alloc(
                        p, start=chunk.label_start
                    )
                    t0 = time.perf_counter()
                    out = scan_tworow(
                        img_rows[chunk.row_start : chunk.row_stop],
                        p,
                        # scan-phase merges stay inside one chunk's label
                        # range, so the sequential kernel is safe here
                        # (the paper's Algorithm 7 likewise uses plain
                        # merge in the scan).
                        remsp_merge,
                        alloc,
                        connectivity,
                    )
                    if rec.enabled:
                        rec.add_span(
                            f"thread {i}", "scan", t0, time.perf_counter()
                        )
                    return out, watermark()

                return self._run_chunk(scan_once, i, plan, rec)

            with ThreadPoolExecutor(max_workers=max(1, len(chunks))) as pool:
                results = list(pool.map(run, enumerate(chunks)))
            label_rows: list[list[int]] = []
            used: list[int] = []
            for out, watermark in results:
                label_rows.extend(out)
                used.append(watermark)
            return label_rows, used, p, {}
        kernel = chunk_kernel(engine)
        labels = np.zeros((rows, cols), dtype=LABEL_DTYPE)

        def run_vec(job: tuple[int, RowChunk]) -> tuple[int, np.ndarray]:
            i, chunk = job

            def scan_once():
                # disjoint row slices: each worker paints its own window
                # of the shared label plane, no copy and no race.
                t0 = time.perf_counter()
                _, watermark, p_slice = kernel(
                    img[chunk.row_start : chunk.row_stop],
                    chunk.label_start,
                    connectivity,
                    out=labels[chunk.row_start : chunk.row_stop],
                )
                if rec.enabled:
                    rec.add_span(
                        f"thread {i}", "scan", t0, time.perf_counter()
                    )
                return watermark, p_slice

            return self._run_chunk(scan_once, i, plan, rec)

        with ThreadPoolExecutor(max_workers=max(1, len(chunks))) as pool:
            results_vec = list(pool.map(run_vec, enumerate(chunks)))
        used = [watermark for watermark, _ in results_vec]
        p_arr = gather_equivalences(
            chunks, used, [p_slice for _, p_slice in results_vec]
        )
        return labels, used, p_arr, {}

    def boundary(
        self,
        label_source,
        chunks: Sequence[RowChunk],
        cols: int,
        p,
        connectivity: int,
        engine: str = "interpreter",
        recorder=None,
    ) -> dict:
        rec = recorder if recorder is not None else NULL_RECORDER
        plan = self._plan()
        seams = boundary_rows(chunks)
        if not seams:
            return {"boundary_unions": 0}
        if engine != "interpreter":
            if plan.enabled:
                # the vectorised merge is one lock-free coordinator
                # batch; a poisoned "acquisition" models the batch
                # failing outright.
                spec = plan.take("poison_lock", phase="merge")
                if spec is not None:
                    record_injection(rec, spec)
                    from ...errors import DeadlockError

                    raise DeadlockError(
                        "injected poisoned boundary merge",
                        phase="merge",
                    )
            edges = boundary_edges(label_source, seams, connectivity)
            ops = merge_edges(p, edges)
            if rec.enabled:
                rec.count("threads.boundary_edges", len(edges))
            return {"boundary_unions": ops}
        merger = LockStripedMerger(p, recorder=rec, fault_plan=plan)
        if rec.enabled:
            # stripe count contextualises the contention counters: the
            # contended rate only means something relative to how many
            # stripes the acquisitions were spread over.
            rec.gauge("merger.stripes", float(merger.n_stripes))
            rec.count("merger.seam_rows", len(seams))

        def union(pp: MutableSequence[int], x: int, y: int) -> int:
            return merger.merge(x, y)

        def run(job: tuple[int, int]) -> int:
            i, row = job
            t0 = time.perf_counter()
            ops = merge_boundary_row(
                label_source, row, cols, p, union, connectivity
            )
            if rec.enabled:
                rec.add_span(f"thread {i}", "merge", t0, time.perf_counter())
            return ops

        with ThreadPoolExecutor(max_workers=max(1, len(seams))) as pool:
            ops = sum(pool.map(run, enumerate(seams)))
        return {"boundary_unions": ops}
