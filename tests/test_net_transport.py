"""Per-peer transport + lease membership
(:mod:`repro.parallel.net.transport`, :mod:`.membership`).

Covers the timeout precedence (argument > ``REPRO_NET_*`` env >
default), the backoff schedule's bounds, every client-side injected
network fault against a real loopback :class:`WorkerServer`, and the
lease table's expiry/renewal/rejoin semantics under concurrent
renewals — all loopback, no external hosts.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import PeerUnreachableError
from repro.faults import FaultPlan, FaultSpec
from repro.obs import TraceRecorder
from repro.parallel.net import (
    LeaseTable,
    NetConfig,
    PartitionLink,
    PeerClient,
    WorkerServer,
    backoff_delay,
    resolve_net_timeout,
)
from repro.parallel.net.transport import (
    DEFAULT_CALL_TIMEOUT,
    DEFAULT_CONNECT_TIMEOUT,
)

FAST = NetConfig(
    connect_timeout=2.0, call_timeout=2.0, exec_timeout=5.0,
    max_retries=2, backoff_base=0.0,
)


@pytest.fixture()
def server():
    srv = WorkerServer("127.0.0.1", 0)
    srv.start()
    yield srv
    srv.shutdown()


def _counters(rec):
    return rec.report().metrics["counters"]


# ---------------------------------------------------------------------------
# timeout precedence: argument > environment > default
# ---------------------------------------------------------------------------


def test_timeout_default_when_nothing_set(monkeypatch):
    monkeypatch.delenv("REPRO_NET_CALL_TIMEOUT", raising=False)
    assert resolve_net_timeout(None, "CALL_TIMEOUT", 10.0) == 10.0


def test_timeout_env_beats_default(monkeypatch):
    monkeypatch.setenv("REPRO_NET_CALL_TIMEOUT", "3.5")
    assert resolve_net_timeout(None, "CALL_TIMEOUT", 10.0) == 3.5


def test_timeout_argument_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_NET_CALL_TIMEOUT", "3.5")
    assert resolve_net_timeout(1.25, "CALL_TIMEOUT", 10.0) == 1.25


def test_timeout_blank_env_falls_through(monkeypatch):
    monkeypatch.setenv("REPRO_NET_CALL_TIMEOUT", "  ")
    assert resolve_net_timeout(None, "CALL_TIMEOUT", 10.0) == 10.0


@pytest.mark.parametrize("bad", ["soon", "0", "-2"])
def test_timeout_malformed_or_nonpositive_env_is_loud(monkeypatch, bad):
    monkeypatch.setenv("REPRO_NET_CONNECT_TIMEOUT", bad)
    with pytest.raises(ValueError):
        resolve_net_timeout(None, "CONNECT_TIMEOUT", 5.0)


def test_netconfig_resolves_env(monkeypatch):
    monkeypatch.setenv("REPRO_NET_EXEC_TIMEOUT", "123")
    cfg = NetConfig()
    assert cfg.exec_timeout == 123.0
    assert cfg.connect_timeout == DEFAULT_CONNECT_TIMEOUT
    assert cfg.call_timeout == DEFAULT_CALL_TIMEOUT


def test_netconfig_validates():
    with pytest.raises(ValueError):
        NetConfig(max_retries=-1)
    with pytest.raises(ValueError):
        NetConfig(backoff_factor=0.5)
    with pytest.raises(ValueError):
        NetConfig(call_timeout=0.0)


# ---------------------------------------------------------------------------
# backoff schedule bounds
# ---------------------------------------------------------------------------


@given(
    attempt=st.integers(min_value=1, max_value=60),
    base=st.floats(min_value=1e-4, max_value=1.0),
    factor=st.floats(min_value=1.0, max_value=4.0),
    cap=st.floats(min_value=1e-3, max_value=10.0),
    seed=st.integers(0, 2**16),
)
def test_backoff_is_bounded_and_jittered(attempt, base, factor, cap, seed):
    import random

    rng = random.Random(seed)
    delay = backoff_delay(attempt, base, factor, cap, rng)
    nominal = min(cap, base * factor ** (attempt - 1))
    # jitter keeps a dead fleet from reconnecting in lockstep but never
    # exceeds the nominal bound and never collapses below half of it
    assert 0.0 <= delay <= cap + 1e-12
    assert nominal / 2 - 1e-12 <= delay <= nominal + 1e-12


@given(attempt=st.integers(min_value=-5, max_value=0))
def test_backoff_zero_for_nonpositive_attempts(attempt):
    assert backoff_delay(attempt) == 0.0


def test_backoff_nominal_growth_is_monotonic():
    nominals = [
        min(2.0, 0.05 * 2.0 ** (a - 1)) for a in range(1, 12)
    ]
    assert nominals == sorted(nominals)
    assert nominals[-1] == 2.0  # capped


# ---------------------------------------------------------------------------
# the client against a live loopback worker
# ---------------------------------------------------------------------------


def test_ping_roundtrip(server):
    client = PeerClient((server.host, server.port), "t:ping:0", FAST)
    try:
        reply = client.call({"t": "ping"})
        assert reply["ok"] and reply["t"] == "pong"
        assert client.last_rtt is not None and client.last_rtt >= 0
    finally:
        client.close()


def test_unknown_message_is_answered_not_fatal(server):
    client = PeerClient((server.host, server.port), "t:odd:0", FAST)
    try:
        reply = client.call({"t": "no-such-kind"})
        assert reply["ok"] is False
    finally:
        client.close()


def test_unreachable_peer_exhausts_budget_with_typed_error():
    cfg = NetConfig(
        connect_timeout=0.2, call_timeout=0.2,
        max_retries=2, backoff_base=0.0,
    )
    client = PeerClient(("127.0.0.1", 1), "t:dead:0", cfg)
    with pytest.raises(PeerUnreachableError) as err:
        client.call({"t": "ping"})
    assert err.value.attempts == 3  # 1 try + 2 retries
    assert err.value.peer == "127.0.0.1:1"


def test_partition_link_blocks_and_heals(server):
    link = PartitionLink()
    client = PeerClient(
        (server.host, server.port), "t:part:0", FAST, link=link
    )
    try:
        assert client.call({"t": "ping"})["ok"]
        link.cut(30.0)
        with pytest.raises(PeerUnreachableError):
            client.call({"t": "ping"})
        link.heal()
        assert client.call({"t": "ping"})["ok"]
    finally:
        client.close()


@pytest.mark.chaos
def test_drop_conn_is_retried_and_deduplicated(server):
    plan = FaultPlan([FaultSpec("drop_conn", phase="net")])
    rec = TraceRecorder()
    client = PeerClient(
        (server.host, server.port), "t:drop:0", FAST,
        recorder=rec, fault_plan=plan, fault_rank=0,
    )
    try:
        assert client.call({"t": "ping"})["ok"]
    finally:
        client.close()
    assert plan.injected == 1
    counters = _counters(rec)
    assert counters.get("net.retries", 0) >= 1
    assert counters.get("net.reconnects", 0) >= 1
    assert counters.get("fault.drop_conn", 0) == 1


@pytest.mark.chaos
def test_corrupt_frame_is_nacked_and_resent(server):
    plan = FaultPlan([FaultSpec("corrupt_frame", phase="net")])
    rec = TraceRecorder()
    client = PeerClient(
        (server.host, server.port), "t:crc:0", FAST,
        recorder=rec, fault_plan=plan, fault_rank=0,
    )
    try:
        assert client.call({"t": "ping"})["ok"]
    finally:
        client.close()
    assert plan.injected == 1
    assert _counters(rec).get("net.frames_corrupt", 0) >= 1


@pytest.mark.chaos
def test_dup_msg_is_absorbed_by_replay_cache(server):
    plan = FaultPlan([FaultSpec("dup_msg", phase="net")])
    rec = TraceRecorder()
    client = PeerClient(
        (server.host, server.port), "t:dup:0", FAST,
        recorder=rec, fault_plan=plan, fault_rank=0,
    )
    try:
        assert client.call({"t": "ping"})["ok"]
        # the duplicate's reply is stale by seq on the next call
        assert client.call({"t": "ping"})["ok"]
    finally:
        client.close()
    assert plan.injected == 1
    assert _counters(rec).get("net.frames_deduped", 0) >= 1
    assert server._cache.deduped >= 1


@pytest.mark.chaos
def test_slow_link_delays_but_succeeds(server):
    plan = FaultPlan(
        [FaultSpec("slow_link", phase="net", delay_seconds=0.2)]
    )
    client = PeerClient(
        (server.host, server.port), "t:slow:0", FAST,
        fault_plan=plan, fault_rank=0,
    )
    try:
        import time

        t0 = time.monotonic()
        assert client.call({"t": "ping"})["ok"]
        assert time.monotonic() - t0 >= 0.2
    finally:
        client.close()
    assert plan.injected == 1


# ---------------------------------------------------------------------------
# leases
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


def test_lease_lifecycle_expiry_and_rejoin():
    clock = FakeClock()
    table = LeaseTable(duration=1.0, clock=clock)
    table.add("h1")
    assert table.is_alive("h1")
    clock.now += 0.9
    table.renew("h1")
    clock.now += 0.9
    assert table.sweep() == ()  # renewed in time
    clock.now += 1.1
    assert table.sweep() == ("h1",)
    assert table.sweep() == ()  # reported exactly once per incarnation
    assert not table.is_alive("h1")
    # the partition heals: rejoin bumps the incarnation
    assert table.renew("h1") is True
    assert table.is_alive("h1")
    assert table.incarnation("h1") == 1
    assert table.rejoined_total == 1
    assert table.expired_total == 1


def test_lease_forced_expire():
    table = LeaseTable(duration=10.0)
    table.add("h")
    assert table.expire("h") is True
    assert not table.is_alive("h")
    assert table.expire("h") is False  # idempotent


def test_lease_duration_validated():
    with pytest.raises(ValueError):
        LeaseTable(duration=0.0)


@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("tick"), st.floats(0.0, 2.0)),
        st.tuples(st.just("renew"), st.sampled_from(["a", "b"])),
    ),
    max_size=40,
))
def test_lease_invariants_hold_for_any_schedule(ops):
    """Whatever interleaving of clock advances and renewals happens,
    (1) expiry is reported exactly once per incarnation, (2) a member
    is alive iff its last renewal is within the lease duration, and
    (3) rejoins == incarnation bumps."""
    clock = FakeClock()
    table = LeaseTable(duration=1.0, clock=clock)
    last_renew = {}
    for member in ("a", "b"):
        table.add(member)
        last_renew[member] = clock.now
    reported = {"a": 0, "b": 0}
    rejoins = {"a": 0, "b": 0}
    for op, arg in ops:
        if op == "tick":
            clock.now += arg
            for member in table.sweep():
                reported[member] += 1
        else:
            if table.renew(arg):
                rejoins[arg] += 1
            last_renew[arg] = clock.now
    for member in ("a", "b"):
        # a member whose last renewal is within the lease must be
        # alive (a stale one may simply not have been swept yet)
        if clock.now - last_renew[member] <= 1.0:
            assert table.is_alive(member)
        # the incarnation number is exactly the member's rejoin count
        assert table.incarnation(member) == rejoins[member]
    assert sum(rejoins.values()) == table.rejoined_total
    assert sum(reported.values()) == table.expired_total


def test_lease_renewals_race_with_sweeps():
    """Hammer renew() from threads while sweeping: no exception, and
    the member ends alive (every renewal extends the deadline)."""
    table = LeaseTable(duration=0.05)
    table.add("h")
    stop = threading.Event()
    errors: list[BaseException] = []

    def renewer():
        try:
            while not stop.is_set():
                table.renew("h")
        except BaseException as exc:  # pragma: no cover
            errors.append(exc)

    threads = [threading.Thread(target=renewer) for _ in range(4)]
    for t in threads:
        t.start()
    for _ in range(200):
        table.sweep()
    stop.set()
    for t in threads:
        t.join(5.0)
    assert not errors
    table.renew("h")
    assert table.is_alive("h")
