# Two test tiers (see ROADMAP.md):
#   tier 1: `make test`          — the full pytest suite, fast, no timing
#                                  assertions; must always pass.
#   tier 2: `make bench-paremsp` — full-scale perf gate for the
#                                  vectorised PAREMSP pipeline; fails if
#                                  the engines diverge or the vectorized
#                                  speedup drops below 5x on the
#                                  2048x2048 reference raster.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-paremsp bench-trace bench

test:
	$(PYTHON) -m pytest -x -q

bench-paremsp:
	$(PYTHON) -m repro.bench.paremsp_smoke --size 2048 --repeats 5 \
		--out BENCH_paremsp.json

# per-phase/per-thread breakdowns on all three backends; writes
# trace_<backend>.jsonl next to the bench record.
bench-trace:
	$(PYTHON) -m repro.bench.paremsp_smoke --size 1024 --repeats 3 \
		--trace --out BENCH_paremsp.json

bench: bench-paremsp
