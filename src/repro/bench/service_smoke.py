"""Warm-pool service smoke benchmark: amortised fork must pay off.

``python -m repro.bench.service_smoke --requests 64 --out BENCH_paremsp.json``

Replays one stream of small-image label requests (the <=256x256 regime
the micro-batching path targets) two ways:

* **cold** — per-call fork: every request builds a fresh one-worker
  pool (fork + shared-memory arena + attach), dispatches, and tears it
  down — the cost profile of calling the process backend per request;
* **warm** — one :class:`repro.service.LabelService` serves the whole
  stream from pre-forked workers attached once to a long-lived arena.

The gate: warm sustained throughput must beat cold by
``--min-speedup`` (default 2x), every answer must be **byte-identical**
to the serial vectorised engine (:func:`repro.label` with
``engine="vectorized"``) with the component count also checked against
the default AREMSP path, and ``/dev/shm`` must be exactly as clean
after the drain as before the bench. Queue-latency percentiles from
the service's own gauges land in the record and, with ``--history``,
in a :mod:`repro.perfdb` record for the ``repro-obs compare``
regression gate.

The record is merged into ``--out`` as a ``"service"`` section so the
paremsp smoke record and this one share one artifact
(``BENCH_paremsp.json``); correctness failures are fatal even under
``--record-only``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

import numpy as np

__all__ = ["run", "main"]


def _shm_segments() -> set[str]:
    try:
        return {
            f for f in os.listdir("/dev/shm") if f.startswith("psm_")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _request_stream(
    n: int, shape: tuple[int, int], density: float, seed: int
) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [
        (rng.random(shape) < density).astype(np.uint8) for _ in range(n)
    ]


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _check_stream(images, answers) -> None:
    """Every answer must match both engines — the service's headline
    correctness contract (fatal even in record-only mode)."""
    import repro

    for img, (lab, n) in zip(images, answers):
        exp, n_exp = repro.label(img, engine="vectorized")
        if not np.array_equal(lab, exp) or n != n_exp:
            raise SystemExit(
                "FAIL: service answer diverged from the serial "
                "vectorised engine"
            )
        _, n_dflt = repro.label(img)
        if n != n_dflt:
            raise SystemExit(
                "FAIL: component count diverged from the default "
                "label() path"
            )


def _cold_pass(images, workers: int) -> list[float]:
    """Per-call fork baseline: a fresh pool per request."""
    from ..service import WarmWorkerPool

    seconds = []
    for img in images:
        t0 = time.perf_counter()
        with WarmWorkerPool(workers=1, batch_slots=1) as pool:
            pool.dispatch([img])
        seconds.append(time.perf_counter() - t0)
    return seconds


def _warm_pass(images, workers: int, batch_size: int):
    """One service, whole stream; returns (wall_s, answers, stats)."""
    from ..service import LabelService, ServiceConfig

    with LabelService(
        ServiceConfig(
            workers=workers,
            batch_size=batch_size,
            max_queue=max(64, 2 * len(images)),
            tenant_quota=max(64, 2 * len(images)),
        )
    ) as svc:
        # warm-up request so worker forks are off the clock for both
        # passes symmetrically (the cold pass pays fork *inside* the
        # timed region by design — that is the thing being measured).
        svc.label(images[0])
        t0 = time.perf_counter()
        futures = [svc.submit(img) for img in images]
        answers = [f.result(120.0) for f in futures]
        wall = time.perf_counter() - t0
        stats = svc.stats()
    return wall, answers, stats


def run(
    requests: int = 64,
    shape: tuple[int, int] = (128, 128),
    density: float = 0.45,
    workers: int = 2,
    batch_size: int = 8,
    repeats: int = 3,
    seed: int = 0,
) -> dict:
    """Time the warm service against per-call fork on one stream.

    Cold is timed once per request (each request *is* a full
    fork/attach/teardown cycle, so per-request times are the
    repetitions); warm replays the same stream *repeats* times and
    keeps every wall time. Throughputs are medians.
    """
    images = _request_stream(requests, shape, density, seed)
    shm_before = _shm_segments()

    cold_seconds = _cold_pass(images, workers)
    cold_wall = sum(cold_seconds)

    warm_walls = []
    stats = None
    for _ in range(repeats):
        wall, answers, stats = _warm_pass(images, workers, batch_size)
        warm_walls.append(wall)
        _check_stream(images, answers)

    leaked = _shm_segments() - shm_before
    if leaked:
        raise SystemExit(
            f"FAIL: drained service leaked shm segments: {sorted(leaked)}"
        )

    warm_wall = _median(warm_walls)
    return {
        "benchmark": "service_smoke",
        "schema_version": 1,
        "stream": {
            "requests": requests,
            "shape": list(shape),
            "density": density,
            "seed": seed,
        },
        "workers": workers,
        "batch_size": batch_size,
        "repeats": repeats,
        "cold_wall_seconds": cold_wall,
        "cold_per_request_seconds": _median(cold_seconds),
        "warm_wall_seconds": warm_wall,
        "warm_wall_reps": warm_walls,
        "cold_throughput_rps": requests / cold_wall,
        "warm_throughput_rps": requests / warm_wall,
        "throughput_speedup": cold_wall / warm_wall,
        "byte_identical": True,  # _check_stream is fatal otherwise
        "shm_clean_after_drain": True,  # leak check is fatal otherwise
        "latency_ms": {
            "p50": stats.latency_p50_ms,
            "p95": stats.latency_p95_ms,
            "p99": stats.latency_p99_ms,
        },
        "batches": stats.batches,
        "pool_respawns": stats.pool_respawns,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=64)
    ap.add_argument(
        "--side",
        type=int,
        default=128,
        help="request image side length (<= 256, the service slot)",
    )
    ap.add_argument("--density", type=float, default=0.45)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--batch-size", type=int, default=8)
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail unless warm throughput beats per-call fork by this "
        "factor",
    )
    ap.add_argument("--out", default="BENCH_paremsp.json")
    ap.add_argument(
        "--record-only",
        action="store_true",
        help="write the record but never fail the timing gate (CI smoke "
        "mode); correctness and shm-leak checks stay fatal",
    )
    ap.add_argument(
        "--history",
        metavar="DIR",
        default=None,
        help="append a repro.perfdb record (median + bootstrap CI + "
        "environment fingerprint) under DIR for 'repro-obs compare'",
    )
    args = ap.parse_args(argv)

    record = run(
        requests=args.requests,
        shape=(args.side, args.side),
        density=args.density,
        workers=args.workers,
        batch_size=args.batch_size,
        repeats=args.repeats,
        seed=args.seed,
    )

    out = pathlib.Path(args.out)
    merged: dict = {}
    if out.exists():
        try:
            merged = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged["service"] = record
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")

    print(
        f"service {args.requests}x{args.side}x{args.side} stream "
        f"({args.workers} workers, batch {args.batch_size}): cold "
        f"{record['cold_throughput_rps']:.1f} req/s, warm "
        f"{record['warm_throughput_rps']:.1f} req/s "
        f"({record['throughput_speedup']:.1f}x), p50/p95/p99 "
        f"{record['latency_ms']['p50']:.1f}/"
        f"{record['latency_ms']['p95']:.1f}/"
        f"{record['latency_ms']['p99']:.1f} ms -> {out}"
    )

    if args.history:
        from ..perfdb import (
            append_record,
            build_record,
            environment_fingerprint,
        )

        history_record = build_record(
            "service_smoke",
            record["warm_wall_reps"],
            meta={
                "stream": record["stream"],
                "workers": record["workers"],
                "batch_size": record["batch_size"],
                "throughput_speedup": record["throughput_speedup"],
                "latency_ms": record["latency_ms"],
            },
            env=environment_fingerprint(n_threads=args.workers),
        )
        path = append_record(history_record, args.history)
        print(f"history record -> {path}")

    if record["throughput_speedup"] < args.min_speedup:
        print(
            f"FAIL: warm/cold speedup {record['throughput_speedup']:.2f}x "
            f"below the {args.min_speedup:.1f}x floor"
        )
        if args.record_only:
            print("(record-only mode: timing gate not fatal)")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
