"""Runtime-telemetry smoke: live scrape, stitched trace, sampler gates.

``python -m repro.bench.metrics_smoke --out BENCH_paremsp.json``

Boots one traced :class:`repro.service.LabelService` behind the
``/metrics`` endpoint and checks the whole telemetry chain the way an
operator would use it:

* **live exposition** — ``/metrics`` is scraped *mid-run* (after half
  the stream resolved, before drain) and must be valid Prometheus text
  carrying the ``service_latency_ms`` quantile summary with a nonzero
  window count (the incremental-publication contract: gauges update
  per batch, not at drain), ``service_queue_depth``,
  ``service_requests_total`` and, after one monitor evaluation over a
  deliberately breachable objective, the ``slo_breaches_total``
  family; ``/healthz`` answers 200 throughout and ``/readyz`` flips
  200 → 503 at drain;
* **cross-process tracing** — the drained recorder must hold one
  multi-lane trace: a ``frontend`` lane plus at least two distinct
  ``worker N`` lanes, with at least one request id present on both
  sides of the fork boundary; the trace is exported to chrome JSON and
  read back, and the stitching must survive the round trip;
* **sampler overhead gates** — labeling a replay stream with the
  profiler merely *importable* (disabled) must stay within
  ``--max-disabled-overhead`` (default 2%) of the bare baseline, and
  with the sampler *attached* within ``--max-attached-overhead``
  (default 5%). The disabled gate is always fatal — it guards the
  hot-path cost of the phase-hook checks; the attached gate follows
  ``--record-only`` (shared CI runners jitter more than 5%).

The record is merged into ``--out`` as a ``"metrics"`` section next to
the paremsp/service sections; correctness failures (missing metric
family, unstitched trace, readiness not flipping) are fatal even under
``--record-only``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time
import urllib.request

import numpy as np

__all__ = ["run", "main"]

#: metric families a mid-run scrape must expose (prometheus names).
REQUIRED_FAMILIES = (
    "service_latency_ms",
    "service_latency_ms_count",
    "service_queue_depth",
    "service_requests_total",
    "service_batches_total",
    "slo_breaches_total",
)


def _stream(n: int, side: int, density: float, seed: int):
    rng = np.random.default_rng(seed)
    return [
        (rng.random((side, side)) < density).astype(np.uint8)
        for _ in range(n)
    ]


def _get(url: str):
    req = urllib.request.Request(url)
    try:
        with urllib.request.urlopen(req, timeout=10.0) as resp:
            return resp.status, resp.read().decode("utf-8")
    except urllib.error.HTTPError as exc:  # 503 still carries a body
        return exc.code, exc.read().decode("utf-8")


def _service_pass(requests: int, side: int, density: float, seed: int,
                  workers: int, batch_size: int) -> dict:
    """Traced service run: scrape mid-run, stitch the trace after."""
    from ..obs import TraceRecorder, read_chrome_trace, write_chrome_trace
    from ..obs.runtime import (
        SLO,
        SLOMonitor,
        parse_prometheus_text,
        serve_service_metrics,
    )
    from ..service import LabelService, ServiceConfig

    images = _stream(requests, side, density, seed)
    rec = TraceRecorder()
    svc = LabelService(
        ServiceConfig(
            workers=workers,
            batch_size=batch_size,
            max_queue=max(64, 2 * requests),
            tenant_quota=max(64, 2 * requests),
        ),
        recorder=rec,
    )
    with serve_service_metrics(svc) as srv:
        monitor = SLOMonitor(
            [
                # deliberately breachable: any completed request takes
                # longer than 1 ns, so one evaluation proves the slo_*
                # family end-to-end (breach counter + /metrics row).
                SLO("smoke-latency", "service.latency_ms", 1e-6,
                    quantile=0.5),
                SLO("smoke-queue", "service.queue_depth", 1e9),
            ],
            svc.runtime,
            recorder=rec,
        )
        futures = [svc.submit(img) for img in images]
        for f in futures[: requests // 2]:
            f.result(120.0)
        breaches = monitor.evaluate()
        if not breaches:
            raise SystemExit(
                "FAIL: the breachable smoke SLO did not breach — "
                "rolling latency window is empty mid-run"
            )
        status, body = _get(srv.url + "/metrics")
        if status != 200:
            raise SystemExit(f"FAIL: /metrics answered {status}")
        families = parse_prometheus_text(body)
        missing = [f for f in REQUIRED_FAMILIES if f not in families]
        if missing:
            raise SystemExit(
                f"FAIL: mid-run /metrics scrape missing families "
                f"{missing}; got {sorted(families)}"
            )
        window_count = families["service_latency_ms_count"].get("", 0.0)
        if window_count <= 0:
            raise SystemExit(
                "FAIL: latency window empty at mid-run scrape — "
                "gauges are not publishing incrementally"
            )
        health_status, _ = _get(srv.url + "/healthz")
        ready_status, _ = _get(srv.url + "/readyz")
        if health_status != 200 or ready_status != 200:
            raise SystemExit(
                f"FAIL: healthz/readyz answered "
                f"{health_status}/{ready_status} while running"
            )
        for f in futures[requests // 2:]:
            f.result(120.0)
        svc.drain()
        ready_status, ready_body = _get(srv.url + "/readyz")
        if ready_status != 503:
            raise SystemExit(
                f"FAIL: /readyz answered {ready_status} after drain "
                "(expected 503 draining)"
            )
        scrape = {
            "families": len(families),
            "window_count": window_count,
            "latency_quantiles": {
                k.split('"')[1]: v
                for k, v in families["service_latency_ms"].items()
                if "quantile" in k
            },
            "slo_breaches": sum(
                families["slo_breaches_total"].values()
            ),
        }

    # -- one request id across the fork boundary, surviving chrome ------
    spans = rec.report().spans
    with tempfile.TemporaryDirectory() as tmp:
        chrome_path = pathlib.Path(tmp) / "service_chrome.json"
        write_chrome_trace(spans, chrome_path)
        spans, _metrics = read_chrome_trace(chrome_path)

    lanes = {s.lane for s in spans}
    worker_lanes = {ln for ln in lanes if ln.startswith("worker ")}
    if "frontend" not in lanes or len(worker_lanes) < 2:
        raise SystemExit(
            f"FAIL: chrome trace lanes {sorted(lanes)} lack a frontend "
            "lane plus >= 2 worker lanes"
        )
    frontend_rids = {
        s.attrs["request_id"]
        for s in spans
        if s.lane == "frontend" and s.attrs
        and "request_id" in s.attrs
    }
    worker_rids = {
        s.attrs["request_id"]
        for s in spans
        if s.lane in worker_lanes and s.attrs
        and "request_id" in s.attrs
    }
    stitched = frontend_rids & worker_rids
    if not stitched:
        raise SystemExit(
            "FAIL: no request id appears on both the frontend lane "
            "and a worker lane — the trace does not stitch across "
            "the fork boundary"
        )
    return {
        "scrape": scrape,
        "lanes": sorted(lanes),
        "worker_lanes": len(worker_lanes),
        "frontend_requests": len(frontend_rids),
        "stitched_requests": len(stitched),
        "spans": len(spans),
    }


def _label_loop(images, connectivity: int = 8) -> float:
    from ..ccl.run_based import run_based_vectorized

    t0 = time.perf_counter()
    for img in images:
        run_based_vectorized(img, connectivity)
    return time.perf_counter() - t0


def _overhead_pass(side: int, density: float, seed: int,
                   repeats: int) -> dict:
    """Best-of-N sampler overhead: bare vs disabled vs attached.

    The three modes are *interleaved* per repeat (base, disabled,
    attached, base, disabled, ...) so machine-load drift between
    passes — worker processes still exiting, turbo states — hits all
    three alike instead of biasing whichever ran first.
    """
    from ..obs.runtime import SamplingProfiler

    images = _stream(48, side, density, seed)
    _label_loop(images)  # warm caches off the clock

    # disabled: the profiler exists (machinery imported, hook checks
    # compiled in) but is not attached — the always-on cost.
    profiler = SamplingProfiler()
    base_times, disabled_times, attached_times = [], [], []
    for _ in range(repeats):
        base_times.append(_label_loop(images))
        disabled_times.append(_label_loop(images))
        with profiler:
            attached_times.append(_label_loop(images))
    base = min(base_times)
    disabled = min(disabled_times)
    attached = min(attached_times)

    return {
        "baseline_seconds": base,
        "disabled_seconds": disabled,
        "attached_seconds": attached,
        "disabled_overhead": disabled / base - 1.0,
        "attached_overhead": attached / base - 1.0,
        "attached_samples": profiler.sample_count,
        "repeats": repeats,
    }


def run(
    requests: int = 48,
    side: int = 128,
    density: float = 0.45,
    workers: int = 2,
    batch_size: int = 4,
    repeats: int = 5,
    seed: int = 0,
) -> dict:
    service = _service_pass(
        requests, side, density, seed, workers, batch_size
    )
    overhead = _overhead_pass(side, density, seed, repeats)
    return {
        "benchmark": "metrics_smoke",
        "schema_version": 1,
        "stream": {
            "requests": requests,
            "shape": [side, side],
            "density": density,
            "seed": seed,
        },
        "workers": workers,
        "batch_size": batch_size,
        "service": service,
        "profiler": overhead,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--requests", type=int, default=48)
    ap.add_argument("--side", type=int, default=128)
    ap.add_argument("--density", type=float, default=0.45)
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--batch-size", type=int, default=4)
    ap.add_argument("--repeats", type=int, default=5)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument(
        "--max-disabled-overhead", type=float, default=0.02,
        help="fatal ceiling on detached-profiler overhead (default 2%%)",
    )
    ap.add_argument(
        "--max-attached-overhead", type=float, default=0.05,
        help="ceiling on attached-sampler overhead (default 5%%); "
        "advisory under --record-only",
    )
    ap.add_argument("--out", default="BENCH_paremsp.json")
    ap.add_argument(
        "--record-only",
        action="store_true",
        help="write the record but keep the attached-overhead timing "
        "gate advisory (shared CI runners); the telemetry-chain checks "
        "and the disabled-overhead gate stay fatal",
    )
    args = ap.parse_args(argv)

    record = run(
        requests=args.requests,
        side=args.side,
        density=args.density,
        workers=args.workers,
        batch_size=args.batch_size,
        repeats=args.repeats,
        seed=args.seed,
    )

    out = pathlib.Path(args.out)
    merged: dict = {}
    if out.exists():
        try:
            merged = json.loads(out.read_text())
        except (json.JSONDecodeError, OSError):
            merged = {}
    if not isinstance(merged, dict):
        merged = {}
    merged["metrics"] = record
    with open(out, "w") as fh:
        json.dump(merged, fh, indent=2)
        fh.write("\n")

    svc = record["service"]
    prof = record["profiler"]
    print(
        f"metrics smoke: {svc['spans']} spans across "
        f"{len(svc['lanes'])} lanes ({svc['worker_lanes']} workers), "
        f"{svc['stitched_requests']}/{svc['frontend_requests']} "
        f"requests stitched across the fork boundary; "
        f"{svc['scrape']['families']} metric families mid-run "
        f"({svc['scrape']['slo_breaches']:.0f} slo breach(es)); "
        f"sampler overhead {prof['disabled_overhead'] * 100:+.2f}% "
        f"disabled / {prof['attached_overhead'] * 100:+.2f}% attached "
        f"-> {out}"
    )

    ok = True
    if prof["disabled_overhead"] > args.max_disabled_overhead:
        print(
            f"FAIL: detached profiler costs "
            f"{prof['disabled_overhead'] * 100:.2f}% "
            f"(ceiling {args.max_disabled_overhead * 100:.1f}%)"
        )
        ok = False
    if prof["attached_overhead"] > args.max_attached_overhead:
        msg = (
            f"attached sampler costs "
            f"{prof['attached_overhead'] * 100:.2f}% "
            f"(ceiling {args.max_attached_overhead * 100:.1f}%)"
        )
        if args.record_only:
            print(f"warn: {msg} (record-only: not fatal)")
        else:
            print(f"FAIL: {msg}")
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
