"""PAREMSP — the paper's shared-memory parallel AREMSP (Algorithm 7).

Pipeline (one :func:`~repro.parallel.paremsp.paremsp` call):

1. **Partition** — rows are split into per-thread chunks of equal size,
   aligned to the two-row scan granularity, each with a disjoint
   provisional-label range (:mod:`~repro.parallel.partition`);
2. **Local scan** — every chunk runs the AREMSP scan independently
   (labels cannot collide across chunks by construction);
3. **Boundary merge** — the first row of every chunk is merged against
   the last row of its predecessor with the lock-based parallel Rem's
   union-find (:mod:`~repro.parallel.boundary`,
   :mod:`repro.unionfind.parallel`);
4. **Flatten + label** — sparse-range FLATTEN and the final gather.

Execution **backends** (:mod:`~repro.parallel.backends`) decouple the
algorithm from the execution vehicle:

* ``serial`` — chunks run sequentially; deterministic reference, also
  records per-chunk durations;
* ``threads`` — real ``threading`` + striped locks (CPython's GIL
  prevents speedup but exercises the real concurrency structure);
* ``processes`` — fork-based workers for the scan phase (true
  parallelism; merge runs in the coordinator);
* ``simulated`` — the cost-model machine of :mod:`repro.simmachine`
  (used for the paper's 24-core scaling figures; see DESIGN.md §2).
"""

from .distributed import distributed_label
from .net import net_shard_label
from .paremsp import ParallelResult, paremsp
from .partition import RowChunk, partition_rows
from .sharded import ShardPlan, build_reduce_schedule, plan_shards, shard_label
from .tiled import tiled_label

__all__ = [
    "paremsp",
    "ParallelResult",
    "RowChunk",
    "partition_rows",
    "distributed_label",
    "tiled_label",
    "shard_label",
    "net_shard_label",
    "ShardPlan",
    "plan_shards",
    "build_reduce_schedule",
]
