"""Link-by-rank union with full path compression (LRPC).

This is the union-find technique the CCLLRPC baseline (Wu, Otoo, Suzuki
2009, reference [36]) uses, and the one the paper argues is *not* the best
available [38], [40]. We implement it both as raw kernels over parallel
``parent``/``rank`` sequences and as a :class:`DisjointSets` subclass.

CCL note: Wu et al.'s ``merge(p, x, y)`` returns the *smaller* of the two
roots so the provisional label stored in the image is minimal; rank-based
linking does not guarantee the root is the set minimum, so the CCL driver
must use the returned representative, not assume root == min. Our
:func:`union_by_rank` therefore returns the set's minimum root index and
links the other root beneath it when ranks tie, matching the reference
implementation's behaviour that labels stay usable by FLATTEN (FLATTEN
requires ``p[i] <= i``; see :mod:`repro.unionfind.flatten`).
"""

from __future__ import annotations

from typing import MutableSequence

from .base import DisjointSets

__all__ = [
    "find_compress",
    "find_compress_counting",
    "union_by_rank",
    "union_by_rank_counting",
    "LinkByRankPC",
]


def find_compress(p: MutableSequence[int], x: int) -> int:
    """Find the root of *x* with full (two-pass) path compression."""
    root = x
    while p[root] != root:
        root = p[root]
    while p[x] != root:
        nxt = p[x]
        p[x] = root
        x = nxt
    return root


def find_compress_counting(p: MutableSequence[int], x: int, counter) -> int:
    """Instrumented :func:`find_compress` (one ``uf_step`` per hop)."""
    root = x
    while p[root] != root:
        counter.uf_step += 1
        root = p[root]
    while p[x] != root:
        counter.uf_step += 1
        nxt = p[x]
        p[x] = root
        x = nxt
    return root


def union_by_rank(
    p: MutableSequence[int], rank: MutableSequence[int], x: int, y: int
) -> int:
    """Unite sets of *x* and *y* by rank; return the set's minimum root.

    The structural link follows rank (shorter tree under taller); when the
    surviving root is not the minimum of the two roots, the minimum is
    re-pointed to stay the published representative by a final compression
    step: we always *return* ``min(rootx, rooty)`` and ensure that element
    is a root by linking the larger root under it when ranks tie or when
    the min root has strictly larger rank. Net effect: ``p[i] <= i`` holds
    for all i, which FLATTEN requires.
    """
    rootx = find_compress(p, x)
    rooty = find_compress(p, y)
    if rootx == rooty:
        return rootx
    lo, hi = (rootx, rooty) if rootx < rooty else (rooty, rootx)
    # Link the higher-index root under the lower-index one. Rank still
    # controls tree growth: bump the survivor's rank only on ties, as in
    # classic union-by-rank (the "which root survives" choice is forced by
    # the p[i] <= i invariant CCL labeling needs).
    p[hi] = lo
    if rank[lo] == rank[hi]:
        rank[lo] += 1
    elif rank[lo] < rank[hi]:
        rank[lo] = rank[hi]
    return lo


def union_by_rank_counting(
    p: MutableSequence[int],
    rank: MutableSequence[int],
    x: int,
    y: int,
    counter,
) -> int:
    """Instrumented :func:`union_by_rank`."""
    counter.uf_merge += 1
    rootx = find_compress_counting(p, x, counter)
    rooty = find_compress_counting(p, y, counter)
    if rootx == rooty:
        return rootx
    lo, hi = (rootx, rooty) if rootx < rooty else (rooty, rootx)
    counter.uf_step += 1
    p[hi] = lo
    if rank[lo] == rank[hi]:
        rank[lo] += 1
    elif rank[lo] < rank[hi]:
        rank[lo] = rank[hi]
    return lo


class LinkByRankPC(DisjointSets):
    """Array-based link-by-rank + path-compression disjoint sets.

    >>> ds = LinkByRankPC(4)
    >>> ds.union(3, 1)
    1
    >>> ds.find(3)
    1
    """

    def __init__(self, n: int) -> None:
        super().__init__(n)
        self.rank: list[int] = [0] * n

    def add(self) -> int:
        self.rank.append(0)
        return super().add()

    def find(self, x: int) -> int:
        return find_compress(self.p, x)

    def union(self, x: int, y: int) -> int:
        return union_by_rank(self.p, self.rank, x, y)
