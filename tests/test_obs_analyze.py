"""The trace analyzer: speedup decomposition, Amdahl fits, contention."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data.synthetic import blobs
from repro.obs import (
    Span,
    TraceRecorder,
    amdahl_fit,
    analyze_report,
    analyze_spans,
    trace_thread_count,
    use_recorder,
)
from repro.parallel import paremsp


def synthetic_spans():
    """A hand-built 2-thread run: scan parallel, flatten serial."""
    return [
        Span("machine", "scan", 0.0, 1.0),
        Span("thread 0", "scan", 0.0, 0.9),
        Span("thread 1", "scan", 0.0, 0.5),
        Span("machine", "flatten", 1.0, 1.2),
        Span("machine", "label", 1.2, 1.5),
    ]


class TestAnalyzeSpans:
    def test_wall_and_phase_walls(self):
        a = analyze_spans(synthetic_spans())
        assert a.wall_seconds == pytest.approx(1.5)
        by_name = {p.phase: p for p in a.phases}
        assert by_name["scan"].wall == pytest.approx(1.0)
        assert by_name["flatten"].wall == pytest.approx(0.2)

    def test_phase_order_follows_timeline(self):
        a = analyze_spans(synthetic_spans())
        assert [p.phase for p in a.phases] == ["scan", "flatten", "label"]

    def test_imbalance(self):
        a = analyze_spans(synthetic_spans())
        scan = next(p for p in a.phases if p.phase == "scan")
        # busy 0.9 and 0.5 -> mean 0.7, max 0.9 -> 100*(1 - 0.7/0.9)
        assert scan.imbalance_pct == pytest.approx(100 * (1 - 0.7 / 0.9))
        assert scan.critical_path == pytest.approx(0.9)
        assert scan.idle_seconds == pytest.approx(0.4)

    def test_serial_phase_has_zero_imbalance(self):
        a = analyze_spans(synthetic_spans())
        flatten = next(p for p in a.phases if p.phase == "flatten")
        assert flatten.imbalance_pct == 0.0
        assert flatten.n_threads == 0

    def test_serial_fraction_coverage(self):
        # workers cover [0, 0.9]; wall is [0, 1.5] -> serial 0.6/1.5
        a = analyze_spans(synthetic_spans())
        assert a.serial_seconds == pytest.approx(0.6)
        assert a.serial_fraction == pytest.approx(0.4)

    def test_overlapping_worker_spans_not_double_counted(self):
        spans = [
            Span("machine", "scan", 0.0, 1.0),
            Span("thread 0", "scan", 0.0, 0.8),
            Span("thread 1", "scan", 0.2, 0.8),
        ]
        a = analyze_spans(spans)
        assert a.serial_seconds == pytest.approx(0.2)

    def test_worker_lanes_excluded_from_coverage(self):
        # "worker N" is a process-lifecycle envelope, not chunk work
        spans = [
            Span("machine", "scan", 0.0, 1.0),
            Span("worker 0", "worker", 0.0, 1.0),
            Span("thread 0", "scan", 0.0, 0.5),
        ]
        a = analyze_spans(spans)
        assert a.serial_seconds == pytest.approx(0.5)

    def test_empty_trace(self):
        a = analyze_spans([])
        assert a.wall_seconds == 0.0
        assert a.phases == ()
        assert a.serial_fraction == 0.0
        assert "wall clock" in a.render()

    def test_thread_count_from_gauge_beats_lanes(self):
        spans = [Span("thread 0", "scan", 0.0, 1.0)]
        metrics = {"counters": {}, "gauges": {"paremsp.n_chunks": 8.0}}
        assert trace_thread_count(spans, metrics) == 8
        assert trace_thread_count(spans) == 1

    def test_contention_from_metrics(self):
        metrics = {
            "counters": {
                "merger.merges": 10,
                "merger.lock_acquires": 20,
                "merger.lock_contended": 5,
                "merger.splices": 3,
                "unionfind.boundary_unions": 10,
            },
            "gauges": {},
        }
        a = analyze_spans(synthetic_spans(), metrics)
        assert a.contention.contention_pct == pytest.approx(25.0)
        assert a.contention.has_lock_data
        assert "5 contended (25.00%)" in a.contention.describe()

    def test_contention_without_lock_data(self):
        metrics = {
            "counters": {"unionfind.boundary_unions": 7},
            "gauges": {},
        }
        a = analyze_spans(synthetic_spans(), metrics)
        assert not a.contention.has_lock_data
        assert "lock-free" in a.contention.describe()

    def test_as_dict_shape(self):
        a = analyze_spans(synthetic_spans())
        d = a.as_dict()
        assert set(d) == {
            "wall_seconds",
            "n_threads",
            "serial_seconds",
            "serial_fraction",
            "phases",
            "contention",
            "faults",
        }
        assert d["phases"][0]["phase"] == "scan"
        assert "imbalance_pct" in d["phases"][0]

    def test_render_mentions_the_headline_numbers(self):
        a = analyze_spans(synthetic_spans())
        text = a.render()
        assert "serial fraction" in text
        assert "imbalance" in text
        assert "merge contention" in text


class TestAnalyzeRealTraces:
    """The acceptance path: a 4-thread PAREMSP trace end to end."""

    @pytest.fixture(scope="class")
    def traced_report(self):
        img = blobs((96, 96), 0.6, 4, seed=2)
        rec = TraceRecorder()
        with use_recorder(rec):
            paremsp(img, n_threads=4, backend="threads",
                    engine="interpreter")
        return rec.report()

    def test_four_thread_decomposition(self, traced_report):
        a = analyze_report(traced_report)
        assert a.n_threads == 4
        assert 0.0 < a.serial_fraction <= 1.0
        scan = next(p for p in a.phases if p.phase == "scan")
        assert scan.n_threads == 4
        assert 0.0 <= scan.imbalance_pct < 100.0

    def test_four_thread_contention_counters_present(self, traced_report):
        a = analyze_report(traced_report)
        # interpreter-engine threads backend routes through the
        # LockStripedMerger accounting kernel
        assert a.contention.merges > 0
        assert a.contention.lock_acquires >= 0
        assert a.contention.boundary_unions > 0

    def test_merger_stripes_gauge_recorded(self, traced_report):
        assert traced_report.metrics["gauges"]["merger.stripes"] >= 1

    def test_run_shape_gauges_recorded(self, traced_report):
        gauges = traced_report.metrics["gauges"]
        assert gauges["paremsp.n_threads"] == 4.0
        assert gauges["paremsp.n_chunks"] >= 1.0
        assert gauges["paremsp.pixels"] == 96.0 * 96.0

    def test_simulated_trace_analyzes(self):
        img = blobs((48, 48), 0.6, 4, seed=0)
        rec = TraceRecorder()
        with use_recorder(rec):
            paremsp(img, n_threads=3, backend="simulated")
        a = analyze_report(rec.report())
        assert a.n_threads == 3
        assert {p.phase for p in a.phases} >= {"scan", "flatten"}
        # the model records merger counters via sim_metrics
        assert a.contention.merges > 0


class TestAmdahlFit:
    def test_exact_recovery(self):
        # T(n) = 2.0 * (0.25 + 0.75/n)
        runs = {n: 2.0 * (0.25 + 0.75 / n) for n in (1, 2, 4, 8)}
        fit = amdahl_fit(runs)
        assert fit.serial_fraction == pytest.approx(0.25, abs=1e-9)
        assert fit.t1 == pytest.approx(2.0, abs=1e-9)
        assert fit.max_speedup == pytest.approx(4.0, abs=1e-6)
        assert fit.residual == pytest.approx(0.0, abs=1e-9)

    def test_predict_matches_inputs(self):
        runs = {1: 1.0, 4: 0.4}
        fit = amdahl_fit(runs)
        for n, t in runs.items():
            assert fit.predict(n) == pytest.approx(t, abs=1e-9)

    def test_perfectly_parallel(self):
        runs = {n: 1.0 / n for n in (1, 2, 4)}
        fit = amdahl_fit(runs)
        assert fit.serial_fraction == pytest.approx(0.0, abs=1e-9)
        assert math.isinf(fit.max_speedup)

    def test_serial_fraction_clipped(self):
        # anti-scaling (slower with more threads) must not report s > 1
        fit = amdahl_fit({1: 1.0, 2: 2.0, 4: 4.0})
        assert 0.0 <= fit.serial_fraction <= 1.0

    def test_pair_sequence_accepted(self):
        fit = amdahl_fit([(1, 1.0), (4, 0.4)])
        assert fit.points == ((1, 1.0), (4, 0.4))

    def test_needs_two_distinct_counts(self):
        with pytest.raises(ValueError, match="2 distinct"):
            amdahl_fit({4: 0.4})
        with pytest.raises(ValueError, match="distinct"):
            amdahl_fit([(4, 0.4), (4, 0.41)])

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError, match=">= 1"):
            amdahl_fit({0: 1.0, 4: 0.4})

    def test_describe(self):
        fit = amdahl_fit({1: 1.0, 4: 0.4})
        text = fit.describe()
        assert "serial fraction" in text
        assert "ceiling" in text

    def test_fit_from_real_scaling_curve(self):
        """Simulated scaling curve -> plausible Amdahl decomposition."""
        img = blobs((64, 64), 0.6, 4, seed=1)
        runs = {}
        for n in (1, 2, 4):
            result = paremsp(img, n_threads=n, backend="simulated")
            runs[n] = sum(result.phase_seconds.values())
        fit = amdahl_fit(runs)
        assert 0.0 <= fit.serial_fraction <= 1.0
        assert fit.t1 > 0
