"""Cost model: operation counts -> simulated seconds.

The model charges a fixed cost per operation class, plus machine-level
overheads:

* ``t_spawn`` per team member — the OpenMP parallel-region entry cost the
  master pays serially (this is what bends the small-image curves of
  Figure 4 downward at high thread counts);
* ``t_barrier`` per implicit barrier between phases (``omp for`` joins);
* a memory-bandwidth ceiling ``streaming_parallelism`` for the two
  streaming phases (labeling gather; optionally scan) — a socket's
  channels saturate before its cores do.

All costs are in seconds. Defaults are meaningless placeholders; use
:data:`repro.simmachine.hopper.HOPPER` or calibrate your own (see
EXPERIMENTS.md for the calibration procedure).
"""

from __future__ import annotations

import dataclasses

from ..errors import CostModelError
from .counters import OpCounter

__all__ = ["CostModel"]


@dataclasses.dataclass(frozen=True)
class CostModel:
    """Per-operation costs (seconds) of a simulated shared-memory node."""

    #: scan-loop iteration: index arithmetic + current-pixel load + label
    #: store.
    t_pixel: float = 4e-9
    #: one mask-neighbour load + comparison.
    t_read: float = 1.2e-9
    #: fixed overhead of a merge/union call.
    t_merge: float = 10e-9
    #: one step of the union-find walk (load + compare + possible store).
    t_step: float = 3e-9
    #: one lock acquire/release pair in the parallel MERGER.
    t_lock: float = 60e-9
    #: FLATTEN per table entry.
    t_flatten: float = 3e-9
    #: labeling-phase gather per pixel (streaming, bandwidth-bound).
    t_label: float = 1.5e-9
    #: serial cost the master pays per spawned team member.
    t_spawn: float = 12e-6
    #: implicit barrier cost per phase join, per member.
    t_barrier: float = 0.4e-6
    #: cap on effective parallelism of streaming phases (memory channels);
    #: ``None`` = compute-bound everywhere.
    streaming_parallelism: float | None = None

    def __post_init__(self) -> None:
        for f in dataclasses.fields(self):
            v = getattr(self, f.name)
            if v is not None and v < 0:
                raise CostModelError(f"cost {f.name} must be >= 0, got {v}")
        if self.streaming_parallelism is not None and (
            self.streaming_parallelism < 1
        ):
            raise CostModelError(
                "streaming_parallelism must be >= 1 or None, got "
                f"{self.streaming_parallelism}"
            )

    def scan_seconds(self, ops: OpCounter) -> float:
        """Simulated time one thread spends in its local scan."""
        return (
            self.t_pixel * ops.pixel_visits
            + self.t_read * ops.neighbor_reads
            + self.t_merge * ops.uf_merge
            + self.t_step * ops.uf_step
        )

    def merge_seconds(self, ops: OpCounter) -> float:
        """Simulated time one thread spends in its boundary-merge share."""
        return (
            self.t_read * ops.neighbor_reads
            + self.t_merge * ops.uf_merge
            + self.t_step * ops.uf_step
            + self.t_lock * ops.lock_ops
        )

    def flatten_seconds(self, n_entries: int) -> float:
        """Simulated time of the (serial) FLATTEN over *n_entries*."""
        return self.t_flatten * n_entries

    def label_seconds(self, n_pixels: int, n_threads: int) -> float:
        """Simulated time of the final labeling pass (parallel gather)."""
        eff = float(n_threads)
        if self.streaming_parallelism is not None:
            eff = min(eff, self.streaming_parallelism)
        return self.t_label * n_pixels / max(1.0, eff)

    def spawn_seconds(self, n_threads: int) -> float:
        """Serial team-construction cost for an *n_threads* region."""
        return self.t_spawn * max(0, n_threads - 1)

    def barrier_seconds(self, n_threads: int, n_barriers: int) -> float:
        return self.t_barrier * n_threads * n_barriers
