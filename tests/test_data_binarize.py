"""im2bw fidelity tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.binarize import full_scale_of, im2bw, rgb_to_gray
from repro.errors import ImageFormatError


def test_float_threshold_strictly_greater():
    img = np.array([[0.49, 0.5, 0.51]])
    assert im2bw(img, 0.5).tolist() == [[0, 0, 1]]


def test_uint8_threshold_scales_to_full_range():
    img = np.array([[127, 128, 255]], dtype=np.uint8)
    # 0.5 * 255 = 127.5: 128 and 255 are white
    assert im2bw(img, 0.5).tolist() == [[0, 1, 1]]


def test_uint16_scale():
    img = np.array([[32767, 32768, 65535]], dtype=np.uint16)
    assert im2bw(img, 0.5).tolist() == [[0, 1, 1]]


def test_level_bounds():
    img = np.zeros((2, 2))
    with pytest.raises(ImageFormatError):
        im2bw(img, -0.1)
    with pytest.raises(ImageFormatError):
        im2bw(img, 1.1)


def test_level_extremes():
    img = np.array([[0.0, 0.3, 1.0]])
    assert im2bw(img, 0.0).tolist() == [[0, 1, 1]]
    assert im2bw(img, 1.0).tolist() == [[0, 0, 0]]


def test_rgb_converted_via_luma():
    # pure green is bright (0.587), pure blue is dark (0.114)
    img = np.zeros((1, 2, 3))
    img[0, 0, 1] = 1.0  # green
    img[0, 1, 2] = 1.0  # blue
    assert im2bw(img, 0.5).tolist() == [[1, 0]]


def test_rgb_to_gray_weights():
    rgb = np.ones((1, 1, 3))
    assert rgb_to_gray(rgb)[0, 0] == pytest.approx(0.9999, abs=1e-3)
    red = np.zeros((1, 1, 3))
    red[..., 0] = 1.0
    assert rgb_to_gray(red)[0, 0] == pytest.approx(0.2989)


def test_rgb_to_gray_shape_validation():
    with pytest.raises(ImageFormatError):
        rgb_to_gray(np.zeros((4, 4)))
    with pytest.raises(ImageFormatError):
        rgb_to_gray(np.zeros((4, 4, 4)))


def test_im2bw_rejects_1d():
    with pytest.raises(ImageFormatError):
        im2bw(np.zeros(5))


def test_output_dtype_and_values():
    out = im2bw(np.random.default_rng(0).random((8, 8)))
    assert out.dtype == np.uint8
    assert set(np.unique(out)) <= {0, 1}


def test_full_scale_of():
    assert full_scale_of(np.zeros(1, dtype=np.uint8)) == 255.0
    assert full_scale_of(np.zeros(1, dtype=np.uint16)) == 65535.0
    assert full_scale_of(np.zeros(1, dtype=np.float64)) == 1.0


def test_integer_rgb_input():
    img = np.zeros((1, 1, 3), dtype=np.uint8)
    img[0, 0] = (255, 255, 255)
    assert im2bw(img, 0.5)[0, 0] == 1
