"""repro — a reproduction of *"A New Parallel Algorithm for Two-Pass
Connected Component Labeling"* (Gupta, Palsetia, Patwary, Agrawal,
Choudhary; IPPS workshops 2014 / arXiv:1606.05973).

The package provides:

* the paper's proposed sequential algorithms **CCLREMSP** and **AREMSP**
  and its parallel algorithm **PAREMSP** (:mod:`repro.ccl`,
  :mod:`repro.parallel`);
* every baseline they are compared against (CCLLRPC, ARUN, RUN,
  multipass, Suzuki) and the full union-find substrate including Rem's
  algorithm with splicing and its lock-based parallel variant
  (:mod:`repro.unionfind`);
* synthetic stand-ins for the paper's four image suites and a simulated
  shared-memory machine for the scaling experiments (:mod:`repro.data`,
  :mod:`repro.simmachine`);
* benchmark harnesses regenerating every table and figure of the
  evaluation (:mod:`repro.bench`, ``python -m repro.bench``).

Quick start::

    import numpy as np
    import repro

    image = (np.random.default_rng(0).random((256, 256)) < 0.4)
    labels, n = repro.label(image)            # AREMSP, the paper's best
    result = repro.ccl.aremsp(image)          # full result object
    par = repro.label_parallel(image, n_threads=4)   # PAREMSP
"""

from __future__ import annotations

import numpy as np

from . import (
    analysis,
    ccl,
    checkpoint,
    data,
    mp,
    obs,
    parallel,
    service,
    simmachine,
    unionfind,
    verify,
    volume,
)
from .ccl import CCLResult
from .ccl.grayscale import grayscale_label
from .ccl.registry import get_algorithm
from .obs import TraceRecorder, use_recorder
from .parallel.distributed import distributed_label
from .parallel.paremsp import paremsp
from .parallel.tiled import tiled_label
from .types import Connectivity, ensure_input
from .volume import volume_label

__version__ = "1.9.0"

__all__ = [
    "label",
    "label_parallel",
    "paremsp",
    "grayscale_label",
    "volume_label",
    "tiled_label",
    "distributed_label",
    "CCLResult",
    "Connectivity",
    "TraceRecorder",
    "use_recorder",
    "ensure_input",
    "ccl",
    "checkpoint",
    "parallel",
    "unionfind",
    "data",
    "verify",
    "simmachine",
    "analysis",
    "volume",
    "obs",
    "mp",
    "service",
]


def label(
    image: np.ndarray,
    algorithm: str = "aremsp",
    connectivity: int = 8,
    engine: str | None = None,
) -> tuple[np.ndarray, int]:
    """Label connected components of a binary *image*.

    Parameters
    ----------
    image:
        2-D array-like; nonzero == foreground (validated to {0, 1}).
    algorithm:
        Registry name; default is the paper's fastest sequential
        algorithm, AREMSP. See :data:`repro.ccl.registry.ALGORITHMS`.
    connectivity:
        8 (paper default) or 4.
    engine:
        ``None`` (the named algorithm as published), ``"vectorized"``
        as a convenience alias for the NumPy run-based engine,
        ``"auto"`` to let the measured dispatch table pick the fastest
        engine for this image's statistics (see
        :mod:`repro.ccl.dispatch`), or any registry name (``"itequiv"``,
        ``"coarse2fine"``, ``"block2x2"``, ...) to force that kernel.

    Returns
    -------
    (labels, n_components):
        ``int32`` label image (background 0, components ``1..K`` in
        raster first-appearance order) and the component count.
    """
    if engine == "vectorized":
        fn = get_algorithm("run-vectorized")
    elif engine in (None, "python"):
        fn = get_algorithm(algorithm)
    else:
        fn = get_algorithm(engine)  # registry names incl. "auto"
    result = fn(ensure_input(image), connectivity)
    return result.labels, result.n_components


def label_parallel(
    image: np.ndarray,
    n_threads: int = 4,
    backend: str = "serial",
    connectivity: int = 8,
    engine: str = "interpreter",
) -> tuple[np.ndarray, int]:
    """Label *image* with PAREMSP (parallel AREMSP) and return
    ``(labels, n_components)``; *engine* selects the per-chunk scan
    kernel (``interpreter`` is the paper-faithful default,
    ``vectorized`` the NumPy fast path). See
    :func:`repro.parallel.paremsp` for the full-result API, backend and
    engine semantics."""
    result = paremsp(
        image,
        n_threads=n_threads,
        backend=backend,
        connectivity=connectivity,
        engine=engine,
    )
    return result.labels, result.n_components
