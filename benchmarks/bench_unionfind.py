"""Union-find ablation: the [40]-style variant comparison.

Times every disjoint-set variant on the three edge-stream families of
Patwary, Blair, Manne — the evidence base for the paper's "REMSP is the
best technique" claim. The CCL-shaped stream (8-connected grid) is the
one that matters for this paper; random and ring streams bracket the
easy and adversarial cases.
"""

from __future__ import annotations

import pytest

from repro.unionfind.graph import (
    count_components,
    grid_edge_stream,
    random_edge_stream,
    ring_edge_stream,
)
from repro.unionfind.variants import ALL_VARIANTS

N_VERTICES = 4096

STREAMS = {
    "grid8": lambda: grid_edge_stream(64, 64, diagonal=True),
    "random": lambda: random_edge_stream(N_VERTICES, 6000, seed=40),
    "ring": lambda: ring_edge_stream(N_VERTICES),
}

#: quick-find's eager rewrites are quadratic on the ring; keep it out of
#: the adversarial stream so the suite stays fast.
SKIP = {("quick-find", "ring"), ("naive", "ring")}


@pytest.mark.parametrize("stream", sorted(STREAMS))
@pytest.mark.parametrize("variant", sorted(ALL_VARIANTS))
def test_variant_on_stream(benchmark, variant, stream):
    if (variant, stream) in SKIP:
        pytest.skip("quadratic variant on adversarial stream")
    edges = STREAMS[stream]()
    n = N_VERTICES if stream != "grid8" else 64 * 64

    def run():
        return count_components(n, edges, ds_class=ALL_VARIANTS[variant])

    components = benchmark(run)
    assert components >= 1


def test_remsp_beats_lrpc_on_ccl_stream(capsys):
    """The paper's data-structure pick, measured on the CCL-shaped
    stream: REMSP must not lose to link-by-rank + path compression."""
    import time

    edges = grid_edge_stream(96, 96, diagonal=True)
    n = 96 * 96

    def clock(name: str) -> float:
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            count_components(n, edges, ds_class=ALL_VARIANTS[name])
            best = min(best, time.perf_counter() - t0)
        return best

    rem = clock("rem-sp")
    lrpc = clock("lrpc")
    with capsys.disabled():
        print(f"\ngrid8 stream: rem-sp {rem * 1e3:.1f} ms, "
              f"lrpc {lrpc * 1e3:.1f} ms (ratio {lrpc / rem:.2f}x)")
    assert rem < lrpc * 1.2  # REMSP at worst within noise of LRPC
