"""The core correctness suite: every CCL algorithm vs two oracles.

Each algorithm is compared against the BFS flood-fill oracle (partition
equality and component count) on every structural image and on random
images, for both connectivities; the raster-order algorithms are also
checked for bit-exact label equality with the oracle, and SciPy serves
as a third, independent implementation when present.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ccl.registry import (
    ALGORITHMS,
    EIGHT_CONNECTIVITY_ONLY,
    get_algorithm,
)
from repro.data.synthetic import (
    checkerboard,
    diagonal_chains,
    hilbert_curve,
    spiral,
)
from repro.errors import ConnectivityError
from repro.verify import (
    canonicalize_labeling,
    flood_fill_label,
    have_scipy,
    labelings_equivalent,
    scipy_label,
)

ALL_NAMES = sorted(ALGORITHMS)

#: algorithms that scan strictly in raster order, whose FLATTEN labels
#: must match the oracle's raster first-appearance numbering exactly.
RASTER_ORDER = ("ccllrpc", "cclremsp", "run", "run-vectorized", "suzuki", "contour")

#: algorithms whose output is canonical (raster first-appearance
#: numbering) even though they do not scan in raster order: the
#: propagation engines converge to per-component *minimum* linear
#: indexes, which sort exactly like first appearances.
CANONICAL_OUTPUT = RASTER_ORDER + ("itequiv", "coarse2fine")

#: algorithms that also support 4-connectivity.
FOUR_CONN = tuple(n for n in ALL_NAMES if n not in EIGHT_CONNECTIVITY_ONLY)

#: adversarial pattern cases every registry entry must survive. These
#: target specific engine weak spots: serpentine paths (propagation must
#: turn a corner per sweep), purely diagonal adjacency (no run of
#: length > 1 anywhere), unit checkerboards (maximum component count at
#: 4-connectivity, a single component at 8), and nested spirals (one
#: long component crossing every block seam).
ADVERSARIAL_IMAGES = [
    ("hilbert", hilbert_curve((20, 20))),
    ("diag_zigzag", diagonal_chains((17, 19), spacing=3, zigzag=True)),
    ("diag_straight", diagonal_chains((16, 16), spacing=2, zigzag=False)),
    ("checker_unit", checkerboard((13, 14))),
    ("spiral", spiral((21, 21), gap=2)),
]


@pytest.mark.parametrize("name", ALL_NAMES)
def test_partition_matches_oracle_8(structural_image, name):
    expected, n_expected = flood_fill_label(structural_image, 8)
    result = get_algorithm(name)(structural_image, 8)
    assert result.n_components == n_expected
    assert labelings_equivalent(result.labels, expected)


@pytest.mark.parametrize("name", FOUR_CONN)
def test_partition_matches_oracle_4(structural_image, name):
    expected, n_expected = flood_fill_label(structural_image, 4)
    result = get_algorithm(name)(structural_image, 4)
    assert result.n_components == n_expected
    assert labelings_equivalent(result.labels, expected)


@pytest.mark.parametrize("name", CANONICAL_OUTPUT)
def test_canonical_algorithms_match_oracle_exactly(structural_image, name):
    expected, _ = flood_fill_label(structural_image, 8)
    result = get_algorithm(name)(structural_image, 8)
    assert np.array_equal(result.labels, expected)


@pytest.mark.parametrize("dtype", [np.uint8, bool, np.int64],
                         ids=["uint8", "bool", "int64"])
@pytest.mark.parametrize("connectivity", [4, 8])
@pytest.mark.parametrize("pattern,img", ADVERSARIAL_IMAGES,
                         ids=[n for n, _ in ADVERSARIAL_IMAGES])
@pytest.mark.parametrize("name", ALL_NAMES)
def test_differential_matrix_vs_aremsp(name, pattern, img, connectivity,
                                       dtype):
    """The generalized oracle matrix: engine x connectivity x dtype x
    adversarial pattern, byte-identical to AREMSP after
    canonicalization. New registry entries join automatically."""
    if connectivity != 8 and name in EIGHT_CONNECTIVITY_ONLY:
        pytest.skip("8-connectivity-only engine")
    reference = canonicalize_labeling(
        get_algorithm("aremsp")(img, connectivity).labels
    )
    result = get_algorithm(name)(img.astype(dtype), connectivity)
    got = canonicalize_labeling(result.labels)
    assert got.tobytes() == reference.tobytes()
    assert result.n_components == int(reference.max())


@pytest.mark.parametrize("name", ALL_NAMES)
def test_connectivity_gating_is_typed(name):
    """Every registry entry either supports 4-connectivity (and then
    matches the 4-connectivity oracle) or refuses it with the typed
    :class:`ConnectivityError` — never a wrong answer or a bare crash."""
    img = checkerboard((9, 9))
    expected, n_expected = flood_fill_label(img, 4)
    if name in EIGHT_CONNECTIVITY_ONLY:
        with pytest.raises(ConnectivityError):
            get_algorithm(name)(img, 4)
    else:
        result = get_algorithm(name)(img, 4)
        assert result.n_components == n_expected
        assert labelings_equivalent(result.labels, expected)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_labels_are_consecutive(structural_image, name):
    """Final labels must be exactly {0} | {1..K} (FLATTEN contract)."""
    result = get_algorithm(name)(structural_image, 8)
    present = np.unique(result.labels)
    positive = present[present > 0]
    assert positive.size == result.n_components
    if result.n_components:
        assert positive.min() == 1
        assert positive.max() == result.n_components


@pytest.mark.parametrize("name", ALL_NAMES)
def test_background_preserved(structural_image, name):
    result = get_algorithm(name)(structural_image, 8)
    img = np.asarray(structural_image)
    assert np.array_equal(result.labels == 0, img == 0)


@pytest.mark.skipif(not have_scipy(), reason="scipy not installed")
@pytest.mark.parametrize("connectivity", [4, 8])
def test_oracle_agrees_with_scipy(structural_image, connectivity):
    ours, n_ours = flood_fill_label(structural_image, connectivity)
    theirs, n_theirs = scipy_label(structural_image, connectivity)
    assert n_ours == n_theirs
    assert labelings_equivalent(ours, theirs)


@given(
    img=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=24),
        elements=st.integers(0, 1),
    ),
    connectivity=st.sampled_from([4, 8]),
)
def test_property_all_algorithms_agree(img, connectivity):
    """On arbitrary binary images, every algorithm induces the oracle's
    partition with the oracle's component count."""
    expected, n_expected = flood_fill_label(img, connectivity)
    names = ALL_NAMES if connectivity == 8 else FOUR_CONN
    for name in names:
        result = get_algorithm(name)(img, connectivity)
        assert result.n_components == n_expected, name
        assert labelings_equivalent(result.labels, expected), name


@given(
    img=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=20),
        elements=st.integers(0, 1),
    )
)
def test_property_aremsp_count_equals_scipy(img):
    if not have_scipy():
        pytest.skip("scipy not installed")
    _, n = scipy_label(img, 8)
    result = get_algorithm("aremsp")(img, 8)
    assert result.n_components == n


@pytest.mark.parametrize("name", ALL_NAMES)
def test_result_metadata(structural_image, name):
    result = get_algorithm(name)(structural_image, 8)
    assert result.labels.dtype == np.int32
    assert result.labels.shape == np.asarray(structural_image).shape
    assert result.provisional_count >= result.n_components
    assert set(result.phase_seconds) >= {"scan", "flatten", "label"}
    assert all(v >= 0 for v in result.phase_seconds.values())
    assert result.total_seconds >= 0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_input_not_mutated(name, rng):
    img = (rng.random((13, 14)) < 0.5).astype(np.uint8)
    before = img.copy()
    get_algorithm(name)(img, 8)
    assert np.array_equal(img, before)


@pytest.mark.parametrize("name", ALL_NAMES)
def test_accepts_bool_input(name):
    img = np.zeros((6, 6), dtype=bool)
    img[1:3, 1:3] = True
    img[4:, 4:] = True
    result = get_algorithm(name)(img, 8)
    assert result.n_components == 2
