"""PAREMSP engine smoke benchmark.

``python -m repro.bench.paremsp_smoke --size 2048 --out BENCH_paremsp.json``

Times the interpreter and vectorized engines on one ``size x size``
blob raster (the "natural scene" regime, where the run-based kernel's
advantage is structural rather than pathological), asserts the finals
are byte-identical, and writes a small JSON record. This is the tier-2
regression gate for the vectorised pipeline: it fails loudly if the
engines ever diverge or if the vectorised speedup collapses below
``--min-speedup``.

Interpreter timing uses one repeat (it is the slow side by construction
and dominates wall clock); the vectorized engine gets ``--repeats``
(best-of) like the other harnesses in this package.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import timeit

import numpy as np

from ..data.synthetic import blobs
from ..obs import (
    NULL_RECORDER,
    TraceRecorder,
    use_recorder,
    write_trace_jsonl,
)
from ..parallel.paremsp import paremsp
from .timing import measure

__all__ = ["run", "trace_backends", "main"]

#: backends a ``--trace`` run exercises (simulated traces are covered by
#: the simmachine suite; the three real executors are the news here).
TRACE_BACKENDS = ("serial", "threads", "processes")


def _disabled_overhead_fraction(
    vectorized_seconds: float, n_threads: int
) -> float:
    """Estimated fraction of a vectorized run spent in disabled-recorder
    guards: one ``rec.enabled`` attribute test costs ~tens of ns, and a
    paremsp run executes a handful of guard sites per phase plus one per
    chunk. Recorded so regressions of the zero-overhead contract show up
    in the bench history."""
    if vectorized_seconds <= 0:
        return 0.0
    rec = NULL_RECORDER
    per_guard = timeit.timeit(lambda: rec.enabled, number=20000) / 20000
    guard_sites = 16 + 4 * n_threads
    return per_guard * guard_sites / vectorized_seconds


def run(
    size: int = 2048,
    n_threads: int = 4,
    backend: str = "processes",
    repeats: int = 3,
    seed: int = 0,
    density: float = 0.7,
    smoothing: int = 6,
) -> dict:
    """Time both engines on one raster and return the comparison record.

    The default raster (``blobs`` at density 0.7, smoothing 6) is a
    coarse natural-scene regime: thousands of runs that all merge into
    one sprawling component — the adversarial case for the equivalence
    machinery — where the interpreter's per-pixel cost is structural and
    the vectorised kernel's cost is run-bound. The default backend is
    ``processes``: the configuration the speedup floor is stated
    against.
    """
    img = blobs((size, size), density, smoothing, seed=seed)
    interp = measure(
        paremsp,
        img,
        n_threads=n_threads,
        backend=backend,
        engine="interpreter",
        repeats=1,
    )
    vector = measure(
        paremsp,
        img,
        n_threads=n_threads,
        backend=backend,
        engine="vectorized",
        repeats=repeats,
    )
    identical = bool(
        np.array_equal(interp.result.labels, vector.result.labels)
    )
    return {
        "benchmark": "paremsp_smoke",
        "image": {
            "generator": "blobs",
            "size": size,
            "seed": seed,
            "density": density,
            "smoothing": smoothing,
        },
        "n_threads": n_threads,
        "backend": backend,
        "n_components": int(interp.result.n_components),
        "interpreter_seconds": interp.best,
        "vectorized_seconds": vector.best,
        "speedup": interp.best / vector.best,
        "final_labels_identical": identical,
        "phases": {
            "interpreter": dict(interp.result.phase_seconds),
            "vectorized": dict(vector.result.phase_seconds),
        },
        "disabled_overhead_estimate": _disabled_overhead_fraction(
            vector.best, n_threads
        ),
    }


def trace_backends(
    img: np.ndarray, n_threads: int = 4, connectivity: int = 8
) -> dict[str, object]:
    """One traced vectorized run per real backend; returns
    ``{backend: ObsReport}`` with per-phase, per-thread spans."""
    reports: dict[str, object] = {}
    for backend in TRACE_BACKENDS:
        rec = TraceRecorder()
        with use_recorder(rec):
            paremsp(
                img,
                n_threads=n_threads,
                backend=backend,
                connectivity=connectivity,
                engine="vectorized",
            )
        reports[backend] = rec.report()
    return reports


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--size", type=int, default=2048)
    ap.add_argument("--threads", type=int, default=4)
    ap.add_argument("--backend", default="processes")
    ap.add_argument("--repeats", type=int, default=3)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--density", type=float, default=0.7)
    ap.add_argument("--smoothing", type=int, default=6)
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail unless vectorized beats interpreter by this factor",
    )
    ap.add_argument("--out", default="BENCH_paremsp.json")
    ap.add_argument(
        "--trace",
        action="store_true",
        help="also run one traced vectorized pass per backend, print the "
        "per-phase/per-thread breakdowns, and write trace_<backend>.jsonl "
        "beside --out",
    )
    ap.add_argument(
        "--record-only",
        action="store_true",
        help="write the record but never fail the gates (CI smoke mode "
        "on machines whose timing is not representative)",
    )
    args = ap.parse_args(argv)

    record = run(
        size=args.size,
        n_threads=args.threads,
        backend=args.backend,
        repeats=args.repeats,
        seed=args.seed,
        density=args.density,
        smoothing=args.smoothing,
    )
    if args.trace:
        img = blobs(
            (args.size, args.size),
            args.density,
            args.smoothing,
            seed=args.seed,
        )
        out_dir = pathlib.Path(args.out).resolve().parent
        for backend, report in trace_backends(
            img, n_threads=args.threads
        ).items():
            trace_path = out_dir / f"trace_{backend}.jsonl"
            write_trace_jsonl(report.spans, trace_path)
            print(f"\n[{backend}] trace -> {trace_path}")
            print(report.render())
        print()
    with open(args.out, "w") as fh:
        json.dump(record, fh, indent=2)
        fh.write("\n")
    print(
        f"paremsp {args.size}x{args.size} ({args.backend}, "
        f"{args.threads} threads): interpreter "
        f"{record['interpreter_seconds']:.3f}s, vectorized "
        f"{record['vectorized_seconds']:.3f}s "
        f"({record['speedup']:.1f}x) -> {args.out}"
    )
    if not record["final_labels_identical"]:
        # correctness is machine-independent: fatal even in record-only
        print("FAIL: engines produced different final labelings")
        return 1
    if record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x below the "
            f"{args.min_speedup:.1f}x floor"
        )
        if args.record_only:
            print("(record-only mode: timing gate not fatal)")
            return 0
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
