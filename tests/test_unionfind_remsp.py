"""Unit and property tests for Rem's union-find with splicing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simmachine.counters import OpCounter
from repro.unionfind.base import count_sets, is_valid_parent_array, roots_of
from repro.unionfind.remsp import (
    RemSP,
    find_root,
    merge,
    merge_counting,
    same_set,
)


def test_merge_two_singletons():
    p = list(range(5))
    root = merge(p, 1, 3)
    assert root == 1
    assert find_root(p, 3) == 1
    assert find_root(p, 1) == 1


def test_merge_already_united_is_noop():
    p = list(range(5))
    merge(p, 1, 3)
    snapshot = list(p)
    root = merge(p, 3, 1)
    assert root == 1
    assert p == snapshot


def test_merge_returns_minimum_of_set():
    """Rem's invariant: the smallest element is the representative."""
    p = list(range(10))
    merge(p, 7, 9)
    merge(p, 5, 7)
    merge(p, 9, 2)
    assert find_root(p, 9) == 2
    assert find_root(p, 5) == 2


def test_merge_self():
    p = list(range(3))
    assert merge(p, 2, 2) == 2
    assert p == [0, 1, 2]


def test_monotone_parent_invariant_random(rng):
    """p[i] <= i after any merge sequence (FLATTEN's precondition)."""
    n = 200
    p = list(range(n))
    for _ in range(400):
        x, y = rng.integers(0, n, size=2)
        merge(p, int(x), int(y))
        assert is_valid_parent_array(p)
    assert all(p[i] <= i for i in range(n))


def test_roots_are_set_minima_random(rng):
    n = 120
    p = list(range(n))
    pairs = [tuple(map(int, rng.integers(0, n, size=2))) for _ in range(300)]
    for x, y in pairs:
        merge(p, x, y)
    roots = roots_of(p)
    for root in np.unique(roots):
        members = np.flatnonzero(roots == root)
        assert members.min() == root


@given(
    n=st.integers(1, 64),
    ops=st.lists(st.tuples(st.integers(0, 63), st.integers(0, 63)), max_size=120),
)
def test_property_partition_matches_naive(n, ops):
    """REMSP induces exactly the partition a naive reference builds."""
    p = list(range(n))
    # naive reference: explicit set list
    sets: list[set[int]] = [{i} for i in range(n)]
    where = list(range(n))
    for x, y in ops:
        x %= n
        y %= n
        merge(p, x, y)
        sx, sy = where[x], where[y]
        if sx != sy:
            sets[sx] |= sets[sy]
            for m in sets[sy]:
                where[m] = sx
            sets[sy] = set()
    roots = roots_of(p)
    for i in range(n):
        for j in range(i + 1, n):
            assert (roots[i] == roots[j]) == (where[i] == where[j])


def test_same_set_does_not_mutate():
    p = list(range(8))
    merge(p, 1, 5)
    merge(p, 5, 7)
    snapshot = list(p)
    assert same_set(p, 1, 7)
    assert not same_set(p, 0, 7)
    assert p == snapshot


def test_merge_counting_matches_plain(rng):
    n = 64
    ops = [tuple(map(int, rng.integers(0, n, size=2))) for _ in range(150)]
    p1 = list(range(n))
    p2 = list(range(n))
    counter = OpCounter()
    for x, y in ops:
        r1 = merge(p1, x, y)
        r2 = merge_counting(p2, x, y, counter)
        assert r1 == r2
    assert p1 == p2
    assert counter.uf_merge == len(ops)
    assert counter.uf_step >= 0


def test_merge_counting_steps_zero_for_adjacent_roots():
    p = list(range(4))
    counter = OpCounter()
    merge_counting(p, 0, 1, counter)
    # both are roots: the walk terminates with one comparison + root link
    assert counter.uf_merge == 1
    assert counter.uf_step == 1


class TestRemSPClass:
    def test_init_and_len(self):
        ds = RemSP(10)
        assert len(ds) == 10
        assert ds.n_sets() == 10

    def test_union_find_roundtrip(self):
        ds = RemSP(6)
        assert ds.union(2, 4) == 2
        assert ds.find(4) == 2
        assert ds.same_set(2, 4)
        assert ds.n_sets() == 5

    def test_add_grows(self):
        ds = RemSP(2)
        idx = ds.add()
        assert idx == 2
        assert ds.find(2) == 2
        ds.union(0, 2)
        assert ds.same_set(0, 2)

    def test_sets_materialisation(self):
        ds = RemSP(5)
        ds.union(0, 3)
        ds.union(3, 4)
        parts = ds.sets()
        assert parts[0] == [0, 3, 4]
        assert parts[1] == [1]

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            RemSP(-1)

    def test_zero_size(self):
        ds = RemSP(0)
        assert len(ds) == 0
        assert ds.n_sets() == 0


def test_count_sets_tracks_merges():
    p = list(range(6))
    assert count_sets(p) == 6
    merge(p, 0, 1)
    merge(p, 2, 3)
    assert count_sets(p) == 4
    merge(p, 1, 3)
    assert count_sets(p) == 3
