"""``repro.faults`` — deterministic fault injection + recovery policy.

The ROADMAP's production north star means the parallel phases must
*provably* survive a dead worker, a failed ``/dev/shm`` allocation, a
straggler, a poisoned lock, or a lost message — Patwary et al.'s MERGER
correctness argument assumes every merge participant finishes, so the
only way to trust the recovery machinery is to break things on purpose
and assert byte-exact results afterwards.

Two halves, mirroring chaos-engineering practice:

* **injection** (:mod:`repro.faults.plan`) — seeded, deterministic
  :class:`FaultPlan` objects consulted at fixed sites in the
  ``processes`` / ``threads`` / ``simulated`` backends and the
  :mod:`repro.mp` communicator, behind a zero-overhead-when-disabled
  ambient hook (:data:`NULL_PLAN`, :func:`use_fault_plan`) exactly like
  the :mod:`repro.obs` recorder;
* **recovery** (:mod:`repro.faults.resilience`) — the
  :class:`ResilienceConfig` retry/backoff/watchdog knobs consumed by the
  process supervisor (:mod:`repro.parallel.supervisor`) and the
  :class:`DegradationPolicy` backend ladder consumed by
  :func:`repro.parallel.paremsp.paremsp`.

Everything observable lands in the existing trace schema as ``fault.*``
/ ``retry.*`` / ``degrade.*`` events, so ``repro-obs analyze`` reports
injected-vs-recovered counts next to the speedup decomposition. See
``docs/RESILIENCE.md`` for the taxonomy, the knobs, and the test
matrix.
"""

from .plan import (
    CHECKPOINT_KINDS,
    KINDS,
    NET_KINDS,
    NULL_PLAN,
    RANK_KINDS,
    FaultPlan,
    FaultSpec,
    NullFaultPlan,
    get_fault_plan,
    record_injection,
    set_fault_plan,
    use_fault_plan,
)
from .resilience import (
    DEFAULT_RESILIENCE,
    DegradationPolicy,
    ResilienceConfig,
    backoff_delays,
    degradation_reason,
)

__all__ = [
    "KINDS",
    "CHECKPOINT_KINDS",
    "RANK_KINDS",
    "NET_KINDS",
    "FaultSpec",
    "FaultPlan",
    "NullFaultPlan",
    "NULL_PLAN",
    "get_fault_plan",
    "set_fault_plan",
    "use_fault_plan",
    "record_injection",
    "ResilienceConfig",
    "DEFAULT_RESILIENCE",
    "DegradationPolicy",
    "backoff_delays",
    "degradation_reason",
]
