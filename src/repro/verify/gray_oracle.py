"""BFS oracle for grayscale (similar-value) region labeling.

Independent reference for :mod:`repro.ccl.grayscale`: regions are the
connected components of the graph whose edges join adjacent pixels with
``|v(a) - v(b)| <= tolerance``. Labels are ``1..K`` in raster
first-appearance order; every pixel is labeled (no background).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..types import LABEL_DTYPE
from .oracle import NEIGHBORS_4, NEIGHBORS_8

__all__ = ["gray_flood_fill_label"]


def gray_flood_fill_label(
    image: np.ndarray,
    connectivity: int = 8,
    tolerance: float = 0,
) -> tuple[np.ndarray, int]:
    """Label similar-valued regions by BFS flood fill."""
    img = np.asarray(image)
    rows, cols = img.shape
    offsets = NEIGHBORS_8 if connectivity == 8 else NEIGHBORS_4
    vals = img.tolist()
    labels = [[0] * cols for _ in range(rows)]
    next_label = 0
    queue: deque[tuple[int, int]] = deque()
    for r0 in range(rows):
        for c0 in range(cols):
            if labels[r0][c0] == 0:
                next_label += 1
                labels[r0][c0] = next_label
                queue.append((r0, c0))
                while queue:
                    r, c = queue.popleft()
                    v = vals[r][c]
                    for dr, dc in offsets:
                        nr, nc = r + dr, c + dc
                        if (
                            0 <= nr < rows
                            and 0 <= nc < cols
                            and labels[nr][nc] == 0
                            and abs(vals[nr][nc] - v) <= tolerance
                        ):
                            labels[nr][nc] = next_label
                            queue.append((nr, nc))
    return (
        np.asarray(labels, dtype=LABEL_DTYPE).reshape(rows, cols),
        next_label,
    )
