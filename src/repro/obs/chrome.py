"""Chrome trace-event export: make any trace visually inspectable.

Converts the shared span schema (real backends *and* simmachine runs)
to the Trace Event Format consumed by Perfetto / ``chrome://tracing``
(JSON object form: ``{"traceEvents": [...]}``). Each span becomes one
complete ("ph": "X") event with microsecond ``ts``/``dur``; each lane
becomes a named thread via ``thread_name`` metadata events, ordered
with the same lane sort the text tables use (``machine`` first, then
``thread 0..N``). Timestamps are rebased to the trace's start — the
raw ``perf_counter`` origin is process-boot-relative and would put the
timeline hours from zero — and the original origin is kept in
``otherData.t0_seconds`` so :func:`read_chrome_trace` round-trips back
to the jsonl schema's absolute floats (see the round-trip tests).

Open the output via https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Iterable

from .export import TRACE_SCHEMA_VERSION, _lane_sort_key
from .recorder import Span

__all__ = [
    "spans_to_chrome",
    "chrome_to_spans",
    "write_chrome_trace",
    "read_chrome_trace",
]

_PID = 1  # one trace = one process row in the viewer


def spans_to_chrome(spans: Iterable, metrics: dict | None = None) -> dict:
    """Build the trace-event JSON object for *spans*.

    Accepts any span-likes with ``lane``/``phase``/``start``/``stop``
    (and optionally ``depth``). Metrics ride in ``otherData.metrics``
    so the viewer's metadata panel shows counters/gauges.
    """
    spans = list(spans)
    lanes = sorted({s.lane for s in spans}, key=_lane_sort_key)
    tid_of = {lane: i for i, lane in enumerate(lanes)}
    t0 = min((float(s.start) for s in spans), default=0.0)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for lane in lanes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid_of[lane],
                "args": {"name": lane},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tid_of[lane],
                "args": {"sort_index": tid_of[lane]},
            }
        )
    for span in spans:
        start = float(span.start)
        stop = float(span.stop)
        event = {
            "name": span.phase,
            "cat": "phase",
            "ph": "X",
            "ts": (start - t0) * 1e6,
            "dur": (stop - start) * 1e6,
            "pid": _PID,
            "tid": tid_of[span.lane],
            "args": {"lane": span.lane},
        }
        depth = int(getattr(span, "depth", 0) or 0)
        if depth:
            event["args"]["depth"] = depth
        attrs = getattr(span, "attrs", None)
        if attrs:
            # span annotations (request ids, dispatch decisions) show in
            # the viewer's args panel and round-trip via chrome_to_spans.
            event["args"]["attrs"] = dict(attrs)
        events.append(event)
    out = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "t0_seconds": t0,
            "generator": "repro.obs.chrome",
        },
    }
    if metrics is not None:
        out["otherData"]["metrics"] = {
            "counters": metrics.get("counters", {}),
            "gauges": metrics.get("gauges", {}),
        }
    return out


def chrome_to_spans(obj: dict) -> list[Span]:
    """Parse a trace-event object back into :class:`Span` records.

    Only complete ("X") events are spans; metadata events rebuild the
    tid -> lane mapping. ``otherData.t0_seconds`` (written by
    :func:`spans_to_chrome`) restores the absolute time origin; traces
    from other producers fall back to a zero origin.
    """
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(
            "not a trace-event object: missing 'traceEvents' list"
        )
    t0 = float(obj.get("otherData", {}).get("t0_seconds", 0.0))
    lane_of_tid: dict[tuple, str] = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            lane_of_tid[(ev.get("pid"), ev.get("tid"))] = ev["args"]["name"]
    spans: list[Span] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = ev.get("args", {})
        lane = args.get("lane") or lane_of_tid.get(
            (ev.get("pid"), ev.get("tid")), f"tid {ev.get('tid')}"
        )
        start = t0 + float(ev["ts"]) / 1e6
        attrs = args.get("attrs")
        spans.append(
            Span(
                lane=lane,
                phase=ev["name"],
                start=start,
                stop=start + float(ev.get("dur", 0.0)) / 1e6,
                depth=int(args.get("depth", 0)),
                attrs=dict(attrs) if isinstance(attrs, dict) else None,
            )
        )
    return spans


def write_chrome_trace(spans: Iterable, path, metrics: dict | None = None) -> None:
    """Write *spans* as a ``chrome://tracing``-loadable JSON file."""
    with open(path, "w") as fh:
        json.dump(spans_to_chrome(spans, metrics=metrics), fh, indent=1)
        fh.write("\n")


def read_chrome_trace(path) -> tuple[list[Span], dict | None]:
    """Load a chrome-trace file back: ``(spans, metrics-or-None)``."""
    with open(path) as fh:
        obj = json.load(fh)
    metrics = obj.get("otherData", {}).get("metrics")
    return chrome_to_spans(obj), metrics
