"""Chunk-boundary merging (Algorithm 7, lines 10-21).

After the local scans, pixels on the first row of chunk ``k`` may belong
to the same component as pixels on the last row of chunk ``k-1`` but
carry provisional labels from different ranges. The boundary pass walks
each boundary row and unions labels across the seam, using the *label*
image (a pixel participates iff its provisional label is nonzero, which
for a binary image is equivalent to being foreground).

The neighbour logic mirrors the paper exactly: if ``b`` (directly above)
is labeled, a single union with ``b`` suffices — ``a`` and ``c`` are
horizontally adjacent to ``b`` in the predecessor chunk and therefore
already equivalent to it; otherwise ``a`` and ``c`` are each unioned
when present (they are two columns apart and may be different
components). For 4-connectivity only ``b`` exists.

The union callable is injected: the serial backend passes plain REMSP
``merge``, the threads backend a :class:`~repro.unionfind.parallel.
LockStripedMerger` bound method, the simulated machine a counting
wrapper — the traversal logic is identical for all, which is the point
of Algorithm 8's drop-in design.
"""

from __future__ import annotations

from typing import Callable, MutableSequence, Sequence

from .partition import RowChunk

__all__ = ["merge_boundary_row", "boundary_rows"]


def boundary_rows(chunks: Sequence[RowChunk]) -> list[int]:
    """The image rows that start a chunk (other than the first) — exactly
    the seams the merge pass must stitch."""
    return [c.row_start for c in chunks[1:]]


def merge_boundary_row(
    label_rows: Sequence[Sequence[int]],
    row: int,
    cols: int,
    p: MutableSequence[int],
    union: Callable[[MutableSequence[int], int, int], int],
    connectivity: int = 8,
) -> int:
    """Union the labels of boundary row *row* with row ``row - 1``.

    Returns the number of union calls performed (used by the simulated
    machine's cost accounting).
    """
    cur = label_rows[row]
    up = label_rows[row - 1]
    ops = 0
    if connectivity == 8:
        for c in range(cols):
            e = cur[c]
            if e:
                if up[c]:
                    union(p, e, up[c])
                    ops += 1
                else:
                    if c > 0 and up[c - 1]:
                        union(p, e, up[c - 1])
                        ops += 1
                    if c + 1 < cols and up[c + 1]:
                        union(p, e, up[c + 1])
                        ops += 1
    else:
        for c in range(cols):
            e = cur[c]
            if e and up[c]:
                union(p, e, up[c])
                ops += 1
    return ops
