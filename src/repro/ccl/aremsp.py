"""AREMSP — Algorithm 5 of the paper (the headline sequential algorithm).

Two-rows-at-a-time scan (Fig 1b, from ARUN) + Rem's union-find with
splicing. Table II shows AREMSP as the fastest sequential algorithm on
every suite (39% over CCLLRPC, 4% over ARUN on average); it is also the
algorithm PAREMSP parallelises.
"""

from __future__ import annotations

import numpy as np

from ..unionfind.remsp import merge as remsp_merge
from .labeling import CCLResult, default_finalize, remsp_alloc, run_two_pass
from .scan_aremsp import scan_tworow

__all__ = ["aremsp"]


def _make_structure(capacity: int):
    p = [0] * capacity
    alloc, used = remsp_alloc(p)
    return p, remsp_merge, alloc, used, default_finalize


def aremsp(image: np.ndarray, connectivity: int = 8) -> CCLResult:
    """Label *image* with AREMSP (two-row scan + REMSP).

    >>> import numpy as np
    >>> r = aremsp(np.eye(4, dtype=np.uint8))
    >>> int(r.n_components)  # the diagonal is 8-connected
    1
    """
    return run_two_pass(
        image,
        algorithm="aremsp",
        scan=scan_tworow,
        make_structure=_make_structure,
        connectivity=connectivity,
    )
