"""``repro.perfdb`` — append-only performance history with a gate.

Performance work needs memory *and* teeth. The bench harnesses measure;
this package remembers and judges:

* :mod:`repro.perfdb.record` — turn repeated measurements into one
  JSON record (median + bootstrap confidence interval per phase) with
  an environment fingerprint (git sha, python/numpy versions, CPU,
  thread count), stored append-only under ``benchmarks/history/``:
  every run is a new file, nothing is ever rewritten;
* :mod:`repro.perfdb.compare` — diff two records with per-phase
  thresholds; the ``repro-obs compare`` CLI exits nonzero on
  regression, which is the CI perf gate (warn-only on shared runners,
  hard-fail on per-phase blowups past the hard threshold).

The existing :mod:`repro.bench.history` snapshots *rendered report
tables* (the paper-artefact diff workflow); perfdb records raw
repetition vectors, which is what confidence intervals and per-phase
gates need.
"""

from .compare import Comparison, Regression, compare_records
from .record import (
    RECORD_SCHEMA_VERSION,
    append_record,
    bootstrap_ci,
    build_record,
    environment_fingerprint,
    latest_record,
    list_records,
    load_record,
)

__all__ = [
    "RECORD_SCHEMA_VERSION",
    "environment_fingerprint",
    "bootstrap_ci",
    "build_record",
    "append_record",
    "load_record",
    "list_records",
    "latest_record",
    "Regression",
    "Comparison",
    "compare_records",
]
