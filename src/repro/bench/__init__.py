"""Benchmark harness: regenerate every table and figure of the paper.

One module per experiment (see the DESIGN.md experiment index):

========== ============================= ==============================
Experiment Paper artefact                Module
========== ============================= ==============================
table2     Table II (sequential times)   :mod:`.experiments.table2`
table3     Table III (NLCD size ladder)  :mod:`.experiments.table3`
table4     Table IV (PAREMSP times)      :mod:`.experiments.table4`
fig4       Figure 4 (small-suite speedup):mod:`.experiments.fig4`
fig5       Figure 5a/5b (NLCD speedup)   :mod:`.experiments.fig5`
opcounts   scan-strategy ablation (ours) :mod:`.experiments.opcounts`
========== ============================= ==============================

Run any of them from the shell::

    python -m repro.bench table2
    python -m repro.bench all --scale 0.05

or via pytest-benchmark (``pytest benchmarks/ --benchmark-only``), whose
modules wrap the same experiment functions.
"""

from .report import ExperimentReport
from .stats import MinAvgMax
from .timing import measure

__all__ = ["ExperimentReport", "MinAvgMax", "measure"]
