"""Table IV — PAREMSP execution time at 2/6/16/24 threads.

Paper row format: for each suite, min/average/max msec of PAREMSP at
each thread count. The signature shapes: NLCD times fall steeply with
threads (162.86 -> 13.47 ms average from 2 to 24); sub-megabyte suites
*stop improving* (or worsen) past ~16 threads because team overhead
overtakes the shrinking per-thread work.

Thread counts above this host's core count cannot be measured honestly
in CPython, so the experiment prices runs on the simulated machine
(DESIGN.md §2) at each image's paper-scale factor; the ``serial``
backend's real wall time at T=1 is recorded alongside for grounding.
"""

from __future__ import annotations

from ...simmachine.costmodel import CostModel
from ...simmachine.machine import simulate_paremsp
from ..report import ExperimentReport
from ..stats import STAT_ROWS, MinAvgMax
from ._suites import build_suites

__all__ = ["run_table4", "TABLE4_THREADS"]

#: the paper's Table IV columns.
TABLE4_THREADS = (2, 6, 16, 24)


def run_table4(
    scale: float | None = None,
    thread_counts: tuple[int, ...] = TABLE4_THREADS,
    cost_model: CostModel | None = None,
    connectivity: int = 8,
) -> ExperimentReport:
    """Regenerate Table IV on the simulated machine.

    ``data["summary"]`` maps ``suite -> n_threads -> MinAvgMax``
    (simulated seconds).
    """
    suites = build_suites(scale)
    order = ("aerial", "texture", "misc", "nlcd")
    data: dict = {"summary": {}, "per_image": {}}
    rows: list[list[str]] = []
    for suite_name in order:
        images = suites[suite_name]
        per_t: dict[int, list[float]] = {t: [] for t in thread_counts}
        for si in images:
            for t in thread_counts:
                sim = simulate_paremsp(
                    si.info.image,
                    n_threads=t,
                    cost_model=cost_model,
                    connectivity=connectivity,
                    linear_scale=si.linear_scale,
                )
                per_t[t].append(sim.total_seconds)
                data["per_image"][(suite_name, si.info.name, t)] = (
                    sim.total_seconds
                )
        summary = {t: MinAvgMax.from_values(v) for t, v in per_t.items()}
        data["summary"][suite_name] = summary
        for stat in STAT_ROWS:
            rows.append(
                [
                    suite_name.capitalize() if stat == "Min" else "",
                    stat,
                    *(
                        f"{summary[t].stat(stat) * 1e3:.2f}"
                        for t in thread_counts
                    ),
                ]
            )
    return ExperimentReport(
        experiment="table4",
        title=(
            "Table IV: execution time [msec] of PAREMSP for various "
            "# threads (simulated Hopper node, paper-scale pricing)"
        ),
        headers=["Image type", "", *[str(t) for t in thread_counts]],
        rows=rows,
        data=data,
        notes=[
            "simulated-machine model seconds (DESIGN.md §2); shapes, not "
            "absolute values, are the comparison target"
        ],
    )
