"""Recovery behaviour under injected faults: retry to byte-identical
results, typed errors when budgets run out, watchdog bounds on hangs,
and the cross-backend degradation ladder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccl import aremsp
from repro.errors import (
    BackendError,
    DeadlockError,
    PhaseTimeoutError,
    WorkerCrashError,
)
from repro.faults import (
    DegradationPolicy,
    FaultPlan,
    FaultSpec,
    ResilienceConfig,
)
from repro.obs import TraceRecorder
from repro.parallel import paremsp

#: retries without wall-clock padding, watchdog far away.
FAST = ResilienceConfig(max_retries=2, backoff_base=0.0, phase_timeout=60.0)


def kill_every_attempt(max_retries: int, **kwargs) -> FaultPlan:
    """A plan that kills the worker on the first try and every retry."""
    return FaultPlan(
        [
            FaultSpec("kill_worker", attempt=a, **kwargs)
            for a in range(max_retries + 1)
        ]
    )


@pytest.fixture
def img(rng) -> np.ndarray:
    return (rng.random((40, 24)) < 0.5).astype(np.uint8)


@pytest.fixture
def oracle(img) -> np.ndarray:
    return aremsp(img, 8).labels


class TestProcessesRecovery:
    def test_kill_before_first_chunk_recovers_byte_identical(
        self, img, oracle
    ):
        rec = TraceRecorder()
        plan = FaultPlan([FaultSpec("kill_worker", after_chunks=0)])
        result = paremsp(
            img, n_threads=4, backend="processes",
            resilience=FAST, fault_plan=plan, recorder=rec,
        )
        assert np.array_equal(result.labels, oracle)
        assert result.meta["scan_attempts"] == 2
        assert result.meta["workers_respawned"] == 1
        counters = rec.report().metrics["counters"]
        assert counters["fault.injected"] == 1
        assert counters["fault.kill_worker"] == 1
        assert counters["worker.crashed"] == 1
        assert counters["retry.attempt"] == 1
        assert counters["retry.succeeded"] == 1

    def test_kill_mid_scan_recovers_byte_identical(self, img, oracle):
        """The acceptance scenario: the worker dies after completing one
        chunk; only the incomplete chunks are re-scanned, and the final
        labeling is byte-identical to the serial oracle."""
        rec = TraceRecorder()
        plan = FaultPlan([FaultSpec("kill_worker", after_chunks=1)])
        result = paremsp(
            img, n_threads=4, backend="processes",
            resilience=FAST, fault_plan=plan, recorder=rec,
        )
        assert np.array_equal(result.labels, oracle)
        counters = rec.report().metrics["counters"]
        assert counters["fault.injected"] == 1
        assert counters["retry.succeeded"] == 1

    def test_retries_exhausted_raises_typed(self, img):
        plan = kill_every_attempt(FAST.max_retries)
        with pytest.raises(WorkerCrashError, match="scan workers failed") as ei:
            paremsp(
                img, n_threads=4, backend="processes",
                resilience=FAST, fault_plan=plan,
            )
        assert ei.value.phase == "scan"
        assert ei.value.attempts == FAST.max_retries + 1
        assert ei.value.exit_codes  # the injected exit code propagates

    def test_watchdog_converts_hang_to_typed_timeout(self, img):
        config = ResilienceConfig(
            max_retries=0, backoff_base=0.0, phase_timeout=0.5
        )
        plan = FaultPlan(
            [FaultSpec("delay_chunk", after_chunks=0, delay_seconds=30.0)]
        )
        with pytest.raises(PhaseTimeoutError, match="watchdog") as ei:
            paremsp(
                img, n_threads=4, backend="processes",
                resilience=config, fault_plan=plan,
            )
        assert ei.value.phase == "scan"
        assert ei.value.timeout == 0.5

    def test_straggler_delay_still_succeeds(self, img, oracle):
        plan = FaultPlan(
            [FaultSpec("delay_chunk", after_chunks=0, delay_seconds=0.05)]
        )
        result = paremsp(
            img, n_threads=4, backend="processes",
            resilience=FAST, fault_plan=plan,
        )
        assert np.array_equal(result.labels, oracle)

    def test_alloc_failure_retried(self, img, oracle):
        rec = TraceRecorder()
        plan = FaultPlan([FaultSpec("shm_fail", phase="alloc", attempt=0)])
        result = paremsp(
            img, n_threads=4, backend="processes",
            resilience=FAST, fault_plan=plan, recorder=rec,
        )
        assert np.array_equal(result.labels, oracle)
        counters = rec.report().metrics["counters"]
        assert counters["fault.shm_fail"] == 1
        assert counters["shm.alloc_retries"] == 1

    def test_alloc_failure_exhausted_raises(self, img):
        plan = FaultPlan(
            [
                FaultSpec("shm_fail", phase="alloc", attempt=a)
                for a in range(FAST.alloc_retries + 1)
            ]
        )
        with pytest.raises(
            BackendError, match="shared memory allocation failed"
        ):
            paremsp(
                img, n_threads=4, backend="processes",
                resilience=FAST, fault_plan=plan,
            )

    def test_poison_lock_raises_deadlock(self, img):
        plan = FaultPlan([FaultSpec("poison_lock", phase="merge")])
        with pytest.raises(DeadlockError):
            paremsp(
                img, n_threads=4, backend="processes",
                resilience=FAST, fault_plan=plan,
            )


class TestThreadsRecovery:
    @pytest.mark.parametrize("engine", ["interpreter", "vectorized"])
    def test_kill_recovers_byte_identical(self, img, oracle, engine):
        rec = TraceRecorder()
        plan = FaultPlan([FaultSpec("kill_worker", rank=0)])
        result = paremsp(
            img, n_threads=4, backend="threads", engine=engine,
            resilience=FAST, fault_plan=plan, recorder=rec,
        )
        assert np.array_equal(result.labels, oracle)
        counters = rec.report().metrics["counters"]
        assert counters["fault.kill_worker"] == 1
        assert counters["worker.crashed"] == 1
        assert counters["retry.succeeded"] == 1

    def test_retries_exhausted_raises_typed(self, img):
        plan = kill_every_attempt(FAST.max_retries, rank=0)
        with pytest.raises(WorkerCrashError, match="injected worker death") as ei:
            paremsp(
                img, n_threads=4, backend="threads",
                resilience=FAST, fault_plan=plan,
            )
        assert ei.value.ranks == (0,)

    @pytest.mark.parametrize("engine", ["interpreter", "vectorized"])
    def test_poison_lock_raises_deadlock(self, engine):
        # all-foreground guarantees seam merges, so the interpreter
        # path's striped-lock site is actually reached.
        ones = np.ones((16, 8), dtype=np.uint8)
        plan = FaultPlan([FaultSpec("poison_lock", phase="merge")])
        with pytest.raises(DeadlockError) as ei:
            paremsp(
                ones, n_threads=4, backend="threads", engine=engine,
                resilience=FAST, fault_plan=plan,
            )
        assert ei.value.phase == "merge"


class TestSimulatedRecovery:
    def test_kill_recovers_and_prices_retry(self, img, oracle):
        plan = FaultPlan([FaultSpec("kill_worker", rank=0)])
        clean = paremsp(img, n_threads=4, backend="simulated")
        result = paremsp(
            img, n_threads=4, backend="simulated",
            resilience=FAST, fault_plan=plan,
        )
        assert np.array_equal(result.labels, oracle)
        events = result.meta["fault_events"]
        assert events["fault.kill_worker"] == 1
        assert events["retry.succeeded"] == 1
        # the re-run is priced into model time
        assert result.phase_seconds["scan"] > clean.phase_seconds["scan"]

    def test_retries_exhausted_raises_typed(self, img):
        plan = kill_every_attempt(FAST.max_retries, rank=0)
        with pytest.raises(WorkerCrashError):
            paremsp(
                img, n_threads=4, backend="simulated",
                resilience=FAST, fault_plan=plan,
            )

    def test_poison_lock_raises_deadlock(self, img):
        plan = FaultPlan([FaultSpec("poison_lock", phase="merge")])
        with pytest.raises(DeadlockError):
            paremsp(
                img, n_threads=4, backend="simulated", fault_plan=plan,
            )

    def test_alloc_failure_prices_spawn_retry(self, img):
        plan = FaultPlan([FaultSpec("shm_fail", phase="alloc", attempt=0)])
        clean = paremsp(img, n_threads=4, backend="simulated")
        result = paremsp(
            img, n_threads=4, backend="simulated", fault_plan=plan,
        )
        assert result.phase_seconds["spawn"] > clean.phase_seconds["spawn"]


class TestDegradation:
    def test_processes_falls_back_to_threads(self, img, oracle):
        rec = TraceRecorder()
        plan = kill_every_attempt(FAST.max_retries)
        result = paremsp(
            img, n_threads=4, backend="processes",
            resilience=FAST, fault_plan=plan,
            degradation=DegradationPolicy(), recorder=rec,
        )
        assert np.array_equal(result.labels, oracle)
        assert result.backend == "threads"
        assert result.meta["degraded_from"]["backend"] == "processes"
        assert result.meta["degraded_from"]["error"] == "WorkerCrashError"
        counters = rec.report().metrics["counters"]
        assert counters["degrade.fallback"] == 1
        assert counters["degrade.to.threads"] == 1
        assert counters["retry.exhausted"] == 1

    def test_threads_falls_back_to_serial(self, img, oracle):
        plan = kill_every_attempt(FAST.max_retries, rank=0)
        result = paremsp(
            img, n_threads=4, backend="threads",
            resilience=FAST, fault_plan=plan,
            degradation=DegradationPolicy(),
        )
        assert np.array_equal(result.labels, oracle)
        assert result.backend == "serial"
        assert result.meta["degraded_from"]["backend"] == "threads"

    def test_without_policy_error_propagates(self, img):
        plan = kill_every_attempt(FAST.max_retries)
        with pytest.raises(WorkerCrashError):
            paremsp(
                img, n_threads=4, backend="processes",
                resilience=FAST, fault_plan=plan,
            )

    def test_degraded_runs_match_requested_backend_results(self, img):
        """Degradation preserves the determinism contract: the fallback
        backend's labels equal what the requested backend would have
        produced on a clean run."""
        plan = kill_every_attempt(FAST.max_retries)
        degraded = paremsp(
            img, n_threads=4, backend="processes",
            resilience=FAST, fault_plan=plan,
            degradation=DegradationPolicy(),
        )
        clean = paremsp(img, n_threads=4, backend="processes")
        assert np.array_equal(degraded.labels, clean.labels)

    def test_analyzer_reports_injected_vs_recovered(self, img):
        from repro.obs import analyze_report

        rec = TraceRecorder()
        plan = FaultPlan([FaultSpec("kill_worker", after_chunks=0)])
        paremsp(
            img, n_threads=4, backend="processes",
            resilience=FAST, fault_plan=plan, recorder=rec,
        )
        analysis = analyze_report(rec.report())
        assert analysis.faults.has_data
        assert analysis.faults.injected == 1
        assert analysis.faults.recovered == 1
        assert dict(analysis.faults.kinds)["fault.kill_worker"] == 1
        assert "injected" in analysis.faults.describe()
        assert "faults" in analysis.as_dict()
