"""Tile-decomposed labeling — the 2-D generalisation of PAREMSP's seams.

PAREMSP partitions rows; for images that arrive tile-wise (map servers,
scanned-raster mosaics, arrays memory-mapped from disk) a 2-D tile grid
is the natural unit. The algorithm is the same three acts:

1. label every tile independently (vectorised run engine) into a
   disjoint global label range;
2. stitch seams: every tile-boundary *row* is merged across the full
   image width and every boundary *column* within its band — together
   these cover all cross-tile adjacencies including the corner diagonals
   (a row seam sees the ``a``/``c`` diagonals; a column seam is the same
   pattern transposed, and :func:`merge_boundary_row` is reused verbatim
   on column views);
3. one sparse-free FLATTEN (tile ranges are packed contiguously) and a
   LUT gather.

The input is only ever *sliced*, so ``np.memmap`` arrays work unchanged
— the pixels of at most one tile are materialised by the labeling step
at a time.
"""

from __future__ import annotations

import pathlib
import time

import numpy as np

from ..ccl.labeling import CCLResult, check_label_capacity
from ..ccl.run_based import run_based_vectorized
from ..errors import InputError
from ..obs import PhaseTimer, get_recorder
from ..types import LABEL_DTYPE, ensure_input
from ..unionfind.flatten import flatten
from ..unionfind.remsp import merge as remsp_merge
from .boundary import merge_boundary_row

__all__ = ["tiled_label"]


def _label_tile(args: tuple) -> tuple[int, int, np.ndarray, int]:
    """Worker: label one tile; returns (r0, c0, local labels, count)."""
    r0, c0, tile, connectivity = args
    local = run_based_vectorized(tile, connectivity)
    return r0, c0, local.labels, local.n_components


def _label_tile_at(payload: tuple, item: tuple) -> tuple[int, int, np.ndarray, int]:
    """Payload-transport worker: slice the shared image at coordinates.

    *payload* is ``(image, tile_shape, connectivity)`` — installed once
    per pool worker by :func:`repro.parallel.backends.executor.
    map_with_payload` (inherited for free under ``fork``); *item* is
    just ``(r0, c0)``, so nothing tile-sized is pickled per call.
    """
    image, (th, tw), connectivity = payload
    r0, c0 = item
    tile = np.ascontiguousarray(image[r0 : r0 + th, c0 : c0 + tw])
    return _label_tile((r0, c0, tile, connectivity))


def _finalize_memmap(
    lut: np.ndarray, labels: np.ndarray, out, th: int
) -> np.ndarray:
    """Gather final labels into *out* with fsync + atomic rename.

    Writes tile-row blocks through the LUT into ``<out>.tmp``, flushes
    the memmap, ``fsync``'s the file and only then renames it over
    *out* (followed by a directory fsync) — the two-step the checkpoint
    store uses for its payloads, applied to the result artifact. Returns
    a read-only memmap of the finalised file.
    """
    import os

    from numpy.lib.format import open_memmap

    out = pathlib.Path(out)
    tmp = out.with_name(out.name + ".tmp")
    rows = labels.shape[0]
    mm = open_memmap(tmp, mode="w+", dtype=LABEL_DTYPE, shape=labels.shape)
    for r0 in range(0, rows, th):
        mm[r0 : r0 + th] = lut[labels[r0 : r0 + th]]
    mm.flush()
    del mm
    fd = os.open(tmp, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, out)
    dfd = os.open(out.parent, os.O_RDONLY)
    try:
        os.fsync(dfd)
    except OSError:  # pragma: no cover - filesystem-dependent
        pass
    finally:
        os.close(dfd)
    return np.load(out, mmap_mode="r")


def tiled_label(
    image: np.ndarray,
    tile_shape: tuple[int, int] = (256, 256),
    connectivity: int = 8,
    workers: int = 1,
    recorder=None,
    out: str | pathlib.Path | None = None,
) -> CCLResult:
    """Label *image* tile by tile; result identical (as a partition) to
    whole-image labeling.

    ``workers > 1`` labels tiles in a fork-based process pool — tiles
    are independent, so this is the embarrassingly parallel phase; seam
    stitching and FLATTEN stay in the coordinator (they are O(seams) and
    O(labels), off the critical path like PAREMSP's merge step).

    *recorder* defaults to the ambient :func:`repro.obs.get_recorder`;
    when tracing is enabled the phases land as spans (plus per-tile
    spans on the in-process path), seam unions are counted, and the
    result's ``timings`` field carries the run's report.

    *out*, when given, is a ``.npy`` path the final labels are written
    to **atomically**: the gather lands in ``<out>.tmp``, is flushed
    and ``fsync``'d, and only then renamed over *out* — a run killed
    mid-write can never leave a truncated file at *out* masquerading as
    a complete result. The returned ``labels`` is a read-only memmap of
    the finalised file. (For crash *resume* on top of atomicity, see
    :class:`repro.checkpoint.TiledJob`.)

    >>> import numpy as np
    >>> img = np.ones((10, 10), dtype=np.uint8)
    >>> int(tiled_label(img, tile_shape=(4, 4)).n_components)
    1
    """
    th, tw = tile_shape
    if th < 1 or tw < 1:
        raise ValueError(f"tile dimensions must be >= 1, got {tile_shape!r}")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    rec = recorder if recorder is not None else get_recorder()
    if isinstance(image, np.memmap):
        # memmap slices stay lazy; per-tile validation happens inside
        # the tile kernel so the raster is only ever read once
        if image.ndim != 2:
            raise InputError(
                f"image must be 2-D, got shape {image.shape!r}"
            )
        if image.dtype.kind not in "buif":
            raise InputError(
                f"unsupported image dtype {image.dtype!r}; expected a "
                "boolean, integer, or binary float array"
            )
    else:
        image = ensure_input(image)
    rows, cols = image.shape
    check_label_capacity((rows, cols))
    labels = np.zeros((rows, cols), dtype=LABEL_DTYPE)

    mark = rec.mark()
    timer = PhaseTimer(rec)
    with timer.time("scan"):
        origins = [
            (r0, c0)
            for r0 in range(0, rows, th)
            for c0 in range(0, cols, tw)
        ]
        n_tiles = len(origins)
        if workers > 1 and n_tiles > 1:
            # pinned-context pool via the shared executor: the image
            # ships to workers once (free under fork), the per-tile
            # traffic is the (r0, c0) pair — no tile arrays are
            # pickled per call.
            from .backends.executor import map_with_payload

            results = map_with_payload(
                "processes",
                _label_tile_at,
                origins,
                ((image, (th, tw), connectivity)),
                max_workers=min(workers, n_tiles),
            )
        elif rec.enabled:
            results = []
            for i, (r0, c0) in enumerate(origins):
                t0 = time.perf_counter()
                results.append(
                    _label_tile_at((image, (th, tw), connectivity), (r0, c0))
                )
                rec.add_span(f"tile {i}", "scan", t0, time.perf_counter())
        else:
            payload = (image, (th, tw), connectivity)
            results = [_label_tile_at(payload, o) for o in origins]
        count = 1
        for r0, c0, local_labels, k in results:
            if k:
                labels[r0 : r0 + th, c0 : c0 + tw] = np.where(
                    local_labels > 0, local_labels + (count - 1), 0
                )
                count += k

    seam_unions = 0
    with timer.time("merge"):
        p: list[int] = list(range(count))
        # horizontal seams: full-width boundary rows (cover corner
        # diagonals)
        for r in range(th, rows, th):
            seam_unions += merge_boundary_row(
                labels, r, cols, p, remsp_merge, connectivity
            )
        # vertical seams: boundary columns, reusing the row kernel on the
        # transposed pattern (left column plays the "row above")
        for c in range(tw, cols, tw):
            col_pair = [labels[:, c - 1], labels[:, c]]
            seam_unions += merge_boundary_row(
                col_pair, 1, rows, p, remsp_merge, connectivity
            )
    with timer.time("flatten"):
        n_components = flatten(p, count)
    with timer.time("label"):
        lut = np.asarray(p, dtype=LABEL_DTYPE)
        if out is not None:
            final = _finalize_memmap(lut, labels, out, th)
        else:
            final = lut[labels]
    if rec.enabled:
        rec.count("tiled.seam_unions", seam_unions)
        rec.gauge("tiled.n_tiles", n_tiles)
    return CCLResult(
        labels=final,
        n_components=n_components,
        provisional_count=count - 1,
        phase_seconds=timer.seconds,
        algorithm="tiled",
        meta={
            "tile_shape": (th, tw),
            "n_tiles": n_tiles,
            "seam_unions": seam_unions,
        },
        timings=rec.report(since=mark) if rec.enabled else None,
    )
