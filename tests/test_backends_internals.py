"""Backend internals: OffsetList, backend registry, threads/processes
edge behaviour, label-capacity guard."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ccl.labeling import check_label_capacity
from repro.errors import BackendError, LabelOverflowError
from repro.parallel.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    get_backend,
)
from repro.parallel.backends.processes import OffsetList, _scan_chunk
from repro.unionfind.remsp import merge as remsp_merge


class TestOffsetList:
    def test_shifted_indexing(self):
        ol = OffsetList(4, offset=10)
        ol[10] = 7
        ol[13] = 9
        assert ol[10] == 7
        assert ol[13] == 9
        assert ol.data == [7, 0, 0, 9]
        assert len(ol) == 4

    def test_out_of_window_raises(self):
        ol = OffsetList(2, offset=5)
        with pytest.raises(IndexError):
            _ = ol[9]

    def test_works_with_remsp_merge(self):
        # global labels 100..104 living in a local window
        ol = OffsetList(5, offset=100)
        for i in range(100, 105):
            ol[i] = i
        root = remsp_merge(ol, 101, 103)
        assert root == 101
        assert ol[103] == 101


def test_scan_chunk_worker_contract():
    img_chunk = [[1, 1, 0], [0, 1, 1]]
    rows, used, p_slice = _scan_chunk((img_chunk, 7, 3, 8))
    assert used - 7 == len(p_slice) == 1  # one component, one label
    assert rows[0][0] == 7  # labels start at the chunk's offset
    assert p_slice == [7]


class TestBackendRegistry:
    def test_known_backends(self):
        assert isinstance(get_backend("serial"), SerialBackend)
        assert isinstance(get_backend("THREADS"), ThreadBackend)
        assert isinstance(get_backend("processes"), ProcessBackend)

    def test_unknown_backend(self):
        with pytest.raises(BackendError, match="available"):
            get_backend("cuda")


class TestLabelCapacity:
    def test_int32_huge_image_rejected(self):
        with pytest.raises(LabelOverflowError, match="int32"):
            check_label_capacity((50_000, 50_000))

    def test_int64_accepts_it(self):
        check_label_capacity((50_000, 50_000), dtype=np.int64)

    def test_narrow_dtype(self):
        with pytest.raises(LabelOverflowError):
            check_label_capacity((300, 300), dtype=np.int16)
        check_label_capacity((100, 100), dtype=np.int16)

    def test_normal_images_pass(self):
        check_label_capacity((4096, 4096))


def test_threads_backend_boundary_empty_chunks():
    backend = ThreadBackend()
    meta = backend.boundary([], [], 0, [], 8)
    assert meta["boundary_unions"] == 0
