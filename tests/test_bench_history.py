"""Benchmark snapshots: save/load/compare and the CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main
from repro.bench.history import (
    CellChange,
    compare_records,
    load_record,
    report_to_record,
    save_report,
)
from repro.bench.report import ExperimentReport


def _report(cell: str = "10.0") -> ExperimentReport:
    return ExperimentReport(
        experiment="table2",
        title="t",
        headers=["Image type", "", "AREMSP"],
        rows=[["Aerial", "Min", cell], ["Aerial", "Max", "20.0"]],
        data={},
    )


def test_roundtrip(tmp_path):
    path = tmp_path / "runs" / "a.json"
    save_report(_report(), path)
    record = load_record(path)
    assert record["experiment"] == "table2"
    assert record["rows"][0][2] == "10.0"
    assert record["environment"]["python"]


def test_format_version_checked(tmp_path):
    path = tmp_path / "bad.json"
    rec = report_to_record(_report())
    rec["format"] = 99
    path.write_text(json.dumps(rec))
    with pytest.raises(ValueError):
        load_record(path)


def test_compare_no_changes():
    old = report_to_record(_report())
    assert compare_records(old, _report()) == []


def test_compare_flags_regression():
    old = report_to_record(_report("10.0"))
    changes = compare_records(old, _report("20.0"), tolerance=0.25)
    assert len(changes) == 1
    ch = changes[0]
    assert ch.ratio == pytest.approx(2.0)
    assert "slower" in ch.describe()
    assert ch.column == "AREMSP"


def test_compare_within_tolerance_silent():
    old = report_to_record(_report("10.0"))
    assert compare_records(old, _report("11.0"), tolerance=0.25) == []


def test_compare_improvement_reported_as_faster():
    old = report_to_record(_report("10.0"))
    (ch,) = compare_records(old, _report("4.0"))
    assert "faster" in ch.describe()


def test_compare_layout_mismatch():
    old = report_to_record(_report())
    other = _report()
    other.headers = ["different"]
    with pytest.raises(ValueError):
        compare_records(old, other)


def test_compare_wrong_experiment():
    old = report_to_record(_report())
    other = _report()
    other.experiment = "fig5"
    with pytest.raises(ValueError):
        compare_records(old, other)


def test_non_numeric_cells_ignored():
    old = report_to_record(_report("n/a"))
    assert compare_records(old, _report("still n/a")) == []


def test_cell_change_zero_old():
    ch = CellChange(row=0, column="x", row_label="r", old=0.0, new=1.0)
    assert ch.ratio == float("inf")


class TestCLIIntegration:
    def test_save_then_compare_clean(self, tmp_path, capsys):
        snap = tmp_path / "t3.json"
        assert main(["table3", "--scale", "0.02", "--save", str(snap)]) == 0
        assert snap.exists()
        rc = main(["table3", "--scale", "0.02", "--compare", str(snap)])
        assert rc == 0
        assert "no changes" in capsys.readouterr().out

    def test_compare_detects_scale_change(self, tmp_path, capsys):
        snap = tmp_path / "t3.json"
        main(["table3", "--scale", "0.02", "--save", str(snap)])
        rc = main(["table3", "--scale", "0.04", "--compare", str(snap)])
        assert rc == 1
        assert "moved beyond" in capsys.readouterr().out

    def test_save_with_all_rejected(self, tmp_path, capsys):
        rc = main(["all", "--save", str(tmp_path / "x.json")])
        assert rc == 2
