"""Slab-parallel 3-D labeling — PAREMSP's decomposition lifted to volumes.

Algorithm 7's row-chunk strategy generalises directly: the volume is cut
into z-slabs, each slab labeled independently (vectorised run engine),
and the slab seams stitched by merging the boundary *planes*. A plane
seam is the 3-D analogue of the paper's boundary row: a voxel in a
slab's first plane unions with the up-to-nine 26-neighbours in the
previous slab's last plane, all extracted vectorially as edge lists.

Like the tiled 2-D driver, this is the coordination layer the paper's
approach needs for volumes; the slab scans are embarrassingly parallel
and the seam work is O(surface), not O(volume) — the same
merge-is-negligible structure Figure 5 demonstrates in 2-D.
"""

from __future__ import annotations

import time

import numpy as np

from ..ccl.labeling import CCLResult
from ..types import LABEL_DTYPE
from ..unionfind.flatten import flatten
from ..unionfind.remsp import merge as remsp_merge
from .labeling3d import volume_label
from .oracle import neighbor_offsets_3d

__all__ = ["volume_label_slabs"]


def _plane_edges(
    upper_labels: np.ndarray,
    lower_labels: np.ndarray,
    connectivity: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Label pairs connected across two adjacent z-planes.

    *upper* is the last plane of slab k-1, *lower* the first plane of
    slab k; offsets are the (dy, dx) with (-1, dy, dx) a voxel
    neighbour under *connectivity*.
    """
    offs = [
        (dy, dx)
        for dz, dy, dx in neighbor_offsets_3d(connectivity)
        if dz == -1
    ]
    us = []
    vs = []
    Y, X = lower_labels.shape
    for dy, dx in offs:
        # lower[y, x] vs upper[y + dy, x + dx]
        ly0, ly1 = max(0, -dy), Y - max(0, dy)
        lx0, lx1 = max(0, -dx), X - max(0, dx)
        uy0, uy1 = max(0, dy), Y - max(0, -dy)
        ux0, ux1 = max(0, dx), X - max(0, -dx)
        lo = lower_labels[ly0:ly1, lx0:lx1]
        up = upper_labels[uy0:uy1, ux0:ux1]
        hit = (lo > 0) & (up > 0)
        if hit.any():
            us.append(lo[hit])
            vs.append(up[hit])
    if not us:
        e = np.zeros(0, dtype=np.int64)
        return e, e
    u = np.concatenate(us)
    v = np.concatenate(vs)
    # deduplicate pairs: seam planes repeat the same label pair many
    # times; unions are idempotent but the interpreter loop is not free.
    key = u.astype(np.int64) * (max(int(v.max()), 1) + 1) + v
    _, keep = np.unique(key, return_index=True)
    return u[keep], v[keep]


def volume_label_slabs(
    volume: np.ndarray,
    n_slabs: int = 4,
    connectivity: int = 26,
) -> CCLResult:
    """Label a 3-D volume slab by slab (partition identical to
    :func:`~repro.volume.labeling3d.volume_label`).

    >>> import numpy as np
    >>> v = np.ones((8, 4, 4), dtype=np.uint8)
    >>> int(volume_label_slabs(v, n_slabs=3).n_components)
    1
    """
    if n_slabs < 1:
        raise ValueError(f"need at least one slab, got {n_slabs}")
    vol = np.asarray(volume)
    Z = vol.shape[0]
    n_slabs = max(1, min(n_slabs, max(1, Z)))
    bounds = np.linspace(0, Z, n_slabs + 1).astype(int)

    t0 = time.perf_counter()
    labels = np.zeros(vol.shape, dtype=LABEL_DTYPE)
    count = 1
    seams: list[int] = []
    for a, b in zip(bounds[:-1], bounds[1:]):
        if a == b:
            continue
        if a > 0:
            seams.append(int(a))
        local = volume_label(vol[a:b], connectivity)
        if local.n_components:
            labels[a:b] = np.where(
                local.labels > 0, local.labels + (count - 1), 0
            )
            count += local.n_components
    t1 = time.perf_counter()
    p: list[int] = list(range(count))
    seam_unions = 0
    for z in seams:
        u, v = _plane_edges(labels[z - 1], labels[z], connectivity)
        seam_unions += len(u)
        for x, y in zip(u.tolist(), v.tolist()):
            remsp_merge(p, x, y)
    t2 = time.perf_counter()
    n_components = flatten(p, count)
    t3 = time.perf_counter()
    lut = np.asarray(p, dtype=LABEL_DTYPE)
    final = lut[labels]
    t4 = time.perf_counter()
    return CCLResult(
        labels=final,
        n_components=n_components,
        provisional_count=count - 1,
        phase_seconds={
            "scan": t1 - t0,
            "merge": t2 - t1,
            "flatten": t3 - t2,
            "label": t4 - t3,
        },
        algorithm="volume-slabs",
        meta={"n_slabs": len(bounds) - 1, "seam_unions": seam_unions},
    )
