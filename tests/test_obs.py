"""Observability layer: spans, metrics, exporters, and the
zero-overhead-when-disabled contract."""

from __future__ import annotations

import json
import threading
import timeit

import numpy as np
import pytest

from repro.bench.paremsp_smoke import trace_backends
from repro.ccl.aremsp import aremsp
from repro.ccl.contour import contour_trace
from repro.ccl.run_based import run_based_vectorized
from repro.data.synthetic import blobs
from repro.obs import (
    NULL_RECORDER,
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    ObsReport,
    PhaseTimer,
    Span,
    SPAN_FIELDS,
    TraceRecorder,
    get_recorder,
    read_trace,
    read_trace_jsonl,
    render_phase_table,
    sim_trace_spans,
    span_to_dict,
    use_recorder,
    write_report_json,
    write_trace_jsonl,
)
from repro.parallel import paremsp
from repro.parallel.tiled import tiled_label
from repro.unionfind.parallel import LockStripedMerger


@pytest.fixture
def img(rng) -> np.ndarray:
    return (rng.random((24, 18)) < 0.5).astype(np.uint8)


class TestRecorder:
    def test_null_recorder_is_inert(self):
        rec = NULL_RECORDER
        assert rec.enabled is False
        with rec.span("scan"):
            pass
        rec.add_span("machine", "scan", 0.0, 1.0)
        rec.count("x")
        rec.gauge("y", 3.0)
        rec.gauge_max("y", 9.0)
        assert rec.mark() == 0
        report = rec.report()
        assert report.spans == ()
        assert report.metrics == {"counters": {}, "gauges": {}}

    def test_ambient_default_is_null(self):
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores(self):
        rec = TraceRecorder()
        with use_recorder(rec):
            assert get_recorder() is rec
        assert get_recorder() is NULL_RECORDER

    def test_use_recorder_restores_on_error(self):
        rec = TraceRecorder()
        with pytest.raises(RuntimeError):
            with use_recorder(rec):
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_span_records_interval(self):
        rec = TraceRecorder()
        with rec.span("scan", lane="machine"):
            pass
        (span,) = rec.spans
        assert span.lane == "machine"
        assert span.phase == "scan"
        assert span.stop >= span.start
        assert span.duration == span.stop - span.start

    def test_span_nesting_depth(self):
        rec = TraceRecorder()
        with rec.span("outer", lane="machine"):
            with rec.span("inner", lane="machine"):
                pass
        inner, outer = rec.spans  # inner exits (and records) first
        assert inner.phase == "inner" and inner.depth == 1
        assert outer.phase == "outer" and outer.depth == 0
        assert outer.start <= inner.start <= inner.stop <= outer.stop

    def test_span_default_lane_is_main(self):
        rec = TraceRecorder()
        with rec.span("scan"):
            pass
        assert rec.spans[0].lane == "main"

    def test_span_stack_is_per_thread(self):
        rec = TraceRecorder()
        depths = {}

        def work(name):
            with rec.span("outer", lane=name):
                with rec.span("inner", lane=name):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for span in rec.spans:
            depths.setdefault(span.lane, set()).add((span.phase, span.depth))
        for lane, seen in depths.items():
            assert seen == {("outer", 0), ("inner", 1)}

    def test_mark_and_since(self):
        rec = TraceRecorder()
        rec.add_span("machine", "a", 0.0, 1.0)
        mark = rec.mark()
        rec.add_span("machine", "b", 1.0, 2.0)
        report = rec.report(since=mark)
        assert [s.phase for s in report.spans] == ["b"]

    def test_phase_timer_accumulates_and_records(self):
        rec = TraceRecorder()
        timer = PhaseTimer(rec)
        for _ in range(3):
            with timer.time("scan"):
                pass
        assert set(timer.seconds) == {"scan"}
        assert timer.seconds["scan"] >= 0.0
        assert len(rec.spans) == 3
        assert {s.lane for s in rec.spans} == {"machine"}

    def test_phase_timer_null_recorder_still_measures(self):
        timer = PhaseTimer(NULL_RECORDER)
        with timer.time("scan"):
            pass
        assert "scan" in timer.seconds


class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.gauge("g").set(2.5)
        reg.gauge("gm").set_max(1.0)
        reg.gauge("gm").set_max(7.0)
        reg.gauge("gm").set_max(3.0)
        d = reg.as_dict()
        assert d["counters"] == {"c": 5}
        assert d["gauges"] == {"g": 2.5, "gm": 7.0}

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("hits").inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.as_dict()["counters"]["hits"] == 8000


class TestExport:
    def test_trace_jsonl_round_trip(self, tmp_path):
        spans = [
            Span("machine", "scan", 0.0, 1.5),
            Span("thread 1", "merge", 1.5, 2.0, depth=1),
        ]
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(spans, path)
        back = read_trace_jsonl(path)
        assert back == spans

    def test_trace_jsonl_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"lane": "machine", "phase": "scan"}\n')
        with pytest.raises(ValueError, match="missing span fields"):
            read_trace_jsonl(path)

    def test_span_dict_schema(self):
        d = span_to_dict(Span("machine", "scan", 0.0, 1.0))
        assert set(SPAN_FIELDS) <= set(d)

    def test_sim_and_real_spans_share_schema(self, img):
        from repro.simmachine.machine import simulate_paremsp

        rec = TraceRecorder()
        with use_recorder(rec):
            paremsp(img, n_threads=3, engine="vectorized")
        sim_spans = sim_trace_spans(simulate_paremsp(img, n_threads=3))
        real_keys = {k for s in rec.spans for k in span_to_dict(s)}
        sim_keys = {k for s in sim_spans for k in span_to_dict(s)}
        assert set(SPAN_FIELDS) <= real_keys
        assert set(SPAN_FIELDS) <= sim_keys

    def test_report_json_and_render(self, tmp_path):
        rec = TraceRecorder()
        with rec.span("scan", lane="machine"):
            pass
        rec.count("hits", 3)
        rec.gauge("depth", 2.0)
        report = rec.report()
        path = tmp_path / "report.json"
        write_report_json(report, path)
        data = json.loads(path.read_text())
        assert data["metrics"]["counters"] == {"hits": 3}
        assert data["spans"][0]["phase"] == "scan"
        table = report.render()
        assert "machine" in table and "scan" in table
        assert "counter hits = 3" in table
        assert "gauge   depth = 2" in table

    def test_render_empty(self):
        assert "no spans" in render_phase_table([])

    def test_phase_lane_seconds(self):
        report = ObsReport(
            spans=(
                Span("machine", "scan", 0.0, 1.0),
                Span("machine", "scan", 2.0, 2.5),
                Span("thread 0", "scan", 0.0, 0.75),
            ),
            metrics={"counters": {}, "gauges": {}},
        )
        agg = report.phase_lane_seconds()
        assert agg[("machine", "scan")] == pytest.approx(1.5)
        assert agg[("thread 0", "scan")] == pytest.approx(0.75)


class TestTraceSchemaV2:
    """trace.jsonl v2: header line, metrics trailer, crash tolerance."""

    SPANS = [
        Span("machine", "scan", 0.0, 1.5),
        Span("thread 1", "merge", 1.5, 2.0, depth=1),
    ]

    def test_writes_versioned_header(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(self.SPANS, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {
            "kind": "header",
            "schema_version": TRACE_SCHEMA_VERSION,
        }
        assert read_trace(path).schema_version == TRACE_SCHEMA_VERSION

    def test_metrics_trailer_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        metrics = {"counters": {"hits": 3}, "gauges": {"depth": 2.0}}
        write_trace_jsonl(self.SPANS, path, metrics=metrics)
        trace = read_trace(path)
        assert list(trace.spans) == self.SPANS
        assert trace.metrics == metrics
        assert trace.truncated is False

    def test_v1_headerless_file_still_reads(self, tmp_path):
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"lane": "machine", "phase": "scan", "start": 0.0, '
            '"stop": 1.0}\n'
        )
        trace = read_trace(path)
        assert trace.schema_version == 1
        assert trace.metrics is None
        assert [s.phase for s in trace.spans] == ["scan"]

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        """A crash mid-write loses only the partial final record."""
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(self.SPANS, path)
        clipped = path.read_text()[:-10]
        path.write_text(clipped)
        trace = read_trace(path)
        assert trace.truncated is True
        assert [s.phase for s in trace.spans] == ["scan"]
        assert read_trace_jsonl(path) == [self.SPANS[0]]

    def test_mid_file_corruption_still_errors(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            '{"kind": "header", "schema_version": 2}',
            "{nope",
            '{"lane": "machine", "phase": "scan", "start": 0, "stop": 1}',
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="malformed trace line"):
            read_trace(path)

    def test_unknown_span_fields_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"lane": "machine", "phase": "scan", "start": 0.0, '
            '"stop": 1.0, "color": "red"}\n'
        )
        (span,) = read_trace(path).spans
        assert span == Span("machine", "scan", 0.0, 1.0)

    def test_unknown_kind_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(self.SPANS, path)
        with open(path, "a") as fh:
            fh.write('{"kind": "future-extension", "payload": 7}\n')
        assert list(read_trace(path).spans) == self.SPANS

    def test_zero_span_trace_round_trip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_trace_jsonl([], path, metrics={"counters": {}, "gauges": {}})
        trace = read_trace(path)
        assert trace.spans == ()
        assert trace.metrics == {"counters": {}, "gauges": {}}

    def test_read_trace_jsonl_unchanged_contract(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(self.SPANS, path, metrics={"counters": {"c": 1}})
        assert read_trace_jsonl(path) == self.SPANS


class TestInstrumentation:
    """The recorder flows through every execution path with the
    documented lanes and counters."""

    def test_timings_none_by_default(self, img):
        assert aremsp(img).timings is None
        assert paremsp(img, n_threads=2).timings is None
        assert tiled_label(img, tile_shape=(8, 8)).timings is None

    def test_run_two_pass_traced(self, img):
        rec = TraceRecorder()
        with use_recorder(rec):
            result = aremsp(img)
        assert result.timings is not None
        phases = {s.phase for s in result.timings.spans}
        assert phases == {"scan", "flatten", "label"}

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_paremsp_backends_traced(self, backend, img):
        rec = TraceRecorder()
        with use_recorder(rec):
            result = paremsp(
                img, n_threads=3, backend=backend, engine="vectorized"
            )
        assert result.timings is not None
        lanes = {s.lane for s in rec.spans}
        assert "machine" in lanes
        assert {f"thread {i}" for i in range(3)} <= lanes
        machine_phases = {
            s.phase for s in rec.spans if s.lane == "machine"
        }
        assert machine_phases == {"scan", "merge", "flatten", "label"}
        counters = rec.metrics.as_dict()["counters"]
        assert counters["paremsp.runs"] == 1
        assert "unionfind.boundary_unions" in counters
        if backend == "processes":
            assert "worker 0" in lanes
            assert counters["worker.forked"] == counters["worker.joined"]
            assert rec.metrics.as_dict()["gauges"]["shm.bytes"] > 0

    def test_paremsp_explicit_recorder_param(self, img):
        rec = TraceRecorder()
        result = paremsp(img, n_threads=2, recorder=rec)
        assert result.timings is not None
        assert len(rec.spans) > 0

    def test_simulated_backend_traced(self, img):
        rec = TraceRecorder()
        with use_recorder(rec):
            result = paremsp(img, n_threads=3, backend="simulated")
        assert result.timings is not None
        lanes = {s.lane for s in rec.spans}
        assert "machine" in lanes and "thread 0" in lanes

    def test_tiled_traced(self, img):
        rec = TraceRecorder()
        result = tiled_label(img, tile_shape=(8, 8), recorder=rec)
        assert result.timings is not None
        assert any(s.lane.startswith("tile ") for s in rec.spans)
        counters = rec.metrics.as_dict()["counters"]
        assert counters["tiled.seam_unions"] == result.meta["seam_unions"]

    def test_contour_traced(self, img):
        rec = TraceRecorder()
        with use_recorder(rec):
            result = contour_trace(img)
        assert result.timings is not None
        assert set(result.phase_seconds) == {"scan", "flatten", "label"}

    def test_merger_counts_under_tracing(self):
        rec = TraceRecorder()
        p = list(range(16))
        m = LockStripedMerger(p, recorder=rec)
        assert m.merge(3, 5) == m.merge(5, 7)
        counters = rec.metrics.as_dict()["counters"]
        assert counters["merger.merges"] == 2
        assert counters["merger.lock_acquires"] >= 2

    def test_merger_without_recorder_unchanged(self):
        p1, p2 = list(range(16)), list(range(16))
        LockStripedMerger(p1).merge(3, 5)
        LockStripedMerger(p2, recorder=TraceRecorder()).merge(3, 5)
        assert p1 == p2

    def test_trace_backends_helper(self, img):
        reports = trace_backends(img, n_threads=2)
        assert set(reports) == {"serial", "threads", "processes"}
        for report in reports.values():
            assert ("machine", "scan") in report.phase_lane_seconds()

    def test_phase_seconds_unchanged_by_tracing(self, img):
        plain = paremsp(img, n_threads=3, engine="vectorized")
        rec = TraceRecorder()
        with use_recorder(rec):
            traced = paremsp(img, n_threads=3, engine="vectorized")
        assert set(plain.phase_seconds) == set(traced.phase_seconds)
        assert np.array_equal(plain.labels, traced.labels)


class TestDisabledOverhead:
    def test_disabled_overhead_under_two_percent(self):
        """The instrumentation's cost with tracing off — every guard,
        mark, and PhaseTimer touch a run makes — must stay below 2% of
        a 512x512 vectorized scan."""
        img = blobs((512, 512), 0.6, 5, seed=3)
        best = min(
            timeit.repeat(
                lambda: run_based_vectorized(img), number=1, repeat=3
            )
        )
        rec = NULL_RECORDER
        per_guard = timeit.timeit(lambda: rec.enabled, number=50000) / 50000
        per_mark = timeit.timeit(rec.mark, number=50000) / 50000
        timer = PhaseTimer(rec)

        def one_phase():
            with timer.time("x"):
                pass

        per_phase = timeit.timeit(one_phase, number=20000) / 20000
        # a run touches a handful of guards, one mark, and four phases
        per_run_overhead = 16 * per_guard + per_mark + 4 * per_phase
        assert per_run_overhead < 0.02 * best, (
            f"disabled-tracing overhead {per_run_overhead * 1e6:.1f}us vs "
            f"scan {best * 1e3:.2f}ms"
        )
