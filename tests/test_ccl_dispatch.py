"""The ``auto`` engine: statistics, table plumbing, dispatch rules.

The dispatch table is measured data (``make bench-density``); these
tests pin the machinery around it — the cheap statistics, the
nearest-cell rule, every fallback path — with injected tables, plus one
test against the *committed* table asserting the headline behaviour:
auto picks a non-default engine for the fragmented-vertical regime the
sweep measured it winning.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro
from repro.ccl.dispatch import (
    CANDIDATE_ENGINES,
    DEFAULT_ENGINE,
    FEATURES,
    SMALL_IMAGE_PIXELS,
    TABLE_PATH,
    auto_label,
    build_dispatch_table,
    choose_engine,
    image_stats,
    load_dispatch_table,
)
from repro.ccl.registry import ALGORITHMS


def _vstripes(n=128):
    img = np.zeros((n, n), dtype=np.uint8)
    img[:, ::2] = 1
    return img


def _table(cells):
    return {
        "schema_version": 2,
        "source": "test",
        "default": DEFAULT_ENGINE,
        "features": list(FEATURES),
        "cells": cells,
    }


class TestImageStats:
    def test_empty(self):
        s = image_stats(np.zeros((0, 0), dtype=np.uint8))
        assert s.pixels == 0
        assert s.features == (0.0, 0.0, 0.0)

    def test_vertical_stripes_fragment_rows_not_columns(self):
        s = image_stats(_vstripes(64))
        assert s.density == pytest.approx(0.5)
        assert s.row_runs_per_pixel == pytest.approx(0.5)
        # one run start per foreground column = 32 starts / 4096 px
        assert s.col_runs_per_pixel == pytest.approx(32 / 4096)

    def test_horizontal_stripes_mirror(self):
        v = image_stats(_vstripes(64))
        h = image_stats(np.ascontiguousarray(_vstripes(64).T))
        assert v.row_runs_per_pixel == pytest.approx(h.col_runs_per_pixel)
        assert v.col_runs_per_pixel == pytest.approx(h.row_runs_per_pixel)

    def test_solid_block(self):
        s = image_stats(np.ones((10, 10), dtype=np.uint8))
        assert s.density == 1.0
        assert s.row_runs_per_pixel == pytest.approx(0.1)
        assert s.col_runs_per_pixel == pytest.approx(0.1)


class TestChooseEngine:
    def test_small_image_short_circuits(self):
        table = _table([{
            "connectivity": 8, "pattern": "x", "density": 0.5,
            "features": [0.5, 0.5, 0.0], "engine": "itequiv",
        }])
        img = np.ones((4, 4), dtype=np.uint8)
        engine, info = choose_engine(img, 8, table=table)
        assert engine == DEFAULT_ENGINE
        assert info["rule"] == "small-image"
        assert img.size < SMALL_IMAGE_PIXELS

    def test_no_cells_for_connectivity(self):
        table = _table([{
            "connectivity": 8, "pattern": "x", "density": 0.5,
            "features": [0.5, 0.5, 0.0], "engine": "itequiv",
        }])
        engine, info = choose_engine(_vstripes(), 4, table=table)
        assert engine == DEFAULT_ENGINE
        assert info["rule"] == "no-table-cells"

    def test_nearest_cell_wins(self):
        table = _table([
            {"connectivity": 4, "pattern": "noise", "density": 0.5,
             "features": [0.5, 0.25, 0.25], "engine": "run-vectorized"},
            {"connectivity": 4, "pattern": "vstripes", "density": 0.5,
             "features": [0.5, 0.5, 0.0], "engine": "itequiv"},
        ])
        engine, info = choose_engine(_vstripes(), 4, table=table)
        assert engine == "itequiv"
        assert info["rule"] == "nearest-cell"
        assert info["nearest"]["pattern"] == "vstripes"
        rng = np.random.default_rng(3)
        noise = (rng.random((128, 128)) < 0.5).astype(np.uint8)
        engine, info = choose_engine(noise, 4, table=table)
        assert engine == "run-vectorized"
        assert info["nearest"]["pattern"] == "noise"

    def test_unavailable_cell_engine_falls_back(self):
        table = _table([{
            "connectivity": 4, "pattern": "x", "density": 0.5,
            "features": [0.5, 0.5, 0.0], "engine": "block2x2",
        }])
        engine, info = choose_engine(_vstripes(), 4, table=table)
        assert engine == DEFAULT_ENGINE
        assert info["rule"] == "cell-engine-unavailable"


class TestTablePlumbing:
    def test_load_missing_file_uses_fallback(self, tmp_path):
        table = load_dispatch_table(tmp_path / "nope.json")
        assert table["source"] == "fallback"
        assert table["schema_version"] == 2

    def test_load_malformed_uses_fallback(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert load_dispatch_table(bad)["source"] == "fallback"
        bad.write_text(json.dumps({"schema_version": 1, "entries": {}}))
        assert load_dispatch_table(bad)["source"] == "fallback"

    def test_fallback_names_known_engines_only(self):
        table = load_dispatch_table("/definitely/not/there.json")
        for cell in table["cells"]:
            assert cell["engine"] in ALGORITHMS
            assert cell["engine"] in CANDIDATE_ENGINES

    def test_build_reduces_record_to_winners(self):
        record = {
            "benchmark": "density_sweep",
            "cells": [
                {"connectivity": 4, "pattern": "p", "density": 0.5,
                 "features": [0.5, 0.5, 0.0], "engine": "run-vectorized",
                 "best_seconds": 2.0},
                {"connectivity": 4, "pattern": "p", "density": 0.5,
                 "features": [0.5, 0.5, 0.0], "engine": "itequiv",
                 "best_seconds": 1.0},
                {"connectivity": 8, "pattern": "p", "density": 0.5,
                 "features": [0.5, 0.5, 0.0], "engine": "run-vectorized",
                 "best_seconds": 1.0},
            ],
        }
        table = build_dispatch_table(record)
        winners = {
            (c["connectivity"], c["pattern"]): c["engine"]
            for c in table["cells"]
        }
        assert winners == {(4, "p"): "itequiv", (8, "p"): "run-vectorized"}
        four = next(c for c in table["cells"] if c["connectivity"] == 4)
        assert four["best_seconds"] == 1.0
        assert four["default_seconds"] == 2.0

    def test_build_skips_malformed_cells(self):
        record = {"cells": [{"connectivity": "x"}, 42, None]}
        assert build_dispatch_table(record)["cells"] == []


class TestAutoLabel:
    def test_result_is_audited(self):
        result = auto_label(np.eye(8, dtype=np.uint8), 8)
        dispatch = result.meta["dispatch"]
        assert dispatch["requested"] == "auto"
        assert dispatch["engine"] == result.algorithm
        assert dispatch["rule"] == "small-image"
        assert result.n_components == 1

    def test_registry_and_label_expose_auto(self):
        img = np.eye(8, dtype=np.uint8)
        from repro.ccl.registry import get_algorithm

        assert get_algorithm("auto") is auto_label
        _, n = repro.label(img, engine="auto")
        assert n == 1

    def test_committed_table_picks_non_default_for_vstripes(self):
        """The acceptance headline: on the fragmented-vertical regime
        the committed, measured table routes away from the default
        engine (and the result is still byte-correct)."""
        assert TABLE_PATH.exists(), "committed dispatch table missing"
        table = load_dispatch_table()
        assert table["source"] == "density_sweep"
        img = _vstripes(256)
        engine, info = choose_engine(img, 4, table=table)
        assert info["rule"] == "nearest-cell"
        assert engine != DEFAULT_ENGINE
        result = auto_label(img, 4)
        assert result.algorithm == engine
        expected = repro.label(img, connectivity=4)[0]
        assert result.n_components == int(expected.max())

    def test_auto_matches_default_on_noise(self):
        rng = np.random.default_rng(5)
        img = (rng.random((96, 96)) < 0.4).astype(np.uint8)
        auto = auto_label(img, 8)
        ref, n = repro.label(img, connectivity=8)
        assert auto.n_components == n


class TestDispatchTelemetry:
    def test_auto_label_records_decision_span_and_counter(self):
        """A traced auto run leaves one ``dispatch`` span whose attrs
        answer "which engine, and why" plus the
        ``dispatch.engine_selected`` counter the runtime layer rolls
        up (the observability PR's satellite contract)."""
        from repro.obs import TraceRecorder, use_recorder

        rng = np.random.default_rng(7)
        img = (rng.random((96, 96)) < 0.4).astype(np.uint8)
        rec = TraceRecorder()
        with use_recorder(rec):
            result = auto_label(img, 8)
        spans = [s for s in rec.spans if s.phase == "dispatch"]
        assert len(spans) == 1
        attrs = spans[0].attrs or {}
        assert attrs["engine"] == result.algorithm
        assert attrs["rule"] == result.meta["dispatch"]["rule"]
        assert attrs["density"] == pytest.approx(
            result.meta["dispatch"]["density"]
        )
        assert attrs["pixels"] == img.size
        counters = rec.metrics.as_dict()["counters"]
        assert counters["dispatch.engine_selected"] == 1
        assert counters[f"dispatch.pick.{result.algorithm}"] == 1
        assert spans[0].stop > spans[0].start

    def test_null_recorder_pays_nothing(self):
        img = _vstripes(64)
        result = auto_label(img, 4)
        assert "dispatch" in result.meta
