"""Record comparison: the regression gate's judgement logic.

Two records are compared median-to-median, total and per phase.
A movement past ``threshold`` (total) / ``phase_threshold`` (per
phase) is a **regression**; past ``hard_threshold`` (default 3x) it
is a **hard** regression — the kind that stays fatal even in the
warn-only mode CI uses on shared runners, because no amount of noisy
-neighbour scheduling makes a phase 3x slower on its own.

Bootstrap CIs stored in the records soften the verdict: when the two
medians' confidence intervals overlap, the movement is flagged as
``within_noise`` and does not count toward the exit status (it is
still listed, because a consistent drift of within-noise movements is
worth eyeballing).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

__all__ = ["Regression", "Comparison", "compare_records"]


@dataclasses.dataclass(frozen=True)
class Regression:
    """One metric that moved between two records."""

    name: str  # "total" or "phase:<name>"
    baseline: float
    new: float
    threshold: float
    hard: bool = False
    within_noise: bool = False

    @property
    def ratio(self) -> float:
        return self.new / self.baseline if self.baseline > 0 else float("inf")

    @property
    def is_regression(self) -> bool:
        return self.new > self.baseline

    def describe(self) -> str:
        direction = "slower" if self.is_regression else "faster"
        qualifier = ""
        if self.hard:
            qualifier = " [HARD]"
        elif self.within_noise:
            qualifier = " [within CI noise]"
        return (
            f"{self.name}: {self.baseline:.6f}s -> {self.new:.6f}s "
            f"({self.ratio:.2f}x, {direction}, threshold "
            f"{1 + self.threshold:.2f}x){qualifier}"
        )


@dataclasses.dataclass
class Comparison:
    """Outcome of one baseline-vs-new diff."""

    baseline_path: str
    new_path: str
    regressions: list[Regression]
    improvements: list[Regression]

    @property
    def counted_regressions(self) -> list[Regression]:
        """Regressions that count toward the exit status (hard ones
        always count; soft ones only when outside CI noise)."""
        return [
            r for r in self.regressions if r.hard or not r.within_noise
        ]

    @property
    def ok(self) -> bool:
        return not self.counted_regressions

    @property
    def has_hard(self) -> bool:
        return any(r.hard for r in self.regressions)

    def render(self) -> str:
        lines = [f"baseline: {self.baseline_path}", f"new:      {self.new_path}"]
        if not self.regressions and not self.improvements:
            lines.append("no metric moved past its threshold")
        for reg in self.regressions:
            lines.append(f"REGRESSION  {reg.describe()}")
        for imp in self.improvements:
            lines.append(f"improvement {imp.describe()}")
        lines.append(
            "verdict: "
            + ("ok" if self.ok else
               "REGRESSED" + (" (hard)" if self.has_hard else ""))
        )
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        def one(r: Regression) -> dict[str, Any]:
            return {
                "name": r.name,
                "baseline": r.baseline,
                "new": r.new,
                "ratio": r.ratio,
                "threshold": r.threshold,
                "hard": r.hard,
                "within_noise": r.within_noise,
            }

        return {
            "baseline": self.baseline_path,
            "new": self.new_path,
            "ok": self.ok,
            "has_hard": self.has_hard,
            "regressions": [one(r) for r in self.regressions],
            "improvements": [one(r) for r in self.improvements],
        }


def _ci(summary: Mapping[str, Any]) -> tuple[float, float] | None:
    ci = summary.get("ci95")
    if isinstance(ci, (list, tuple)) and len(ci) == 2:
        return float(ci[0]), float(ci[1])
    return None


def _judge(
    name: str,
    old_summary: Mapping[str, Any],
    new_summary: Mapping[str, Any],
    threshold: float,
    hard_threshold: float,
) -> Regression | None:
    old = float(old_summary["median"])
    new = float(new_summary["median"])
    if old <= 0:
        return None
    ratio = new / old
    if abs(ratio - 1.0) <= threshold:
        return None
    old_ci, new_ci = _ci(old_summary), _ci(new_summary)
    within_noise = bool(
        old_ci and new_ci
        and new_ci[0] <= old_ci[1] and old_ci[0] <= new_ci[1]
    )
    return Regression(
        name=name,
        baseline=old,
        new=new,
        threshold=threshold,
        hard=ratio > hard_threshold,
        within_noise=within_noise,
    )


def compare_records(
    baseline: Mapping[str, Any],
    new: Mapping[str, Any],
    threshold: float = 0.25,
    phase_threshold: float = 0.50,
    hard_threshold: float = 3.0,
    baseline_path: str = "<baseline>",
    new_path: str = "<new>",
) -> Comparison:
    """Diff two perfdb records (see module docstring for semantics).

    Thresholds are *relative* movements: ``threshold=0.25`` flags a
    total-median change past 1.25x (or below 0.75x, reported as an
    improvement). Phases present in only one record are ignored — a
    renamed phase should be re-baselined, not silently diffed.
    """
    if baseline.get("benchmark") != new.get("benchmark"):
        raise ValueError(
            f"comparing different benchmarks: "
            f"{baseline.get('benchmark')!r} vs {new.get('benchmark')!r}"
        )
    regressions: list[Regression] = []
    improvements: list[Regression] = []

    def sort_in(move: Regression | None) -> None:
        if move is None:
            return
        (regressions if move.is_regression else improvements).append(move)

    sort_in(
        _judge("total", baseline["total"], new["total"], threshold,
               hard_threshold)
    )
    old_phases = baseline.get("phases", {})
    new_phases = new.get("phases", {})
    for name in sorted(set(old_phases) & set(new_phases)):
        sort_in(
            _judge(
                f"phase:{name}",
                old_phases[name],
                new_phases[name],
                phase_threshold,
                hard_threshold,
            )
        )
    return Comparison(
        baseline_path=baseline_path,
        new_path=new_path,
        regressions=regressions,
        improvements=improvements,
    )
