"""Worker supervision for the process backend: detect, respawn, bound.

The fork-per-batch scan of :class:`repro.parallel.backends.processes.
ProcessBackend` used to treat any nonzero worker exit as fatal and any
hang as a test-suite timeout. :func:`supervise` upgrades that to real
resilience:

* **death detection** — workers are watched through their OS-level
  ``Process.sentinel`` file descriptors (``multiprocessing.connection.
  wait``), so a SIGKILLed or OOM-killed worker is noticed the moment
  the kernel closes its pipe, not when a ``join`` happens to return;
* **bounded respawn** — a failed worker's *incomplete* chunks (the
  shared used-watermark array says which finished) are re-batched and
  re-forked with exponential backoff, up to
  :class:`~repro.faults.ResilienceConfig.max_retries`; chunk scans are
  idempotent (disjoint row/label ranges), so re-running a partially
  scanned chunk is safe by construction;
* **watchdog** — the whole phase runs against one deadline
  (``phase_timeout``); on expiry every live worker is killed and a
  typed :class:`~repro.errors.PhaseTimeoutError` is raised — a hang is
  never allowed to outlive the budget;
* **no orphans** — on *any* exit path, including ``KeyboardInterrupt``
  mid-wait, still-running children are killed before the exception
  propagates.

Progress lands in the trace as ``retry.*`` / ``worker.*`` /
``watchdog.*`` events (docs/RESILIENCE.md has the inventory), and
injected faults are arbitrated here coordinator-side via
:meth:`~repro.faults.FaultPlan.directives` so firing budgets need no
cross-process state.
"""

from __future__ import annotations

import time
from multiprocessing import connection
from typing import Callable, Sequence

from ..errors import PhaseTimeoutError, WorkerCrashError
from ..faults import NULL_PLAN, ResilienceConfig, record_injection
from ..obs import NULL_RECORDER

__all__ = ["supervise", "kill_workers", "interruptible_backoff"]

#: grace period (seconds) for a killed worker to be reaped.
_KILL_GRACE = 5.0


def kill_workers(procs) -> None:
    """Kill and reap every live process in *procs* — **idempotent**.

    Safe to call twice (a second signal races a first drain), safe on
    already-dead or never-started processes, safe concurrently:
    ``kill`` on a reaped process is a no-op and double ``join`` just
    returns. Both the scan supervisor and the warm worker pool
    (:mod:`repro.service.pool`) funnel every shutdown path through
    here so no exit path can strand a child.
    """
    for proc in procs:
        try:
            if proc.is_alive():
                proc.kill()
        except (ValueError, OSError):  # pragma: no cover - closed proc
            pass
    for proc in procs:
        try:
            if proc.pid is not None:
                proc.join(_KILL_GRACE)
        except (ValueError, OSError):  # pragma: no cover - closed proc
            pass


# kept under the historical private name for existing callers/tests.
_kill_all = kill_workers


def interruptible_backoff(delay: float, stop_event=None) -> bool:
    """Sleep *delay* seconds, waking early if *stop_event* is set.

    Returns ``True`` when the sleep was interrupted (drain requested).
    A plain ``time.sleep`` here is how a graceful drain used to strand
    a respawning worker: the drain signal landed mid-backoff and the
    supervisor woke up afterwards and re-forked anyway.
    """
    if delay <= 0:
        return bool(stop_event is not None and stop_event.is_set())
    if stop_event is None:
        time.sleep(delay)
        return False
    return stop_event.wait(delay)


def supervise(
    batches: Sequence[Sequence],
    spawn: Callable,
    chunk_done: Callable,
    config: ResilienceConfig,
    recorder=NULL_RECORDER,
    fault_plan=NULL_PLAN,
    phase: str = "scan",
    stop_event=None,
) -> dict:
    """Run *batches* of chunk work under supervision until complete.

    ``spawn(batch, directives)`` must return an **unstarted**
    ``multiprocessing.Process`` scanning *batch* (a sequence of chunk
    tuples) and executing the fault *directives* (``(kind,
    after_chunks, value)`` triples); ``chunk_done(chunk)`` must report
    whether a chunk's results already landed in shared memory.

    *stop_event*, when given, is a drain signal (``threading.Event``):
    once set, the in-flight attempt is allowed to finish (bounded by
    the watchdog as always) but **no further respawn happens** — the
    respawn backoff sleep wakes immediately instead of re-forking
    afterwards, every child is reaped, and supervision returns with
    ``"drained": True`` (incomplete chunks stay incomplete). Setting
    the event again — or from several threads at once — is a no-op:
    shutdown is idempotent under double-signal by construction, since
    every exit funnels through :func:`kill_workers`.

    Returns ``{"attempts": ..., "respawned": ..., "drained": ...}``.
    Raises :class:`WorkerCrashError` when retries are exhausted and
    :class:`PhaseTimeoutError` when the watchdog deadline expires.
    """
    deadline = time.monotonic() + config.phase_timeout
    pending = [list(batch) for batch in batches if batch]
    attempt = 0
    stats = {"attempts": 0, "respawned": 0, "drained": False}

    def drain_requested() -> bool:
        return stop_event is not None and stop_event.is_set()

    if drain_requested():
        stats["drained"] = True
        return stats
    while pending:
        stats["attempts"] = attempt + 1
        workers = []
        for index, batch in enumerate(pending):
            directives: tuple = ()
            if fault_plan.enabled:
                specs = fault_plan.directives(phase, index, attempt)
                for spec in specs:
                    record_injection(recorder, spec)
                directives = tuple(
                    (
                        spec.kind,
                        min(spec.after_chunks, len(batch)),
                        spec.exit_code
                        if spec.kind == "kill_worker"
                        else spec.delay_seconds,
                    )
                    for spec in specs
                )
            workers.append(spawn(batch, directives))
        fork_t0 = time.perf_counter()
        try:
            for proc in workers:
                proc.start()
            if recorder.enabled:
                recorder.count("worker.forked", len(workers))
            alive = {proc.sentinel: (index, proc)
                     for index, proc in enumerate(workers)}
            while alive:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                for sentinel in connection.wait(
                    list(alive), timeout=remaining
                ):
                    index, proc = alive.pop(sentinel)
                    proc.join()
                    if recorder.enabled:
                        recorder.add_span(
                            f"worker {index}", "worker",
                            fork_t0, time.perf_counter(),
                        )
            if alive:
                hung = tuple(sorted(index for index, _ in alive.values()))
                if recorder.enabled:
                    recorder.count("watchdog.timeout")
                raise PhaseTimeoutError(
                    f"{phase} watchdog expired after "
                    f"{config.phase_timeout:.1f}s with {len(alive)} "
                    f"worker(s) still running (workers {list(hung)}); "
                    "killed them",
                    phase=phase,
                    timeout=config.phase_timeout,
                    ranks=hung,
                )
        finally:
            _kill_all(workers)
        if recorder.enabled:
            recorder.count("worker.joined", len(workers))
        failures = [
            (index, proc.exitcode)
            for index, proc in enumerate(workers)
            if proc.exitcode != 0
        ]
        if not failures:
            if attempt > 0 and recorder.enabled:
                recorder.count("retry.succeeded")
            return stats
        if recorder.enabled:
            recorder.count("worker.crashed", len(failures))
        redo = []
        for index, _ in failures:
            rest = [c for c in pending[index] if not chunk_done(c)]
            if rest:
                redo.append(rest)
        if not redo:
            # the crash happened after every chunk of the batch landed
            # (e.g. an injected kill at end-of-batch): results are whole.
            if recorder.enabled:
                recorder.count("retry.succeeded")
            return stats
        if drain_requested():
            # drain beats respawn: the failed batch's chunks stay
            # incomplete, nothing is re-forked, children are already
            # reaped by the finally above.
            if recorder.enabled:
                recorder.count("supervisor.drained")
            stats["drained"] = True
            return stats
        if attempt >= config.max_retries:
            if recorder.enabled:
                recorder.count("retry.exhausted")
            codes = [code for _, code in failures]
            raise WorkerCrashError(
                f"{len(failures)} of {len(workers)} scan workers failed "
                f"(exit codes {codes}) after {attempt + 1} attempt(s)",
                ranks=tuple(index for index, _ in failures),
                phase=phase,
                exit_codes=tuple(codes),
                attempts=attempt + 1,
            )
        attempt += 1
        if recorder.enabled:
            recorder.count("retry.attempt")
            recorder.count("worker.respawned", len(redo))
        stats["respawned"] += len(redo)
        delay = config.backoff(attempt)
        if interruptible_backoff(
            min(delay, max(0.0, deadline - time.monotonic())), stop_event
        ):
            # the double-signal window: drain arrived while the backoff
            # sleep was in flight. Waking here (instead of sleeping the
            # full delay and re-forking anyway) is what guarantees a
            # graceful drain can never strand a respawning worker.
            if recorder.enabled:
                recorder.count("supervisor.drained")
            stats["drained"] = True
            return stats
        pending = redo
    return stats
