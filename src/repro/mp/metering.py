"""Communication metering: count messages and bytes per rank.

The distributed CCL's scaling story on a real cluster hinges on its
communication volume — O(width) halo rows and O(components) resolution
tables, against O(pixels) of local work. :class:`MeteredCommunicator`
wraps any communicator and tallies traffic so tests can *assert* those
complexity claims, and :class:`NetworkModel` prices the tallies with
the standard alpha-beta (latency + inverse-bandwidth) model, giving the
distributed algorithm the same treat-the-clock-as-a-model analysis the
shared-memory side gets from :mod:`repro.simmachine`.

Payload sizing is structural (ndarray ``nbytes``, recursive container
walk) rather than pickle-based, so metering never perturbs the run.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from .comm import Communicator

__all__ = ["TrafficCounter", "MeteredCommunicator", "NetworkModel"]


def payload_bytes(obj: Any) -> int:
    """Structural size estimate of a message payload."""
    if obj is None:
        return 0
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (list, tuple, set)):
        return sum(payload_bytes(x) for x in obj)
    if isinstance(obj, dict):
        return sum(
            payload_bytes(k) + payload_bytes(v) for k, v in obj.items()
        )
    return 64  # opaque object: charge a flat envelope


@dataclasses.dataclass
class TrafficCounter:
    """Per-rank traffic tallies.

    ``messages_sent``/``bytes_sent`` are totals; the ``p2p_*`` fields
    count only explicit :meth:`~repro.mp.comm.Communicator.send` calls
    (collectives bypass ``send``), which is what isolates e.g. the
    distributed labeler's halo exchange from its result gathering.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    p2p_messages: int = 0
    p2p_bytes: int = 0
    collective_calls: int = 0

    def add(self, nbytes: int) -> None:
        self.messages_sent += 1
        self.bytes_sent += nbytes

    def add_p2p(self, nbytes: int) -> None:
        self.add(nbytes)
        self.p2p_messages += 1
        self.p2p_bytes += nbytes


class MeteredCommunicator(Communicator):
    """A :class:`~repro.mp.comm.Communicator` that meters its traffic.

    Drop-in: construct with the same (network, rank) pair, or wrap an
    SPMD program with :func:`metered_program`. Collective operations are
    metered through the point-to-point sends they decompose into, plus
    a call count.
    """

    def __init__(self, network, rank: int) -> None:
        super().__init__(network, rank)
        self.traffic = TrafficCounter()

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self.traffic.add_p2p(payload_bytes(obj))
        super().send(obj, dest, tag)

    def bcast(self, obj: Any, root: int = 0) -> Any:
        self.traffic.collective_calls += 1
        if self.rank == root:
            self.traffic.messages_sent += self.size - 1
            self.traffic.bytes_sent += payload_bytes(obj) * (self.size - 1)
        return super().bcast(obj, root)

    def gather(self, obj: Any, root: int = 0):
        self.traffic.collective_calls += 1
        if self.rank != root:
            self.traffic.add(payload_bytes(obj))
        return super().gather(obj, root)

    def scatter(self, objs, root: int = 0) -> Any:
        self.traffic.collective_calls += 1
        if self.rank == root and objs is not None:
            for r, item in enumerate(objs):
                if r != root:
                    self.traffic.add(payload_bytes(item))
        return super().scatter(objs, root)


def metered_program(program):
    """Wrap an SPMD program so each rank runs with a metered
    communicator and returns ``(result, TrafficCounter)``."""

    def wrapper(comm: Communicator, *args, **kwargs):
        metered = MeteredCommunicator(comm._net, comm.rank)
        result = program(metered, *args, **kwargs)
        return result, metered.traffic

    return wrapper


@dataclasses.dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta message cost model.

    ``alpha`` is per-message latency (seconds), ``beta`` seconds per
    byte (inverse bandwidth). Defaults approximate a commodity cluster
    interconnect (~2 us latency, ~10 GB/s effective).
    """

    alpha: float = 2e-6
    beta: float = 1e-10

    def seconds(self, traffic: TrafficCounter) -> float:
        """Price one rank's outbound traffic."""
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("network costs must be non-negative")
        return self.alpha * traffic.messages_sent + self.beta * traffic.bytes_sent

    def makespan(self, traffics: list[TrafficCounter]) -> float:
        """Price a whole run: the busiest rank bounds the comm phase."""
        return max((self.seconds(t) for t in traffics), default=0.0)
