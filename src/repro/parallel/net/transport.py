"""Per-peer connection management: retries, backoff + jitter, timeouts.

One :class:`PeerClient` owns one logical **channel** to one peer — a
TCP connection it (re)establishes on demand, a monotonic sequence
counter, and a bounded retry loop implementing idempotent
at-least-once delivery on top of :mod:`.framing`:

* a call sends one request frame and waits for the reply frame with the
  same ``seq`` (stale replies — a duplicated or late answer from an
  earlier attempt — are discarded by sequence number);
* any transport failure (connect refused, send/recv timeout, truncated
  stream, fatally corrupt header) tears the connection down, sleeps a
  **bounded exponential backoff with jitter**, reconnects, and resends
  the *same* frame — the receiver's :class:`~.framing.ReplayCache`
  makes the retry safe;
* a *non*-fatally corrupt reply (payload CRC mismatch) is counted and
  retried on the same connection — the stream is still frame-aligned;
* when the retry budget is spent the caller gets a typed
  :class:`~repro.errors.PeerUnreachableError`.

Timeouts follow the ``resolve_spmd_timeout`` precedence (argument >
environment > default) via :func:`resolve_net_timeout`, with one
environment knob per timeout class (``REPRO_NET_CONNECT_TIMEOUT``,
``REPRO_NET_CALL_TIMEOUT``, ``REPRO_NET_EXEC_TIMEOUT``).

Fault injection (``drop_conn`` / ``slow_link`` / ``corrupt_frame`` /
``dup_msg``, consulted at phase ``"net"``) happens on the client's
send path, and a shared :class:`PartitionLink` lets the cluster layer
black out *every* channel to a host at once — the ``partition`` fault —
then heal it.
"""

from __future__ import annotations

import os
import random
import socket
import time

from ...errors import (
    FrameCorruptError,
    FrameTruncatedError,
    PeerUnreachableError,
)
from ...faults import NULL_PLAN, record_injection
from ...obs import NULL_RECORDER
from .framing import dumps_payload, encode_frame, loads_payload, read_frame

__all__ = [
    "DEFAULT_CONNECT_TIMEOUT",
    "DEFAULT_CALL_TIMEOUT",
    "DEFAULT_EXEC_TIMEOUT",
    "resolve_net_timeout",
    "backoff_delay",
    "NetConfig",
    "PartitionLink",
    "PeerClient",
]

#: TCP connect deadline (seconds) when nothing overrides it.
DEFAULT_CONNECT_TIMEOUT = 5.0

#: reply deadline for control calls (ping, heartbeat) — short, so a
#: partitioned host is noticed within a lease period.
DEFAULT_CALL_TIMEOUT = 10.0

#: reply deadline for task-execution calls — long, a shard scan on a
#: busy host is minutes of legitimate silence on the work channel.
DEFAULT_EXEC_TIMEOUT = 300.0

_ENV_PREFIX = "REPRO_NET_"


def resolve_net_timeout(
    timeout: float | None, env: str, default: float
) -> float:
    """Effective deadline: argument beats ``REPRO_NET_<ENV>`` beats
    *default* — the :func:`repro.mp.resolve_spmd_timeout` precedence.

    Malformed or non-positive values raise ``ValueError`` up front; a
    deadline that silently became 0 would report every peer as dead.
    """
    if timeout is None:
        raw = os.environ.get(_ENV_PREFIX + env)
        if raw is None or not raw.strip():
            return default
        try:
            timeout = float(raw)
        except ValueError:
            raise ValueError(
                f"{_ENV_PREFIX + env} must be a number of seconds, got {raw!r}"
            ) from None
    timeout = float(timeout)
    if timeout <= 0:
        raise ValueError(f"net timeout must be > 0 seconds, got {timeout}")
    return timeout


def backoff_delay(
    attempt: int,
    base: float = 0.05,
    factor: float = 2.0,
    cap: float = 2.0,
    rng: random.Random | None = None,
) -> float:
    """Reconnect delay before retry *attempt* (1-based): bounded
    exponential with jitter.

    The nominal delay is ``min(cap, base * factor**(attempt-1))``; the
    returned value is jittered uniformly into ``[nominal/2, nominal]``
    so a fleet of clients whose connections died together does not
    reconnect in lockstep. Always ``0.0`` for ``attempt <= 0`` and
    never above *cap*.
    """
    if attempt <= 0 or base <= 0:
        return 0.0
    nominal = min(cap, base * factor ** (attempt - 1))
    r = rng if rng is not None else random
    return nominal * (0.5 + 0.5 * r.random())


class NetConfig:
    """Transport knobs: timeouts, retry budget, backoff shape.

    ``None`` timeouts resolve through :func:`resolve_net_timeout` at
    construction, so a bad environment override fails fast and loudly.
    """

    __slots__ = (
        "connect_timeout",
        "call_timeout",
        "exec_timeout",
        "max_retries",
        "backoff_base",
        "backoff_factor",
        "backoff_cap",
    )

    def __init__(
        self,
        connect_timeout: float | None = None,
        call_timeout: float | None = None,
        exec_timeout: float | None = None,
        max_retries: int = 3,
        backoff_base: float = 0.05,
        backoff_factor: float = 2.0,
        backoff_cap: float = 2.0,
    ) -> None:
        self.connect_timeout = resolve_net_timeout(
            connect_timeout, "CONNECT_TIMEOUT", DEFAULT_CONNECT_TIMEOUT
        )
        self.call_timeout = resolve_net_timeout(
            call_timeout, "CALL_TIMEOUT", DEFAULT_CALL_TIMEOUT
        )
        self.exec_timeout = resolve_net_timeout(
            exec_timeout, "EXEC_TIMEOUT", DEFAULT_EXEC_TIMEOUT
        )
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_base < 0 or backoff_factor < 1 or backoff_cap < 0:
            raise ValueError(
                "backoff must satisfy base >= 0, factor >= 1, cap >= 0 "
                f"(got {backoff_base}, {backoff_factor}, {backoff_cap})"
            )
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap

    def backoff(self, attempt: int, rng: random.Random | None = None) -> float:
        return backoff_delay(
            attempt,
            self.backoff_base,
            self.backoff_factor,
            self.backoff_cap,
            rng,
        )


class PartitionLink:
    """Shared blackout switch for every channel to one host.

    The ``partition`` fault: while active, a client consulting the link
    fails immediately with :class:`PeerUnreachableError` — no packets
    move in either direction, exactly as if the route vanished — and
    after ``duration`` seconds the link **heals** on its own. Healing
    by wall clock mirrors a real partition; determinism for tests comes
    from sizing the duration against the lease, not from counting.
    """

    __slots__ = ("_until",)

    def __init__(self) -> None:
        self._until = 0.0

    def cut(self, duration: float) -> None:
        self._until = time.monotonic() + duration

    def heal(self) -> None:
        self._until = 0.0

    def blocked(self) -> bool:
        return time.monotonic() < self._until


class PeerClient:
    """One retrying, deduplicated request/reply channel to one peer.

    *peer_id* is the identity the receiver deduplicates by: it must be
    unique per (run, channel) and stable across reconnects, so a frame
    resent on a fresh connection still hits the same replay-cache slot.
    """

    def __init__(
        self,
        addr: tuple[str, int],
        peer_id: str,
        config: NetConfig | None = None,
        *,
        recorder=None,
        fault_plan=None,
        fault_rank: int | None = None,
        link: PartitionLink | None = None,
        rng: random.Random | None = None,
    ) -> None:
        self.addr = (addr[0], int(addr[1]))
        self.peer_id = peer_id
        self.config = config if config is not None else NetConfig()
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.fault_plan = fault_plan if fault_plan is not None else NULL_PLAN
        self.fault_rank = fault_rank
        self.link = link
        self._rng = rng
        self._sock: socket.socket | None = None
        self._seq = 0
        #: last measured round-trip time (seconds) of a successful call.
        self.last_rtt: float | None = None

    @property
    def endpoint(self) -> str:
        return f"{self.addr[0]}:{self.addr[1]}"

    # -- connection lifecycle ---------------------------------------------

    def _connect(self) -> socket.socket:
        sock = socket.create_connection(
            self.addr, timeout=self.config.connect_timeout
        )
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover - already torn down
                pass
            self._sock = None

    def _drop(self) -> None:
        self.close()

    # -- the call loop ----------------------------------------------------

    def _take_net_fault(self, kind: str):
        if not self.fault_plan.enabled:
            return None
        spec = self.fault_plan.take(kind, "net", rank=self.fault_rank)
        if spec is not None:
            record_injection(self.recorder, spec)
        return spec

    def call(self, msg: dict, timeout: float | None = None) -> dict:
        """Send *msg*, return the peer's reply — at-least-once.

        Retries (with reconnect + backoff) until the reply for this
        call's sequence number arrives or the budget is spent; the
        receiver's replay cache makes every resend idempotent. *timeout*
        overrides the per-reply deadline (default: ``call_timeout``).
        """
        if self.link is not None and self.link.blocked():
            self._drop()
            raise PeerUnreachableError(
                f"peer {self.endpoint} is partitioned",
                peer=self.endpoint,
                attempts=0,
            )
        deadline = (
            timeout if timeout is not None else self.config.call_timeout
        )
        self._seq += 1
        seq = self._seq
        payload = dumps_payload({**msg, "peer": self.peer_id})
        frame = encode_frame(seq, payload)
        last_error: Exception | None = None
        attempts = 0
        for attempt in range(self.config.max_retries + 1):
            if self.link is not None and self.link.blocked():
                self._drop()
                raise PeerUnreachableError(
                    f"peer {self.endpoint} is partitioned",
                    peer=self.endpoint,
                    attempts=attempts,
                )
            if attempt:
                time.sleep(self.config.backoff(attempt, self._rng))
            attempts += 1
            try:
                if self._sock is None:
                    self._sock = self._connect()
                    if attempt and self.recorder.enabled:
                        self.recorder.count("net.reconnects")
                reply = self._attempt(self._sock, seq, frame, deadline)
            except (OSError, FrameTruncatedError, FrameCorruptError) as exc:
                if isinstance(exc, FrameCorruptError) and not exc.fatal:
                    # payload-only corruption: the stream is still
                    # frame-aligned, retry without reconnecting.
                    if self.recorder.enabled:
                        self.recorder.count("net.frames_corrupt")
                else:
                    self._drop()
                last_error = exc
                if self.recorder.enabled:
                    self.recorder.count("net.retries")
                continue
            return reply
        raise PeerUnreachableError(
            f"peer {self.endpoint} unreachable after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}",
            peer=self.endpoint,
            attempts=attempts,
        )

    def _attempt(self, sock, seq: int, frame: bytes, deadline: float) -> dict:
        """One send + receive-matching-reply cycle on a live socket."""
        spec = self._take_net_fault("slow_link")
        if spec is not None:
            time.sleep(spec.delay_seconds)
        wire = frame
        spec = self._take_net_fault("corrupt_frame")
        if spec is not None and len(frame) > 20:
            # flip one payload byte; the header still frames it, so the
            # receiver NACKs this frame and the retry goes through.
            corrupt = bytearray(frame)
            corrupt[-1] ^= 0xFF
            wire = bytes(corrupt)
        sock.settimeout(deadline)
        sock.sendall(wire)
        if self._take_net_fault("dup_msg") is not None:
            sock.sendall(wire)
        if self._take_net_fault("drop_conn") is not None:
            # the connection dies right after the request leaves: the
            # reply is lost and the resend must be deduplicated.
            self._drop()
            raise ConnectionResetError("injected drop_conn")
        t0 = time.perf_counter()
        while True:
            rseq, rpayload = read_frame(sock)
            if rseq < seq:
                # a stale reply (duplicated frame, or the answer to an
                # attempt we already gave up on): discard by seq.
                if self.recorder.enabled:
                    self.recorder.count("net.frames_deduped")
                continue
            if rseq != seq:  # pragma: no cover - protocol invariant
                raise FrameCorruptError(
                    f"reply seq {rseq} for request seq {seq}", fatal=True
                )
            reply = loads_payload(rpayload)
            if reply.get("corrupt"):
                # receiver-side CRC NACK (our injected corrupt_frame
                # arrived): resend the intact frame.
                raise FrameCorruptError(
                    "peer rejected corrupt frame", seq=seq, fatal=False
                )
            self.last_rtt = time.perf_counter() - t0
            if self.recorder.enabled:
                self.recorder.gauge("net.rtt_ms", self.last_rtt * 1e3)
                if reply.pop("deduped", False):
                    self.recorder.count("net.frames_deduped")
            else:
                reply.pop("deduped", None)
            return reply
