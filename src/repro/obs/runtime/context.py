"""Cross-process request identity: mint, propagate, stitch.

A request id is minted once, at :meth:`repro.service.LabelService.submit`
admission, and travels with the request everywhere it executes:

* on the **front end** it annotates the admission/request spans
  (``attrs["request_id"]``);
* across the **fork boundary** it rides the warm-pool pipe protocol
  (a few bytes per item — see :mod:`repro.service.pool`), so the spans
  a worker records for that request carry the same id;
* inside **engine phases** it is attached automatically: while a
  :func:`request_context` is active on a thread, every span that
  thread records is annotated (see ``TraceRecorder.add_span``).

The id format is ``"<pid-hex>-<seq>"`` — unique within a service
lifetime, cheap to mint (no UUID machinery), and obviously greppable
in a chrome export.
"""

from __future__ import annotations

import contextlib
import itertools
import os
from typing import Iterator

from ..recorder import _REQUEST_ID

__all__ = [
    "new_request_id",
    "current_request_id",
    "set_request_id",
    "request_context",
]

_SEQ = itertools.count(1)


def new_request_id(prefix: str | None = None) -> str:
    """Mint a fresh request id, unique within this process.

    >>> a, b = new_request_id(), new_request_id()
    >>> a != b
    True
    """
    head = prefix if prefix is not None else f"{os.getpid():x}"
    return f"{head}-{next(_SEQ):06d}"


def current_request_id() -> str | None:
    """The ambient request id on this thread/context (or ``None``)."""
    return _REQUEST_ID.get()


def set_request_id(request_id: str | None):
    """Install *request_id* as the ambient id; returns a reset token."""
    return _REQUEST_ID.set(request_id)


@contextlib.contextmanager
def request_context(request_id: str | None) -> Iterator[str | None]:
    """Scoped ambient request id: spans recorded inside are annotated.

    >>> with request_context("abc-000001") as rid:
    ...     current_request_id() == rid
    True
    >>> current_request_id() is None
    True
    """
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)
