"""One input-validation policy across every labeling entry point.

``ensure_input`` canonicalises layout oddities (Fortran order,
non-contiguous views, bool/uint16 dtypes, read-only memmaps, binary
floats) and rejects garbage with a typed
:class:`~repro.errors.InputError` — the same outcome whether the pixels
enter through ``label``, ``paremsp``, ``tiled_label``, the streaming
labeler, or a checkpointed job.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import label
from repro.ccl.streaming import StreamingLabeler
from repro.errors import ImageFormatError, InputError, ReproError
from repro.parallel.paremsp import paremsp
from repro.parallel.tiled import tiled_label
from repro.types import ensure_input


def _eye(dtype=np.uint8, n=8):
    return np.eye(n, dtype=dtype)


class TestEnsureInput:
    def test_canonical_input_passes_through(self):
        img = _eye()
        out = ensure_input(img)
        assert out is img  # no copy when already canonical

    def test_bool_coerced(self):
        out = ensure_input(_eye(bool))
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, _eye())

    @pytest.mark.parametrize(
        "dtype", [np.uint16, np.int32, np.int64, np.uint64]
    )
    def test_wide_integers_coerced(self, dtype):
        out = ensure_input(_eye(dtype))
        assert out.dtype == np.uint8

    def test_binary_float_coerced(self):
        out = ensure_input(_eye(np.float64))
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(out, _eye())

    def test_nonbinary_float_rejected(self):
        with pytest.raises(InputError, match="im2bw"):
            ensure_input(np.full((4, 4), 0.5))

    def test_fortran_order_coerced(self):
        out = ensure_input(np.asfortranarray(_eye()))
        assert out.flags.c_contiguous

    def test_noncontiguous_view_coerced(self):
        big = np.zeros((16, 16), dtype=np.uint8)
        big[::2, ::2] = 1
        out = ensure_input(big[::2, ::2])
        assert out.flags.c_contiguous
        assert int(out.sum()) == 64

    def test_readonly_memmap_accepted(self, tmp_path):
        np.save(tmp_path / "img.npy", _eye())
        mm = np.load(tmp_path / "img.npy", mmap_mode="r")
        out = ensure_input(mm)
        assert out.dtype == np.uint8
        np.testing.assert_array_equal(np.asarray(out), _eye())

    def test_readonly_array_passes_through(self):
        img = _eye()
        img.setflags(write=False)
        assert ensure_input(img) is img

    @pytest.mark.parametrize("bad", [np.zeros(4), np.zeros((2, 2, 2))])
    def test_wrong_ndim_rejected(self, bad):
        with pytest.raises(InputError, match="2-D"):
            ensure_input(bad)

    @pytest.mark.parametrize(
        "dtype", [np.complex128, object, "U1"]
    )
    def test_exotic_dtypes_rejected(self, dtype):
        with pytest.raises(InputError):
            ensure_input(np.zeros((3, 3), dtype=dtype))

    def test_out_of_range_values_rejected(self):
        with pytest.raises(InputError, match="0"):
            ensure_input(np.array([[0, 2]], dtype=np.uint8))

    def test_ragged_input_rejected(self):
        with pytest.raises(InputError):
            ensure_input([[1, 0], [1]])

    def test_input_error_is_valueerror(self):
        # pre-existing callers catch ValueError; the typed hierarchy
        # must not break them
        assert issubclass(InputError, ValueError)
        assert issubclass(InputError, ReproError)
        assert issubclass(ImageFormatError, InputError)


#: entry points that must all apply the same policy. Each returns
#: something with ``labels``/``n_components``.
ENTRY_POINTS = [
    pytest.param(lambda img: label(img), id="label"),
    pytest.param(
        lambda img: paremsp(img, n_threads=2, backend="serial"),
        id="paremsp",
    ),
    pytest.param(
        lambda img: tiled_label(img, tile_shape=(4, 4)), id="tiled"
    ),
    pytest.param(lambda img: label(img, engine="itequiv"), id="itequiv"),
    pytest.param(
        lambda img: label(img, engine="coarse2fine"), id="coarse2fine"
    ),
    pytest.param(lambda img: label(img, engine="auto"), id="auto"),
]


def _n_components(result):
    if isinstance(result, tuple):  # repro.label returns (labels, n)
        return int(result[1])
    return int(result.n_components)


class TestEntryPointsShareThePolicy:
    @pytest.fixture()
    def img(self):
        rng = np.random.default_rng(11)
        return (rng.random((12, 12)) < 0.5).astype(np.uint8)

    @pytest.mark.parametrize("run", ENTRY_POINTS)
    def test_fortran_order_accepted(self, run, img):
        assert _n_components(run(np.asfortranarray(img))) == _n_components(
            run(img)
        )

    @pytest.mark.parametrize("run", ENTRY_POINTS)
    def test_bool_accepted(self, run, img):
        assert _n_components(run(img.astype(bool))) == _n_components(run(img))

    @pytest.mark.parametrize("run", ENTRY_POINTS)
    def test_uint16_accepted(self, run, img):
        assert _n_components(run(img.astype(np.uint16))) == _n_components(
            run(img)
        )

    @pytest.mark.parametrize("run", ENTRY_POINTS)
    def test_nonbinary_rejected(self, run):
        with pytest.raises(InputError):
            run(np.array([[0, 3], [1, 0]], dtype=np.uint8))

    @pytest.mark.parametrize("run", ENTRY_POINTS)
    def test_3d_rejected(self, run):
        with pytest.raises(InputError):
            run(np.zeros((2, 2, 2), dtype=np.uint8))

    def test_tiled_memmap_stays_lazy_but_checked(self, tmp_path):
        np.save(tmp_path / "img.npy", np.eye(8, dtype=np.uint8))
        mm = np.load(tmp_path / "img.npy", mmap_mode="r")
        assert tiled_label(mm, tile_shape=(4, 4)).n_components == 1
        np.save(tmp_path / "deep.npy", np.zeros((2, 2, 2), dtype=np.uint8))
        with pytest.raises(InputError):
            tiled_label(
                np.load(tmp_path / "deep.npy", mmap_mode="r"),
                tile_shape=(4, 4),
            )


class TestDegenerateShapesAcrossEngines:
    """0x0, 1xN, Nx1, all-foreground and all-background inputs go
    through the same validation policy and produce the same counts on
    every vectorised engine the registry exposes."""

    ENGINES = ("vectorized", "itequiv", "coarse2fine", "block2x2", "auto")

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "shape", [(0, 0), (1, 9), (9, 1), (1, 1)], ids=str
    )
    def test_degenerate_all_foreground(self, engine, shape):
        labels, n = label(np.ones(shape, dtype=np.uint8), engine=engine)
        assert labels.shape == shape
        assert n == (1 if np.prod(shape) else 0)

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "shape", [(0, 0), (1, 9), (9, 1), (6, 7)], ids=str
    )
    def test_degenerate_all_background(self, engine, shape):
        labels, n = label(np.zeros(shape, dtype=np.uint8), engine=engine)
        assert labels.shape == shape
        assert n == 0
        assert not labels.any()


class TestStreamingRowValidation:
    def test_bool_and_float_rows_coerced(self):
        lab = StreamingLabeler(4)
        lab.push_row(np.array([1, 0, 1, 0], dtype=bool))
        lab.push_row(np.array([1.0, 0.0, 1.0, 0.0]))
        comps = list(lab.finish())
        assert len(comps) == 2

    def test_wrong_width_rejected(self):
        lab = StreamingLabeler(4)
        with pytest.raises(InputError, match="width"):
            lab.push_row(np.ones(5, dtype=np.uint8))

    def test_bad_values_rejected(self):
        lab = StreamingLabeler(3)
        with pytest.raises(InputError):
            lab.push_row(np.array([0, 1, 2], dtype=np.uint8))

    def test_nonbinary_float_row_rejected(self):
        lab = StreamingLabeler(3)
        with pytest.raises(InputError):
            lab.push_row(np.array([0.0, 0.5, 1.0]))

    def test_exotic_dtype_row_rejected(self):
        lab = StreamingLabeler(2)
        with pytest.raises(InputError):
            lab.push_row(np.array(["a", "b"]))
