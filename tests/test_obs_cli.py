"""The ``repro-obs`` command-line tool."""

from __future__ import annotations

import json

import pytest

from repro.data.synthetic import blobs
from repro.obs import TraceRecorder, use_recorder, write_trace_jsonl
from repro.obs.cli import main
from repro.parallel import paremsp
from repro.perfdb import append_record, build_record


@pytest.fixture
def trace_file(tmp_path):
    """A real 4-thread PAREMSP interpreter trace on disk (schema v2,
    metrics included — the acceptance-criteria configuration)."""
    img = blobs((64, 64), 0.6, 4, seed=5)
    rec = TraceRecorder()
    with use_recorder(rec):
        paremsp(img, n_threads=4, backend="threads", engine="interpreter")
    report = rec.report()
    path = tmp_path / "trace.jsonl"
    write_trace_jsonl(report.spans, path, metrics=report.metrics)
    return path


def history_record(scale=1.0, created=1_000_000.0):
    return build_record(
        "paremsp_smoke",
        [0.10 * scale, 0.11 * scale, 0.105 * scale],
        phases={"scan": [0.07 * scale, 0.071 * scale, 0.072 * scale]},
        created=created,
    )


class TestAnalyze:
    def test_reports_the_acceptance_triple(self, trace_file, capsys):
        """serial fraction + per-thread imbalance + merge contention."""
        assert main(["analyze", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "serial fraction" in out
        assert "imbalance" in out
        assert "merge contention" in out
        assert "4 worker lanes" in out

    def test_json_output(self, trace_file, capsys):
        assert main(["analyze", "--json", str(trace_file)]) == 0
        data = json.loads(capsys.readouterr().out)
        (trace,) = data["traces"]
        assert trace["n_threads"] == 4
        assert 0.0 <= trace["serial_fraction"] <= 1.0
        assert trace["contention"]["merges"] > 0

    def test_amdahl_fit_across_thread_counts(self, tmp_path, capsys):
        img = blobs((64, 64), 0.6, 4, seed=5)
        paths = []
        for n in (1, 2, 4):
            rec = TraceRecorder()
            with use_recorder(rec):
                paremsp(img, n_threads=n, backend="serial",
                        engine="vectorized")
            report = rec.report()
            path = tmp_path / f"trace_{n}.jsonl"
            write_trace_jsonl(report.spans, path, metrics=report.metrics)
            paths.append(str(path))
        assert main(["analyze", *paths]) == 0
        out = capsys.readouterr().out
        assert "Amdahl fit over 3 runs" in out

    def test_sim_source(self, capsys):
        assert main(["analyze", "--sim", "48", "--threads", "3"]) == 0
        out = capsys.readouterr().out
        assert "sim 48x48" in out
        assert "serial fraction" in out

    def test_no_sources_errors(self):
        with pytest.raises(SystemExit):
            main(["analyze"])


class TestExportChrome:
    def test_export_real_trace(self, trace_file, tmp_path, capsys):
        out = tmp_path / "chrome.json"
        assert main(["export-chrome", str(trace_file), "-o", str(out)]) == 0
        obj = json.loads(out.read_text())
        assert isinstance(obj["traceEvents"], list)
        assert "chrome trace ->" in capsys.readouterr().out

    def test_default_output_name(self, trace_file, capsys):
        assert main(["export-chrome", str(trace_file)]) == 0
        expected = trace_file.with_suffix("")
        assert (expected.parent / (expected.name + "_chrome.json")).exists()

    def test_export_sim(self, tmp_path, capsys):
        out = tmp_path / "sim.json"
        assert main(["export-chrome", "--sim", "48", "-o", str(out)]) == 0
        obj = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in obj["traceEvents"])


class TestHistory:
    def test_empty_dir(self, tmp_path, capsys):
        assert main(["history", "--dir", str(tmp_path)]) == 0
        assert "no perf records" in capsys.readouterr().out

    def test_lists_records(self, tmp_path, capsys):
        append_record(history_record(), tmp_path)
        assert main(["history", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "paremsp_smoke" in out
        assert "0.105" in out

    def test_show(self, tmp_path, capsys):
        path = append_record(history_record(), tmp_path)
        assert main(["history", "--show", path]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmark"] == "paremsp_smoke"


class TestCompare:
    def test_ok_exits_zero(self, tmp_path, capsys):
        b = append_record(history_record(created=1.0), tmp_path)
        n = append_record(history_record(created=2.0), tmp_path)
        assert main(["compare", b, n]) == 0
        assert "verdict: ok" in capsys.readouterr().out

    def test_injected_regression_exits_nonzero(self, tmp_path, capsys):
        """Acceptance: a synthetic regression fails the gate."""
        b = append_record(history_record(created=1.0), tmp_path)
        n = append_record(history_record(scale=2.0, created=2.0), tmp_path)
        assert main(["compare", b, n]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_new_defaults_to_latest_in_dir(self, tmp_path):
        b = append_record(history_record(created=1.0), tmp_path)
        append_record(history_record(scale=2.0, created=2.0), tmp_path)
        assert main(["compare", b, "--dir", str(tmp_path)]) == 1

    def test_warn_only_soft_regression_passes(self, tmp_path, capsys):
        b = append_record(history_record(created=1.0), tmp_path)
        n = append_record(history_record(scale=1.6, created=2.0), tmp_path)
        assert main(["compare", "--warn-only", b, n]) == 0
        assert "warn-only" in capsys.readouterr().out

    def test_warn_only_hard_regression_still_fails(self, tmp_path):
        b = append_record(history_record(created=1.0), tmp_path)
        n = append_record(history_record(scale=4.0, created=2.0), tmp_path)
        assert main(["compare", "--warn-only", b, n]) == 1

    def test_json_output(self, tmp_path, capsys):
        b = append_record(history_record(created=1.0), tmp_path)
        n = append_record(history_record(scale=2.0, created=2.0), tmp_path)
        assert main(["compare", "--json", b, n]) == 1
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is False

    def test_missing_baseline_errors(self, tmp_path):
        append_record(history_record(), tmp_path)
        with pytest.raises(SystemExit):
            main(["compare", "--dir", str(tmp_path)])

    def test_empty_dir_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["compare", "base.json", "--dir", str(tmp_path / "x")])
