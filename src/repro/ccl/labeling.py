"""Shared two-pass driver machinery: result type, phases, alloc factories.

Every sequential algorithm in this package is the same three-phase
pipeline (Algorithm 1 / Algorithm 5 of the paper):

1. **Scan** — provisional labels + equivalence recording;
2. **Analysis** — FLATTEN resolves equivalences into consecutive finals;
3. **Labeling** — every pixel is rewritten through the flattened table.

:func:`run_two_pass` wires a scan function and an equivalence structure
into that pipeline, timing each phase (the per-phase timings feed
Table II/IV reports and the Figure 5a "local" vs 5b "local + merge"
distinction).

Phase 3 is a pure gather; we hoist it to NumPy (``table[labels]``) for
every algorithm equally, so relative comparisons between algorithms —
what the paper's tables measure — are unaffected.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, MutableSequence, Sequence

import numpy as np

from ..obs import PhaseTimer, get_recorder
from ..types import LABEL_DTYPE, as_binary_image
from ..unionfind.flatten import flatten

__all__ = [
    "CCLResult",
    "remsp_alloc",
    "prealloc_capacity",
    "check_label_capacity",
    "run_two_pass",
    "apply_table",
]


def check_label_capacity(
    shape: tuple[int, int], dtype=LABEL_DTYPE
) -> None:
    """Raise :class:`~repro.errors.LabelOverflowError` if a scan over an
    image of *shape* could exhaust *dtype*'s label space.

    The scans allocate at most one provisional label per pixel pair plus
    the background sentinel; parallel runs additionally offset each
    chunk's range by ``row_start * cols``, so the last usable value is
    ``rows * cols``. That bound must be representable.
    """
    from ..errors import LabelOverflowError

    rows, cols = shape
    need = rows * cols + 1
    limit = int(np.iinfo(dtype).max)
    if need > limit:
        raise LabelOverflowError(
            f"an image of shape {shape} needs up to {need} labels, but "
            f"dtype {np.dtype(dtype).name} can represent only {limit}"
        )


@dataclasses.dataclass
class CCLResult:
    """Outcome of one labeling run.

    Attributes
    ----------
    labels:
        ``int32`` label image; background 0, components ``1..n_components``
        numbered in raster first-appearance order.
    n_components:
        Number of connected components found.
    provisional_count:
        Provisional labels allocated by the scan phase (a proxy for the
        equivalence structure's size; the paper's ``count``).
    phase_seconds:
        Wall-clock seconds per phase, keys ``scan`` / ``flatten`` /
        ``label`` (parallel runs add ``merge`` and bookkeeping keys).
    algorithm:
        Registry name of the algorithm that produced this result.
    meta:
        Algorithm-specific extras (e.g. pass counts for MULTIPASS).
    timings:
        ``None`` unless the run executed under an enabled
        :class:`repro.obs.TraceRecorder`, in which case it holds the
        run's :class:`repro.obs.ObsReport` (spans + metrics).
    """

    labels: np.ndarray
    n_components: int
    provisional_count: int
    phase_seconds: dict[str, float]
    algorithm: str
    meta: dict = dataclasses.field(default_factory=dict)
    timings: object | None = None

    @property
    def total_seconds(self) -> float:
        """Sum of all phase times (the paper's reported execution time)."""
        return float(sum(self.phase_seconds.values()))


def prealloc_capacity(rows: int, cols: int) -> int:
    """Size of the equivalence array that can never overflow.

    A new provisional label requires all previously-scanned mask
    neighbours to be background, so labeled "seeds" are pairwise at
    Chebyshev distance >= 2 (8-connectivity), bounding their number by
    ``ceil(rows/2) * ceil(cols/2)``; +1 for the background sentinel. The
    4-connectivity scans allocate at most one seed per two *columns* per
    row: ceil(cols/2) * rows. We size for the worst of both.
    """
    eight = ((rows + 1) // 2) * ((cols + 1) // 2)
    four = ((cols + 1) // 2) * rows
    # +1 for the background sentinel, +1 so degenerate (empty) images
    # still satisfy every structure's minimum-capacity requirement.
    return max(eight, four) + 2


def remsp_alloc(
    p: MutableSequence[int], start: int = 1
) -> tuple[Callable[[], int], Callable[[], int]]:
    """Label allocator for the union-find based algorithms.

    Returns ``(alloc, used)``: ``alloc()`` writes ``p[count] = count`` and
    returns the fresh label (the paper's "new label" operation); ``used()``
    reports the next-unallocated counter value.
    """
    cell = [start]

    def alloc() -> int:
        c = cell[0]
        p[c] = c
        cell[0] = c + 1
        return c

    def used() -> int:
        return cell[0]

    return alloc, used


def apply_table(
    label_rows: Sequence[Sequence[int]] | np.ndarray,
    table: Sequence[int],
    limit: int,
) -> np.ndarray:
    """Labeling phase: map provisional labels through the flattened table.

    ``limit`` is the number of valid table entries (``count``); only that
    prefix is materialised for the gather.
    """
    lut = np.asarray(table[:limit], dtype=LABEL_DTYPE)
    prov = np.asarray(label_rows, dtype=LABEL_DTYPE)
    if prov.size == 0:
        return prov
    return lut[prov]


def run_two_pass(
    image: np.ndarray,
    *,
    algorithm: str,
    scan: Callable,
    make_structure: Callable[[int], tuple],
    connectivity: int = 8,
) -> CCLResult:
    """Generic two-pass CCL driver.

    Parameters
    ----------
    image:
        Binary image (validated/coerced via
        :func:`repro.types.as_binary_image`).
    algorithm:
        Name stamped on the result.
    scan:
        ``scan(img_rows, p, merge, alloc, connectivity) -> label rows`` —
        one of the two scan-phase implementations.
    make_structure:
        ``make_structure(capacity) -> (p, merge, alloc, used, finalize)``
        building the equivalence structure. ``finalize(p, count)`` runs
        the analysis phase and returns the component count (defaults to
        FLATTEN for all structures in this package).
    connectivity:
        8 (paper) or 4.

    Notes
    -----
    Input conversion (NumPy -> row lists) is *excluded* from phase
    timings: the paper's C implementation scans the native image buffer
    directly, and including CPython marshalling would distort every
    inter-algorithm ratio by a constant additive term.
    """
    img = as_binary_image(image)
    rows, cols = img.shape
    check_label_capacity((rows, cols))
    img_rows = img.tolist()

    p, merge, alloc, used, finalize = make_structure(
        prealloc_capacity(rows, cols)
    )

    rec = get_recorder()
    mark = rec.mark()
    timer = PhaseTimer(rec)
    with timer.time("scan"):
        label_rows = scan(img_rows, p, merge, alloc, connectivity)
    with timer.time("flatten"):
        count = used()
        n_components = finalize(p, count)
    with timer.time("label"):
        labels = apply_table(label_rows, p, count).reshape(rows, cols)

    return CCLResult(
        labels=labels,
        n_components=n_components,
        provisional_count=count - 1,
        phase_seconds=timer.seconds,
        algorithm=algorithm,
        timings=rec.report(since=mark) if rec.enabled else None,
    )


def default_finalize(p: MutableSequence[int], count: int) -> int:
    """FLATTEN-based analysis phase shared by all structures here."""
    return flatten(p, count)
