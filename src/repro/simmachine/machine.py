"""The simulated machine: execute PAREMSP, account the clock.

:func:`simulate_paremsp` runs the genuine algorithm — real partitioning
(:mod:`repro.parallel.partition`), real scans, real union-find state —
with per-thread operation accounting, then prices the work vectors with
a :class:`~repro.simmachine.costmodel.CostModel`:

* **scan** phase makespan = serial spawn cost + max over threads of the
  local-scan cost (static counts from :mod:`repro.ccl.opcount` +
  dynamic union-find walk lengths from counting kernels) + a barrier;
* **merge** phase = max over threads of their boundary-seam cost (each
  seam is one row; seams are dealt to distinct threads, as an OpenMP
  static ``for`` over boundary rows would);
* **flatten** = serial table pass over all allocated label ranges;
* **label** = parallel streaming gather, optionally bandwidth-capped.

Everything is deterministic: no randomness, no wall-clock measurement —
repeated calls return identical results, which makes the Figure 4/5
benches stable enough to assert shapes in tests.
"""

from __future__ import annotations

import dataclasses
from typing import MutableSequence, Sequence

import numpy as np

from ..ccl.labeling import apply_table, remsp_alloc
from ..ccl.opcount import tworow_opcounts
from ..ccl.scan_aremsp import scan_tworow
from ..errors import BackendError, DeadlockError, WorkerCrashError
from ..faults import DEFAULT_RESILIENCE, get_fault_plan
from ..parallel.boundary import boundary_rows, merge_boundary_row
from ..parallel.partition import partition_rows
from ..types import as_binary_image
from ..unionfind.flatten import flatten_ranges
from .costmodel import CostModel
from .counters import OpCounter
from .hopper import HOPPER

__all__ = ["SimResult", "simulate_paremsp", "speedup_curve"]


def _merge_counting_lock(
    p: MutableSequence[int], x: int, y: int, counter: OpCounter
) -> int:
    """Rem's merge with step *and* root-write (lock) accounting.

    In the parallel MERGER every root overwrite happens under a lock, so
    the lock count equals the successful-root-write count of the same
    walk run sequentially.
    """
    counter.uf_merge += 1
    rootx = x
    rooty = y
    while p[rootx] != p[rooty]:
        counter.uf_step += 1
        if p[rootx] > p[rooty]:
            if rootx == p[rootx]:
                counter.lock_ops += 1
                p[rootx] = p[rooty]
                return p[rootx]
            z = p[rootx]
            p[rootx] = p[rooty]
            rootx = z
        else:
            if rooty == p[rooty]:
                counter.lock_ops += 1
                p[rooty] = p[rootx]
                return p[rootx]
            z = p[rooty]
            p[rooty] = p[rootx]
            rooty = z
    return p[rootx]


@dataclasses.dataclass
class SimResult:
    """Outcome of one simulated PAREMSP run.

    ``phase_seconds`` holds *model* time: ``spawn``, ``scan``, ``merge``,
    ``flatten``, ``label``, ``barriers``. ``local_seconds`` (spawn +
    scan) matches the paper's "Phase-I / local computation" of Figure
    5a; ``total_seconds`` is the Figure 5b quantity.
    """

    labels: np.ndarray
    n_components: int
    n_threads: int
    n_chunks: int
    phase_seconds: dict[str, float]
    thread_scan_seconds: list[float]
    thread_merge_seconds: list[float]
    scan_counters: list[OpCounter]
    merge_counters: list[OpCounter]
    cost_model: CostModel
    #: ``fault.*`` / ``retry.*`` event counts priced into the model
    #: timeline (empty unless a fault plan was armed).
    fault_events: dict[str, int] = dataclasses.field(default_factory=dict)

    @property
    def local_seconds(self) -> float:
        return self.phase_seconds["spawn"] + self.phase_seconds["scan"]

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def as_parallel_result(self):
        """Adapt to :class:`repro.parallel.paremsp.ParallelResult`."""
        from ..parallel.paremsp import ParallelResult

        return ParallelResult(
            labels=self.labels,
            n_components=self.n_components,
            provisional_count=sum(c.new_labels for c in self.scan_counters),
            phase_seconds=dict(self.phase_seconds),
            algorithm="paremsp",
            meta={
                "simulated": True,
                "scan_counters": [c.as_dict() for c in self.scan_counters],
                "merge_counters": [c.as_dict() for c in self.merge_counters],
                **(
                    {"fault_events": dict(self.fault_events)}
                    if self.fault_events
                    else {}
                ),
            },
            n_threads=self.n_threads,
            backend="simulated",
            n_chunks=self.n_chunks,
        )


def simulate_paremsp(
    image: np.ndarray,
    n_threads: int,
    cost_model: CostModel | None = None,
    connectivity: int = 8,
    linear_scale: float = 1.0,
    fault_plan=None,
    resilience=None,
) -> SimResult:
    """Run PAREMSP on the simulated machine.

    See the module docstring for the accounting rules. The returned
    labels/component count are exact (same as every real backend).

    ``linear_scale`` prices the run as if the image were ``linear_scale``
    times larger in each dimension: area-proportional work (scan,
    flatten, labeling) is multiplied by ``linear_scale**2``, seam work
    (one row per chunk boundary) by ``linear_scale``, while absolute
    overheads (spawn, barriers) stay fixed. This is how the Figure 4/5
    benches run paper-sized workloads (hundreds of megapixels) from
    laptop-sized stand-ins: operation *densities* are measured on the
    stand-in, totals are extrapolated — valid because the generators are
    granularity-controlled so densities are scale-stationary (asserted
    in ``tests/test_simmachine.py``).

    An armed *fault_plan* is priced into the model timeline: a killed
    scan worker re-runs its chunk after *resilience* backoff (or raises
    :class:`~repro.errors.WorkerCrashError` when retries are
    exhausted), a delayed chunk becomes a straggler, a failed
    allocation retries into the spawn cost, and a poisoned merge lock
    raises :class:`~repro.errors.DeadlockError` — the same recovery
    semantics as the real backends, on model time, so the fault matrix
    covers the ``simulated`` backend without wall-clock flakiness.
    """
    if linear_scale <= 0:
        raise ValueError(f"linear_scale must be > 0, got {linear_scale}")
    cm = cost_model if cost_model is not None else HOPPER
    plan = fault_plan if fault_plan is not None else get_fault_plan()
    resil = resilience if resilience is not None else DEFAULT_RESILIENCE
    fault_events: dict[str, int] = {}

    def note(name: str, n: int = 1) -> None:
        fault_events[name] = fault_events.get(name, 0) + n

    spawn_extra = 0.0
    if plan.enabled:
        # allocation faults retry into the spawn cost, mirroring the
        # process backend's bounded shared-memory allocation loop.
        for alloc_attempt in range(resil.alloc_retries + 1):
            spec = plan.take("shm_fail", phase="alloc", attempt=alloc_attempt)
            if spec is None:
                break
            note("fault.injected")
            note("fault.shm_fail")
            if alloc_attempt >= resil.alloc_retries:
                raise BackendError(
                    "simulated shared memory allocation failed after "
                    f"{alloc_attempt + 1} attempt(s)"
                )
            note("shm.alloc_retries")
            note("retry.attempt")
            spawn_extra += resil.backoff(alloc_attempt + 1)
    area_scale = linear_scale * linear_scale
    img = as_binary_image(image)
    rows, cols = img.shape
    img_rows = img.tolist()
    chunks = partition_rows(rows, cols, n_threads)
    p: list[int] = [0] * (rows * cols + 2)

    # --- scan phase -----------------------------------------------------
    scan_counters: list[OpCounter] = []
    label_rows: list[list[int]] = []
    used: list[int] = []
    for chunk in chunks:
        counter = OpCounter()
        counter.add_static(
            tworow_opcounts(img[chunk.row_start : chunk.row_stop])
        )

        def merge(pp, x, y, _c=counter):
            return _merge_counting_lock(pp, x, y, _c)

        alloc, watermark = remsp_alloc(p, start=chunk.label_start)
        chunk_rows = scan_tworow(
            img_rows[chunk.row_start : chunk.row_stop],
            p,
            merge,
            alloc,
            connectivity,
        )
        counter.new_labels = watermark() - chunk.label_start
        counter.lock_ops = 0  # scan-phase merges are chunk-local: no locks
        label_rows.extend(chunk_rows)
        used.append(watermark())
        scan_counters.append(counter)
    thread_scan = [cm.scan_seconds(c) * area_scale for c in scan_counters]

    if plan.enabled:
        # scan-phase faults: a straggler adds its delay, a killed worker
        # re-runs its (idempotent) chunk after backoff — or exhausts the
        # retry budget like the supervised process backend.
        for i in range(len(chunks)):
            base = thread_scan[i]
            attempt = 0
            while True:
                specs = plan.directives("scan", i, attempt)
                for spec in specs:
                    note("fault.injected")
                    note(f"fault.{spec.kind}")
                    if spec.kind == "delay_chunk":
                        thread_scan[i] += spec.delay_seconds
                killed = any(s.kind == "kill_worker" for s in specs)
                if not killed:
                    if attempt > 0:
                        note("retry.succeeded")
                    break
                note("worker.crashed")
                if attempt >= resil.max_retries:
                    note("retry.exhausted")
                    raise WorkerCrashError(
                        f"simulated scan worker {i} failed after "
                        f"{attempt + 1} attempt(s)",
                        ranks=(i,),
                        phase="scan",
                        attempts=attempt + 1,
                    )
                attempt += 1
                note("retry.attempt")
                note("worker.respawned")
                thread_scan[i] += base + resil.backoff(attempt)

    # --- boundary merge phase --------------------------------------------
    if plan.enabled:
        spec = plan.take("poison_lock", phase="merge")
        if spec is not None:
            note("fault.injected")
            note("fault.poison_lock")
            raise DeadlockError(
                "simulated poisoned lock acquisition in MERGER",
                phase="merge",
            )
    merge_counters = [OpCounter() for _ in range(max(1, len(chunks)))]
    for i, row in enumerate(boundary_rows(chunks)):
        counter = merge_counters[i % len(merge_counters)]

        def union(pp, x, y, _c=counter):
            return _merge_counting_lock(pp, x, y, _c)

        # each seam thread also reads the full boundary row + row above.
        counter.neighbor_reads += 2 * cols
        merge_boundary_row(label_rows, row, cols, p, union, connectivity)
    thread_merge = [cm.merge_seconds(c) * linear_scale for c in merge_counters]

    # --- flatten (serial) + labeling (parallel gather) -------------------
    ranges = [(c.label_start, u) for c, u in zip(chunks, used)]
    n_components = flatten_ranges(p, ranges)
    flatten_entries = sum(max(0, stop - start) for start, stop in ranges)
    limit = max((u for u in used), default=1)
    labels = (
        apply_table(label_rows, p, limit)
        if label_rows
        else np.zeros((rows, cols), dtype=np.int32)
    )

    phase_seconds = {
        "spawn": cm.spawn_seconds(n_threads) + spawn_extra,
        "scan": max(thread_scan, default=0.0),
        "merge": max(thread_merge, default=0.0),
        "flatten": cm.flatten_seconds(flatten_entries) * area_scale,
        "label": cm.label_seconds(rows * cols, n_threads) * area_scale,
        "barriers": cm.barrier_seconds(n_threads, 3),
    }
    return SimResult(
        labels=labels,
        n_components=n_components,
        n_threads=n_threads,
        n_chunks=len(chunks),
        phase_seconds=phase_seconds,
        thread_scan_seconds=thread_scan,
        thread_merge_seconds=thread_merge,
        scan_counters=scan_counters,
        merge_counters=merge_counters,
        cost_model=cm,
        fault_events=fault_events,
    )


def speedup_curve(
    image: np.ndarray,
    thread_counts: Sequence[int],
    cost_model: CostModel | None = None,
    phase: str = "total",
    connectivity: int = 8,
    linear_scale: float = 1.0,
) -> dict[int, float]:
    """Simulated speedup ``T_1 / T_t`` over *thread_counts*.

    ``phase="local"`` reproduces Figure 5a (scan + spawn only);
    ``phase="total"`` Figure 5b / Figure 4. ``linear_scale`` prices the
    stand-in image at paper scale — see :func:`simulate_paremsp`.
    """
    if phase not in ("total", "local"):
        raise ValueError(f"phase must be 'total' or 'local', got {phase!r}")
    base = simulate_paremsp(
        image, 1, cost_model, connectivity, linear_scale=linear_scale
    )
    t1 = base.total_seconds if phase == "total" else base.local_seconds
    out: dict[int, float] = {}
    for t in thread_counts:
        sim = simulate_paremsp(
            image, t, cost_model, connectivity, linear_scale=linear_scale
        )
        tt = sim.total_seconds if phase == "total" else sim.local_seconds
        out[t] = t1 / tt if tt > 0 else float("nan")
    return out
