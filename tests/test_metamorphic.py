"""Metamorphic properties of labeling.

These tests encode relations that must hold between labelings of
*transformed* images, with no oracle in the loop — they catch bug
classes (mask asymmetries, boundary handling) that oracle comparison on
random inputs can miss, because the transformation targets the
symmetry directly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.analysis import areas
from repro.ccl.registry import ALGORITHMS, get_algorithm
from repro.verify import canonicalize_labeling, labelings_equivalent

FAST = ("aremsp", "cclremsp", "run-vectorized")

imgs = hnp.arrays(
    dtype=np.uint8,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=18),
    elements=st.integers(0, 1),
)


@pytest.mark.parametrize("name", FAST)
@given(img=imgs)
@settings(max_examples=25)
def test_flip_invariance(name, img):
    """Labeling commutes with horizontal/vertical flips up to
    relabeling: flip(label(img)) ~ label(flip(img))."""
    fn = get_algorithm(name)
    base = fn(img, 8).labels
    for axis in (0, 1):
        flipped = fn(np.flip(img, axis=axis).copy(), 8).labels
        assert labelings_equivalent(np.flip(base, axis=axis), flipped)


@pytest.mark.parametrize("name", FAST)
@given(img=imgs)
@settings(max_examples=25)
def test_transpose_invariance(name, img):
    fn = get_algorithm(name)
    base = fn(img, 8).labels
    transposed = fn(np.ascontiguousarray(img.T), 8).labels
    assert labelings_equivalent(base.T, transposed)


@pytest.mark.parametrize("name", FAST)
@given(img=imgs, pad=st.integers(1, 3))
@settings(max_examples=25)
def test_padding_invariance(name, img, pad):
    """Surrounding the image with background must not change the
    labeling of the original region (labels are canonical, so even the
    numbers must survive)."""
    fn = get_algorithm(name)
    base = canonicalize_labeling(fn(img, 8).labels)
    padded = np.pad(img, pad)
    inner = canonicalize_labeling(fn(padded, 8).labels)[
        pad : pad + img.shape[0], pad : pad + img.shape[1]
    ]
    assert np.array_equal(base, inner)


@pytest.mark.parametrize("name", FAST)
@given(img=imgs)
@settings(max_examples=25)
def test_component_count_monotone_under_pixel_addition(name, img):
    """Adding one foreground pixel can change the count by at most +1
    (it may merge arbitrarily many components, but creates at most one)."""
    fn = get_algorithm(name)
    n_before = fn(img, 8).n_components
    img2 = img.copy()
    bg = np.argwhere(img2 == 0)
    if len(bg) == 0:
        return
    r, c = bg[0]
    img2[r, c] = 1
    n_after = fn(img2, 8).n_components
    assert n_after <= n_before + 1


@given(img=imgs)
@settings(max_examples=25)
def test_total_area_conservation(img):
    """Sum of component areas == foreground pixel count."""
    labels = get_algorithm("aremsp")(img, 8).labels
    assert int(areas(labels).sum()) == int(img.sum())


@given(img=imgs)
@settings(max_examples=25)
def test_4conn_refines_8conn(img):
    """Every 4-connected component is contained in exactly one
    8-connected component (4-connectivity refines 8-connectivity)."""
    fn = get_algorithm("aremsp")
    l8 = fn(img, 8).labels
    l4 = fn(img, 4).labels
    fg = img == 1
    if not fg.any():
        return
    pairs = set(zip(l4[fg].tolist(), l8[fg].tolist()))
    # each 4-label maps to exactly one 8-label
    assert len({a for a, _ in pairs}) == len(pairs)
    assert fn(img, 4).n_components >= fn(img, 8).n_components


@given(img=imgs)
@settings(max_examples=20)
def test_inversion_duality_bound(img):
    """Foreground components (8-conn) and background components (4-conn)
    satisfy the planarity bound used by the Euler-number computation:
    inverting cannot create components out of nothing."""
    fn = get_algorithm("run-vectorized")
    n_fg = fn(img, 8).n_components
    inv = (1 - img).astype(np.uint8)
    n_bg = fn(inv, 4).n_components
    # both quantities are bounded by the pixel count and non-negative;
    # a sealed hole implies at least one enclosing fg component
    if n_bg > 1 and img.shape[0] > 2 and img.shape[1] > 2:
        assert n_fg >= 1


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_double_labeling_idempotent(name, rng):
    """Labeling the binarized label image (labels > 0) reproduces the
    same partition — labeling is idempotent as a set operation."""
    img = (rng.random((14, 14)) < 0.5).astype(np.uint8)
    fn = get_algorithm(name)
    first = fn(img, 8)
    again = fn((first.labels > 0).astype(np.uint8), 8)
    assert again.n_components == first.n_components
    assert labelings_equivalent(again.labels, first.labels)
