"""Density/shape sweep: race every vectorised engine across regimes.

``make bench-density`` / ``python benchmarks/bench_density_sweep.py``

The engine family's relative speed flips with image statistics (see
``docs/ALGORITHMS.md``): run-based scanning pays per-run, propagation
pays per-sweep, block labeling pays per-block-edge. This harness makes
that flip *measured data*:

* races every candidate engine (``repro.ccl.dispatch.CANDIDATE_ENGINES``)
  over a pattern x density grid — an i.i.d.-noise density ladder plus
  the structured stripe/diagonal families whose statistics separate the
  engines — at both connectivities, warmup + repeats, checking every
  cell byte-identical (after canonicalization) against the default
  engine — a divergence fails the run, timing is never reported for
  wrong answers;
* appends one :mod:`repro.perfdb` record (benchmark ``density_sweep``,
  one phase per ``engine/connectivity/pattern/density`` cell) to the
  history directory, which is what ``make perf-gate`` diffs against the
  committed ``baseline_density.json``;
* with ``--write-table``, reduces the fresh record to the dispatch
  table (:func:`repro.ccl.dispatch.build_dispatch_table`) and writes it
  where the ``auto`` engine loads it — regenerating the table on new
  hardware is this one command.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

import numpy as np

from repro.ccl.dispatch import (
    CANDIDATE_ENGINES,
    DEFAULT_ENGINE,
    TABLE_PATH,
    build_dispatch_table,
    image_stats,
)
from repro.ccl.registry import EIGHT_CONNECTIVITY_ONLY, get_algorithm
from repro.data.synthetic import diagonal_chains, random_noise
from repro.perfdb import append_record, build_record, environment_fingerprint
from repro.verify import canonicalize_labeling

DENSITIES = (0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95)


def _vstripes(shape, density, seed):
    """1-px vertical stripes: maximal row fragmentation, zero vertical
    fragmentation — the iterative engine's best case."""
    period = max(2, int(round(1.0 / density)))
    img = np.zeros(shape, dtype=np.uint8)
    img[:, ::period] = 1
    return img


def _hstripes(shape, density, seed):
    period = max(2, int(round(1.0 / density)))
    img = np.zeros(shape, dtype=np.uint8)
    img[::period, :] = 1
    return img


def _diag(shape, density, seed):
    """Zigzag diagonal chains: fragmented on BOTH axes — propagation's
    worst case, and the regime the column-runs feature exists to spot."""
    spacing = max(2, int(round(1.0 / density)))
    return diagonal_chains(shape, spacing=spacing, zigzag=True)


#: pattern -> (builder, densities it is swept at). Structured families
#: pin density 0.5: their point is shape statistics, not the ladder.
PATTERNS = {
    "noise": (lambda shape, d, seed: random_noise(shape, d, seed=seed),
              DENSITIES),
    "vstripes": (_vstripes, (0.5,)),
    "hstripes": (_hstripes, (0.5,)),
    "diag": (_diag, (0.5,)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="engine x pattern x density x connectivity timing sweep"
    )
    parser.add_argument("--size", type=int, default=512,
                        help="raster side (default: 512)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument("--seed", type=int, default=20140519)
    parser.add_argument(
        "--densities", default=",".join(str(d) for d in DENSITIES),
        help="comma-separated foreground densities for the noise ladder",
    )
    parser.add_argument(
        "--patterns", default=",".join(PATTERNS),
        help=f"comma-separated pattern families (default: {','.join(PATTERNS)})",
    )
    parser.add_argument(
        "--connectivities", default="4,8",
        help="comma-separated connectivities (default: 4,8)",
    )
    parser.add_argument("--out", default=None, metavar="JSON",
                        help="write the summary record here")
    parser.add_argument("--history", default=None, metavar="DIR",
                        help="append a repro.perfdb record to this directory")
    parser.add_argument(
        "--write-table", nargs="?", const=str(TABLE_PATH), default=None,
        metavar="PATH",
        help="derive the dispatch table from this run and write it "
        f"(default path: {TABLE_PATH})",
    )
    return parser


def sweep(args) -> dict:
    densities = [float(d) for d in args.densities.split(",") if d]
    patterns = [p for p in args.patterns.split(",") if p]
    connectivities = [int(c) for c in args.connectivities.split(",") if c]
    shape = (args.size, args.size)
    phases: dict[str, list[float]] = {}
    totals = [0.0] * args.repeats
    cells = []
    for pattern in patterns:
        builder, pattern_densities = PATTERNS[pattern]
        if pattern == "noise":
            pattern_densities = densities
        for density in pattern_densities:
            img = builder(shape, density, args.seed)
            stats = image_stats(img)
            for conn in connectivities:
                oracle = canonicalize_labeling(
                    get_algorithm(DEFAULT_ENGINE)(img, conn).labels
                )
                for engine in CANDIDATE_ENGINES:
                    if engine in EIGHT_CONNECTIVITY_ONLY and conn != 8:
                        continue
                    fn = get_algorithm(engine)
                    for _ in range(args.warmup):
                        fn(img, conn)
                    reps = []
                    for rep in range(args.repeats):
                        t0 = time.perf_counter()
                        result = fn(img, conn)
                        elapsed = time.perf_counter() - t0
                        reps.append(elapsed)
                        totals[rep] += elapsed
                    if not np.array_equal(
                        canonicalize_labeling(result.labels), oracle
                    ):
                        raise SystemExit(
                            f"FATAL: engine {engine!r} diverged from "
                            f"{DEFAULT_ENGINE!r} on pattern {pattern!r} at "
                            f"density {density}, connectivity {conn}"
                        )
                    key = f"{engine}/{conn}c/{pattern}/d{density:.2f}"
                    phases[key] = reps
                    cells.append({
                        "connectivity": conn,
                        "pattern": pattern,
                        "density": density,
                        "features": [round(f, 6) for f in stats.features],
                        "engine": engine,
                        "best_seconds": min(reps),
                    })
    record = build_record(
        "density_sweep",
        totals,
        phases=phases,
        warmup=args.warmup,
        meta={
            "size": args.size,
            "patterns": patterns,
            "densities": densities,
            "connectivities": connectivities,
            "engines": list(CANDIDATE_ENGINES),
            "seed": args.seed,
        },
        env=environment_fingerprint(),
    )
    record["cells"] = cells
    return record


def render(record: dict) -> str:
    """Winner table: one row per measured regime."""
    by_regime: dict[tuple[int, str, float], dict[str, float]] = {}
    for cell in record["cells"]:
        by_regime.setdefault(
            (cell["connectivity"], cell["pattern"], cell["density"]), {}
        )[cell["engine"]] = cell["best_seconds"]
    lines = [
        f"{'conn':>4} {'pattern':>9} {'density':>8} {'winner':>16} "
        f"{'best ms':>9} {'default ms':>11} {'speedup':>8}"
    ]
    for (conn, pattern, density), engines in sorted(by_regime.items()):
        winner = min(engines, key=lambda e: engines[e])
        best = engines[winner]
        base = engines.get(DEFAULT_ENGINE, best)
        lines.append(
            f"{conn:>4} {pattern:>9} {density:>8.2f} {winner:>16} "
            f"{best * 1e3:>9.2f} {base * 1e3:>11.2f} {base / best:>7.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    record = sweep(args)
    print(render(record))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"record -> {args.out}")
    if args.history:
        path = append_record(record, args.history)
        print(f"history -> {path}")
    if args.write_table:
        table = build_dispatch_table(record)
        table_path = pathlib.Path(args.write_table)
        with open(table_path, "w") as fh:
            json.dump(table, fh, indent=2)
            fh.write("\n")
        print(f"dispatch table -> {table_path}")
        non_default = {
            (cell["connectivity"], cell["pattern"], cell["density"]):
                cell["engine"]
            for cell in table["cells"]
            if cell["engine"] != DEFAULT_ENGINE
        }
        if non_default:
            print(f"non-default regimes: {non_default}")
        else:
            print("warning: default engine won every regime")
    return 0


if __name__ == "__main__":
    sys.exit(main())
