"""Distributed CCL: communication complexity and network pricing.

Meters the actual message traffic of the distributed algorithm and
prices it with the alpha-beta model — the analysis a cluster deployment
would start from. The key asserted property: halo traffic scales with
the image *perimeter-per-seam* (width), while local work scales with
area, so the communication share vanishes as images grow — the
distributed analogue of Figure 5's negligible merge phase.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import granularity
from repro.mp import NetworkModel, run_spmd
from repro.mp.metering import metered_program
from repro.parallel.distributed import distributed_label, distributed_label_program


@pytest.mark.parametrize("n_ranks", [2, 4, 8])
def test_distributed_wall_time(benchmark, n_ranks):
    img = granularity((128, 128), density=0.5, block=4, seed=3)
    result = benchmark.pedantic(
        distributed_label, args=(img, n_ranks), rounds=3, iterations=1
    )
    assert result.n_components > 0


def _traffic(img, n_ranks):
    results = run_spmd(metered_program(distributed_label_program), n_ranks, img, 8)
    return [r[1] for r in results]


def test_halo_traffic_scales_with_width_not_area(capsys):
    """Doubling the height (seam count fixed) must not change interior
    ranks' point-to-point halo bytes."""
    def interior_p2p_bytes(rows):
        img = granularity((rows, 128), density=0.5, block=4, seed=3)
        traffic = _traffic(img, 4)
        # ranks 1 and 2 are interior: their explicit sends are exactly
        # the halo rows (collectives are tallied separately).
        return max(traffic[1].p2p_bytes, traffic[2].p2p_bytes)

    short = interior_p2p_bytes(64)
    tall = interior_p2p_bytes(256)
    # area grew 4x; the halo is one image row + one label row, unchanged
    assert tall == short


def test_network_pricing_table(capsys):
    """Comm seconds vs local-work seconds across rank counts."""
    img = granularity((256, 256), density=0.5, block=4, seed=9)
    model = NetworkModel()  # commodity interconnect
    rows = []
    for n_ranks in (2, 4, 8):
        traffic = _traffic(img, n_ranks)
        comm = model.makespan(traffic)
        rows.append((n_ranks, comm, sum(t.bytes_sent for t in traffic)))
    with capsys.disabled():
        print("\nranks  comm-model-seconds  total-bytes")
        for n, comm, nbytes in rows:
            print(f"{n:5d}  {comm * 1e6:15.1f} us  {nbytes:11d}")
    # comm stays microseconds for megapixel-class strips on this model
    assert all(comm < 0.05 for _, comm, _ in rows)
