"""Every example script must run clean — they are executable docs."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_quickstart_output_mentions_components():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "components" in proc.stdout
    assert "oracle agrees" in proc.stdout
