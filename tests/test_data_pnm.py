"""PBM/PGM codec: roundtrips, cross-format equivalence, malformed input."""

from __future__ import annotations

import io

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.pnm import read_pnm, write_pnm
from repro.errors import ImageFormatError


def _roundtrip(arr, **kw):
    buf = io.BytesIO()
    write_pnm(buf, arr, **kw)
    buf.seek(0)
    return read_pnm(buf)


@pytest.mark.parametrize("binary", [True, False])
def test_bitmap_roundtrip(binary, rng):
    img = (rng.random((13, 17)) < 0.5).astype(np.uint8)
    out = _roundtrip(img, binary=binary)
    assert np.array_equal(out, img)
    assert out.dtype == np.uint8


@pytest.mark.parametrize("binary", [True, False])
def test_graymap_roundtrip(binary, rng):
    img = rng.integers(0, 256, size=(9, 11)).astype(np.uint8)
    img[0, 0] = 2  # ensure non-bitmap
    out = _roundtrip(img, binary=binary)
    assert np.array_equal(out, img)


def test_16bit_graymap_roundtrip(rng):
    img = rng.integers(0, 65536, size=(6, 5)).astype(np.uint16)
    img[0, 0] = 1000
    out = _roundtrip(img, binary=True)
    assert np.array_equal(out, img)
    assert out.dtype == np.uint16


def test_width_not_multiple_of_8_packing():
    """P4 packs bits MSB-first with row padding — widths straddling byte
    boundaries are the classic bug."""
    for width in (1, 7, 8, 9, 15, 16, 17):
        img = (np.arange(3 * width).reshape(3, width) % 2).astype(np.uint8)
        assert np.array_equal(_roundtrip(img, binary=True), img)


def test_magic_headers():
    buf = io.BytesIO()
    write_pnm(buf, np.ones((2, 2), dtype=np.uint8), binary=True)
    assert buf.getvalue().startswith(b"P4")
    buf = io.BytesIO()
    write_pnm(buf, np.full((2, 2), 9, dtype=np.uint8), binary=False)
    assert buf.getvalue().startswith(b"P2")


def test_comments_in_header():
    data = b"P2\n# a comment\n2 2\n# another\n255\n0 1 2 3\n"
    out = read_pnm(io.BytesIO(data))
    assert out.tolist() == [[0, 1], [2, 3]]


def test_p1_ascii_dense_pixels():
    data = b"P1\n3 2\n101\n010\n"
    out = read_pnm(io.BytesIO(data))
    assert out.tolist() == [[1, 0, 1], [0, 1, 0]]


def test_file_path_roundtrip(tmp_path, rng):
    img = (rng.random((8, 8)) < 0.5).astype(np.uint8)
    path = tmp_path / "img.pbm"
    write_pnm(path, img)
    assert np.array_equal(read_pnm(path), img)


class TestMalformed:
    def test_bad_magic(self):
        with pytest.raises(ImageFormatError):
            read_pnm(io.BytesIO(b"P7\n1 1\n255\n\x00"))

    def test_truncated_header(self):
        with pytest.raises(ImageFormatError):
            read_pnm(io.BytesIO(b"P5\n4"))

    def test_zero_dimension(self):
        with pytest.raises(ImageFormatError):
            read_pnm(io.BytesIO(b"P5\n0 4\n255\n"))

    def test_truncated_binary_pixels(self):
        with pytest.raises(ImageFormatError):
            read_pnm(io.BytesIO(b"P5\n4 4\n255\n\x00\x01"))

    def test_truncated_ascii_pixels(self):
        with pytest.raises(ImageFormatError):
            read_pnm(io.BytesIO(b"P2\n3 3\n255\n1 2 3"))

    def test_bad_maxval(self):
        with pytest.raises(ImageFormatError):
            read_pnm(io.BytesIO(b"P5\n2 2\n70000\n" + b"\x00" * 8))

    def test_writer_rejects_negative(self):
        with pytest.raises(ImageFormatError):
            write_pnm(io.BytesIO(), np.array([[-1, 2]]))

    def test_writer_rejects_non_rgb_3d(self):
        # (H, W, 3) is now a valid PPM; other depths are not
        with pytest.raises(ImageFormatError):
            write_pnm(io.BytesIO(), np.zeros((2, 2, 2)))

    def test_writer_rejects_samples_over_maxval(self):
        with pytest.raises(ImageFormatError):
            write_pnm(io.BytesIO(), np.array([[300]]), maxval=255)


@given(
    img=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=24),
        elements=st.integers(0, 1),
    ),
    binary=st.booleans(),
)
def test_property_bitmap_roundtrip(img, binary):
    assert np.array_equal(_roundtrip(img, binary=binary), img)


def test_ccl_pipeline_through_pnm(tmp_path):
    """End-to-end: write an image, read it back, label it."""
    from repro import label
    from repro.data import blobs

    img = blobs((32, 32), seed=8)
    path = tmp_path / "blobs.pbm"
    write_pnm(path, img)
    labels, n = label(read_pnm(path))
    from repro.verify import flood_fill_label

    assert n == flood_fill_label(img, 8)[1]
