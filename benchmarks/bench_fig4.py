"""Figure 4 bench: regenerate the small-suite speedup curves.

The simulated machine is deterministic, so beyond timing the driver this
bench *asserts the paper's curve shapes* every run: rising from 2
threads, peaking, and the aerial curve dominating texture.
"""

from __future__ import annotations

from repro.bench.experiments.fig4 import run_fig4

FIG4_SCALE = 0.04


def test_fig4_regeneration(benchmark, capsys):
    report = benchmark.pedantic(
        run_fig4, kwargs={"scale": FIG4_SCALE}, rounds=1, iterations=1
    )
    with capsys.disabled():
        print("\n" + report.render())
    curves = report.data["curves"]
    for suite, curve in curves.items():
        assert curve[6] > curve[2] > 1.5, suite
    # paper's Figure 4 ordering: Aerial on top, Texture at the bottom
    assert curves["aerial"][16] > curves["texture"][16]
    # small images stop scaling: no curve may keep rising linearly to 24
    for suite, curve in curves.items():
        assert curve[24] < 24 * 0.7, suite
