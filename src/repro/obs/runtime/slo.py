"""Declarative SLO monitors over the runtime rolling windows.

An :class:`SLO` names one objective as data: *which* instrument to
read (a rolling-window quantile, a gauge, or a counter total), the
*threshold* it must stay at or under, and how many window samples the
verdict needs before it counts (``min_samples`` — an empty window is
never a breach). A :class:`SLOMonitor` evaluates a set of SLOs over a
:class:`~repro.obs.runtime.aggregator.RuntimeAggregator`:

* every breach increments the ``slo.breaches`` counter (labelled
  ``{slo="<name>"}``) in the same aggregator, so ``/metrics`` exposes
  the ``slo_*`` family next to the signals it judges;
* a breach also lands on the ambient trace recorder
  (``slo.breach`` counter) when tracing is enabled;
* ``on_breach`` callbacks fire per breach — the hook that lets an SLO
  drive the existing :class:`~repro.faults.DegradationPolicy` ladder
  (see :func:`degradation_trigger` and
  :meth:`repro.service.LabelService.force_degraded`).

Monitors are declarative enough to live in JSON config::

    [{"name": "p99-under-50ms", "metric": "service.latency_ms",
      "quantile": 0.99, "max_value": 50.0}]

loaded with :func:`load_slos`.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Callable, Iterable, Mapping, Sequence

from ..recorder import get_recorder
from .aggregator import RuntimeAggregator

__all__ = [
    "SLO",
    "SLOBreach",
    "SLOMonitor",
    "load_slos",
    "degradation_trigger",
]


@dataclasses.dataclass(frozen=True)
class SLO:
    """One objective: ``read(metric) <= max_value``.

    ``quantile`` selects the instrument kind: a float reads that
    quantile of the metric's rolling window; ``None`` reads the gauge
    of that name if one exists, else the counter total — so queue
    depth, respawn and rejection objectives need no special casing.
    """

    name: str
    metric: str
    max_value: float
    quantile: float | None = None
    min_samples: int = 1

    def __post_init__(self) -> None:
        if self.quantile is not None and not (
            0.0 <= self.quantile <= 1.0
        ):
            raise ValueError(
                f"SLO {self.name!r}: quantile must be in [0, 1], "
                f"got {self.quantile}"
            )
        if self.min_samples < 1:
            raise ValueError(
                f"SLO {self.name!r}: min_samples must be >= 1"
            )

    @classmethod
    def from_dict(cls, obj: Mapping) -> "SLO":
        try:
            return cls(
                name=str(obj["name"]),
                metric=str(obj["metric"]),
                max_value=float(obj["max_value"]),
                quantile=(
                    None if obj.get("quantile") is None
                    else float(obj["quantile"])
                ),
                min_samples=int(obj.get("min_samples", 1)),
            )
        except KeyError as exc:
            raise ValueError(
                f"SLO config missing required key {exc.args[0]!r}: "
                f"{dict(obj)!r}"
            ) from None

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class SLOBreach:
    """One observed violation: what was read vs what was promised."""

    slo: SLO
    observed: float
    at_monotonic: float

    def describe(self) -> str:
        kind = (
            f"q{self.slo.quantile:g}" if self.slo.quantile is not None
            else "value"
        )
        return (
            f"SLO {self.slo.name!r} breached: {self.slo.metric} "
            f"{kind}={self.observed:g} > {self.slo.max_value:g}"
        )


def load_slos(source) -> list[SLO]:
    """Parse SLOs from a JSON file path, JSON text, or dict sequence."""
    if isinstance(source, (list, tuple)):
        objs = source
    else:
        text = str(source)
        if text.lstrip().startswith("["):
            objs = json.loads(text)
        else:
            with open(text) as fh:
                objs = json.load(fh)
        if not isinstance(objs, list):
            raise ValueError(
                "SLO config must be a JSON list of objects"
            )
    return [
        slo if isinstance(slo, SLO) else SLO.from_dict(slo)
        for slo in objs
    ]


class SLOMonitor:
    """Evaluate declarative SLOs over a runtime aggregator.

    >>> agg = RuntimeAggregator()
    >>> mon = SLOMonitor(
    ...     [SLO("shallow-queue", "service.queue_depth", 4.0)], agg)
    >>> agg.set_gauge("service.queue_depth", 9)
    >>> [b.slo.name for b in mon.evaluate()]
    ['shallow-queue']
    >>> agg.counter_value("slo.breaches")
    1
    """

    def __init__(
        self,
        slos: Iterable[SLO | Mapping],
        runtime: RuntimeAggregator,
        recorder=None,
        on_breach: Sequence[Callable[[SLOBreach], None]] = (),
    ) -> None:
        self.slos = load_slos(list(slos))
        self.runtime = runtime
        self._rec = recorder
        self.on_breach = tuple(on_breach)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    def _read(self, slo: SLO) -> tuple[float, int]:
        """Read the instrument: ``(value, samples_backing_it)``."""
        if slo.quantile is not None:
            win = self.runtime.window(slo.metric)
            return win.quantile(slo.quantile), win.count
        if self.runtime.has_gauge(slo.metric):
            return self.runtime.gauge_value(slo.metric), 1
        return self.runtime.counter_value(slo.metric), 1

    def evaluate(self) -> list[SLOBreach]:
        """One pass over every SLO; returns (and records) breaches."""
        rec = self._rec if self._rec is not None else get_recorder()
        breaches = []
        now = time.monotonic()
        for slo in self.slos:
            observed, samples = self._read(slo)
            if samples < slo.min_samples:
                continue
            if observed > slo.max_value:
                breach = SLOBreach(slo, observed, now)
                breaches.append(breach)
                self.runtime.inc(
                    "slo.breaches", labels={"slo": slo.name}
                )
                if rec.enabled:
                    rec.count("slo.breach")
                    rec.count(f"slo.breach.{slo.name}")
                for hook in self.on_breach:
                    hook(breach)
        self.runtime.set_gauge("slo.monitors", len(self.slos))
        return breaches

    # -- background evaluation ------------------------------------------

    def start(self, interval: float = 1.0) -> "SLOMonitor":
        """Evaluate every *interval* seconds on a daemon thread."""
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if self._thread is not None:
            return self
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(interval):
                self.evaluate()

        self._thread = threading.Thread(
            target=loop, name="repro-slo-monitor", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SLOMonitor":
        thread = self._thread
        if thread is None:
            return self
        self._thread = None
        self._stop.set()
        thread.join(timeout=5.0)
        return self

    def __enter__(self) -> "SLOMonitor":
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def degradation_trigger(
    service, rung: str = "threads"
) -> Callable[[SLOBreach], None]:
    """An ``on_breach`` hook that degrades *service* to *rung*.

    The returned callback calls ``service.force_degraded(rung)`` on
    the first breach (idempotent afterwards), walking the same
    processes→threads→serial ladder the
    :class:`~repro.faults.DegradationPolicy` names — an overloaded or
    crash-looping warm pool stops taking batches and the coordinator
    serves them inline until the operator clears the override.
    """

    def trigger(breach: SLOBreach) -> None:
        service.force_degraded(rung)

    return trigger
