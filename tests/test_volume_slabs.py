"""Slab-parallel 3-D labeling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.verify import labelings_equivalent
from repro.volume import volume_label, volume_label_slabs


def _flat(labels):
    return labels.reshape(-1, 1)


@pytest.mark.parametrize("conn", [6, 18, 26])
@pytest.mark.parametrize("n_slabs", [1, 2, 3, 6])
def test_matches_single_volume(conn, n_slabs, rng):
    v = (rng.random((12, 9, 8)) < 0.4).astype(np.uint8)
    ref = volume_label(v, conn)
    got = volume_label_slabs(v, n_slabs=n_slabs, connectivity=conn)
    assert got.n_components == ref.n_components
    assert labelings_equivalent(_flat(got.labels), _flat(ref.labels))


def test_component_spanning_all_slabs():
    v = np.zeros((16, 4, 4), dtype=np.uint8)
    v[:, 2, 2] = 1  # one column through every slab
    got = volume_label_slabs(v, n_slabs=8)
    assert got.n_components == 1


def test_diagonal_across_seams():
    v = np.zeros((6, 6, 6), dtype=np.uint8)
    for i in range(6):
        v[i, i, i] = 1
    assert volume_label_slabs(v, n_slabs=3, connectivity=26).n_components == 1
    assert volume_label_slabs(v, n_slabs=3, connectivity=6).n_components == 6


def test_planes_only_touching_via_edges_18():
    v = np.zeros((4, 3, 3), dtype=np.uint8)
    v[1, 1, 1] = 1
    v[2, 1, 2] = 1  # edge neighbour across z (2 coords differ)
    got18 = volume_label_slabs(v, n_slabs=2, connectivity=18)
    got6 = volume_label_slabs(v, n_slabs=2, connectivity=6)
    assert got18.n_components == 1
    assert got6.n_components == 2


def test_more_slabs_than_planes():
    v = np.ones((3, 4, 4), dtype=np.uint8)
    got = volume_label_slabs(v, n_slabs=10)
    assert got.n_components == 1


def test_metadata_and_seam_accounting(rng):
    v = (rng.random((8, 6, 6)) < 0.5).astype(np.uint8)
    got = volume_label_slabs(v, n_slabs=4)
    assert got.algorithm == "volume-slabs"
    assert got.meta["n_slabs"] == 4
    assert got.meta["seam_unions"] >= 0
    assert set(got.phase_seconds) == {"scan", "merge", "flatten", "label"}


def test_validation():
    with pytest.raises(ValueError):
        volume_label_slabs(np.ones((4, 4, 4), np.uint8), n_slabs=0)


@given(
    v=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=3, max_dims=3, min_side=1, max_side=6),
        elements=st.integers(0, 1),
    ),
    n_slabs=st.integers(1, 5),
    conn=st.sampled_from([6, 18, 26]),
)
@settings(max_examples=30)
def test_property_slabs_match_reference(v, n_slabs, conn):
    ref = volume_label(v, conn)
    got = volume_label_slabs(v, n_slabs=n_slabs, connectivity=conn)
    assert got.n_components == ref.n_components
    assert labelings_equivalent(_flat(got.labels), _flat(ref.labels))
