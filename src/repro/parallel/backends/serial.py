"""Serial reference backend.

Runs chunk scans and boundary merges sequentially in chunk order. This
is the semantic baseline every other backend is tested against, and it
doubles as the measurement backend for per-chunk work distribution (its
``meta["chunk_seconds"]`` feeds load-balance analysis).
"""

from __future__ import annotations

import time
from typing import MutableSequence, Sequence

from ...ccl.labeling import remsp_alloc
from ...ccl.scan_aremsp import scan_tworow
from ...unionfind.remsp import merge as remsp_merge
from ..boundary import boundary_rows, merge_boundary_row
from ..partition import RowChunk

__all__ = ["SerialBackend"]


class SerialBackend:
    """Sequential execution of the PAREMSP phases."""

    name = "serial"

    def scan(
        self,
        img_rows: Sequence[Sequence[int]],
        chunks: Sequence[RowChunk],
        p: MutableSequence[int],
        connectivity: int,
    ) -> tuple[list[list[int]], list[int], dict]:
        label_rows: list[list[int]] = []
        used: list[int] = []
        chunk_seconds: list[float] = []
        for chunk in chunks:
            alloc, watermark = remsp_alloc(p, start=chunk.label_start)
            t0 = time.perf_counter()
            rows = scan_tworow(
                img_rows[chunk.row_start : chunk.row_stop],
                p,
                remsp_merge,
                alloc,
                connectivity,
            )
            chunk_seconds.append(time.perf_counter() - t0)
            label_rows.extend(rows)
            used.append(watermark())
        return label_rows, used, {"chunk_seconds": chunk_seconds}

    def boundary(
        self,
        label_rows: Sequence[Sequence[int]],
        chunks: Sequence[RowChunk],
        cols: int,
        p: MutableSequence[int],
        connectivity: int,
    ) -> dict:
        ops = 0
        for row in boundary_rows(chunks):
            ops += merge_boundary_row(
                label_rows, row, cols, p, remsp_merge, connectivity
            )
        return {"boundary_unions": ops}
