"""The message-passing substrate: point-to-point + collectives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mp import Communicator, SpmdError, run_spmd
from repro.mp.comm import Network


def test_network_validation():
    with pytest.raises(ValueError):
        Network(0)


def test_single_rank_runs():
    assert run_spmd(lambda comm: comm.rank, 1) == [0]


def test_rank_and_size():
    out = run_spmd(lambda comm: (comm.rank, comm.size), 4)
    assert out == [(0, 4), (1, 4), (2, 4), (3, 4)]


def test_send_recv_pair():
    def program(comm):
        if comm.rank == 0:
            comm.send({"x": 1}, dest=1, tag=7)
            return None
        return comm.recv(0, tag=7)

    assert run_spmd(program, 2)[1] == {"x": 1}


def test_send_recv_fifo_per_tag():
    def program(comm):
        if comm.rank == 0:
            for i in range(5):
                comm.send(i, dest=1)
            return None
        return [comm.recv(0) for _ in range(5)]

    assert run_spmd(program, 2)[1] == [0, 1, 2, 3, 4]


def test_tags_are_independent_channels():
    def program(comm):
        if comm.rank == 0:
            comm.send("a", dest=1, tag=1)
            comm.send("b", dest=1, tag=2)
            return None
        # receive in the opposite order of sending
        second = comm.recv(0, tag=2)
        first = comm.recv(0, tag=1)
        return (first, second)

    assert run_spmd(program, 2)[1] == ("a", "b")


def test_invalid_rank_rejected():
    def program(comm):
        comm.send(1, dest=99)

    with pytest.raises(SpmdError):
        run_spmd(program, 2)


def test_bcast():
    def program(comm):
        return comm.bcast("payload" if comm.rank == 0 else None)

    assert run_spmd(program, 3) == ["payload"] * 3


def test_bcast_nonzero_root():
    def program(comm):
        return comm.bcast(comm.rank if comm.rank == 2 else None, root=2)

    assert run_spmd(program, 4) == [2, 2, 2, 2]


def test_gather():
    def program(comm):
        return comm.gather(comm.rank * comm.rank)

    out = run_spmd(program, 4)
    assert out[0] == [0, 1, 4, 9]
    assert out[1:] == [None, None, None]


def test_allgather():
    out = run_spmd(lambda comm: comm.allgather(comm.rank), 3)
    assert out == [[0, 1, 2]] * 3


def test_scatter():
    def program(comm):
        data = [f"item{i}" for i in range(comm.size)] if comm.rank == 0 else None
        return comm.scatter(data)

    assert run_spmd(program, 3) == ["item0", "item1", "item2"]


def test_scatter_wrong_length(monkeypatch):
    # the non-root rank blocks on the broken collective; shrink the
    # deadlock timeout so the failure surfaces quickly.
    monkeypatch.setattr(Communicator, "RECV_TIMEOUT", 1.0)

    def program(comm):
        return comm.scatter([1] if comm.rank == 0 else None)

    with pytest.raises(SpmdError):
        run_spmd(program, 2)


def test_reduce_default_sum():
    def program(comm):
        return comm.reduce(comm.rank + 1)

    out = run_spmd(program, 4)
    assert out[0] == 10
    assert out[1:] == [None] * 3


def test_allreduce_custom_op():
    def program(comm):
        return comm.allreduce(comm.rank + 1, op=lambda a, b: a * b)

    assert run_spmd(program, 4) == [24] * 4


def test_barrier_orders_phases():
    import threading

    hits: list[int] = []
    lock = threading.Lock()

    def program(comm):
        with lock:
            hits.append(1)
        comm.barrier()
        # after the barrier every rank must have registered phase 1
        return len(hits)

    out = run_spmd(program, 4)
    assert all(v == 4 for v in out)


def test_numpy_payloads():
    def program(comm):
        arr = np.arange(5) * comm.rank
        total = comm.allreduce(arr, op=lambda a, b: a + b)
        return total.tolist()

    out = run_spmd(program, 3)
    assert out == [[0, 3, 6, 9, 12]] * 3


def test_collective_sequence_stays_aligned():
    """Many collectives in a row — the internal tag sequencing must keep
    them from bleeding into each other."""

    def program(comm):
        acc = []
        for i in range(10):
            acc.append(comm.allreduce(i + comm.rank))
        return acc

    out = run_spmd(program, 3)
    expected = [3 * i + 3 for i in range(10)]
    assert out == [expected] * 3


def test_exception_propagates_with_rank():
    def program(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        return comm.rank

    with pytest.raises(SpmdError) as exc_info:
        run_spmd(program, 2)
    assert 1 in exc_info.value.failures
    assert isinstance(exc_info.value.failures[1], ValueError)


class TestSpmdTimeout:
    """The configurable run deadline: argument > env var > default."""

    def test_resolution_order(self, monkeypatch):
        from repro.mp import DEFAULT_SPMD_TIMEOUT, resolve_spmd_timeout

        monkeypatch.delenv("REPRO_SPMD_TIMEOUT", raising=False)
        assert resolve_spmd_timeout(None) == DEFAULT_SPMD_TIMEOUT
        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "7.5")
        assert resolve_spmd_timeout(None) == 7.5
        assert resolve_spmd_timeout(3.0) == 3.0  # the argument wins

    @pytest.mark.parametrize("raw", ["zero", "", "-1", "0"])
    def test_malformed_env_raises_up_front(self, monkeypatch, raw):
        from repro.mp import resolve_spmd_timeout

        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", raw)
        if raw.strip() == "":
            # blank counts as unset, not malformed
            from repro.mp import DEFAULT_SPMD_TIMEOUT

            assert resolve_spmd_timeout(None) == DEFAULT_SPMD_TIMEOUT
            return
        with pytest.raises(ValueError):
            resolve_spmd_timeout(None)

    @pytest.mark.parametrize("bad", [0, -2.5])
    def test_nonpositive_argument_rejected(self, bad):
        with pytest.raises(ValueError):
            run_spmd(lambda comm: comm.rank, 2, timeout=bad)

    def test_stuck_rank_reported_with_typed_error(self):
        import threading

        from repro.errors import PhaseTimeoutError

        # a released Event (not a long sleep) so the surviving daemon
        # thread drains right after the assertion instead of lingering
        # into later tests' rank-thread hygiene checks.
        release = threading.Event()

        def program(comm):
            if comm.rank == 1:
                release.wait(30.0)  # pure compute: never touches the network
            return comm.rank

        try:
            with pytest.raises(SpmdError) as exc_info:
                run_spmd(program, 2, timeout=0.2)
        finally:
            release.set()
        err = exc_info.value.failures[1]
        assert isinstance(err, PhaseTimeoutError)
        assert err.ranks == (1,)
        assert "rank 1" in str(err)
        assert "0.2s" in str(err)
        assert "REPRO_SPMD_TIMEOUT" in str(err)

    def test_env_deadline_applies(self, monkeypatch):
        import threading
        import time

        monkeypatch.setenv("REPRO_SPMD_TIMEOUT", "0.2")
        release = threading.Event()

        def program(comm):
            if comm.rank == 0:
                release.wait(30.0)
            return comm.rank

        t0 = time.monotonic()
        try:
            with pytest.raises(SpmdError):
                run_spmd(program, 2)
        finally:
            release.set()
        assert time.monotonic() - t0 < 10.0

    def test_distributed_label_forwards_timeout(self, monkeypatch):
        import repro.parallel.distributed as dist

        seen = {}
        real = dist.run_spmd

        def spy(program, size, *args, **kwargs):
            seen["timeout"] = kwargs.get("timeout")
            return real(program, size, *args, **kwargs)

        monkeypatch.setattr(dist, "run_spmd", spy)
        img = np.ones((8, 4), dtype=np.uint8)
        res = dist.distributed_label(img, n_ranks=2, timeout=45.0)
        assert seen["timeout"] == 45.0
        assert res.n_components == 1
