"""Row partitioning for PAREMSP (Algorithm 7, lines 2-7).

The paper divides the image row-wise into equal chunks, one per thread,
with chunk sizes kept even (``numiter = rows / 2; chunk = numiter /
n_threads; size = 2 * chunk``) because the AREMSP scan consumes rows in
pairs. Each thread's provisional-label counter starts at
``start_row * cols`` so label ranges can never collide (Algorithm 7 line
7: ``count <- start x col``); we add 1 to keep 0 reserved for background
— the paper glosses over thread 0's collision with the background
sentinel.

Degenerate inputs are normalised rather than rejected: asking for more
threads than row pairs simply yields fewer chunks (matching OpenMP's
behaviour of leaving surplus team members idle).
"""

from __future__ import annotations

import dataclasses

from ..errors import PartitionError

__all__ = ["RowChunk", "partition_rows"]


@dataclasses.dataclass(frozen=True)
class RowChunk:
    """One thread's share of the image.

    ``label_start`` is the first provisional label this chunk's scan may
    allocate; the usable range extends to ``label_start + rows * cols``
    of the chunk, which the scan can never exhaust (it allocates at most
    one label per pixel pair).
    """

    index: int
    row_start: int
    row_stop: int  # half-open
    label_start: int

    @property
    def n_rows(self) -> int:
        return self.row_stop - self.row_start


def partition_rows(rows: int, cols: int, n_threads: int) -> list[RowChunk]:
    """Split ``rows`` image rows into at most *n_threads* pair-aligned
    chunks with disjoint label ranges, balanced to within one row pair.

    The paper's pseudocode floors ``chunk = (rows/2) / n_threads`` and
    dumps the remainder on the last thread, but the execution vehicle it
    describes — ``#pragma omp for`` over the pair loop with the default
    static schedule — deals remainder *pairs* out one per thread, keeping
    chunk sizes within a pair of each other. We implement the OpenMP
    behaviour (the balanced one); with the paper's image sizes the two
    are indistinguishable, but on small images the floored version's
    imbalance would dominate the simulated makespan.

    An odd trailing row extends the final chunk (the two-row scan's
    odd-tail path handles it).

    >>> [c.n_rows for c in partition_rows(10, 4, 3)]
    [4, 4, 2]
    >>> partition_rows(10, 4, 3)[1].label_start
    17
    """
    if rows < 0 or cols < 0:
        raise PartitionError(f"negative image shape ({rows}, {cols})")
    if n_threads < 1:
        raise PartitionError(f"need at least one thread, got {n_threads}")
    if rows == 0 or cols == 0:
        return []
    pairs = rows // 2
    n_chunks = min(n_threads, max(1, pairs))
    base, extra = divmod(pairs, n_chunks)
    chunks: list[RowChunk] = []
    row_start = 0
    for t in range(n_chunks):
        n_pairs = base + (1 if t < extra else 0)
        row_stop = row_start + 2 * n_pairs
        if t == n_chunks - 1:
            row_stop = rows  # odd tail row, if any
        chunks.append(
            RowChunk(
                index=t,
                row_start=row_start,
                row_stop=row_stop,
                label_start=row_start * cols + 1,
            )
        )
        row_start = row_stop
    return chunks
