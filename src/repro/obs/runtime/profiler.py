"""Low-overhead sampling profiler: collapsed stacks per engine phase.

A background daemon thread samples ``sys._current_frames()`` every
``interval`` seconds and folds each thread's stack into a counter keyed
by the collapsed call chain (``root;caller;...;leaf``), the input
format flamegraph tooling consumes directly (``flamegraph.pl``,
speedscope's "collapsed" importer).

Phase attribution rides the recorder's phase hook
(:func:`repro.obs.recorder.set_phase_hook`): while the profiler is
attached, every :class:`~repro.obs.PhaseTimer` / traced span
enter/exit updates a per-thread phase stack, and each sample is
prefixed with the innermost active phase of the sampled thread —
so the collapsed output separates ``scan`` time from ``merge`` time
without any per-pixel bookkeeping.

Overhead contract (gated by ``make service-metrics-smoke`` and the
unit microbench):

* **detached** (the default): *zero* threads, and the only residue in
  hot paths is the recorder's ``hook is None`` check per phase —
  within the existing <2% disabled-overhead budget;
* **attached**: one sampler thread waking ``1/interval`` times per
  second; at the 50 Hz default this stays under the 5% budget on the
  labeling workloads the smoke bench replays.
"""

from __future__ import annotations

import collections
import sys
import threading

from ..recorder import set_phase_hook

__all__ = ["SamplingProfiler"]

#: default sampling period: 50 Hz — fine enough to split engine phases,
#: coarse enough to stay within the 5% attached-overhead budget.
DEFAULT_INTERVAL = 0.02


class SamplingProfiler:
    """Thread-stack sampler producing collapsed-stack output.

    >>> prof = SamplingProfiler(interval=0.005)
    >>> with prof:
    ...     sum(i * i for i in range(200000)) > 0
    True
    >>> prof.sample_count > 0
    True
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        max_stack_depth: int = 64,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.interval = float(interval)
        self.max_stack_depth = int(max_stack_depth)
        self.samples: collections.Counter = collections.Counter()
        self.sample_count = 0
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._phase_stacks: dict[int, list[str]] = {}
        self._prev_hook = None

    # -- phase hook ------------------------------------------------------

    def _on_phase(self, phase: str, entering: bool) -> None:
        tid = threading.get_ident()
        stack = self._phase_stacks.get(tid)
        if entering:
            if stack is None:
                stack = self._phase_stacks[tid] = []
            stack.append(phase)
        elif stack:
            if stack[-1] == phase:
                stack.pop()
            else:  # unbalanced exit: drop the whole stale stack
                stack.clear()

    def _phase_of(self, tid: int) -> str | None:
        stack = self._phase_stacks.get(tid)
        return stack[-1] if stack else None

    # -- lifecycle -------------------------------------------------------

    @property
    def attached(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        """Attach: install the phase hook, spawn the sampler thread.

        Idempotent — a second ``start`` on a running profiler is a
        no-op (matching the drain-twice conventions elsewhere).
        """
        with self._lock:
            if self._thread is not None:
                return self
            self._stop.clear()
            self._prev_hook = set_phase_hook(self._on_phase)
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Detach: uninstall the hook, join the sampler. Idempotent."""
        with self._lock:
            thread = self._thread
            if thread is None:
                return self
            self._thread = None
            self._stop.set()
            set_phase_hook(self._prev_hook)
            self._prev_hook = None
        thread.join(timeout=5.0)
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    # -- sampling --------------------------------------------------------

    def _run(self) -> None:
        own = threading.get_ident()
        while not self._stop.wait(self.interval):
            self._sample_once(own)

    def _sample_once(self, skip_tid: int) -> None:
        try:
            frames = sys._current_frames()
        except Exception:  # pragma: no cover - interpreter teardown
            return
        for tid, frame in frames.items():
            if tid == skip_tid:
                continue
            chain: list[str] = []
            depth = 0
            while frame is not None and depth < self.max_stack_depth:
                code = frame.f_code
                fname = code.co_filename.rsplit("/", 1)[-1]
                chain.append(
                    f"{code.co_name} ({fname}:{code.co_firstlineno})"
                )
                frame = frame.f_back
                depth += 1
            chain.reverse()
            phase = self._phase_of(tid)
            key = (phase or "-",) + tuple(chain)
            self.samples[key] += 1
        self.sample_count += 1

    # -- output ----------------------------------------------------------

    def collapsed(self) -> list[str]:
        """Collapsed-stack lines: ``phase;frame;frame;... count``.

        The first segment is the engine phase active when the sample
        landed (``-`` when no phase was active), so flamegraphs group
        by phase at the root.
        """
        lines = []
        for key, count in sorted(self.samples.items()):
            lines.append(";".join(key) + f" {count}")
        return lines

    def write_collapsed(self, path) -> None:
        """Write the collapsed stacks (flamegraph.pl / speedscope input)."""
        with open(path, "w") as fh:
            for line in self.collapsed():
                fh.write(line + "\n")

    def phase_seconds(self) -> dict[str, float]:
        """Approximate seconds per phase: samples x interval."""
        agg: dict[str, float] = {}
        for key, count in self.samples.items():
            phase = key[0]
            agg[phase] = agg.get(phase, 0.0) + count * self.interval
        return agg
