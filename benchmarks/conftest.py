"""Shared fixtures for the pytest-benchmark suite.

Stand-in scales here are chosen so the full ``pytest benchmarks/
--benchmark-only`` run completes in a few minutes on one CPython core
while still giving each kernel enough work to time meaningfully.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments._suites import build_suites

#: linear stand-in scale for benchmark images.
BENCH_SCALE = 0.04


@pytest.fixture(scope="session")
def suites():
    """All four paper suites at benchmark scale."""
    return build_suites(BENCH_SCALE)


@pytest.fixture(scope="session")
def representative_images(suites):
    """Largest image of each suite — the per-kernel benchmark workload."""
    return {
        name: max(images, key=lambda s: s.info.image.size)
        for name, images in suites.items()
    }
