"""Spanning-forest / connected-components over explicit edge lists.

References [38] and [40] — the works the paper takes its union-find
machinery from — evaluate the structures on *graph* edge streams, not
images. This module reproduces that substrate so the union-find ablation
benchmark exercises the structures the same way those papers did, and so
downstream users get a general graph-components API for free.

The edge-stream generators mirror the graph families [40] uses:
random (Erdős–Rényi-style), ring/path-like (worst case for naive
linking), and grid graphs (which is exactly what a CCL merge stream is).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Type

import numpy as np

from .base import DisjointSets
from .remsp import RemSP

__all__ = [
    "spanning_forest",
    "connected_components",
    "count_components",
    "random_edge_stream",
    "ring_edge_stream",
    "grid_edge_stream",
]


def spanning_forest(
    n: int,
    edges: Iterable[tuple[int, int]],
    ds_class: Type[DisjointSets] = RemSP,
) -> tuple[list[tuple[int, int]], DisjointSets]:
    """Compute a spanning forest of the graph ``(range(n), edges)``.

    Returns the list of tree edges (those whose endpoints were in
    different sets when processed, in stream order) and the final
    disjoint-set structure. This is the exact kernel [38] benchmarks.
    """
    ds = ds_class(n)
    tree: list[tuple[int, int]] = []
    for u, v in edges:
        if ds.find(u) != ds.find(v):
            ds.union(u, v)
            tree.append((u, v))
    return tree, ds


def connected_components(
    n: int,
    edges: Iterable[tuple[int, int]],
    ds_class: Type[DisjointSets] = RemSP,
) -> np.ndarray:
    """Component id (0-based, consecutive, ordered by smallest member) for
    every vertex of the graph ``(range(n), edges)``."""
    ds = ds_class(n)
    for u, v in edges:
        ds.union(u, v)
    roots = np.fromiter((ds.find(i) for i in range(n)), dtype=np.int64, count=n)
    _, ids = np.unique(roots, return_inverse=True)
    return ids


def count_components(
    n: int,
    edges: Iterable[tuple[int, int]],
    ds_class: Type[DisjointSets] = RemSP,
) -> int:
    """Number of connected components of ``(range(n), edges)``."""
    ds = ds_class(n)
    remaining = n
    for u, v in edges:
        if ds.find(u) != ds.find(v):
            ds.union(u, v)
            remaining -= 1
    return remaining


def random_edge_stream(
    n: int, m: int, seed: int | None = None
) -> list[tuple[int, int]]:
    """*m* uniformly random edges over *n* vertices (self-loops excluded).

    The random-graph family from [40]'s experiments.
    """
    rng = np.random.default_rng(seed)
    us = rng.integers(0, n, size=m + m // 4 + 8)
    vs = rng.integers(0, n, size=m + m // 4 + 8)
    keep = us != vs
    us, vs = us[keep][:m], vs[keep][:m]
    while len(us) < m:  # pathological-seed fallback
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u != v:
            us = np.append(us, u)
            vs = np.append(vs, v)
    return list(zip(us.tolist(), vs.tolist()))


def ring_edge_stream(n: int) -> list[tuple[int, int]]:
    """Cycle graph 0-1-2-...-(n-1)-0: long-chain stress for find paths."""
    if n < 2:
        return []
    edges = [(i, i + 1) for i in range(n - 1)]
    edges.append((n - 1, 0))
    return edges


def grid_edge_stream(
    rows: int, cols: int, diagonal: bool = True
) -> list[tuple[int, int]]:
    """Edges of an ``rows x cols`` grid graph in raster order.

    With *diagonal* (default) this is the 8-connectivity neighbourhood
    structure — the exact merge stream shape a CCL scan produces on an
    all-foreground image.
    """
    edges: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
                if diagonal:
                    if c + 1 < cols:
                        edges.append((v, v + cols + 1))
                    if c > 0:
                        edges.append((v, v + cols - 1))
    return edges
