"""Vectorised operation-count analysis of the scan strategies.

The paper's sequential claims (Table II orderings) reduce to operation
counts: how many neighbour reads does each scan strategy perform, how
many union-find merges does it trigger, how long are the union-find
walks. The first two are *pure functions of the local pixel pattern* —
for the decision-tree scan the path taken depends only on
``(a, b, c, d)``, for the two-row scan on ``(a, b, c, d, e, f, g)`` — so
they can be counted exactly with a handful of NumPy shift/compare passes,
with no instrumentation in the hot loops.

Only the union-find *step* counts depend on global structure; those are
measured by running the scans with the counting merge kernels
(:func:`repro.unionfind.remsp.merge_counting` et al.) — see
:mod:`repro.simmachine.counters`.

Used by the ``opcounts`` experiment (scan-strategy ablation, DESIGN.md
experiment index) and by the simulated machine's cost accounting.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..types import as_binary_image

__all__ = ["ScanOpCounts", "decision_tree_opcounts", "tworow_opcounts"]


@dataclasses.dataclass(frozen=True)
class ScanOpCounts:
    """Exact static operation counts for one scan over one image.

    ``pixel_visits`` counts scan-loop *iterations* — one per pixel for
    the decision-tree scan, one per pixel *pair* for the two-row scan
    (its core advantage: half the traversal overhead);
    ``neighbor_reads`` counts mask-neighbour examinations only (current
    pixels ``e``/``g`` are loop operands, not neighbour reads, in both
    strategies); ``merges`` counts equivalence-merge invocations;
    ``new_labels`` provisional allocations; ``copies`` single-source
    label copies.
    """

    pixel_visits: int
    neighbor_reads: int
    merges: int
    new_labels: int
    copies: int

    def per_pixel(self) -> dict[str, float]:
        n = max(1, self.pixel_visits)
        return {
            "neighbor_reads": self.neighbor_reads / n,
            "merges": self.merges / n,
            "new_labels": self.new_labels / n,
            "copies": self.copies / n,
        }


def _shifted(img: np.ndarray, dr: int, dc: int) -> np.ndarray:
    """img value at (r+dr, c+dc), 0 outside — boolean mask arrays."""
    rows, cols = img.shape
    out = np.zeros_like(img, dtype=bool)
    rs = slice(max(0, -dr), rows - max(0, dr))
    cs = slice(max(0, -dc), cols - max(0, dc))
    rs_src = slice(max(0, dr), rows - max(0, -dr))
    cs_src = slice(max(0, dc), cols - max(0, -dc))
    out[rs, cs] = img[rs_src, cs_src] != 0
    return out


def decision_tree_opcounts(image: np.ndarray) -> ScanOpCounts:
    """Exact op counts for the CCLLRPC/CCLREMSP decision-tree scan
    (8-connectivity).

    Reads per foreground pixel, following Fig 2: ``b`` always; then
    ``c``; then ``a``; then ``d`` — each step only if the previous
    neighbour was background (with the ``c=1`` subtree reading ``a``
    then possibly ``d``).
    """
    img = as_binary_image(image)
    e = img != 0
    a = _shifted(img, -1, -1)
    b = _shifted(img, -1, 0)
    c = _shifted(img, -1, 1)
    d = _shifted(img, 0, -1)

    reads = np.zeros(img.shape, dtype=np.int64)
    merges = np.zeros(img.shape, dtype=bool)
    news = np.zeros(img.shape, dtype=bool)
    copies = np.zeros(img.shape, dtype=bool)

    nb = ~b
    nc = ~c
    na = ~a
    # b foreground: 1 read, copy(b)
    reads[e & b] = 1
    copies |= e & b
    # b0 c1 a1: reads b,c,a = 3; merge copy(c,a)
    m1 = e & nb & c & a
    reads[m1] = 3
    merges |= m1
    # b0 c1 a0: reads b,c,a,d = 4; d decides merge vs copy
    m2 = e & nb & c & na
    reads[m2] = 4
    merges |= m2 & d  # copy(c,d)
    copies |= m2 & ~d  # copy(c)
    # b0 c0 a1: reads b,c,a = 3; copy(a)
    m3 = e & nb & nc & a
    reads[m3] = 3
    copies |= m3
    # b0 c0 a0: reads b,c,a,d = 4; copy(d) or new
    m4 = e & nb & nc & na
    reads[m4] = 4
    copies |= m4 & d
    news |= m4 & ~d

    return ScanOpCounts(
        pixel_visits=int(img.size),
        neighbor_reads=int(reads.sum()),
        merges=int(merges.sum()),
        new_labels=int(news.sum()),
        copies=int(copies.sum()),
    )


def tworow_opcounts(image: np.ndarray) -> ScanOpCounts:
    """Exact op counts for the ARUN/AREMSP two-row scan (8-connectivity).

    Counted per pixel *pair* following the branch structure of
    :func:`repro.ccl.scan_aremsp.scan_pair_row_8`: neighbour reads follow
    the ``d -> b -> f -> a -> c`` short-circuit order plus the
    conditional second reads inside each branch (``e`` and ``g`` are the
    pair's current pixels, not neighbours — see
    :class:`ScanOpCounts`). An odd final row is counted with the
    decision-tree cost.
    """
    img = as_binary_image(image)
    rows, cols = img.shape
    pair_rows = rows - (rows % 2)
    top = img[0:pair_rows:2]  # e-rows
    bot = img[1:pair_rows:2]  # g-rows

    # masks in pair coordinates (shape pair_rows/2 x cols)
    e = top != 0
    g = bot != 0
    a = _shifted(img, -1, -1)[0:pair_rows:2]
    b = _shifted(img, -1, 0)[0:pair_rows:2]
    c = _shifted(img, -1, 1)[0:pair_rows:2]
    d = _shifted(img, 0, -1)[0:pair_rows:2]
    f = _shifted(img, 0, -1)[1:pair_rows:2]  # left of g == f

    reads = np.zeros(e.shape, dtype=np.int64)
    merges = np.zeros(e.shape, dtype=np.int64)
    news = np.zeros(e.shape, dtype=bool)
    copies = np.zeros(e.shape, dtype=np.int64)

    ne, nd, nb_, nf, na_ = ~e, ~d, ~b, ~f, ~a
    # --- e foreground branches -----------------------------------------
    br_d = e & d  # reads: d; then b; c only if b background
    reads[br_d] += 2  # d, b
    sub = br_d & nb_
    reads[sub] += 1  # c
    merges[sub & c] += 1
    copies[br_d] += 1  # label from d
    br_b = e & nd & b  # reads: d, b, f
    reads[br_b] += 3
    merges[br_b & f] += 1
    copies[br_b] += 1
    br_f = e & nd & nb_ & f  # reads: d, b, f, a, c
    reads[br_f] += 5
    merges[br_f & a] += 1
    merges[br_f & c] += 1
    copies[br_f] += 1
    br_a = e & nd & nb_ & nf & a  # reads: d, b, f, a, c
    reads[br_a] += 5
    merges[br_a & c] += 1
    copies[br_a] += 1
    br_c = e & nd & nb_ & nf & na_  # reads: d, b, f, a, c
    reads[br_c] += 5
    copies[br_c & c] += 1
    news |= br_c & ~c
    copies[e & g] += 1  # g adopts e's label

    # --- e background, g foreground ------------------------------------
    br_g = ne & g
    reads[br_g] += 1  # d
    gd = br_g & d
    copies[gd] += 1
    gnf = br_g & nd
    reads[gnf] += 1  # f
    copies[gnf & f] += 1
    news |= gnf & ~f

    out = ScanOpCounts(
        pixel_visits=(pair_rows // 2) * cols,
        neighbor_reads=int(reads.sum()),
        merges=int(merges.sum()),
        new_labels=int(news.sum()),
        copies=int(copies.sum()),
    )
    if pair_rows < rows:  # odd tail row, scanned with the decision tree
        if rows == 1:
            tail = decision_tree_opcounts(img)
            d_reads, d_merges = tail.neighbor_reads, tail.merges
            d_news, d_copies = tail.new_labels, tail.copies
        else:
            # run the static count on (last row + its true upper row) and
            # subtract the upper row's solo cost, leaving exactly the tail
            # row's contribution.
            tail_img = img[rows - 2 :]
            full = decision_tree_opcounts(tail_img)
            solo = decision_tree_opcounts(tail_img[:1])
            d_reads = full.neighbor_reads - solo.neighbor_reads
            d_merges = full.merges - solo.merges
            d_news = full.new_labels - solo.new_labels
            d_copies = full.copies - solo.copies
        out = ScanOpCounts(
            pixel_visits=out.pixel_visits + cols,
            neighbor_reads=out.neighbor_reads + d_reads,
            merges=out.merges + d_merges,
            new_labels=out.new_labels + d_news,
            copies=out.copies + d_copies,
        )
    return out
