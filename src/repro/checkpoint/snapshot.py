"""Crash-consistent snapshot storage for in-flight labeling state.

A snapshot is two files in the checkpoint directory::

    snap-00000123.state.pkl      # the pickled state payload
    snap-00000123.manifest.json  # the commit record

and the write protocol makes the *manifest rename* the commit point:

1. payload -> ``snap-<seq>.state.pkl.tmp``, ``fsync``, atomic rename;
2. manifest (seq, payload name, byte size, SHA-256, job fingerprint)
   -> ``snap-<seq>.manifest.json.tmp``, ``fsync``, atomic rename;
3. directory ``fsync`` after each rename, so the entries themselves are
   durable.

A crash anywhere in that sequence leaves either (a) no new manifest —
the previous snapshot is still the latest — or (b) a complete manifest
over a fully-synced payload. A *torn* payload under a complete manifest
(injectable via the ``torn_write`` fault; possible in reality only if
the storage lies about durability) is caught by the size + checksum
validation in :meth:`SnapshotStore.latest`, which then falls back to the
newest older snapshot that does validate. Only when **no** snapshot
validates does :class:`~repro.errors.CheckpointCorruptError` escape —
a corrupt checkpoint directory can cost progress, never correctness.

The store is deliberately codec-boring: payloads are pickled plain-data
dicts (builtins + numpy arrays), manifests are JSON. Fault injection
(``crash_at_checkpoint``, ``torn_write``, ``corrupt_snapshot``) hooks
into :meth:`save` via the ambient :mod:`repro.faults` plan, and every
operation lands in the trace schema as ``checkpoint.*`` counters and
``checkpoint.save`` / ``checkpoint.load`` spans.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import re
import time

from ..errors import CheckpointCorruptError, InjectedCrashError, ResumeMismatchError
from ..faults import get_fault_plan, record_injection
from ..obs import get_recorder

__all__ = ["SnapshotStore", "NullCheckpointer", "NULL_CHECKPOINT"]

_PAYLOAD_SUFFIX = ".state.pkl"
_MANIFEST_SUFFIX = ".manifest.json"
_TMP_SUFFIX = ".tmp"
_SEQ_RE = re.compile(r"^snap-(\d{8})\.manifest\.json$")

#: manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1


def _fsync_path(path: pathlib.Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: pathlib.Path) -> None:
    # directory entries (the renames) need their own fsync on POSIX
    try:
        _fsync_path(path)
    except OSError:  # pragma: no cover - some filesystems refuse dir fds
        pass


def _write_atomic(path: pathlib.Path, data: bytes) -> None:
    tmp = path.with_name(path.name + _TMP_SUFFIX)
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


class NullCheckpointer:
    """Disabled-checkpointing sentinel, mirroring ``NULL_PLAN``.

    Job loops guard their per-row/per-tile checkpoint hook with a single
    ``ckpt.enabled`` attribute test; with this shared instance installed
    (the default when no ``--checkpoint-dir`` is given) that test is the
    entire cost — the same zero-overhead-when-off contract the recorder
    and the fault plan already keep, and the one the bench gate's
    ``disabled_overhead_estimate`` now includes.
    """

    __slots__ = ()

    enabled = False


#: the process-wide disabled checkpointer.
NULL_CHECKPOINT = NullCheckpointer()


class SnapshotStore:
    """Atomic, checksummed snapshot storage in one directory.

    *fingerprint* is a plain JSON-able dict identifying the job (image
    shape/dtype, parameters); it is stamped into every manifest and
    verified on load, so resuming against the wrong input or changed
    parameters raises :class:`~repro.errors.ResumeMismatchError` instead
    of silently mixing state. *keep* bounds how many committed
    snapshots are retained (older ones are pruned after each save; at
    least one previous snapshot is kept as the corruption fallback).
    """

    enabled = True

    def __init__(
        self,
        directory: str | os.PathLike,
        fingerprint: dict | None = None,
        keep: int = 2,
        recorder=None,
        fault_plan=None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fingerprint = dict(fingerprint or {})
        self.keep = keep
        self._rec = recorder if recorder is not None else get_recorder()
        self._plan = fault_plan if fault_plan is not None else get_fault_plan()
        #: saves committed through this store instance (the fault
        #: hooks' ``attempt`` coordinate: spec attempt=k fires on the
        #: k-th save of the run).
        self.saves = 0

    # -- paths -------------------------------------------------------------

    def _payload_path(self, seq: int) -> pathlib.Path:
        return self.directory / f"snap-{seq:08d}{_PAYLOAD_SUFFIX}"

    def _manifest_path(self, seq: int) -> pathlib.Path:
        return self.directory / f"snap-{seq:08d}{_MANIFEST_SUFFIX}"

    def sequences(self) -> list[int]:
        """Committed snapshot sequence numbers, ascending."""
        seqs = []
        for entry in self.directory.iterdir():
            m = _SEQ_RE.match(entry.name)
            if m:
                seqs.append(int(m.group(1)))
        return sorted(seqs)

    # -- write path --------------------------------------------------------

    def save(self, state: dict, seq: int) -> pathlib.Path:
        """Commit *state* as snapshot *seq*; returns the manifest path.

        Crash-consistent per the module docstring. Re-saving an existing
        *seq* (a resumed run overtaking a stale snapshot from the
        crashed attempt) atomically replaces it.
        """
        rec = self._rec
        plan = self._plan
        t0 = time.perf_counter()
        payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        torn = corrupt = crash = None
        if plan.enabled:
            torn = plan.take("torn_write", "checkpoint", attempt=self.saves)
            corrupt = plan.take(
                "corrupt_snapshot", "checkpoint", attempt=self.saves
            )
            crash = plan.take(
                "crash_at_checkpoint", "checkpoint", attempt=self.saves
            )
        payload_path = self._payload_path(seq)
        _write_atomic(payload_path, payload)
        manifest = {
            "manifest_version": MANIFEST_VERSION,
            "seq": seq,
            "payload": payload_path.name,
            "bytes": len(payload),
            "sha256": digest,
            "fingerprint": self.fingerprint,
        }
        _write_atomic(
            self._manifest_path(seq),
            json.dumps(manifest, indent=0, sort_keys=True).encode(),
        )
        self.saves += 1
        if torn is not None:
            # a torn write the checksum must catch: the manifest
            # committed, but the payload on disk is only a prefix
            with open(payload_path, "r+b") as fh:
                fh.truncate(max(1, len(payload) // 2))
            record_injection(rec, torn)
        if corrupt is not None:
            with open(payload_path, "r+b") as fh:
                fh.seek(len(payload) // 3)
                byte = fh.read(1)
                fh.seek(len(payload) // 3)
                fh.write(bytes([byte[0] ^ 0xFF]))
            record_injection(rec, corrupt)
        self._prune()
        if rec.enabled:
            rec.count("checkpoint.saves")
            rec.count("checkpoint.bytes", len(payload))
            rec.add_span("ckpt", "checkpoint.save", t0, time.perf_counter())
        if crash is not None:
            record_injection(rec, crash)
            raise InjectedCrashError(
                f"injected crash after committing snapshot {seq}", seq=seq
            )
        return self._manifest_path(seq)

    def _prune(self) -> None:
        seqs = self.sequences()
        for seq in seqs[: max(0, len(seqs) - self.keep)]:
            self._remove(seq)
            if self._rec.enabled:
                self._rec.count("checkpoint.pruned")

    def _remove(self, seq: int) -> None:
        # manifest first: without its commit record a payload is dead
        self._manifest_path(seq).unlink(missing_ok=True)
        self._payload_path(seq).unlink(missing_ok=True)

    def clear(self) -> None:
        """Remove every snapshot, manifest, and stray temp file.

        Called on successful job completion, so a finished run leaves
        zero snapshot/temp files behind.
        """
        for seq in self.sequences():
            self._remove(seq)
        for entry in list(self.directory.iterdir()):
            if entry.name.startswith("snap-") and (
                entry.name.endswith(_TMP_SUFFIX)
                or entry.name.endswith(_PAYLOAD_SUFFIX)
            ):
                entry.unlink(missing_ok=True)

    # -- read path ---------------------------------------------------------

    def _validate(self, seq: int) -> dict:
        """Load and fully validate snapshot *seq*; raises ValueError
        with a reason on any defect."""
        manifest_path = self._manifest_path(seq)
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable manifest: {exc}") from exc
        payload_path = self.directory / str(manifest.get("payload", ""))
        if not payload_path.is_file():
            raise ValueError(f"stale manifest: payload {manifest.get('payload')!r} missing")
        payload = payload_path.read_bytes()
        if len(payload) != manifest.get("bytes"):
            raise ValueError(
                f"payload size {len(payload)} != manifest bytes "
                f"{manifest.get('bytes')} (torn write)"
            )
        digest = hashlib.sha256(payload).hexdigest()
        if digest != manifest.get("sha256"):
            raise ValueError("payload checksum mismatch (corrupt snapshot)")
        found = manifest.get("fingerprint") or {}
        if self.fingerprint and found != self.fingerprint:
            raise ResumeMismatchError(
                f"snapshot {seq} in {self.directory} belongs to a "
                "different job (fingerprint mismatch)",
                expected=self.fingerprint,
                found=found,
            )
        return pickle.loads(payload)

    def latest(self) -> tuple[int, dict] | None:
        """The newest snapshot that validates, as ``(seq, state)``.

        Walks committed snapshots newest-first; corrupt ones are skipped
        (counted as ``checkpoint.fallbacks``) until one validates.
        Returns ``None`` for an empty store;  raises
        :class:`~repro.errors.CheckpointCorruptError` when snapshots
        exist but none validates, and
        :class:`~repro.errors.ResumeMismatchError` as soon as a
        *structurally sound* snapshot belongs to a different job.
        """
        rec = self._rec
        t0 = time.perf_counter()
        seqs = self.sequences()
        if not seqs:
            return None
        rejected: list[tuple[int, str]] = []
        for seq in reversed(seqs):
            try:
                state = self._validate(seq)
            except ResumeMismatchError:
                raise
            except ValueError as exc:
                rejected.append((seq, str(exc)))
                if rec.enabled:
                    rec.count("checkpoint.corrupt_detected")
                    rec.count("checkpoint.fallbacks")
                continue
            if rec.enabled:
                rec.add_span(
                    "ckpt", "checkpoint.load", t0, time.perf_counter()
                )
            return seq, state
        raise CheckpointCorruptError(
            f"no valid snapshot in {self.directory} "
            f"({len(rejected)} rejected: "
            + "; ".join(f"seq {s}: {r}" for s, r in rejected)
            + ")",
            directory=str(self.directory),
            candidates=tuple(rejected),
        )
