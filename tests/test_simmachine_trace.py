"""Trace reconstruction and Gantt rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import blobs
from repro.simmachine import simulate_paremsp
from repro.simmachine.trace import TraceSpan, build_trace, render_gantt


@pytest.fixture(scope="module")
def sim():
    return simulate_paremsp(blobs((48, 48), 0.5, seed=1), 4, linear_scale=50.0)


def test_trace_covers_total_time(sim):
    spans = build_trace(sim)
    assert max(s.stop for s in spans) == pytest.approx(
        sim.total_seconds - sim.phase_seconds["barriers"]
    )


def test_phases_are_barrier_ordered(sim):
    spans = build_trace(sim)
    by_phase = {}
    for s in spans:
        by_phase.setdefault(s.phase, []).append(s)
    scan_end = max(s.stop for s in by_phase["scan"])
    merge_start = min(s.start for s in by_phase["merge"])
    assert merge_start >= scan_end - 1e-12
    if "flatten" in by_phase:
        assert by_phase["flatten"][0].start >= max(
            s.stop for s in by_phase["merge"]
        ) - 1e-12


def test_every_chunk_thread_has_a_scan_span(sim):
    spans = build_trace(sim)
    scan_lanes = {s.lane for s in spans if s.phase == "scan"}
    assert scan_lanes == {f"thread {i}" for i in range(sim.n_chunks)}


def test_span_durations_match_accounting(sim):
    spans = build_trace(sim)
    for i, dur in enumerate(sim.thread_scan_seconds):
        (span,) = [
            s for s in spans if s.phase == "scan" and s.lane == f"thread {i}"
        ]
        assert span.duration == pytest.approx(dur)


def test_gantt_renders(sim):
    chart = render_gantt(sim, width=60)
    lines = chart.splitlines()
    assert any("#" in l for l in lines)  # scan bars
    assert any("=" in l for l in lines)  # label bars
    assert "legend" in lines[-1]
    # lanes aligned: all bar rows share the same total width
    bar_rows = [l for l in lines if "|" in l]
    assert len({len(l) for l in bar_rows}) == 1


def test_gantt_single_thread():
    sim1 = simulate_paremsp(blobs((24, 24), 0.5, seed=2), 1)
    chart = render_gantt(sim1)
    assert "thread 0" in chart
    assert "+" not in chart.split("legend")[0].replace("+ spawn", "")


def test_trace_span_duration():
    s = TraceSpan("x", "scan", 1.0, 3.5)
    assert s.duration == 2.5
