"""``repro-obs`` — interrogate traces and the perf history from the shell.

Five subcommands turn the observability layer's raw material into
answers::

    repro-obs analyze trace.jsonl            # speedup decomposition
    repro-obs analyze t1.jsonl t4.jsonl ...  # + Amdahl fit across runs
    repro-obs analyze --sim 512 --threads 8  # simmachine trace, no file
    repro-obs export-chrome trace.jsonl -o trace.json   # chrome://tracing
    repro-obs history --dir benchmarks/history          # list records
    repro-obs compare baseline.json new.json            # regression gate
    repro-obs top http://127.0.0.1:9200      # live /metrics snapshot

``compare`` exits nonzero on regression; ``--warn-only`` keeps soft
regressions advisory (shared CI runners) while per-phase blowups past
``--hard-threshold`` stay fatal. ``top`` scrapes a running service's
``/metrics`` endpoint (:mod:`repro.obs.runtime.server`) and renders
the service families — latency quantiles, queue depth, rejections,
SLO breaches — once or on an interval, like a one-file ``htop`` for
the labeling service.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from .analyze import amdahl_fit, analyze_spans, trace_thread_count
from .chrome import write_chrome_trace
from .export import read_trace

__all__ = ["main", "build_parser"]

#: default on-disk history location (matches repro.perfdb.record).
DEFAULT_HISTORY_DIR = "benchmarks/history"


def _sim_trace(size: int, n_threads: int, seed: int):
    """Simulate a PAREMSP run on a blob raster; return (spans, metrics)."""
    from ..data.synthetic import blobs
    from ..simmachine.machine import simulate_paremsp
    from ..simmachine.trace import sim_metrics
    from .export import sim_trace_spans

    sim = simulate_paremsp(
        blobs((size, size), 0.6, 5, seed=seed), n_threads=n_threads
    )
    return sim_trace_spans(sim), sim_metrics(sim)


def _load_traces(args) -> list[tuple[str, list, dict | None]]:
    """Resolve the analyze/export sources: files and/or --sim."""
    sources: list[tuple[str, list, dict | None]] = []
    for path in args.traces:
        trace = read_trace(path)
        if trace.truncated:
            print(
                f"note: {path} ended mid-line; dropped the partial "
                "record (crash-truncated trace)",
                file=sys.stderr,
            )
        sources.append((path, list(trace.spans), trace.metrics))
    if args.sim is not None:
        spans, metrics = _sim_trace(args.sim, args.threads, args.seed)
        sources.append(
            (f"<sim {args.sim}x{args.sim}, {args.threads} threads>",
             spans, metrics),
        )
    if not sources:
        raise SystemExit("error: give trace files and/or --sim SIZE")
    return sources


def _cmd_analyze(args) -> int:
    sources = _load_traces(args)
    analyses = [
        (name, analyze_spans(spans, metrics))
        for name, spans, metrics in sources
    ]
    fit = None
    by_threads = {a.n_threads: a.wall_seconds for _, a in analyses
                  if a.n_threads >= 1 and a.wall_seconds > 0}
    if len(by_threads) >= 2:
        fit = amdahl_fit(by_threads)
    if args.json:
        out = {
            "traces": [
                {"trace": name, **a.as_dict()} for name, a in analyses
            ],
        }
        if fit is not None:
            out["amdahl"] = {
                "serial_fraction": fit.serial_fraction,
                "t1_seconds": fit.t1,
                "max_speedup": (
                    None if fit.max_speedup == float("inf")
                    else fit.max_speedup
                ),
                "residual": fit.residual,
                "points": [list(p) for p in fit.points],
            }
        print(json.dumps(out, indent=2))
        return 0
    for name, analysis in analyses:
        print(f"== {name}")
        print(analysis.render())
        print()
    if fit is not None:
        print(fit.describe())
    elif len(analyses) > 1:
        print(
            "(no Amdahl fit: the traces do not span >= 2 distinct "
            "thread counts)"
        )
    return 0


def _cmd_export_chrome(args) -> int:
    sources = _load_traces(args)
    out = args.out
    if out is None:
        if args.traces:
            out = str(pathlib.Path(args.traces[0]).with_suffix("")) + \
                "_chrome.json"
        else:
            out = "trace_chrome.json"
    if len(sources) > 1:
        raise SystemExit(
            "error: export-chrome takes exactly one source "
            "(one trace file or --sim)"
        )
    _, spans, metrics = sources[0]
    write_chrome_trace(spans, out, metrics=metrics)
    print(
        f"chrome trace -> {out} ({len(spans)} spans; open in "
        "https://ui.perfetto.dev or chrome://tracing)"
    )
    return 0


def _cmd_history(args) -> int:
    from ..perfdb import list_records

    records = list_records(args.dir, benchmark=args.benchmark)
    if args.show:
        from ..perfdb import load_record

        record = load_record(args.show)
        print(json.dumps(record, indent=2))
        return 0
    if not records:
        print(f"(no perf records under {args.dir})")
        return 0
    print(
        f"{'created (UTC)':<21s} {'benchmark':<16s} {'median':>10s} "
        f"{'ci95':>23s} {'reps':>4s} {'sha':>8s}  path"
    )
    for path, record in records:
        total = record["total"]
        lo, hi = total["ci95"]
        sha = (record.get("env") or {}).get("git_sha") or "-"
        print(
            f"{record['created_utc']:<21s} {record['benchmark']:<16s} "
            f"{total['median']:>9.4f}s "
            f"[{lo:>9.4f}, {hi:>9.4f}] {len(total['reps']):>4d} "
            f"{sha[:8]:>8s}  {path}"
        )
    return 0


def _cmd_compare(args) -> int:
    from ..perfdb import compare_records, latest_record, load_record

    baseline_path = args.baseline
    if baseline_path is None:
        raise SystemExit(
            "error: give a baseline record (positional) — e.g. the "
            "committed benchmarks/history/baseline.json"
        )
    try:
        baseline = load_record(baseline_path)
    except FileNotFoundError:
        raise SystemExit(
            f"error: baseline record {baseline_path!r} does not exist"
        ) from None
    new_path = args.new
    if new_path is None:
        # default the filter to the baseline's own benchmark so a
        # history directory shared by several benches (paremsp_smoke +
        # service_smoke) never pairs records across benchmarks.
        benchmark = args.benchmark or baseline.get("benchmark")
        latest = latest_record(args.dir, benchmark=benchmark)
        if latest is None:
            raise SystemExit(
                f"error: no {benchmark!r} records under {args.dir} to "
                "compare; run the bench with --history first"
            )
        new_path = latest[0]
    new = load_record(new_path)
    if baseline_path == new_path:
        print(f"note: comparing {new_path} against itself", file=sys.stderr)
    comparison = compare_records(
        baseline,
        new,
        threshold=args.threshold,
        phase_threshold=args.phase_threshold,
        hard_threshold=args.hard_threshold,
        baseline_path=baseline_path,
        new_path=new_path,
    )
    if args.json:
        print(json.dumps(comparison.as_dict(), indent=2))
    else:
        print(comparison.render())
    if comparison.ok:
        return 0
    if args.warn_only and not comparison.has_hard:
        print(
            "warn-only: regressions reported but not fatal "
            "(no phase crossed the hard threshold)"
        )
        return 0
    return 1


def _fetch_metrics(url: str, timeout: float) -> dict[str, dict[str, float]]:
    """Scrape *url* (``/metrics`` appended if missing) and parse it."""
    import urllib.request

    from .runtime.aggregator import parse_prometheus_text

    if not url.startswith(("http://", "https://")):
        url = "http://" + url
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        text = resp.read().decode("utf-8")
    return parse_prometheus_text(text)


def _render_top(metrics: dict[str, dict[str, float]]) -> str:
    """One snapshot frame: service families first, the rest after."""
    lines = []

    def row(label: str, value) -> None:
        lines.append(f"  {label:<40s} {value}")

    def fam(name: str) -> dict[str, float]:
        return metrics.get(name, {})

    lat = fam("service_latency_ms")
    if lat:
        lines.append("latency (rolling window)")
        for labels_text in sorted(lat):
            if "quantile" in labels_text:
                q = labels_text.split('"')[1]
                row(f"p{float(q) * 100:g}", f"{lat[labels_text]:10.3f} ms")
        count = fam("service_latency_ms_count").get("", 0)
        row("window samples", f"{count:10.0f}")
    lines.append("occupancy")
    for label, name in (
        ("queue depth", "service_queue_depth"),
        ("in flight", "service_inflight"),
        ("pool respawns", "service_pool_respawns"),
        ("degraded (forced)", "service_degraded"),
    ):
        series = fam(name)
        if series:
            row(label, f"{series.get('', 0):10.0f}")
    lines.append("traffic")
    for label, name in (
        ("requests", "service_requests_total"),
        ("batches", "service_batches_total"),
        ("batch failures", "service_batch_failed_total"),
    ):
        series = fam(name)
        if series:
            row(label, f"{sum(series.values()):10.0f}")
    for name, header in (
        ("service_rejected_total", "rejections"),
        ("service_degraded_batches_total", "degraded batches"),
        ("slo_breaches_total", "slo breaches"),
    ):
        series = fam(name)
        if series:
            lines.append(header)
            for labels_text in sorted(series):
                row(labels_text or "(total)",
                    f"{series[labels_text]:10.0f}")
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import time as _time
    import urllib.error

    remaining = args.count
    while True:
        try:
            metrics = _fetch_metrics(args.url, args.timeout)
        except (urllib.error.URLError, OSError) as exc:
            raise SystemExit(
                f"error: could not scrape {args.url!r}: {exc}"
            ) from None
        print(f"== {args.url} ==")
        print(_render_top(metrics))
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                return 0
        if args.interval <= 0:
            return 0
        print()
        _time.sleep(args.interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description=(
            "Analyze traces and gate performance history for the "
            "PAREMSP reproduction"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_trace_sources(p) -> None:
        p.add_argument(
            "traces",
            nargs="*",
            help="trace.jsonl files (schema v1 or v2)",
        )
        p.add_argument(
            "--sim",
            type=int,
            metavar="SIZE",
            default=None,
            help="also analyze a simulated SIZExSIZE PAREMSP run "
            "(cost-model trace via sim_trace_spans)",
        )
        p.add_argument("--threads", type=int, default=4,
                       help="thread count for --sim (default 4)")
        p.add_argument("--seed", type=int, default=0,
                       help="raster seed for --sim")

    p_analyze = sub.add_parser(
        "analyze",
        help="speedup decomposition: serial fraction, imbalance, "
        "idle time, merge contention; Amdahl fit across >= 2 traces",
    )
    add_trace_sources(p_analyze)
    p_analyze.add_argument("--json", action="store_true",
                           help="machine-readable output")
    p_analyze.set_defaults(fn=_cmd_analyze)

    p_chrome = sub.add_parser(
        "export-chrome",
        help="convert a trace to Perfetto/chrome://tracing JSON",
    )
    add_trace_sources(p_chrome)
    p_chrome.add_argument("-o", "--out", default=None,
                          help="output path (default <trace>_chrome.json)")
    p_chrome.set_defaults(fn=_cmd_export_chrome)

    p_history = sub.add_parser(
        "history", help="list perf-history records"
    )
    p_history.add_argument("--dir", default=DEFAULT_HISTORY_DIR)
    p_history.add_argument("--benchmark", default=None,
                           help="filter by benchmark name")
    p_history.add_argument("--show", metavar="PATH", default=None,
                           help="print one record as JSON")
    p_history.set_defaults(fn=_cmd_history)

    p_compare = sub.add_parser(
        "compare",
        help="diff two history records; exit 1 on regression",
    )
    p_compare.add_argument(
        "baseline",
        nargs="?",
        default=None,
        help="baseline record (e.g. committed "
        "benchmarks/history/baseline.json)",
    )
    p_compare.add_argument(
        "new",
        nargs="?",
        default=None,
        help="new record (default: latest under --dir)",
    )
    p_compare.add_argument("--dir", default=DEFAULT_HISTORY_DIR)
    p_compare.add_argument("--benchmark", default=None)
    p_compare.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative total-median movement to flag (default 0.25)",
    )
    p_compare.add_argument(
        "--phase-threshold", type=float, default=0.50,
        help="relative per-phase movement to flag (default 0.50)",
    )
    p_compare.add_argument(
        "--hard-threshold", type=float, default=3.0,
        help="ratio past which a regression stays fatal even with "
        "--warn-only (default 3.0)",
    )
    p_compare.add_argument(
        "--warn-only", action="store_true",
        help="report soft regressions without failing (shared CI "
        "runners); hard regressions still exit 1",
    )
    p_compare.add_argument("--json", action="store_true",
                           help="machine-readable output")
    p_compare.set_defaults(fn=_cmd_compare)

    p_top = sub.add_parser(
        "top",
        help="scrape a live /metrics endpoint and render a service "
        "snapshot (latency quantiles, queue depth, rejections, SLOs)",
    )
    p_top.add_argument(
        "url",
        help="endpoint base or full /metrics URL "
        "(e.g. http://127.0.0.1:9200)",
    )
    p_top.add_argument(
        "--interval", type=float, default=0.0,
        help="refresh every N seconds (default: print once and exit)",
    )
    p_top.add_argument(
        "--count", type=int, default=None,
        help="stop after N snapshots (default: once, or forever "
        "with --interval)",
    )
    p_top.add_argument("--timeout", type=float, default=5.0,
                       help="per-scrape HTTP timeout (default 5s)")
    p_top.set_defaults(fn=_cmd_top)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # downstream closed the pipe (analyze | head); not an error.
        # Point stdout at devnull so interpreter teardown's flush
        # doesn't raise a second time.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
