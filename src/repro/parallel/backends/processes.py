"""Process backend: true parallelism via ``fork`` + shared memory.

CPython's GIL makes the thread backend serialise; this backend forks one
worker per chunk for the scan phase — the phase that carries essentially
all the work (Figure 5a vs 5b of the paper: the merge step is
negligible). Transport is ``multiprocessing.shared_memory``, restoring
the paper's shared-address-space model for the scan:

* the coordinator places three segments in shared memory — the binary
  image, the provisional label image, and the typed equivalence array
  ``p`` — and sends each worker only segment names plus chunk bounds
  (a few hundred bytes per worker, engine-independent);
* each worker attaches read-only to the image segment, scans its row
  slice, and writes its provisional label rows and its
  ``[label_start, used)`` equivalence slice directly into the shared
  output segments — the disjoint-range contract of Algorithm 7 makes
  those writes race-free by construction;
* workers deposit their used-label watermark in a fourth (tiny) shared
  segment and exit; one forked process per chunk, no pool, no queues —
  nothing is pickled in either direction. (Earlier revisions pickled
  each chunk's row lists to the workers and the label rows back — that
  transport is gone, see CHANGELOG 1.1.0.)

The coordinator still performs the (tiny) boundary merge itself; that
remains the one departure from the paper's model, recorded in
DESIGN.md §2.

The scan phase runs *supervised* (:mod:`repro.parallel.supervisor`):
worker death is detected through process sentinels, incomplete chunks
are respawned with exponential backoff up to the
:class:`~repro.faults.ResilienceConfig` retry budget (safe because
chunk scans write disjoint shared-memory ranges and are idempotent), a
per-phase watchdog bounds hangs with a typed
:class:`~repro.errors.PhaseTimeoutError`, and every exit path —
including ``KeyboardInterrupt`` — kills live workers and unlinks every
``/dev/shm`` segment. Deterministic fault injection
(:class:`~repro.faults.FaultPlan`) is arbitrated coordinator-side and
shipped to workers as per-batch directives, so chaos tests can kill a
worker mid-scan and assert byte-identical recovery.

For the ``interpreter`` engine each worker scans over Python row lists
built from its *own* slice of the shared image (list indexing is the
faithful-transcription fast path in CPython), then bulk-copies the
results into shared memory; the vectorised engines run the NumPy chunk
kernels directly on the shared views. :class:`OffsetList` gives the
interpreter worker a local window of the equivalence array with global
label values (scan-phase merges never leave the chunk's range, so the
window is total for them).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
import weakref
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from ...ccl.scan_aremsp import scan_tworow
from ...errors import BackendError
from ...faults import (
    DEFAULT_RESILIENCE,
    get_fault_plan,
    record_injection,
)
from ...obs import NULL_RECORDER
from ...types import LABEL_DTYPE, PIXEL_DTYPE
from ...unionfind.remsp import merge as remsp_merge
from ..boundary import (
    boundary_edges,
    boundary_rows,
    merge_boundary_row,
    merge_edges,
)
from ..partition import RowChunk
from ..supervisor import supervise
from ._common import chunk_kernel

__all__ = ["ProcessBackend", "OffsetList", "create_segment"]

_LABEL_ITEMSIZE = np.dtype(LABEL_DTYPE).itemsize


class OffsetList:
    """A zero-based list exposed at a shifted index range.

    ``OffsetList(n, off)[off + i]`` aliases slot ``i``; values are
    arbitrary (the union-find kernels store *global* label values in it).
    """

    __slots__ = ("data", "offset")

    def __init__(self, size: int, offset: int) -> None:
        self.data = [0] * size
        self.offset = offset

    def __getitem__(self, i: int) -> int:
        return self.data[i - self.offset]

    def __setitem__(self, i: int, v: int) -> None:
        self.data[i - self.offset] = v

    def __len__(self) -> int:
        return len(self.data)


def _scan_chunk(
    args: tuple[list[list[int]], int, int, int],
) -> tuple[list[list[int]], int, list[int]]:
    """Interpreter-engine chunk scan over row lists.

    ``args`` is ``(img_chunk, label_start, cols, connectivity)`` — *cols*
    is threaded through explicitly so degenerate chunks never have to
    infer the row width from their own data. Returns ``(label_rows,
    used_watermark, p_slice)`` where ``p_slice`` covers ``[label_start,
    used_watermark)``.
    """
    img_chunk, label_start, cols, connectivity = args
    capacity = len(img_chunk) * cols + 1
    p = OffsetList(capacity, label_start)
    cell = [label_start]

    def alloc() -> int:
        c = cell[0]
        p[c] = c
        cell[0] = c + 1
        return c

    rows = scan_tworow(img_chunk, p, remsp_merge, alloc, connectivity)
    used = cell[0]
    return rows, used, p.data[: used - label_start]


#: does ``SharedMemory`` accept ``track=`` (Python >= 3.13)?
_HAS_TRACK_KWARG = sys.version_info >= (3, 13)

#: serialises the register-swap on interpreters without ``track=``.
#: Attaches happen concurrently now — the warm worker pool
#: (:mod:`repro.service`) respawns workers and serves requests from
#: multiple dispatcher threads — so the process-global monkeypatch must
#: be mutually exclusive or two overlapping attaches race on the swap:
#: one leaves the no-op ``register`` installed forever (every later
#: *owned* segment leaks) while the other lets a registration slip
#: through (the coordinator's unlink then double-unregisters and
#: crashes the tracker thread).
_ATTACH_LOCK = threading.Lock()


def create_segment(size: int) -> shared_memory.SharedMemory:
    """Create (and own) a segment, safely concurrent with `_attach`.

    On Python < 3.13 an in-flight attach has the no-op ``register``
    installed; a creation racing that window would silently skip its
    tracker registration (the segment then survives a coordinator
    crash). Taking :data:`_ATTACH_LOCK` for the creation closes the
    window. Every coordinator-side segment creation that can overlap an
    attach in the same process — the warm pool's arena, the scan
    segments — must go through this helper.
    """
    if _HAS_TRACK_KWARG:
        return shared_memory.SharedMemory(create=True, size=size)
    with _ATTACH_LOCK:
        return shared_memory.SharedMemory(create=True, size=size)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without registering it with the
    resource tracker.

    Ownership stays with the creating coordinator: only it may unlink.
    Letting attachments register would have every worker announce the
    same segment name to the shared tracker — whichever unregister
    lands first wins and the rest crash the tracker thread. On
    Python >= 3.13 ``track=False`` says exactly that; older
    interpreters suppress registration for the duration of the attach,
    under :data:`_ATTACH_LOCK` so concurrent attaches (warm-pool
    respawns, multi-threaded dispatchers) cannot race on the swap.
    """
    if _HAS_TRACK_KWARG:
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def _apply_directives(directives: tuple, done: int) -> None:
    """Execute coordinator-issued fault directives at a batch position.

    Each directive is ``(kind, after_chunks, value)``; a directive
    fires when the worker has completed exactly ``after_chunks`` chunks
    of its batch — ``kill_worker`` dies with ``value`` as the exit
    code, ``delay_chunk`` sleeps ``value`` seconds (a straggler).
    """
    for kind, after, value in directives:
        if after != done:
            continue
        if kind == "delay_chunk":
            time.sleep(value)
        elif kind == "kill_worker":
            os._exit(int(value))


def _scan_chunks_shm(
    args: tuple[str, str, str, str, str, int, int, int, int, str, tuple,
                tuple],
) -> None:
    """Top-level worker (picklable for spawn contexts): scan a batch of
    chunks in place.

    Receives only shared-memory segment names and chunk coordinates;
    reads image rows from the shared image and writes provisional
    labels, equivalence slices, and used-label watermarks into the
    shared outputs. Nothing bulk crosses the process boundary. The
    used-watermark write happens strictly *after* a chunk's label rows
    and equivalence slice land, so the coordinator can treat a nonzero
    watermark as "chunk complete" when deciding what a respawned
    worker must redo.

    ``prof_name`` is the empty string unless the coordinator is
    tracing, in which case it names a ``(n_chunks, 2)`` float64 segment
    the worker fills with per-chunk ``perf_counter`` start/stop pairs —
    ``CLOCK_MONOTONIC`` is machine-wide on Linux, so the coordinator
    can line those readings up with its own spans.

    ``directives`` are the fault-injection triples of
    :func:`_apply_directives` (empty outside chaos runs).
    """
    (
        img_name,
        lab_name,
        p_name,
        used_name,
        prof_name,
        n_chunks,
        rows,
        cols,
        connectivity,
        engine,
        batch,
        directives,
    ) = args
    try:
        segs = [
            _attach(img_name),
            _attach(lab_name),
            _attach(p_name),
            _attach(used_name),
        ]
        prof = None
        if prof_name:
            segs.append(_attach(prof_name))
            prof = np.ndarray(
                (n_chunks, 2), dtype=np.float64, buffer=segs[-1].buf
            )
        img = np.ndarray((rows, cols), dtype=PIXEL_DTYPE, buffer=segs[0].buf)
        labels = np.ndarray(
            (rows, cols), dtype=LABEL_DTYPE, buffer=segs[1].buf
        )
        p = np.ndarray(
            rows * cols + 2, dtype=LABEL_DTYPE, buffer=segs[2].buf
        )
        used_arr = np.ndarray(n_chunks, dtype=np.int64, buffer=segs[3].buf)
        done = 0
        for chunk_index, row_start, row_stop, label_start in batch:
            if directives:
                _apply_directives(directives, done)
            t0 = time.perf_counter()
            chunk = img[row_start:row_stop]
            if engine == "interpreter":
                out, used, p_slice = _scan_chunk(
                    (chunk.tolist(), label_start, cols, connectivity)
                )
                labels[row_start:row_stop] = np.asarray(
                    out, dtype=LABEL_DTYPE
                ).reshape(row_stop - row_start, cols)
                p[label_start:used] = np.asarray(p_slice, dtype=LABEL_DTYPE)
            else:
                # paint straight into the shared label segment
                _, used, p_slice = chunk_kernel(engine)(
                    chunk,
                    label_start,
                    connectivity,
                    out=labels[row_start:row_stop],
                )
                p[label_start:used] = p_slice
            used_arr[chunk_index] = used
            if prof is not None:
                prof[chunk_index, 0] = t0
                prof[chunk_index, 1] = time.perf_counter()
            done += 1
        if directives:
            _apply_directives(directives, done)
        for seg in segs:
            seg.close()
    except BaseException:
        import traceback

        traceback.print_exc()
        sys.stderr.flush()
        os._exit(1)
    # skip interpreter finalisation: a forked child shares the parent's
    # whole heap copy-on-write, and a normal exit's teardown GC would
    # fault in (and so physically copy) a large fraction of those pages
    # just to decref them. Everything worth keeping is already in the
    # shared segments.
    os._exit(0)


def _release_segments(segments, keep) -> None:
    """Unlink every segment name and close every mapping except *keep*.

    Best-effort per segment: one failed unlink (already gone, racing
    cleanup) must not leak the rest.
    """
    for seg in segments:
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass
        if seg is not keep:
            try:
                seg.close()
            except OSError:  # pragma: no cover - defensive
                pass


class ProcessBackend:
    """Fork-per-chunk execution of the PAREMSP scan phase over shared
    memory, supervised for worker death and hangs.

    *resilience* configures the supervisor's retry/backoff/watchdog
    budgets (defaults to :data:`repro.faults.DEFAULT_RESILIENCE`);
    *fault_plan* overrides the ambient injection plan
    (:func:`repro.faults.get_fault_plan`, the disabled plan unless a
    chaos test installed one).
    """

    name = "processes"

    def __init__(self, resilience=None, fault_plan=None) -> None:
        self.resilience = (
            resilience if resilience is not None else DEFAULT_RESILIENCE
        )
        self._fault_plan = fault_plan

    def _plan(self):
        return (
            self._fault_plan
            if self._fault_plan is not None
            else get_fault_plan()
        )

    def _create_segment(
        self, size: int, plan, rec, attempt: int
    ) -> shared_memory.SharedMemory:
        """One shared-memory allocation, with the ``shm_fail`` site."""
        if plan.enabled:
            spec = plan.take("shm_fail", phase="alloc", attempt=attempt)
            if spec is not None:
                record_injection(rec, spec)
                raise OSError(
                    28, "injected shared_memory allocation failure"
                )
        return create_segment(size)

    def _allocate_segments(
        self, sizes: Sequence[int], plan, rec
    ) -> list[shared_memory.SharedMemory]:
        """Allocate every segment or none, retrying with backoff.

        A failed allocation (injected or a genuinely full ``/dev/shm``)
        unlinks whatever partial set was created, backs off, and
        retries up to ``alloc_retries`` times before surfacing a
        :class:`BackendError`.
        """
        config = self.resilience
        for attempt in range(config.alloc_retries + 1):
            segments: list[shared_memory.SharedMemory] = []
            try:
                for size in sizes:
                    segments.append(
                        self._create_segment(size, plan, rec, attempt)
                    )
                return segments
            except OSError as exc:
                _release_segments(segments, keep=None)
                if attempt >= config.alloc_retries:
                    raise BackendError(
                        "shared memory allocation failed after "
                        f"{attempt + 1} attempt(s): {exc}"
                    ) from exc
                if rec.enabled:
                    rec.count("shm.alloc_retries")
                    rec.count("retry.attempt")
                time.sleep(config.backoff(attempt + 1))
        raise AssertionError("unreachable")  # pragma: no cover

    def scan(
        self,
        img: np.ndarray,
        chunks: Sequence[RowChunk],
        connectivity: int,
        engine: str = "interpreter",
        recorder=None,
    ) -> tuple[np.ndarray, list[int], np.ndarray, dict]:
        rec = recorder if recorder is not None else NULL_RECORDER
        plan = self._plan()
        rows, cols = img.shape
        if len(chunks) <= 1:
            # one chunk: fork + shared-memory transport would be pure
            # overhead; run the same kernel in-process (no fault sites —
            # there is no worker to lose).
            return self._scan_inline(img, chunks, connectivity, engine, rec)
        n_chunks = len(chunks)
        sizes = [
            img.nbytes,
            rows * cols * _LABEL_ITEMSIZE,
            (rows * cols + 2) * _LABEL_ITEMSIZE,
            n_chunks * 8,
        ]
        if rec.enabled:
            sizes.append(n_chunks * 2 * 8)
        segments = self._allocate_segments(sizes, plan, rec)
        keep = None
        stats = {"attempts": 1, "respawned": 0}
        try:
            shm_img, shm_lab, shm_p, shm_used = segments[:4]
            shm_prof = segments[4] if rec.enabled else None
            if shm_prof is not None:
                np.ndarray(
                    (n_chunks, 2), dtype=np.float64, buffer=shm_prof.buf
                )[:] = 0.0
            np.ndarray(
                (rows, cols), dtype=PIXEL_DTYPE, buffer=shm_img.buf
            )[:] = img
            used_view = np.ndarray(
                n_chunks, dtype=np.int64, buffer=shm_used.buf
            )
            used_view[:] = 0
            if rec.enabled:
                rec.gauge(
                    "shm.bytes", float(sum(s.size for s in segments))
                )
                rec.count("shm.segments", len(segments))
            # one forked worker per core (not per chunk: oversubscribing
            # cores with processes buys nothing and each fork costs a
            # page-table copy), contiguous chunk batches per worker; no
            # pool, no queues, no result pickling — the shared segments
            # are the whole data plane. Chunk decomposition, label
            # ranges, and therefore results are worker-count independent.
            n_workers = min(n_chunks, os.cpu_count() or 1)
            batches: list[list[tuple[int, int, int, int]]] = [
                [] for _ in range(n_workers)
            ]
            for index, c in enumerate(chunks):
                batches[index % n_workers].append(
                    (index, c.row_start, c.row_stop, c.label_start)
                )
            ctx = multiprocessing.get_context(
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )

            def spawn(batch, directives):
                job = (
                    shm_img.name,
                    shm_lab.name,
                    shm_p.name,
                    shm_used.name,
                    shm_prof.name if shm_prof is not None else "",
                    n_chunks,
                    rows,
                    cols,
                    connectivity,
                    engine,
                    tuple(batch),
                    directives,
                )
                return ctx.Process(target=_scan_chunks_shm, args=(job,))

            def chunk_done(chunk) -> bool:
                # the worker writes a chunk's watermark (always > 0)
                # only after its labels and equivalence slice landed.
                return bool(used_view[chunk[0]] != 0)

            stats = supervise(
                batches,
                spawn,
                chunk_done,
                self.resilience,
                recorder=rec,
                fault_plan=plan,
                phase="scan",
            )
            used = used_view.tolist()
            if shm_prof is not None:
                prof = np.ndarray(
                    (n_chunks, 2), dtype=np.float64, buffer=shm_prof.buf
                )
                for i in range(n_chunks):
                    t0, t1 = float(prof[i, 0]), float(prof[i, 1])
                    if t1 > t0 > 0.0:
                        rec.add_span(f"thread {i}", "scan", t0, t1)
            # the provisional label plane is returned as a zero-copy view
            # of its segment: every segment is unlinked below (the POSIX
            # name goes away; the mapping survives until closed), and the
            # label mapping is closed by a finalizer once the view is
            # garbage-collected after the labeling gather.
            labels = np.ndarray(
                (rows, cols), dtype=LABEL_DTYPE, buffer=shm_lab.buf
            )
            p_shared = np.ndarray(
                rows * cols + 2, dtype=LABEL_DTYPE, buffer=shm_p.buf
            )
            # equivalence entries live only in each chunk's
            # ``[label_start, used)`` window; copy those windows, not the
            # dense prefix (which is dominated by untouched gap).
            p = np.zeros(max(used), dtype=LABEL_DTYPE)
            for c, u in zip(chunks, used):
                p[c.label_start : u] = p_shared[c.label_start : u]
            keep = shm_lab
        finally:
            # every exit path — success, typed failure, KeyboardInterrupt
            # — must leave /dev/shm clean: unlink every name, close every
            # mapping except the label plane we hand back as a view.
            _release_segments(segments, keep)
        weakref.finalize(labels, keep.close)
        return labels, used, p, {
            "transport": "shared_memory",
            "scan_attempts": stats["attempts"],
            "workers_respawned": stats["respawned"],
        }

    def _scan_inline(
        self,
        img: np.ndarray,
        chunks: Sequence[RowChunk],
        connectivity: int,
        engine: str,
        rec=NULL_RECORDER,
    ) -> tuple[np.ndarray, list[int], np.ndarray, dict]:
        rows, cols = img.shape
        (chunk,) = chunks
        t0 = time.perf_counter()
        if engine == "interpreter":
            out, used, p_slice = _scan_chunk(
                (img.tolist(), chunk.label_start, cols, connectivity)
            )
            labels = np.asarray(out, dtype=LABEL_DTYPE).reshape(rows, cols)
            p = np.zeros(used, dtype=LABEL_DTYPE)
            p[chunk.label_start : used] = np.asarray(
                p_slice, dtype=LABEL_DTYPE
            )
        else:
            labels, used, p_slice = chunk_kernel(engine)(
                img, chunk.label_start, connectivity
            )
            p = np.zeros(used, dtype=LABEL_DTYPE)
            p[chunk.label_start : used] = p_slice
        if rec.enabled:
            rec.add_span("thread 0", "scan", t0, time.perf_counter())
        return labels, [used], p, {"transport": "inline"}

    def boundary(
        self,
        label_source,
        chunks: Sequence[RowChunk],
        cols: int,
        p,
        connectivity: int,
        engine: str = "interpreter",
        recorder=None,
    ) -> dict:
        rec = recorder if recorder is not None else NULL_RECORDER
        plan = self._plan()
        if plan.enabled:
            # the coordinator-side merge takes no locks; a poisoned
            # "acquisition" models the whole merge batch failing, the
            # same contract as the threads backend's vectorised path.
            spec = plan.take("poison_lock", phase="merge")
            if spec is not None:
                record_injection(rec, spec)
                from ...errors import DeadlockError

                raise DeadlockError(
                    "injected poisoned boundary merge",
                    phase="merge",
                )
        if engine == "interpreter":
            ops = 0
            for row in boundary_rows(chunks):
                ops += merge_boundary_row(
                    label_source, row, cols, p, remsp_merge, connectivity
                )
        else:
            edges = boundary_edges(
                label_source, boundary_rows(chunks), connectivity
            )
            ops = merge_edges(p, edges)
        if rec.enabled:
            rec.count("processes.boundary_unions", ops)
        return {"boundary_unions": ops}
