"""Runtime telemetry: aggregator, /metrics server, SLOs, profiler, ids.

The live-observability layer (``repro.obs.runtime``) under test, plus
the two regression surfaces the PR carved out of the service:

* the :class:`LabelService` must publish its latency gauges and rolling
  windows **incrementally** (a mid-run scrape reads live values, not a
  drain-time flush), and
* a single request id minted at admission must stitch the ``frontend``
  lane to the ``worker N`` lanes across the fork boundary — and that
  multi-lane trace must survive a chrome-export round trip losslessly.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.faults import ResilienceConfig
from repro.obs import TraceRecorder, use_recorder
from repro.obs.chrome import read_chrome_trace, write_chrome_trace
from repro.obs.runtime import (
    SLO,
    MetricsServer,
    RollingWindow,
    RuntimeAggregator,
    SamplingProfiler,
    SLOMonitor,
    current_request_id,
    degradation_trigger,
    load_slos,
    new_request_id,
    parse_prometheus_text,
    prom_name,
    request_context,
    serve_service_metrics,
)
from repro.service import LabelService, ServiceConfig

FAST = ResilienceConfig(
    max_retries=2, backoff_base=0.01, backoff_factor=2.0,
    backoff_max=0.05, phase_timeout=60.0,
)


def _rand_images(seed, n, shape=(32, 32), density=0.45):
    rng = np.random.default_rng(seed)
    return [
        (rng.random(shape) < density).astype(np.uint8) for _ in range(n)
    ]


def _get(url: str) -> tuple[int, str]:
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, resp.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


# ---------------------------------------------------------------------------
# RollingWindow / RuntimeAggregator


class TestRollingWindow:
    def test_quantiles_and_count(self):
        win = RollingWindow(window_seconds=60.0)
        for v in (1.0, 2.0, 3.0, 4.0):
            win.observe(v)
        assert win.count == 4
        assert win.quantile(0.0) == 1.0
        assert win.quantile(1.0) == 4.0
        assert win.quantile(0.5) in (2.0, 3.0)

    def test_old_samples_evicted(self):
        win = RollingWindow(window_seconds=10.0)
        win.observe(1.0, now=0.0)
        win.observe(2.0, now=5.0)
        win.observe(3.0, now=50.0)  # evicts both earlier samples
        assert win.values(now=50.0) == [3.0]

    def test_empty_window_quantile_is_zero(self):
        assert RollingWindow().quantile(0.99) == 0.0

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            RollingWindow(window_seconds=0.0)


class TestRuntimeAggregator:
    def test_counters_sum_and_labelled_series(self):
        agg = RuntimeAggregator()
        agg.inc("service.rejected", labels={"reason": "overload"})
        agg.inc("service.rejected", 2, labels={"reason": "quota"})
        assert agg.counter_value("service.rejected") == 3
        assert agg.counter_value(
            "service.rejected", labels={"reason": "quota"}
        ) == 2
        assert agg.counter_value("service.rejected", labels={}) == 0

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            RuntimeAggregator().inc("x", -1)

    def test_gauges(self):
        agg = RuntimeAggregator()
        assert not agg.has_gauge("service.queue_depth")
        agg.set_gauge("service.queue_depth", 7)
        assert agg.has_gauge("service.queue_depth")
        assert agg.gauge_value("service.queue_depth") == 7.0
        assert agg.gauge_value("absent", default=-1.0) == -1.0

    def test_windows_and_quantile(self):
        agg = RuntimeAggregator()
        for v in range(10):
            agg.observe("service.latency_ms", float(v))
        assert agg.window("service.latency_ms").count == 10
        assert agg.quantile("service.latency_ms", 1.0) == 9.0
        assert agg.quantile("absent", 0.5) == 0.0

    def test_snapshot_shape(self):
        agg = RuntimeAggregator()
        agg.inc("a.b", labels={"k": "v"})
        agg.set_gauge("g", 1.5)
        agg.observe("w", 2.0)
        snap = agg.snapshot()
        assert snap["counters"]["a.b"] == {'{k="v"}': 1}
        assert snap["gauges"]["g"] == {"": 1.5}
        assert snap["windows"]["w"]["count"] == 1
        assert snap["windows"]["w"]["sum"] == 2.0

    def test_prom_name_sanitisation(self):
        assert prom_name("service.latency_ms") == "service_latency_ms"
        assert prom_name("9lives") == "_9lives"


class TestPrometheusExposition:
    def test_render_parse_round_trip(self):
        agg = RuntimeAggregator()
        agg.inc("service.requests", 5)
        agg.inc("slo.breaches", 2, labels={"slo": "p99"})
        agg.set_gauge("service.queue_depth", 3)
        for v in (1.0, 2.0, 3.0, 4.0):
            agg.observe("service.latency_ms", v)
        parsed = parse_prometheus_text(agg.render_prometheus())
        assert parsed["service_requests_total"][""] == 5.0
        assert parsed["slo_breaches_total"]['{slo="p99"}'] == 2.0
        assert parsed["service_queue_depth"][""] == 3.0
        lat = parsed["service_latency_ms"]
        assert lat['{quantile="0.99"}'] == 4.0
        assert parsed["service_latency_ms_count"][""] == 4.0
        assert parsed["service_latency_ms_sum"][""] == 10.0

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("metric_without_value\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("m{unterminated 1\n")
        with pytest.raises(ValueError):
            parse_prometheus_text("bad-name 1\n")


# ---------------------------------------------------------------------------
# MetricsServer


class TestMetricsServer:
    def test_metrics_healthz_readyz(self):
        agg = RuntimeAggregator()
        agg.inc("demo.requests")
        ready = threading.Event()
        ready.set()
        with MetricsServer(agg, ready_check=ready.is_set) as srv:
            status, body = _get(srv.url + "/metrics")
            assert status == 200
            assert parse_prometheus_text(body)[
                "demo_requests_total"][""] == 1.0
            status, body = _get(srv.url + "/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert "demo.requests" in payload["metrics"]["counters"]
            assert _get(srv.url + "/readyz")[0] == 200
            ready.clear()
            assert _get(srv.url + "/readyz")[0] == 503
            assert _get(srv.url + "/nope")[0] == 404

    def test_collect_hooks_refresh_before_scrape(self):
        agg = RuntimeAggregator()
        with MetricsServer(
            agg,
            collect=(lambda: agg.set_gauge("fresh.gauge", 42.0),),
        ) as srv:
            parsed = parse_prometheus_text(_get(srv.url + "/metrics")[1])
        assert parsed["fresh_gauge"][""] == 42.0

    def test_close_idempotent(self):
        srv = MetricsServer(RuntimeAggregator())
        srv.close()
        srv.close()


# ---------------------------------------------------------------------------
# SLOs


class TestSLO:
    def test_load_slos_from_json_text(self):
        slos = load_slos(
            '[{"name": "p99", "metric": "service.latency_ms",'
            ' "quantile": 0.99, "max_value": 50.0}]'
        )
        assert slos == [
            SLO("p99", "service.latency_ms", 50.0, quantile=0.99)
        ]

    def test_from_dict_missing_key(self):
        with pytest.raises(ValueError, match="max_value"):
            SLO.from_dict({"name": "x", "metric": "m"})

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("bad", "m", 1.0, quantile=1.5)
        with pytest.raises(ValueError):
            SLO("bad", "m", 1.0, min_samples=0)

    def test_gauge_breach_counts_and_hooks(self):
        agg = RuntimeAggregator()
        rec = TraceRecorder()
        seen = []
        mon = SLOMonitor(
            [SLO("shallow-queue", "service.queue_depth", 4.0)],
            agg, recorder=rec, on_breach=(seen.append,),
        )
        agg.set_gauge("service.queue_depth", 9)
        breaches = mon.evaluate()
        assert [b.slo.name for b in breaches] == ["shallow-queue"]
        assert "9" in breaches[0].describe()
        assert agg.counter_value(
            "slo.breaches", labels={"slo": "shallow-queue"}
        ) == 1
        counters = rec.metrics.as_dict()["counters"]
        assert counters["slo.breach"] == 1
        assert seen[0].observed == 9.0
        # back under the objective: no new breach
        agg.set_gauge("service.queue_depth", 1)
        assert mon.evaluate() == []

    def test_quantile_slo_respects_min_samples(self):
        agg = RuntimeAggregator()
        mon = SLOMonitor(
            [SLO("p50", "lat", 1.0, quantile=0.5, min_samples=3)], agg
        )
        agg.observe("lat", 100.0)
        assert mon.evaluate() == []  # 1 sample < min_samples
        agg.observe("lat", 100.0)
        agg.observe("lat", 100.0)
        assert len(mon.evaluate()) == 1

    def test_counter_slo_when_no_gauge(self):
        agg = RuntimeAggregator()
        mon = SLOMonitor([SLO("respawns", "pool.respawns", 0.0)], agg)
        assert mon.evaluate() == []
        agg.inc("pool.respawns")
        assert len(mon.evaluate()) == 1

    def test_background_evaluation_thread(self):
        agg = RuntimeAggregator()
        agg.set_gauge("depth", 10)
        mon = SLOMonitor([SLO("depth", "depth", 1.0)], agg)
        with mon.start(interval=0.01):
            deadline = time.monotonic() + 5.0
            while (agg.counter_value("slo.breaches") == 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
        assert agg.counter_value("slo.breaches") >= 1

    def test_degradation_trigger_forces_rung(self):
        calls = []

        class FakeService:
            def force_degraded(self, rung):
                calls.append(rung)

        agg = RuntimeAggregator()
        agg.set_gauge("depth", 10)
        mon = SLOMonitor(
            [SLO("depth", "depth", 1.0)], agg,
            on_breach=(degradation_trigger(FakeService(), "serial"),),
        )
        mon.evaluate()
        assert calls == ["serial"]


# ---------------------------------------------------------------------------
# SamplingProfiler


def _busy(stop: threading.Event) -> None:
    while not stop.is_set():
        sum(i * i for i in range(5000))


class TestSamplingProfiler:
    def test_samples_running_threads(self, tmp_path):
        stop = threading.Event()
        t = threading.Thread(target=_busy, args=(stop,), daemon=True)
        t.start()
        prof = SamplingProfiler(interval=0.002)
        try:
            with prof:
                time.sleep(0.15)
        finally:
            stop.set()
            t.join()
        assert prof.sample_count > 0
        lines = prof.collapsed()
        assert lines
        # collapsed format: phase;frame;...;frame count
        assert all(line.rsplit(" ", 1)[1].isdigit() for line in lines)
        assert any("_busy" in line for line in lines)
        out = tmp_path / "profile.txt"
        prof.write_collapsed(out)
        assert out.read_text().splitlines() == lines

    def test_phase_attribution(self):
        rec = TraceRecorder()
        stop = threading.Event()

        def work():
            with use_recorder(rec):
                with rec.span("scanphase"):
                    while not stop.is_set():
                        sum(i * i for i in range(5000))

        t = threading.Thread(target=work, daemon=True)
        prof = SamplingProfiler(interval=0.002)
        with prof:
            t.start()
            time.sleep(0.15)
            stop.set()
            t.join()
        phases = prof.phase_seconds()
        assert any(p == "scanphase" for p in phases)

    def test_start_stop_idempotent_and_restartable(self):
        prof = SamplingProfiler(interval=0.005)
        assert not prof.attached
        prof.start()
        prof.start()  # no-op
        assert prof.attached
        prof.stop()
        prof.stop()  # no-op
        assert not prof.attached
        # restart accumulates into the same counters
        with prof:
            assert prof.attached
        assert not prof.attached

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval=0.0)


# ---------------------------------------------------------------------------
# Request ids


class TestRequestContext:
    def test_ids_unique_and_greppable(self):
        a, b = new_request_id(), new_request_id()
        assert a != b
        assert "-" in a

    def test_context_scopes_ambient_id(self):
        assert current_request_id() is None
        with request_context("abc-000001") as rid:
            assert current_request_id() == rid == "abc-000001"
        assert current_request_id() is None

    def test_add_span_injects_ambient_id(self):
        rec = TraceRecorder()
        with request_context("abc-000042"):
            rec.add_span("lane", "phase", 0.0, 1.0)
            rec.add_span("lane", "phase", 0.0, 1.0,
                         attrs={"request_id": "explicit"})
        rec.add_span("lane", "phase", 0.0, 1.0)
        rids = [
            (s.attrs or {}).get("request_id") for s in rec.spans
        ]
        assert rids == ["abc-000042", "explicit", None]


# ---------------------------------------------------------------------------
# Service integration: incremental publication + stitched chrome trace


class TestServiceRuntimeTelemetry:
    def test_latency_gauges_publish_incrementally(self):
        """Regression: gauges/windows must be live mid-run, not only
        flushed at drain."""
        imgs = _rand_images(3, 6)
        svc = LabelService(
            ServiceConfig(workers=2, batch_size=2), resilience=FAST,
        )
        try:
            futures = [svc.submit(img) for img in imgs]
            for f in futures:
                f.result(timeout=30.0)
            # still running — nothing has drained yet
            assert svc.state == "running"
            agg = svc.runtime
            assert agg.counter_value("service.requests") == len(imgs)
            assert agg.counter_value("service.batches") >= 1
            assert agg.window("service.latency_ms").count == len(imgs)
            for g in ("service.latency_p50_ms",
                      "service.latency_p95_ms",
                      "service.latency_p99_ms"):
                assert agg.has_gauge(g), f"{g} not published mid-run"
                assert agg.gauge_value(g) > 0.0
            svc.publish_runtime()
            assert agg.has_gauge("service.queue_depth")
            assert agg.has_gauge("service.inflight")
        finally:
            svc.drain()

    def test_serve_service_metrics_readiness_flips_at_drain(self):
        svc = LabelService(ServiceConfig(workers=1), resilience=FAST)
        srv = serve_service_metrics(svc)
        try:
            svc.label(_rand_images(4, 1)[0])
            assert _get(srv.url + "/readyz")[0] == 200
            parsed = parse_prometheus_text(_get(srv.url + "/metrics")[1])
            assert parsed["service_requests_total"][""] == 1.0
            assert "service_queue_depth" in parsed
            svc.drain()
            assert _get(srv.url + "/readyz")[0] == 503
        finally:
            svc.drain()
            srv.close()

    def test_forced_degradation_runs_inline_and_counts(self):
        imgs = _rand_images(5, 2)
        rec = TraceRecorder()
        with use_recorder(rec):
            svc = LabelService(
                ServiceConfig(workers=1), resilience=FAST,
            )
            try:
                svc.force_degraded("serial")
                svc.force_degraded("serial")  # idempotent per rung
                with pytest.raises(ValueError):
                    svc.force_degraded("processes")
                for img in imgs:
                    svc.label(img)
                agg = svc.runtime
                assert agg.counter_value(
                    "service.degrade.forced", labels={"rung": "serial"}
                ) == 1
                assert agg.counter_value(
                    "service.degraded_batches", labels={"rung": "serial"}
                ) >= 1
                svc.clear_degraded()
                svc.label(imgs[0])
            finally:
                svc.drain()
        degraded = [
            s for s in rec.spans
            if s.phase == "service.request"
            and (s.attrs or {}).get("degraded_to") == "serial"
        ]
        assert len(degraded) == len(imgs)

    def test_request_id_stitches_lanes_through_chrome_round_trip(
        self, tmp_path
    ):
        """One trace, many processes: frontend + >=2 worker lanes share
        request ids and survive the chrome export losslessly."""
        imgs = _rand_images(6, 12)
        rec = TraceRecorder()
        with use_recorder(rec):
            with LabelService(
                ServiceConfig(workers=2, batch_size=2),
                resilience=FAST,
            ) as svc:
                futures = [svc.submit(img) for img in imgs]
                for f in futures:
                    f.result(timeout=30.0)
        spans = rec.spans
        lanes = {s.lane for s in spans}
        assert "frontend" in lanes
        worker_lanes = {l for l in lanes if l.startswith("worker ")}
        assert len(worker_lanes) >= 2, f"lanes: {sorted(lanes)}"

        def rids(span_iter, lane_pred):
            return {
                (s.attrs or {}).get("request_id")
                for s in span_iter
                if lane_pred(s.lane)
                and (s.attrs or {}).get("request_id")
            }

        front = rids(spans, lambda l: l == "frontend")
        workers = rids(spans, lambda l: l.startswith("worker "))
        assert front, "frontend spans carry no request ids"
        assert front & workers, "no request id stitched across the fork"

        # chrome round trip is lossless: same lanes, phases, attrs
        path = tmp_path / "trace.chrome.json"
        write_chrome_trace(spans, path)
        back, _metrics = read_chrome_trace(path)
        def shape(span_iter):
            return sorted(
                (s.lane, s.phase, s.depth,
                 json.dumps(s.attrs or {}, sort_keys=True))
                for s in span_iter
            )

        orig = shape(spans)
        round_tripped = shape(back)
        assert round_tripped == orig
        assert rids(back, lambda l: l == "frontend") == front
        assert rids(back, lambda l: l.startswith("worker ")) == workers

        # worker request spans carry engine + pid provenance, and the
        # engine phase sub-spans nest inside them at depth 1
        wreq = [
            s for s in back
            if s.lane.startswith("worker ") and s.phase == "request"
        ]
        assert wreq
        assert all((s.attrs or {}).get("pid") for s in wreq)
        subphases = {
            s.phase for s in back
            if s.lane.startswith("worker ") and s.depth == 1
        }
        assert {"scan", "label"} <= subphases
