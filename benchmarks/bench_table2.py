"""Table II benches: the four sequential algorithms on every suite.

``pytest benchmarks/bench_table2.py --benchmark-only`` times each
(algorithm, suite) cell on the suite's largest stand-in image — the
kernel-level version of Table II. ``test_table2_report`` regenerates and
prints the full min/avg/max table via the experiment driver.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments.table2 import run_table2
from repro.ccl.registry import SEQUENTIAL_TABLE2, get_algorithm

SUITES = ("aerial", "texture", "misc", "nlcd")


@pytest.mark.parametrize("suite", SUITES)
@pytest.mark.parametrize("algorithm", SEQUENTIAL_TABLE2)
def test_sequential_algorithm(benchmark, representative_images, suite, algorithm):
    image = representative_images[suite].info.image
    fn = get_algorithm(algorithm)
    result = benchmark(fn, image, 8)
    assert result.n_components > 0


def test_table2_report(capsys):
    """Regenerate and print the whole Table II."""
    report = run_table2(scale=0.03)
    with capsys.disabled():
        print("\n" + report.render())
    # the REMSP-over-LRPC swap must win in aggregate (paper's core claim)
    summary = report.data["summary"]
    assert sum(s["cclremsp"].avg for s in summary.values()) < sum(
        s["ccllrpc"].avg for s in summary.values()
    )
