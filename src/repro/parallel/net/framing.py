"""Framed message protocol: length-prefix + CRC32 + per-peer sequence.

The wire unit is a **frame**::

    MAGIC(4) | seq(8, unsigned big-endian) | length(4) | crc32(4) | payload

``seq`` is a monotonic per-(peer, channel) sequence number assigned by
the sender; ``crc32`` covers the payload bytes only. The header is
deliberately self-describing enough to distinguish the two corruption
regimes the transport must survive:

* a **payload** whose CRC does not match its header — the header framed
  the bad bytes correctly, so the receiver rejects *just this frame*
  (:class:`~repro.errors.FrameCorruptError` with ``fatal=False``) and
  the stream stays usable: the sender retries the same ``seq``;
* a **header** that is not the protocol's (bad magic, absurd length) —
  the stream is desynchronised and the only safe move is to tear the
  connection down (``fatal=True``) and let reconnect re-frame it.

Delivery is **at-least-once**: a sender that saw no reply resends the
same frame (same ``seq``) on a fresh connection, and a flaky link may
duplicate frames outright (the ``dup_msg`` fault). Receivers therefore
dedup with a :class:`ReplayCache` keyed by ``(peer, seq)``: the first
delivery executes and caches its reply, every later delivery of the
same key returns the cached reply without re-executing — which is what
makes retries safe for non-idempotent handlers and free for idempotent
ones.

Payloads are JSON objects (the transport moves *control* messages;
bulk data stays on the shared filesystem — see docs/SHARDED.md).
"""

from __future__ import annotations

import collections
import json
import struct
import threading
import zlib

from ...errors import FrameCorruptError, FrameTruncatedError

__all__ = [
    "MAGIC",
    "HEADER",
    "MAX_FRAME_PAYLOAD",
    "encode_frame",
    "decode_header",
    "read_frame",
    "recv_exact",
    "dumps_payload",
    "loads_payload",
    "ReplayCache",
]

#: protocol magic, bumped with any incompatible layout change.
MAGIC = b"RPN1"

#: header layout: magic, seq, payload length, payload crc32.
HEADER = struct.Struct("!4sQII")

#: sanity bound on a frame payload (control messages are tiny; a
#: multi-megabyte "length" is a desynchronised or hostile stream).
MAX_FRAME_PAYLOAD = 16 * 1024 * 1024


def dumps_payload(obj: dict) -> bytes:
    """Encode a JSON control message for the wire."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def loads_payload(data: bytes) -> dict:
    """Decode a wire payload back into its JSON object."""
    return json.loads(data.decode("utf-8"))


def encode_frame(seq: int, payload: bytes) -> bytes:
    """One wire frame for *payload* with sequence number *seq*."""
    if seq < 0:
        raise ValueError(f"seq must be >= 0, got {seq}")
    if len(payload) > MAX_FRAME_PAYLOAD:
        raise ValueError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_PAYLOAD}-byte frame bound"
        )
    return (
        HEADER.pack(MAGIC, seq, len(payload), zlib.crc32(payload)) + payload
    )


def decode_header(header: bytes) -> tuple[int, int, int]:
    """Validate a header; returns ``(seq, length, crc)``.

    Raises :class:`FrameCorruptError` with ``fatal=True`` on a bad
    magic or an out-of-bounds length — both mean the byte stream is no
    longer frame-aligned and the connection must be dropped.
    """
    magic, seq, length, crc = HEADER.unpack(header)
    if magic != MAGIC:
        raise FrameCorruptError(
            f"bad frame magic {magic!r} (stream desynchronised)", fatal=True
        )
    if length > MAX_FRAME_PAYLOAD:
        raise FrameCorruptError(
            f"frame length {length} exceeds the {MAX_FRAME_PAYLOAD}-byte "
            "bound (stream desynchronised)",
            seq=seq,
            fatal=True,
        )
    return seq, length, crc


def recv_exact(sock, n: int) -> bytes:
    """Read exactly *n* bytes from *sock* or raise
    :class:`FrameTruncatedError` (the peer died / the link was cut)."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            raise FrameTruncatedError(
                f"stream ended after {got} of {n} bytes", wanted=n, got=got
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def read_frame(sock) -> tuple[int, bytes]:
    """Read one complete frame; returns ``(seq, payload)``.

    Integrity failures are typed: a truncated stream raises
    :class:`FrameTruncatedError`; a corrupt payload raises
    :class:`FrameCorruptError` with ``fatal=False`` (the frame was
    delimited correctly — skip it, keep the stream); a corrupt header
    raises with ``fatal=True`` (drop the connection).
    """
    seq, length, crc = decode_header(recv_exact(sock, HEADER.size))
    payload = recv_exact(sock, length)
    if zlib.crc32(payload) != crc:
        raise FrameCorruptError(
            f"payload CRC mismatch on frame seq={seq}", seq=seq, fatal=False
        )
    return seq, payload


class ReplayCache:
    """At-least-once dedup: remember each ``(peer, seq)``'s reply.

    ``start(peer, seq)`` returns either ``("new", event)`` — the caller
    owns execution and must finish with :meth:`done` — or
    ``("wait", event)`` — another delivery of the same key is executing
    right now; wait on the event then :meth:`get` the reply — or
    ``("cached", reply)`` — the key already completed. The in-progress
    path matters for slow handlers: a retry arriving *while* the first
    delivery is still executing must not run the handler a second time
    concurrently.

    Bounded: the oldest completed entries are evicted beyond
    *capacity* per peer (sequence numbers are monotonic per peer, so an
    evicted entry can only be hit by a pathologically late duplicate —
    which then re-executes, safe for idempotent handlers).
    """

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._done: dict[str, collections.OrderedDict] = {}
        self._inflight: dict[tuple[str, int], threading.Event] = {}
        #: duplicate deliveries answered from cache (or a wait).
        self.deduped = 0

    def start(self, peer: str, seq: int):
        with self._lock:
            per_peer = self._done.setdefault(peer, collections.OrderedDict())
            if seq in per_peer:
                self.deduped += 1
                return "cached", per_peer[seq]
            key = (peer, seq)
            event = self._inflight.get(key)
            if event is not None:
                self.deduped += 1
                return "wait", event
            event = threading.Event()
            self._inflight[key] = event
            return "new", event

    def done(self, peer: str, seq: int, reply: dict) -> None:
        with self._lock:
            per_peer = self._done.setdefault(peer, collections.OrderedDict())
            per_peer[seq] = reply
            while len(per_peer) > self.capacity:
                per_peer.popitem(last=False)
            event = self._inflight.pop((peer, seq), None)
        if event is not None:
            event.set()

    def get(self, peer: str, seq: int) -> dict | None:
        with self._lock:
            per_peer = self._done.get(peer)
            if per_peer is None:
                return None
            return per_peer.get(seq)
