"""Iterative label-equivalence CCL — whole-array min propagation.

The second speed regime ROADMAP item 2 asks for: no Python-level
per-pixel loop at all, following the iterative label-equivalence family
(Komura-style optimized union-find on GPUs, arXiv:1708.08180, and the
classic SIMD propagation kernels it descends from). Every foreground
pixel starts with a unique label (its linear index + 1) and the image
iterates a *run-aware* neighbourhood-min operator to a fixed point:

1. **row sweep** — every horizontal run of foreground pixels collapses
   to the run's minimum (one ``minimum.reduceat`` + gather, so a label
   crosses an arbitrarily long run in a single step, where the naive
   Jacobi kernel of :func:`repro.ccl.multipass.propagation_vectorized`
   needs one step per pixel);
2. **column sweep** — the same operator down columns;
3. **diagonal step** (8-connectivity only) — ``np.minimum`` against the
   four diagonal shifts, which is all that remains once rows and
   columns propagate in full.

Run segmentation depends only on the (fixed) foreground mask, so both
axes' segment indexes are computed once and every sweep is a handful of
whole-array ``reduceat``/gather/minimum passes.

Labels are nonincreasing and bounded below, so a fixed point exists;
each non-final sweep grows every component's minimum-label region by at
least one pixel, giving the termination bound ``iterations <=
max-component-size + 1 <= foreground-pixels + 1`` that the property
tests assert. At the fixed point each pixel holds its component's
minimal initial label — the raster-first linear index — so final
numbering falls out of one ``unique`` + ``searchsorted`` instead of a
union-find.

The regime where this engine wins (see ``make bench-density`` /
``docs/ALGORITHMS.md``): images whose components span long rows or
columns but fragment into *many short horizontal runs* — thin vertical
structure, dense stripe/ridge fields — where the run-based engine pays
per run and per overlap edge while this kernel converges in two or
three sweeps. Its worst case is serpentine/diagonal structure
(labels cross one bend per sweep), which the coarse-to-fine variant
(:mod:`repro.ccl.coarse2fine`) exists to contain.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConnectivityError
from ..obs import PhaseTimer, get_recorder
from ..types import LABEL_DTYPE, as_binary_image
from .labeling import CCLResult, check_label_capacity

__all__ = ["itequiv", "iteration_bound", "sweep_once"]

#: sentinel larger than any real label (labels are linear indexes + 1,
#: capped by check_label_capacity to fit LABEL_DTYPE).
_BIG = np.iinfo(LABEL_DTYPE).max


def _segments(fg_last_axis: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run segmentation along the last axis of boolean *fg_last_axis*.

    Returns ``(starts, ids)`` over the flattened array: *starts* are the
    flat indexes where a foreground run begins (position 0 of every row
    is always a run start, so ``reduceat`` segments never cross rows)
    and *ids* maps every flat position to its run (background positions
    carry their predecessor's id and are masked by callers).
    """
    last = fg_last_axis.shape[-1]
    flat_fg = fg_last_axis.reshape(-1, last)
    starts2d = flat_fg.copy()
    if last > 1:
        starts2d[:, 1:] &= ~flat_fg[:, :-1]
    starts = np.flatnonzero(starts2d.ravel())
    # run count <= pixel count, which check_label_capacity already
    # bounds to int32 range, so int32 ids keep the gather cheap.
    ids = np.cumsum(starts2d.ravel(), dtype=np.int32) - 1
    np.maximum(ids, 0, out=ids)
    return starts, ids


def _run_min(
    work_flat: np.ndarray,
    fg_flat: np.ndarray,
    starts: np.ndarray,
    ids: np.ndarray,
) -> np.ndarray:
    """Collapse every run to its min: one ``reduceat`` + one gather."""
    if starts.size == 0:
        return work_flat
    run_min = np.minimum.reduceat(work_flat, starts)
    return np.where(fg_flat, run_min[ids], _BIG)


class _SweepPlan:
    """Per-image precomputation shared by every sweep iteration."""

    def __init__(self, fg: np.ndarray) -> None:
        self.fg = fg
        self.fg_flat = fg.ravel()
        self.fg_t = np.ascontiguousarray(fg.T)
        self.fg_t_flat = self.fg_t.ravel()
        self.row_starts, self.row_ids = _segments(fg)
        self.col_starts, self.col_ids = _segments(self.fg_t)

    def sweep(self, work: np.ndarray, connectivity: int) -> np.ndarray:
        rows, cols = work.shape
        flat = _run_min(work.ravel(), self.fg_flat, self.row_starts,
                        self.row_ids)
        work_t = np.ascontiguousarray(flat.reshape(rows, cols).T)
        flat_t = _run_min(work_t.ravel(), self.fg_t_flat, self.col_starts,
                          self.col_ids)
        work = np.ascontiguousarray(flat_t.reshape(cols, rows).T)
        if connectivity == 8 and rows > 1 and cols > 1:
            out = work.copy()
            np.minimum(out[1:, 1:], work[:-1, :-1], out=out[1:, 1:])
            np.minimum(out[1:, :-1], work[:-1, 1:], out=out[1:, :-1])
            np.minimum(out[:-1, 1:], work[1:, :-1], out=out[:-1, 1:])
            np.minimum(out[:-1, :-1], work[1:, 1:], out=out[:-1, :-1])
            work = np.where(self.fg, out, LABEL_DTYPE(_BIG))
        return work


def sweep_once(work: np.ndarray, fg: np.ndarray, connectivity: int) -> np.ndarray:
    """One full propagation sweep (row run-min, column run-min, diagonal
    steps). Exposed for the fixed-point property tests: the engine's
    output is exactly the *work* array for which ``sweep_once`` is the
    identity."""
    return _SweepPlan(fg).sweep(work, connectivity)


def iteration_bound(img: np.ndarray) -> int:
    """Upper bound on the sweeps :func:`itequiv` may take on *img*.

    Each non-final sweep grows every component's minimum-label region by
    at least one pixel (the region's boundary always has a foreground
    neighbour inside the component, and row/column run-min reaches it),
    so the fixed point arrives within max-component-size sweeps; one
    extra sweep detects it. Foreground pixel count bounds component size
    without labeling anything.
    """
    return int(np.asarray(img, dtype=bool).sum()) + 1


def _renumber(
    work: np.ndarray, fg: np.ndarray, init: np.ndarray
) -> tuple[np.ndarray, int]:
    """Fixed-point labels → canonical 1..K finals, no sort needed.

    At the fixed point each pixel carries its component's minimal
    initial label = the component's raster-first linear index + 1, so
    ascending label order *is* raster first-appearance order. Better
    still, a pixel is its component's representative exactly when it
    kept its own initial label (background holds ``_BIG`` and can never
    match), so scanning for ``work == init`` yields the representatives
    in raster order and a direct lookup table renumbers in one gather —
    no ``unique`` sort over the full image.
    """
    reps = np.flatnonzero(work.ravel() == init.ravel())
    n = int(reps.size)
    lut = np.zeros(work.size + 1, dtype=LABEL_DTYPE)
    lut[reps + 1] = np.arange(1, n + 1, dtype=LABEL_DTYPE)
    lab = np.where(fg, work, 0)
    labels = lut[lab]
    return labels, n


def itequiv(image: np.ndarray, connectivity: int = 8) -> CCLResult:
    """Label *image* by iterative run-aware min-label propagation.

    >>> import numpy as np
    >>> int(itequiv(np.eye(4, dtype=np.uint8)).n_components)
    1
    """
    if connectivity not in (4, 8):
        raise ConnectivityError(
            f"connectivity must be 4 or 8, got {connectivity!r}"
        )
    img = as_binary_image(image)
    rows, cols = img.shape
    check_label_capacity((rows, cols))
    fg = img != 0

    rec = get_recorder()
    mark = rec.mark()
    timer = PhaseTimer(rec)
    iterations = 0
    with timer.time("scan"):
        init = np.arange(1, rows * cols + 1, dtype=LABEL_DTYPE).reshape(
            rows, cols
        )
        work = np.where(fg, init, LABEL_DTYPE(_BIG))
        if fg.any():
            plan = _SweepPlan(fg)
            while True:
                nxt = plan.sweep(work, connectivity)
                iterations += 1
                if np.array_equal(nxt, work):
                    break
                work = nxt
    with timer.time("label"):
        labels, n = _renumber(work, fg, init)
    timer.seconds.setdefault("flatten", 0.0)
    if rec.enabled:
        rec.gauge("itequiv.iterations", float(iterations))
    return CCLResult(
        labels=labels,
        n_components=n,
        provisional_count=int(fg.sum()),
        phase_seconds=timer.seconds,
        algorithm="itequiv",
        meta={"iterations": iterations, "bound": iteration_bound(img)},
        timings=rec.report(since=mark) if rec.enabled else None,
    )
