"""Forward scan masks (Figure 1 of the paper) and padded-row helpers.

Both scan strategies only ever look at pixels that precede the current
position in scan order, so a single forward pass can assign provisional
labels::

    Fig 1a (CCLREMSP / CCLLRPC)      Fig 1b (AREMSP / ARUN)

        a  b  c                          a  b  c
        d  e                             d  e
                                         f  g

``e`` is the current pixel; in the two-row mask ``e`` and ``g`` (the pixel
directly below) are labeled *together*, halving the number of row
traversals. Offsets relative to ``e = (r, c)``:

=======  ==========  ==============================
Pixel    Offset      Role
=======  ==========  ==============================
``a``    (-1, -1)    upper-left
``b``    (-1,  0)    upper
``c``    (-1, +1)    upper-right
``d``    ( 0, -1)    left
``f``    (+1, -1)    lower-left (two-row mask only)
``g``    (+1,  0)    lower (second current pixel)
=======  ==========  ==============================

The interpreter-engine scans avoid per-pixel bounds checks by operating
on rows padded with one background sentinel column on each side
(:func:`pad_rows`); column index ``c`` in the padded row corresponds to
image column ``c - 1``.
"""

from __future__ import annotations

from typing import Sequence

__all__ = [
    "MASK_OFFSETS",
    "pad_rows",
    "zeros_row",
    "strip_padding",
]

#: name -> (dr, dc) offset from the current pixel ``e``.
MASK_OFFSETS = {
    "a": (-1, -1),
    "b": (-1, 0),
    "c": (-1, 1),
    "d": (0, -1),
    "e": (0, 0),
    "f": (1, -1),
    "g": (1, 0),
}


def pad_rows(rows: Sequence[Sequence[int]]) -> list[list[int]]:
    """Return copies of *rows* with a 0 sentinel prepended and appended."""
    return [[0, *row, 0] for row in rows]


def zeros_row(cols: int) -> list[int]:
    """A padded all-background row (used as the virtual row above row 0)."""
    return [0] * (cols + 2)


def strip_padding(rows: Sequence[Sequence[int]], cols: int) -> list[list[int]]:
    """Inverse of :func:`pad_rows` for label rows."""
    return [list(row[1 : cols + 1]) for row in rows]
