"""Decision-tree scan phase — Algorithm 4 / Figure 2 of the paper.

One row at a time with the Fig 1a mask. The decision tree of Wu, Otoo,
Suzuki (Fig 2) orders the neighbor examinations so that on average only
about half the mask is read:

* ``b`` alone decides whenever it is foreground (``b`` is adjacent to
  ``a``, ``c`` *and* connected to ``d`` through earlier processing, so a
  single ``copy(b)`` suffices);
* otherwise ``c``, then ``a``/``d`` resolve the remaining cases, with the
  two-argument ``copy(x, y) = merge(p, label(x), label(y))`` for the two
  genuinely-disconnected configurations.

The kernel is written against *padded* rows (see
:mod:`repro.ccl.masks`) and is parameterised over the equivalence
structure: ``merge(p, x, y)`` and ``alloc() -> fresh label``. CCLLRPC and
CCLREMSP differ only in those two callables, which is exactly the paper's
point.

This module is the interpreter ("python") engine: plain lists, scalar
loops, faithful to the pseudocode. Throughput work goes through
:mod:`repro.ccl.run_based`'s vectorised engine instead.
"""

from __future__ import annotations

from typing import Callable, MutableSequence, Sequence

from .masks import pad_rows, strip_padding, zeros_row

__all__ = ["scan_decision_tree", "scan_row_8", "scan_row_4"]


def scan_row_8(
    iup: Sequence[int],
    irow: Sequence[int],
    lup: Sequence[int],
    lrow: MutableSequence[int],
    cols: int,
    p: MutableSequence[int],
    merge: Callable[[MutableSequence[int], int, int], int],
    alloc: Callable[[], int],
) -> None:
    """Label one padded row against the padded row above (8-connectivity).

    Direct transcription of Algorithm 4's inner loop; padded column ``c``
    maps the mask to ``a = iup[c-1]``, ``b = iup[c]``, ``c = iup[c+1]``,
    ``d = irow[c-1]``.
    """
    for c in range(1, cols + 1):
        if irow[c]:
            if iup[c]:  # b: copy(b)
                lrow[c] = p[lup[c]]
            elif iup[c + 1]:  # c
                if iup[c - 1]:  # a: copy(c, a)
                    lrow[c] = merge(p, lup[c + 1], lup[c - 1])
                elif irow[c - 1]:  # d: copy(c, d)
                    lrow[c] = merge(p, lup[c + 1], lrow[c - 1])
                else:  # copy(c)
                    lrow[c] = p[lup[c + 1]]
            elif iup[c - 1]:  # a: copy(a)
                lrow[c] = p[lup[c - 1]]
            elif irow[c - 1]:  # d: copy(d)
                lrow[c] = p[lrow[c - 1]]
            else:  # new label
                lrow[c] = alloc()


def scan_row_4(
    iup: Sequence[int],
    irow: Sequence[int],
    lup: Sequence[int],
    lrow: MutableSequence[int],
    cols: int,
    p: MutableSequence[int],
    merge: Callable[[MutableSequence[int], int, int], int],
    alloc: Callable[[], int],
) -> None:
    """4-connectivity degeneration of the decision tree (mask = ``b, d``)."""
    for c in range(1, cols + 1):
        if irow[c]:
            if irow[c - 1]:  # d
                le = p[lrow[c - 1]]
                if iup[c]:  # b in a different provisional set: merge
                    le = merge(p, le, lup[c])
                lrow[c] = le
            elif iup[c]:  # b
                lrow[c] = p[lup[c]]
            else:
                lrow[c] = alloc()


def scan_decision_tree(
    img_rows: Sequence[Sequence[int]],
    p: MutableSequence[int],
    merge: Callable[[MutableSequence[int], int, int], int],
    alloc: Callable[[], int],
    connectivity: int = 8,
) -> list[list[int]]:
    """Scan phase of CCLREMSP / CCLLRPC over a whole image (or chunk).

    Parameters
    ----------
    img_rows:
        Unpadded binary rows (list of lists of 0/1).
    p:
        Equivalence array, pre-sized so ``alloc`` can write into it.
    merge, alloc:
        Equivalence-structure callables (see module docstring).
    connectivity:
        8 (paper) or 4.

    Returns
    -------
    list[list[int]]
        Unpadded provisional label rows. The caller reads the final
        allocation count from its ``alloc`` closure.
    """
    rows = len(img_rows)
    cols = len(img_rows[0]) if rows else 0
    kernel = scan_row_8 if connectivity == 8 else scan_row_4
    pimg = pad_rows(img_rows)
    plab = [zeros_row(cols) for _ in range(rows)]
    zrow = zeros_row(cols)
    for r in range(rows):
        kernel(
            pimg[r - 1] if r > 0 else zrow,
            pimg[r],
            plab[r - 1] if r > 0 else zrow,
            plab[r],
            cols,
            p,
            merge,
            alloc,
        )
    return strip_padding(plab, cols)
