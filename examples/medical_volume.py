#!/usr/bin/env python
"""3-D lesion counting — the paper's medical-imaging motivation.

The introduction lists "medical image analysis and computer-aided
diagnosis" among CCL's indispensable applications; volumetric data is
the norm there. This example builds a synthetic CT-like volume with
blob "lesions", segments it by thresholding, and uses the library's 3-D
extension to count and measure the lesions under the three voxel
connectivities — including the classic pitfall where 26-connectivity
fuses lesions that 6-connectivity keeps apart.

Run:  python examples/medical_volume.py
"""

import numpy as np

from repro.data.valuenoise import fractal_noise
from repro.volume import flood_fill_label_3d, volume_label


def synth_volume(
    shape=(32, 96, 96), n_lesions: int = 12, seed: int = 17
) -> np.ndarray:
    """Gaussian blob 'lesions' over a noisy background, thresholded."""
    rng = np.random.default_rng(seed)
    Z, Y, X = shape
    field = np.zeros(shape)
    zz, yy, xx = np.mgrid[0:Z, 0:Y, 0:X]
    for _ in range(n_lesions):
        cz, cy, cx = rng.integers((2, 8, 8), (Z - 2, Y - 8, X - 8))
        rad = rng.uniform(2.0, 5.0)
        field += np.exp(
            -((zz - cz) ** 2 + (yy - cy) ** 2 + (xx - cx) ** 2)
            / (2 * rad**2)
        )
    # anatomical "texture": stack correlated 2-D noise slices
    noise = np.stack(
        [
            fractal_noise((Y, X), base_cell=16, octaves=3, seed=seed + z)
            for z in range(Z)
        ]
    )
    field += 0.25 * noise
    return (field > 0.45).astype(np.uint8)


def main() -> None:
    volume = synth_volume()
    print(
        f"volume: {volume.shape} ({volume.size / 1e6:.1f} Mvoxels), "
        f"{volume.mean():.1%} segmented"
    )

    # --- label under all three connectivities ------------------------------
    results = {c: volume_label(volume, c) for c in (6, 18, 26)}
    print("\nlesion counts by connectivity:")
    for conn, res in results.items():
        print(
            f"  {conn:2d}-connectivity: {res.n_components:3d} lesions  "
            f"({res.total_seconds * 1e3:.1f} ms, "
            f"{res.provisional_count} runs)"
        )
    assert results[6].n_components >= results[26].n_components

    # --- per-lesion measurements (26-connectivity) --------------------------
    labels = results[26].labels
    n = results[26].n_components
    sizes = np.bincount(labels.ravel())[1:]
    order = np.argsort(sizes)[::-1]
    print("\nlargest lesions (26-connectivity):")
    for i in order[:5]:
        voxels = np.argwhere(labels == i + 1)
        zc, yc, xc = voxels.mean(axis=0)
        print(
            f"  lesion {i + 1:3d}: {sizes[i]:6d} voxels, "
            f"centroid (z={zc:.1f}, y={yc:.1f}, x={xc:.1f})"
        )

    # --- slice-wise vs volumetric counting ----------------------------------
    # counting per 2-D slice (a common shortcut) overcounts: one lesion
    # appears in several slices.
    import repro

    slice_components = sum(
        repro.label(volume[z], engine="vectorized")[1]
        for z in range(volume.shape[0])
    )
    print(
        f"\nper-slice 2-D counting would report {slice_components} "
        f"'lesions' vs the true 3-D count of {n} — "
        "the reason volumetric CCL exists"
    )

    # --- cross-check on a subvolume against the BFS oracle ------------------
    sub = volume[:8, :24, :24]
    _, n_oracle = flood_fill_label_3d(sub, 26)
    assert volume_label(sub, 26).n_components == n_oracle
    print("BFS oracle agrees on the subvolume — done.")


if __name__ == "__main__":
    main()
