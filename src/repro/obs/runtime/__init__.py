"""``repro.obs.runtime`` — live telemetry for the long-running system.

The recording substrate (:mod:`repro.obs`) is post-hoc: spans and
metrics accumulate and are analyzed after the run. This package is the
*live* half a service needs (ROADMAP item 1 follow-ups):

* :mod:`~repro.obs.runtime.context` — request ids minted at service
  admission and propagated across the fork boundary into worker and
  engine-phase spans, so one request stitches into one multi-lane
  trace in the chrome exporter;
* :mod:`~repro.obs.runtime.aggregator` — rolling-window histograms,
  labelled counters and gauges with Prometheus text exposition;
* :mod:`~repro.obs.runtime.server` — stdlib-HTTP ``/metrics`` +
  ``/healthz`` + ``/readyz``;
* :mod:`~repro.obs.runtime.profiler` — a sampling thread-stack
  profiler emitting collapsed-stack (flamegraph) output per engine
  phase, zero-thread when detached;
* :mod:`~repro.obs.runtime.slo` — declarative SLO monitors evaluated
  over the rolling windows, emitting ``slo.breach`` counters and
  optionally triggering the
  :class:`~repro.faults.DegradationPolicy` ladder.

See the "Runtime telemetry" section of ``docs/OBSERVABILITY.md``.
"""

from .aggregator import (
    RollingWindow,
    RuntimeAggregator,
    get_runtime_aggregator,
    parse_prometheus_text,
    prom_name,
    set_runtime_aggregator,
    use_runtime_aggregator,
)
from .context import (
    current_request_id,
    new_request_id,
    request_context,
    set_request_id,
)
from .profiler import SamplingProfiler
from .server import MetricsServer, serve_service_metrics
from .slo import SLO, SLOBreach, SLOMonitor, degradation_trigger, load_slos

__all__ = [
    "RollingWindow",
    "RuntimeAggregator",
    "parse_prometheus_text",
    "prom_name",
    "get_runtime_aggregator",
    "set_runtime_aggregator",
    "use_runtime_aggregator",
    "new_request_id",
    "current_request_id",
    "set_request_id",
    "request_context",
    "SamplingProfiler",
    "MetricsServer",
    "serve_service_metrics",
    "SLO",
    "SLOBreach",
    "SLOMonitor",
    "load_slos",
    "degradation_trigger",
]
