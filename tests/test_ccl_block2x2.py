"""Block-based 2x2 labeling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.ccl.block2x2 import block_label
from repro.verify import flood_fill_label, labelings_equivalent


def test_matches_oracle(structural_image):
    expected, n = flood_fill_label(structural_image, 8)
    r = block_label(structural_image)
    assert r.n_components == n
    assert labelings_equivalent(r.labels, expected)


def test_provisional_is_block_count(rng):
    img = (rng.random((16, 16)) < 0.5).astype(np.uint8)
    r = block_label(img)
    # count 2x2 blocks containing any foreground
    blocks = img.reshape(8, 2, 8, 2).any(axis=(1, 3)).sum()
    assert r.provisional_count == blocks
    # the whole point: far fewer operands than pixels
    assert r.provisional_count <= img.sum() or img.sum() == 0


def test_odd_dimensions_padded(rng):
    for shape in ((5, 7), (1, 9), (9, 1), (3, 3)):
        img = (rng.random(shape) < 0.5).astype(np.uint8)
        expected, n = flood_fill_label(img, 8)
        r = block_label(img)
        assert r.n_components == n, shape
        assert labelings_equivalent(r.labels, expected)


def test_block_internal_connectivity():
    """Any two foreground pixels in one 2x2 block share a label."""
    img = np.array([[1, 0], [0, 1]], dtype=np.uint8)
    r = block_label(img)
    assert r.n_components == 1
    assert r.labels[0, 0] == r.labels[1, 1] == 1


def test_cross_block_diagonals():
    """Each of the four block-adjacency formulas, in isolation."""
    cases = [
        # left: d of left block touches a of right block
        ([[0, 0, 0, 0], [0, 1, 1, 0]], 1),
        # up: d of upper block vs c (diagonal) of lower block
        ([[0, 0], [0, 1], [1, 0], [0, 0]], 1),
        # up-left diagonal: d of block (0,0) vs a of block (1,1)
        ([[0, 0, 0, 0], [0, 1, 0, 0], [0, 0, 1, 0], [0, 0, 0, 0]], 1),
        # up-right diagonal: c of block (0,1) vs b of block (1,0)
        ([[0, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 0]], 1),
    ]
    for pixels, expected_n in cases:
        img = np.asarray(pixels, dtype=np.uint8)
        assert block_label(img).n_components == expected_n, pixels


def test_separated_blocks_stay_apart():
    img = np.zeros((6, 6), dtype=np.uint8)
    img[0, 0] = 1
    img[4, 4] = 1
    assert block_label(img).n_components == 2


def test_4_connectivity_rejected():
    with pytest.raises(ValueError):
        block_label(np.ones((2, 2), dtype=np.uint8), connectivity=4)


def test_empty():
    assert block_label(np.zeros((0, 0), dtype=np.uint8)).n_components == 0


@given(
    img=hnp.arrays(
        dtype=np.uint8,
        shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=22),
        elements=st.integers(0, 1),
    )
)
def test_property_matches_oracle(img):
    expected, n = flood_fill_label(img, 8)
    r = block_label(img)
    assert r.n_components == n
    assert labelings_equivalent(r.labels, expected)
