"""Lease-based liveness: heartbeats renew a lease, silence expires it.

A :class:`LeaseTable` tracks one lease per member. Every successful
heartbeat **renews** the member's lease for ``duration`` seconds of the
*observer's monotonic clock* — never the member's wall clock, so clock
skew between hosts cannot fake liveness or death (the same fix the
file-based heartbeats of :mod:`repro.parallel.sharded` get from
monotonic counters). A :meth:`sweep` reports members whose lease ran
out; the caller releases their claims — the same claim-release path a
dead local rank takes — so a partitioned host's work migrates to
reachable survivors. A member heard from *after* expiry **rejoins**
with a bumped incarnation number: its stale in-flight work is
deduplicated downstream by the durable done markers, which is what
makes a partition that heals harmless.

The table is thread-safe: renewals arrive from per-peer ping threads
while the coordinator sweeps.
"""

from __future__ import annotations

import dataclasses
import threading
import time

__all__ = ["Lease", "LeaseTable"]


@dataclasses.dataclass
class Lease:
    """One member's liveness state (all times ``time.monotonic``)."""

    member: str
    deadline: float
    incarnation: int = 0
    alive: bool = True
    #: renewals observed (diagnostic; monotonic per incarnation).
    renewals: int = 0


class LeaseTable:
    """Members, their leases, and the expiry/rejoin bookkeeping."""

    def __init__(self, duration: float, clock=time.monotonic) -> None:
        if duration <= 0:
            raise ValueError(f"lease duration must be > 0, got {duration}")
        self.duration = duration
        self._clock = clock
        self._lock = threading.Lock()
        self._leases: dict[str, Lease] = {}
        #: cumulative counts (expired includes every incarnation).
        self.expired_total = 0
        self.rejoined_total = 0

    def members(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._leases)

    def add(self, member: str) -> Lease:
        """Register *member* with a fresh lease (idempotent)."""
        with self._lock:
            lease = self._leases.get(member)
            if lease is None:
                lease = Lease(member, self._clock() + self.duration)
                self._leases[member] = lease
            return lease

    def renew(self, member: str) -> bool:
        """A heartbeat from *member*: extend its lease.

        Returns ``True`` when this renewal **rejoined** an expired
        member (the partition healed) — the caller should restart its
        dispatcher and count the recovery.
        """
        with self._lock:
            lease = self._leases.get(member)
            if lease is None:
                lease = Lease(member, 0.0)
                self._leases[member] = lease
            rejoined = not lease.alive
            if rejoined:
                lease.alive = True
                lease.incarnation += 1
                lease.renewals = 0
                self.rejoined_total += 1
            lease.renewals += 1
            lease.deadline = self._clock() + self.duration
            return rejoined

    def sweep(self) -> tuple[str, ...]:
        """Expire overdue members; returns the newly expired ones.

        Idempotent per expiry: a member is reported exactly once per
        incarnation, however often the sweep runs.
        """
        now = self._clock()
        expired: list[str] = []
        with self._lock:
            for lease in self._leases.values():
                if lease.alive and now > lease.deadline:
                    lease.alive = False
                    self.expired_total += 1
                    expired.append(lease.member)
        return tuple(expired)

    def expire(self, member: str) -> bool:
        """Forcibly expire *member* now (e.g. unreachable at connect
        time, before any lease period has had a chance to run out).
        Returns ``True`` if the member was alive."""
        with self._lock:
            lease = self._leases.get(member)
            if lease is not None and lease.alive:
                lease.alive = False
                self.expired_total += 1
                return True
        return False

    def is_alive(self, member: str) -> bool:
        with self._lock:
            lease = self._leases.get(member)
            return bool(lease is not None and lease.alive)

    def alive_members(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(m for m, l in self._leases.items() if l.alive)

    def incarnation(self, member: str) -> int:
        with self._lock:
            lease = self._leases.get(member)
            return 0 if lease is None else lease.incarnation
