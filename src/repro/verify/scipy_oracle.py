"""Optional second oracle backed by :func:`scipy.ndimage.label`.

SciPy's implementation is an entirely independent C codebase, which gives
the test suite a third opinion (library vs flood fill vs scipy). SciPy is
an optional dependency: :func:`have_scipy` lets tests skip gracefully.

Note ``scipy.ndimage.label`` numbers components in its own scan order,
which for 8-connectivity coincides with raster first-appearance order —
but we do not rely on that: comparisons against this oracle go through
:func:`repro.verify.equivalence.labelings_equivalent`.
"""

from __future__ import annotations

import numpy as np

from ..types import LABEL_DTYPE, Connectivity, as_binary_image

__all__ = ["have_scipy", "scipy_label"]


def have_scipy() -> bool:
    """True if scipy.ndimage is importable in this environment."""
    try:
        import scipy.ndimage  # noqa: F401
    except ImportError:
        return False
    return True


def scipy_label(
    image: np.ndarray,
    connectivity: Connectivity | int = Connectivity.EIGHT,
) -> tuple[np.ndarray, int]:
    """Label *image* with ``scipy.ndimage.label``.

    Raises :class:`ImportError` if SciPy is unavailable — call
    :func:`have_scipy` first in optional contexts.
    """
    from scipy import ndimage

    img = as_binary_image(image)
    if Connectivity(connectivity) is Connectivity.EIGHT:
        structure = np.ones((3, 3), dtype=bool)
    else:
        structure = np.array(
            [[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool
        )
    labels, n = ndimage.label(img, structure=structure)
    return labels.astype(LABEL_DTYPE), int(n)
